//! Cross-crate integration tests: the full stack (workload → trace →
//! snapshot → strategy → kernel → device) exercised through the
//! public API only.

use snapbpf_repro::prelude::*;
use snapbpf_repro::snapbpf_kernel::{HostKernel, KernelConfig, PAGE_CACHE_ADD_HOOK};
use snapbpf_repro::snapbpf_storage::{Disk, SsdModel};

const SCALE: f64 = 0.05;

#[test]
fn whole_pipeline_is_deterministic() {
    let run = |kind: StrategyKind| {
        let w = Workload::by_name("chameleon").unwrap();
        run_one(kind, &w, &RunConfig::concurrent(SCALE, 4)).unwrap()
    };
    for kind in [
        StrategyKind::LinuxRa,
        StrategyKind::Reap,
        StrategyKind::Faasnap,
        StrategyKind::SnapBpf,
    ] {
        assert_eq!(run(kind), run(kind), "{kind} must be deterministic");
    }
}

#[test]
fn every_strategy_completes_every_function() {
    let cfg = RunConfig::single(0.02);
    for w in Workload::suite() {
        for kind in [
            StrategyKind::LinuxNoRa,
            StrategyKind::Reap,
            StrategyKind::Faast,
            StrategyKind::Faasnap,
            StrategyKind::SnapBpf,
        ] {
            let r =
                run_one(kind, &w, &cfg).unwrap_or_else(|e| panic!("{kind} on {}: {e}", w.name()));
            assert!(r.e2e_mean() > SimDuration::ZERO, "{kind} on {}", w.name());
        }
    }
}

#[test]
fn latency_decomposition_is_sane() {
    // E2E >= pure compute, and warm runs converge toward compute.
    let w = Workload::by_name("pyaes").unwrap();
    let r = run_one(StrategyKind::SnapBpf, &w, &RunConfig::single(SCALE)).unwrap();
    let compute = w.scaled(SCALE).trace().total_compute();
    assert!(r.e2e_mean() > compute);
    assert!(
        r.e2e_mean() < compute * 30,
        "e2e {} vastly exceeds compute {}",
        r.e2e_mean(),
        compute
    );
}

#[test]
fn instances_scale_memory_for_uffd_but_not_page_cache() {
    let w = Workload::by_name("cnn").unwrap();
    for (kind, scales_with_instances) in
        [(StrategyKind::Reap, true), (StrategyKind::SnapBpf, false)]
    {
        let one = run_one(kind, &w, &RunConfig::concurrent(SCALE, 1)).unwrap();
        let four = run_one(kind, &w, &RunConfig::concurrent(SCALE, 4)).unwrap();
        let ratio = four.memory.total_bytes() as f64 / one.memory.total_bytes() as f64;
        if scales_with_instances {
            assert!(ratio > 3.0, "{kind}: ratio {ratio}");
        } else {
            assert!(ratio < 2.5, "{kind}: ratio {ratio}");
        }
    }
}

#[test]
fn snapbpf_reads_track_working_set_not_snapshot() {
    let w = Workload::by_name("rnn").unwrap();
    let r = run_one(StrategyKind::SnapBpf, &w, &RunConfig::single(SCALE)).unwrap();
    let spec = *w.scaled(SCALE).spec();
    let ws_bytes = spec.ws_pages() * 4096;
    let snapshot_bytes = spec.snapshot_pages() * 4096;
    assert!(r.invoke_read_bytes >= ws_bytes * 9 / 10);
    assert!(
        r.invoke_read_bytes < snapshot_bytes / 2,
        "reads {} should stay far below the {} byte snapshot",
        r.invoke_read_bytes,
        snapshot_bytes
    );
}

#[test]
fn ebpf_layer_is_reachable_through_umbrella() {
    use snapbpf_repro::snapbpf_ebpf::{MapDef, ProgramBuilder, Reg};

    let disk = Disk::new(Box::new(SsdModel::micron_5300()));
    let mut kernel = HostKernel::new(disk, KernelConfig::default());
    let _map = kernel.create_map(MapDef::array(8, 4)).unwrap();
    let mut b = ProgramBuilder::new("noop");
    b.mov(Reg::R0, 0).exit();
    let probe = kernel
        .load_and_attach(PAGE_CACHE_ADD_HOOK, &b.build().unwrap())
        .unwrap();
    assert!(kernel.probe_enabled(probe));
}

#[test]
fn offset_artifacts_are_metadata_sized() {
    // SnapBPF's only artifact is the offsets file: ~16 bytes per
    // range vs 4096 bytes per page for prior art.
    let w = Workload::by_name("bfs").unwrap();
    let cfg = RunConfig::single(SCALE);
    let snap = run_one(StrategyKind::SnapBpf, &w, &cfg).unwrap();
    let reap = run_one(StrategyKind::Reap, &w, &cfg).unwrap();
    assert!(snap.artifact_pages * 20 < reap.artifact_pages);
}
