//! The paper's headline claims, asserted end-to-end at a reduced but
//! shape-preserving scale. Each test names the claim it guards.

use snapbpf_repro::prelude::*;
use snapbpf_repro::snapbpf;

const SCALE: f64 = 0.08;
const INSTANCES: usize = 6;

/// §1/§4: "SnapBPF is able to match and improve state-of-the-art
/// performance with regard to function invocation latency" — single
/// instance, against REAP and FaaSnap.
#[test]
fn claim_latency_single_instance() {
    let cfg = RunConfig::single(SCALE);
    for name in ["image", "cnn", "bfs"] {
        let w = Workload::by_name(name).unwrap();
        let reap = run_one(StrategyKind::Reap, &w, &cfg).unwrap();
        let faasnap = run_one(StrategyKind::Faasnap, &w, &cfg).unwrap();
        let snapbpf = run_one(StrategyKind::SnapBpf, &w, &cfg).unwrap();
        assert!(
            snapbpf.e2e_mean() <= reap.e2e_mean().mul_f64(1.1),
            "{name}: SnapBPF {} vs REAP {}",
            snapbpf.e2e_mean(),
            reap.e2e_mean()
        );
        assert!(
            snapbpf.e2e_mean() <= faasnap.e2e_mean().mul_f64(1.1),
            "{name}: SnapBPF {} vs FaaSnap {}",
            snapbpf.e2e_mean(),
            faasnap.e2e_mean()
        );
    }
}

/// §4: "for functions with large working sets, such as Bert, SnapBPF
/// is able to achieve 8x lower E2E latency than REAP" (10
/// concurrent instances; scaled here, the ratio must still be
/// several-fold).
#[test]
fn claim_bert_concurrent_latency() {
    let w = Workload::by_name("bert").unwrap();
    let cfg = RunConfig::concurrent(SCALE, INSTANCES);
    let reap = run_one(StrategyKind::Reap, &w, &cfg).unwrap();
    let snapbpf = run_one(StrategyKind::SnapBpf, &w, &cfg).unwrap();
    let ratio = reap.e2e_mean().ratio(snapbpf.e2e_mean());
    assert!(ratio > 4.0, "REAP/SnapBPF latency ratio {ratio:.2}");
}

/// §4: "SnapBPF reduces memory usage by up to 6x for functions with
/// large working set, such as BFS and Bert."
#[test]
fn claim_memory_dedup() {
    let cfg = RunConfig::concurrent(SCALE, INSTANCES);
    for name in ["bfs", "bert"] {
        let w = Workload::by_name(name).unwrap();
        let reap = run_one(StrategyKind::Reap, &w, &cfg).unwrap();
        let snapbpf = run_one(StrategyKind::SnapBpf, &w, &cfg).unwrap();
        let ratio = reap.memory.total_bytes() as f64 / snapbpf.memory.total_bytes() as f64;
        assert!(ratio > 3.0, "{name}: memory ratio {ratio:.2}");
        // The reduction comes from the shared page cache:
        assert!(snapbpf.memory.shared_fraction() > 0.5, "{name}");
        assert_eq!(reap.memory.page_cache_pages, 0, "{name}: uffd cannot share");
    }
}

/// §4 Figure 4: PV PTE marking alone improves allocation-heavy
/// functions by >2x (image) but barely helps model-bound ones
/// (rnn, bert).
#[test]
fn claim_pv_pte_breakdown() {
    let cfg = RunConfig::single(SCALE);
    let image_ra = run_one(
        StrategyKind::LinuxRa,
        &Workload::by_name("image").unwrap(),
        &cfg,
    )
    .unwrap();
    let image_pv = run_one(
        StrategyKind::SnapBpfPvOnly,
        &Workload::by_name("image").unwrap(),
        &cfg,
    )
    .unwrap();
    let image_gain = image_ra.e2e_mean().ratio(image_pv.e2e_mean());
    assert!(image_gain > 1.7, "image PV-only gain {image_gain:.2}");

    for name in ["rnn", "bert"] {
        let ra = run_one(
            StrategyKind::LinuxRa,
            &Workload::by_name(name).unwrap(),
            &cfg,
        )
        .unwrap();
        let pv = run_one(
            StrategyKind::SnapBpfPvOnly,
            &Workload::by_name(name).unwrap(),
            &cfg,
        )
        .unwrap();
        let gain = ra.e2e_mean().ratio(pv.e2e_mean());
        assert!(
            gain < 1.35,
            "{name}: PV-only gain {gain:.2} should be minimal"
        );
    }
}

/// §4 "SnapBPF Overheads": loading the offsets into the kernel costs
/// ~1–2 ms and less than 1% of E2E latency on average.
#[test]
fn claim_offset_load_overhead() {
    let cfg = RunConfig::single(1.0); // full size: the paper's absolute claim
    let w = Workload::by_name("bert").unwrap();
    let r = run_one(StrategyKind::SnapBpf, &w, &cfg).unwrap();
    let ms = r.offset_load_cost.as_millis_f64();
    assert!((0.3..=3.0).contains(&ms), "offset load {ms:.2} ms");
    assert!(
        r.offset_load_cost.ratio(r.e2e_mean()) < 0.01,
        "fraction {}",
        r.offset_load_cost.ratio(r.e2e_mean())
    );
}

/// Table 1: only SnapBPF combines no-serialization, in-memory dedup,
/// and stateless allocation filtering.
#[test]
fn claim_table1_uniqueness() {
    let all = [
        StrategyKind::Reap,
        StrategyKind::Faast,
        StrategyKind::Faasnap,
        StrategyKind::SnapBpf,
    ];
    let winners: Vec<_> = all
        .iter()
        .filter(|k| {
            let c = k.build().capabilities();
            !c.on_disk_ws_serialization
                && c.in_memory_ws_dedup
                && c.stateless_vm_allocation_filtering
        })
        .collect();
    assert_eq!(winners.len(), 1);
    assert_eq!(*winners[0], StrategyKind::SnapBpf);
}

/// §2.1 (verified by the paper with eBPF instrumentation): FaaSnap's
/// region coalescing inflates the working-set file and amplifies
/// invocation I/O as the gap threshold grows.
#[test]
fn claim_faasnap_coalescing_amplifies_io() {
    let w = Workload::by_name("chameleon").unwrap();
    let fig = snapbpf::figures::ablation_coalesce(&w, 0.2, &[0, 256]).unwrap();
    let ws = fig.series_values("ws-file-MiB").unwrap();
    let rd = fig.series_values("invoke-read-MiB").unwrap();
    assert!(ws[1] > ws[0] * 1.05, "ws inflation {:?}", ws);
    assert!(rd[1] > rd[0] * 1.02, "read amplification {:?}", rd);
}

/// §4 "Memory": without the paper's KVM patch (opportunistic write
/// mapping), forced CoW of read faults destroys the deduplication.
#[test]
fn claim_kvm_cow_patch_matters() {
    let w = Workload::by_name("rnn").unwrap();
    let cfg = RunConfig::concurrent(SCALE, INSTANCES);
    let patched = run_one(StrategyKind::SnapBpf, &w, &cfg).unwrap();
    let buggy = run_one(StrategyKind::SnapBpfBuggyCow, &w, &cfg).unwrap();
    assert!(
        buggy.memory.total_bytes() > patched.memory.total_bytes() * 2,
        "buggy {} vs patched {}",
        buggy.memory,
        patched.memory
    );
    assert!(buggy.memory.cow_pages > patched.memory.cow_pages * 4);
}
