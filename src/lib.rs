//! # snapbpf-repro — umbrella crate
//!
//! Re-exports the whole SnapBPF reproduction workspace under one
//! roof for the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`.
//!
//! The interesting entry points:
//!
//! * [`snapbpf`] — the paper's contribution, the baselines, the
//!   experiment runner ([`snapbpf::run_one`]) and figure generators
//!   ([`snapbpf::figures`]),
//! * [`workloads`](snapbpf_workloads) — the 14-function evaluation
//!   suite,
//! * [`kernel`](snapbpf_kernel), [`vmm`](snapbpf_vmm),
//!   [`ebpf`](snapbpf_ebpf), [`mem`](snapbpf_mem),
//!   [`storage`](snapbpf_storage), [`sim`](snapbpf_sim) — the
//!   simulated substrate, bottom-up.
//!
//! ## Examples
//!
//! ```
//! use snapbpf_repro::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = Workload::by_name("image").expect("suite function");
//! let result = run_one(StrategyKind::SnapBpf, &image, &RunConfig::single(0.05))?;
//! assert!(result.e2e_mean().as_millis() < 1_000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use snapbpf;
pub use snapbpf_ebpf;
pub use snapbpf_kernel;
pub use snapbpf_mem;
pub use snapbpf_sim;
pub use snapbpf_storage;
pub use snapbpf_vmm;
pub use snapbpf_workloads;

/// The names most programs want in scope.
pub mod prelude {
    pub use snapbpf::figures::FigureConfig;
    pub use snapbpf::{
        run_one, run_one_with, DeviceKind, FigureData, RunConfig, RunResult, Strategy, StrategyKind,
    };
    pub use snapbpf_sim::{SimDuration, SimTime};
    pub use snapbpf_workloads::Workload;
}
