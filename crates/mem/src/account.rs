//! System-wide memory accounting.
//!
//! Figure 3c of the paper reports *system-wide memory usage* when 10
//! concurrent sandboxes of the same function run. The decisive split
//! is between page-cache pages (shared across sandboxes — counted
//! once) and anonymous pages (private — counted per sandbox).
//! [`MemorySnapshot`] captures that split at a point in time.

use std::fmt;

use snapbpf_sim::{pages_to_bytes, PAGE_SIZE};

/// A point-in-time breakdown of host memory usage, in pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemorySnapshot {
    /// Pages in the shared OS page cache (file-backed, deduplicated).
    pub page_cache_pages: u64,
    /// Anonymous pages across all owners (private, not shared).
    pub anon_pages: u64,
    /// Of the anonymous pages, how many exist because of
    /// copy-on-write breaks of page-cache pages.
    pub cow_pages: u64,
}

impl MemorySnapshot {
    /// A snapshot with all counts zero.
    pub const fn zero() -> Self {
        MemorySnapshot {
            page_cache_pages: 0,
            anon_pages: 0,
            cow_pages: 0,
        }
    }

    /// Total pages in use.
    pub const fn total_pages(&self) -> u64 {
        self.page_cache_pages + self.anon_pages
    }

    /// Total bytes in use.
    pub const fn total_bytes(&self) -> u64 {
        pages_to_bytes(self.total_pages())
    }

    /// Total memory in GiB, for figure axes.
    pub fn total_gib(&self) -> f64 {
        self.total_bytes() as f64 / (1u64 << 30) as f64
    }

    /// Total memory in MiB.
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1u64 << 20) as f64
    }

    /// Fraction of used memory that is shared page cache (0 when
    /// empty).
    pub fn shared_fraction(&self) -> f64 {
        let total = self.total_pages();
        if total == 0 {
            0.0
        } else {
            self.page_cache_pages as f64 / total as f64
        }
    }

    /// Element-wise difference against an earlier snapshot,
    /// saturating at zero — "memory added since `earlier`".
    #[must_use]
    pub fn since(&self, earlier: &MemorySnapshot) -> MemorySnapshot {
        MemorySnapshot {
            page_cache_pages: self
                .page_cache_pages
                .saturating_sub(earlier.page_cache_pages),
            anon_pages: self.anon_pages.saturating_sub(earlier.anon_pages),
            cow_pages: self.cow_pages.saturating_sub(earlier.cow_pages),
        }
    }
}

impl fmt::Display for MemorySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache={:.1}MiB anon={:.1}MiB (cow={:.1}MiB) total={:.1}MiB",
            pages_to_bytes(self.page_cache_pages) as f64 / (1 << 20) as f64,
            pages_to_bytes(self.anon_pages) as f64 / (1 << 20) as f64,
            pages_to_bytes(self.cow_pages) as f64 / (1 << 20) as f64,
            self.total_mib(),
        )
    }
}

/// Compile-time check that a page is 4 KiB; several formulas above
/// fold this constant in.
const _: () = assert!(PAGE_SIZE == 4096);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let s = MemorySnapshot {
            page_cache_pages: 100,
            anon_pages: 50,
            cow_pages: 10,
        };
        assert_eq!(s.total_pages(), 150);
        assert_eq!(s.total_bytes(), 150 * 4096);
        assert!((s.shared_fraction() - 100.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn zero_is_safe() {
        let z = MemorySnapshot::zero();
        assert_eq!(z.total_pages(), 0);
        assert_eq!(z.shared_fraction(), 0.0);
        assert_eq!(z.total_gib(), 0.0);
    }

    #[test]
    fn since_saturates() {
        let a = MemorySnapshot {
            page_cache_pages: 10,
            anon_pages: 5,
            cow_pages: 0,
        };
        let b = MemorySnapshot {
            page_cache_pages: 4,
            anon_pages: 9,
            cow_pages: 1,
        };
        let d = a.since(&b);
        assert_eq!(d.page_cache_pages, 6);
        assert_eq!(d.anon_pages, 0);
        assert_eq!(d.cow_pages, 0);
    }

    #[test]
    fn unit_conversions() {
        let s = MemorySnapshot {
            page_cache_pages: (1u64 << 30) / 4096, // 1 GiB
            anon_pages: 0,
            cow_pages: 0,
        };
        assert!((s.total_gib() - 1.0).abs() < 1e-12);
        assert!((s.total_mib() - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_all_parts() {
        let s = MemorySnapshot {
            page_cache_pages: 256,
            anon_pages: 256,
            cow_pages: 128,
        };
        let out = s.to_string();
        assert!(out.contains("cache="));
        assert!(out.contains("anon="));
        assert!(out.contains("total="));
    }
}
