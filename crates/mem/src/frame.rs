//! Host physical frames and the buddy allocator that hands them out.
//!
//! The host kernel model allocates physical memory in power-of-two
//! blocks exactly like Linux's buddy system: free lists per order,
//! block splitting on allocation, and buddy coalescing on free. The
//! allocator is the ground truth for "how much host memory is in
//! use", which Figure 3c reports.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A host physical frame number.
///
/// Newtype so host frames cannot be confused with guest frame numbers
/// or file page indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(u64);

impl FrameId {
    /// Creates a frame id.
    pub const fn new(pfn: u64) -> Self {
        FrameId(pfn)
    }

    /// The raw host page frame number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The frame `n` frames after this one.
    #[must_use]
    pub const fn offset(self, n: u64) -> FrameId {
        FrameId(self.0 + n)
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hpfn#{}", self.0)
    }
}

/// Errors returned by [`BuddyAllocator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No free block of a sufficient order exists.
    OutOfMemory {
        /// The order that was requested.
        order: u8,
    },
    /// Freeing a frame that is not currently allocated (double free
    /// or wild free).
    NotAllocated(FrameId),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory { order } => {
                write!(f, "out of memory allocating order-{order} block")
            }
            AllocError::NotAllocated(frame) => write!(f, "frame not allocated: {frame}"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Maximum block order (2^10 pages = 4 MiB blocks), matching Linux's
/// `MAX_ORDER`.
pub const MAX_ORDER: u8 = 10;

/// A buddy allocator over a contiguous range of host frames.
///
/// # Examples
///
/// ```
/// use snapbpf_mem::BuddyAllocator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut buddy = BuddyAllocator::new(1024);
/// let a = buddy.alloc_pages(1)?; // one page
/// let b = buddy.alloc_pages(8)?; // an order-3 block
/// assert_eq!(buddy.allocated_pages(), 9);
/// buddy.dealloc_pages(a, 1)?;
/// buddy.dealloc_pages(b, 8)?;
/// assert_eq!(buddy.allocated_pages(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    /// Free blocks per order: sets keep deterministic (lowest-address
    /// first) allocation order.
    free_lists: Vec<BTreeSet<u64>>,
    /// Order of each currently allocated block, keyed by base frame.
    allocated: HashMap<u64, u8>,
    total_pages: u64,
    allocated_pages: u64,
    /// High-water mark of allocated pages.
    peak_pages: u64,
}

impl BuddyAllocator {
    /// Creates an allocator managing `total_pages` frames starting at
    /// frame 0. The total is rounded *down* to a multiple of the
    /// largest block size for simplicity.
    ///
    /// # Panics
    ///
    /// Panics if `total_pages` is smaller than one max-order block
    /// (2^10 pages).
    pub fn new(total_pages: u64) -> Self {
        let block = 1u64 << MAX_ORDER;
        let usable = (total_pages / block) * block;
        assert!(usable > 0, "buddy allocator needs at least {block} pages");
        let mut free_lists = vec![BTreeSet::new(); MAX_ORDER as usize + 1];
        let mut base = 0;
        while base < usable {
            free_lists[MAX_ORDER as usize].insert(base);
            base += block;
        }
        BuddyAllocator {
            free_lists,
            allocated: HashMap::new(),
            total_pages: usable,
            allocated_pages: 0,
            peak_pages: 0,
        }
    }

    /// Total frames managed.
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Frames currently allocated.
    pub fn allocated_pages(&self) -> u64 {
        self.allocated_pages
    }

    /// Frames currently free.
    pub fn free_pages(&self) -> u64 {
        self.total_pages - self.allocated_pages
    }

    /// Highest number of simultaneously allocated frames seen.
    pub fn peak_pages(&self) -> u64 {
        self.peak_pages
    }

    fn order_for(pages: u64) -> u8 {
        debug_assert!(pages > 0);
        let needed = pages.next_power_of_two();
        needed.trailing_zeros() as u8
    }

    /// Allocates a block of at least `pages` pages (rounded up to a
    /// power of two), returning its base frame.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfMemory`] when no block of
    /// sufficient order is free.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero or exceeds the max block size.
    pub fn alloc_pages(&mut self, pages: u64) -> Result<FrameId, AllocError> {
        assert!(pages > 0, "cannot allocate zero pages");
        let order = Self::order_for(pages);
        assert!(
            order <= MAX_ORDER,
            "allocation of {pages} pages exceeds max order {MAX_ORDER}"
        );

        // Find the smallest order >= requested with a free block.
        let mut found = None;
        for o in order..=MAX_ORDER {
            if let Some(&base) = self.free_lists[o as usize].iter().next() {
                found = Some((o, base));
                break;
            }
        }
        let (mut o, base) = found.ok_or(AllocError::OutOfMemory { order })?;
        self.free_lists[o as usize].remove(&base);

        // Split down to the requested order, returning the upper
        // halves to their free lists.
        while o > order {
            o -= 1;
            let buddy = base + (1u64 << o);
            self.free_lists[o as usize].insert(buddy);
        }

        self.allocated.insert(base, order);
        let block_pages = 1u64 << order;
        self.allocated_pages += block_pages;
        self.peak_pages = self.peak_pages.max(self.allocated_pages);
        Ok(FrameId(base))
    }

    /// Frees a block previously returned by [`BuddyAllocator::alloc_pages`]
    /// with the same size.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::NotAllocated`] on double free, an
    /// unknown base frame, or a mismatched size.
    pub fn dealloc_pages(&mut self, base: FrameId, pages: u64) -> Result<(), AllocError> {
        let order = Self::order_for(pages.max(1));
        match self.allocated.get(&base.as_u64()) {
            Some(&o) if o == order => {}
            _ => return Err(AllocError::NotAllocated(base)),
        }
        self.allocated.remove(&base.as_u64());
        self.allocated_pages -= 1u64 << order;

        // Coalesce with the buddy while possible.
        let mut o = order;
        let mut b = base.as_u64();
        while o < MAX_ORDER {
            let buddy = b ^ (1u64 << o);
            if self.free_lists[o as usize].remove(&buddy) {
                b = b.min(buddy);
                o += 1;
            } else {
                break;
            }
        }
        self.free_lists[o as usize].insert(b);
        Ok(())
    }

    /// `true` if `base` is the base of a live allocation.
    pub fn is_allocated(&self, base: FrameId) -> bool {
        self.allocated.contains_key(&base.as_u64())
    }

    /// Number of free blocks at each order, lowest first — exposed
    /// for fragmentation diagnostics and tests.
    pub fn free_blocks_by_order(&self) -> Vec<usize> {
        self.free_lists.iter().map(|l| l.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut b = BuddyAllocator::new(1 << 12);
        let f = b.alloc_pages(1).unwrap();
        assert!(b.is_allocated(f));
        assert_eq!(b.allocated_pages(), 1);
        b.dealloc_pages(f, 1).unwrap();
        assert!(!b.is_allocated(f));
        assert_eq!(b.allocated_pages(), 0);
    }

    #[test]
    fn rounds_up_to_power_of_two() {
        let mut b = BuddyAllocator::new(1 << 12);
        b.alloc_pages(3).unwrap(); // rounds to 4
        assert_eq!(b.allocated_pages(), 4);
        b.alloc_pages(5).unwrap(); // rounds to 8
        assert_eq!(b.allocated_pages(), 12);
    }

    #[test]
    fn coalescing_restores_max_order_blocks() {
        let mut b = BuddyAllocator::new(1 << MAX_ORDER);
        let before = b.free_blocks_by_order();
        assert_eq!(before[MAX_ORDER as usize], 1);

        let mut frames = Vec::new();
        for _ in 0..(1 << MAX_ORDER) {
            frames.push(b.alloc_pages(1).unwrap());
        }
        assert_eq!(b.free_pages(), 0);
        assert!(b.alloc_pages(1).is_err());

        for f in frames {
            b.dealloc_pages(f, 1).unwrap();
        }
        // After freeing everything, coalescing must rebuild the
        // single max-order block.
        assert_eq!(b.free_blocks_by_order(), before);
    }

    #[test]
    fn double_free_detected() {
        let mut b = BuddyAllocator::new(1 << 12);
        let f = b.alloc_pages(2).unwrap();
        b.dealloc_pages(f, 2).unwrap();
        assert_eq!(b.dealloc_pages(f, 2), Err(AllocError::NotAllocated(f)));
    }

    #[test]
    fn mismatched_size_free_detected() {
        let mut b = BuddyAllocator::new(1 << 12);
        let f = b.alloc_pages(4).unwrap();
        assert_eq!(b.dealloc_pages(f, 2), Err(AllocError::NotAllocated(f)));
        b.dealloc_pages(f, 4).unwrap();
    }

    #[test]
    fn distinct_blocks_do_not_overlap() {
        let mut b = BuddyAllocator::new(1 << 12);
        let mut blocks: Vec<(u64, u64)> = Vec::new();
        for pages in [1u64, 2, 4, 8, 16, 1, 32, 2] {
            let f = b.alloc_pages(pages).unwrap();
            let size = pages.next_power_of_two();
            for &(base, len) in &blocks {
                let disjoint = f.as_u64() + size <= base || base + len <= f.as_u64();
                assert!(
                    disjoint,
                    "block at {f} size {size} overlaps ({base}, {len})"
                );
            }
            blocks.push((f.as_u64(), size));
        }
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut b = BuddyAllocator::new(1 << 12);
        let f = b.alloc_pages(16).unwrap();
        b.dealloc_pages(f, 16).unwrap();
        b.alloc_pages(1).unwrap();
        assert_eq!(b.peak_pages(), 16);
    }

    #[test]
    fn oom_reports_order() {
        let mut b = BuddyAllocator::new(1 << MAX_ORDER);
        b.alloc_pages(1 << MAX_ORDER).unwrap();
        assert_eq!(b.alloc_pages(1), Err(AllocError::OutOfMemory { order: 0 }));
    }

    #[test]
    fn total_rounds_down_to_block_multiple() {
        let b = BuddyAllocator::new((1 << MAX_ORDER) + 100);
        assert_eq!(b.total_pages(), 1 << MAX_ORDER);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_small_panics() {
        BuddyAllocator::new(100);
    }

    #[test]
    fn frame_id_display_and_offset() {
        let f = FrameId::new(7);
        assert_eq!(f.to_string(), "hpfn#7");
        assert_eq!(f.offset(3).as_u64(), 10);
    }
}
