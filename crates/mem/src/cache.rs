//! The OS page cache model.
//!
//! The page cache is the centrepiece of SnapBPF's memory story: pages
//! prefetched from the snapshot file land here, are **shared by every
//! VM sandbox mapping the same snapshot**, and therefore deduplicate
//! naturally (paper §3.1). The model is a map from `(file, page)` to
//! a host frame with an LRU list for eviction and an *in-flight*
//! state so concurrent faults on a page being read from disk wait for
//! the same I/O instead of issuing duplicates.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

use snapbpf_sim::{SimTime, Tracer, PAGE_SIZE, TID_KERNEL};
use snapbpf_storage::FileId;

use crate::frame::FrameId;

/// Key of a page-cache entry: a page of a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageKey {
    /// The file.
    pub file: FileId,
    /// Page index within the file.
    pub page: u64,
}

impl PageKey {
    /// Creates a key.
    pub const fn new(file: FileId, page: u64) -> Self {
        PageKey { file, page }
    }
}

impl fmt::Display for PageKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.page)
    }
}

/// State of a cached page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// The read from storage is outstanding; data is usable at
    /// `ready_at`.
    InFlight {
        /// Completion time of the backing I/O.
        ready_at: SimTime,
    },
    /// The page holds valid data.
    Resident,
}

/// Read-only view of a cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageView {
    /// Backing host frame.
    pub frame: FrameId,
    /// Current state.
    pub state: PageState,
    /// Number of address-space mappings currently pinning the page.
    pub mapcount: u32,
}

impl PageView {
    /// The time at which the page's data is (or was) available:
    /// `ready_at` for in-flight pages, `SimTime::ZERO` for resident
    /// ones.
    pub fn available_at(&self) -> SimTime {
        match self.state {
            PageState::InFlight { ready_at } => ready_at,
            PageState::Resident => SimTime::ZERO,
        }
    }
}

/// Errors returned by [`PageCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheError {
    /// Inserting a key that is already cached.
    AlreadyCached(PageKey),
    /// Operating on a key that is not cached.
    NotCached(PageKey),
    /// Unmapping a page whose mapcount is already zero.
    NotMapped(PageKey),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::AlreadyCached(k) => write!(f, "page already cached: {k}"),
            CacheError::NotCached(k) => write!(f, "page not cached: {k}"),
            CacheError::NotMapped(k) => write!(f, "page not mapped: {k}"),
        }
    }
}

impl std::error::Error for CacheError {}

const NIL: usize = usize::MAX;

/// FNV-1a, the page-cache index hash.
///
/// Page keys are tiny fixed-size integers hashed on every fault,
/// insert and placement probe, so the default SipHash (keyed, DoS
/// resistant) pays for robustness the simulator does not need. FNV
/// is a handful of multiplies — and, being seed-free, it also makes
/// map iteration order a pure function of the insert/remove history,
/// which keeps bulk paths like [`PageCache::drain_unmapped`]
/// deterministic across runs.
#[derive(Debug, Clone, Copy)]
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        // FNV-1a 64-bit offset basis.
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

type FnvBuild = BuildHasherDefault<FnvHasher>;

#[derive(Debug, Clone)]
struct Node {
    key: PageKey,
    frame: FrameId,
    state: PageState,
    mapcount: u32,
    prev: usize,
    next: usize,
}

/// The page cache: `(file, page) -> frame` with LRU ordering.
///
/// # Examples
///
/// ```
/// use snapbpf_mem::{PageCache, PageKey, PageState, FrameId};
/// use snapbpf_sim::SimTime;
/// use snapbpf_storage::{Disk, SsdModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut disk = Disk::new(Box::new(SsdModel::micron_5300()));
/// let file = disk.create_file("snap", 64)?;
/// let mut cache = PageCache::new();
///
/// let key = PageKey::new(file, 3);
/// cache.insert(key, FrameId::new(100), PageState::InFlight { ready_at: SimTime::from_micros(80) })?;
/// cache.mark_resident(key)?;
/// assert_eq!(cache.get(key).unwrap().state, PageState::Resident);
/// assert_eq!(cache.resident_pages(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageCache {
    index: HashMap<PageKey, usize, FnvBuild>,
    /// Cached pages per file, maintained on insert/remove so
    /// placement probes never scan the whole index.
    per_file: HashMap<FileId, u64, FnvBuild>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    /// Most-recently-used node.
    head: usize,
    /// Least-recently-used node.
    tail: usize,
    resident: u64,
    in_flight: u64,
    /// Cumulative counters.
    hits: u64,
    misses: u64,
    evictions: u64,
    trace: Tracer,
}

impl PageCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PageCache {
            head: NIL,
            tail: NIL,
            ..PageCache::default()
        }
    }

    /// Number of cached pages (resident + in-flight).
    pub fn len(&self) -> u64 {
        self.resident + self.in_flight
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> u64 {
        self.resident
    }

    /// Number of in-flight pages.
    pub fn in_flight_pages(&self) -> u64 {
        self.in_flight
    }

    /// Cumulative lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Cumulative evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Attaches the structured trace handle hit/miss/insert/evict
    /// and dedup metrics report through.
    pub fn set_tracer(&mut self, trace: Tracer) {
        self.trace = trace;
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up a page, bumping it to most-recently-used on hit.
    /// Counts a hit or miss.
    pub fn lookup(&mut self, key: PageKey) -> Option<PageView> {
        match self.index.get(&key).copied() {
            Some(idx) => {
                self.detach(idx);
                self.push_front(idx);
                self.hits += 1;
                self.trace.incr("mem.cache.hits");
                let n = &self.nodes[idx];
                Some(PageView {
                    frame: n.frame,
                    state: n.state,
                    mapcount: n.mapcount,
                })
            }
            None => {
                self.misses += 1;
                self.trace.incr("mem.cache.misses");
                None
            }
        }
    }

    /// Peeks at a page without affecting LRU order or hit counters.
    pub fn get(&self, key: PageKey) -> Option<PageView> {
        self.index.get(&key).map(|&idx| {
            let n = &self.nodes[idx];
            PageView {
                frame: n.frame,
                state: n.state,
                mapcount: n.mapcount,
            }
        })
    }

    /// Inserts a page backed by `frame`.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::AlreadyCached`] if the key is present.
    pub fn insert(
        &mut self,
        key: PageKey,
        frame: FrameId,
        state: PageState,
    ) -> Result<(), CacheError> {
        if self.index.contains_key(&key) {
            return Err(CacheError::AlreadyCached(key));
        }
        let node = Node {
            key,
            frame,
            state,
            mapcount: 0,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.push_front(idx);
        self.index.insert(key, idx);
        *self.per_file.entry(key.file).or_insert(0) += 1;
        match state {
            PageState::Resident => self.resident += 1,
            PageState::InFlight { .. } => self.in_flight += 1,
        }
        self.trace.incr("mem.cache.inserts");
        Ok(())
    }

    /// Transitions an in-flight page to resident. Idempotent for
    /// already-resident pages.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::NotCached`] for an unknown key.
    pub fn mark_resident(&mut self, key: PageKey) -> Result<(), CacheError> {
        let idx = *self.index.get(&key).ok_or(CacheError::NotCached(key))?;
        if let PageState::InFlight { .. } = self.nodes[idx].state {
            self.nodes[idx].state = PageState::Resident;
            self.in_flight -= 1;
            self.resident += 1;
        }
        Ok(())
    }

    /// Increments the mapcount (a VM mapped the page).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::NotCached`] for an unknown key.
    pub fn map_page(&mut self, key: PageKey) -> Result<(), CacheError> {
        let idx = *self.index.get(&key).ok_or(CacheError::NotCached(key))?;
        if self.nodes[idx].mapcount > 0 {
            // Another sandbox already maps this frame: the shared
            // cache just deduplicated one page of memory (§3.1).
            self.trace.incr("mem.cache.dedup_hits");
            self.trace.add("mem.cache.dedup_bytes", PAGE_SIZE);
        }
        self.nodes[idx].mapcount += 1;
        Ok(())
    }

    /// Decrements the mapcount (a VM unmapped the page).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::NotCached`] for an unknown key and
    /// [`CacheError::NotMapped`] when the mapcount is zero.
    pub fn unmap_page(&mut self, key: PageKey) -> Result<(), CacheError> {
        let idx = *self.index.get(&key).ok_or(CacheError::NotCached(key))?;
        if self.nodes[idx].mapcount == 0 {
            return Err(CacheError::NotMapped(key));
        }
        self.nodes[idx].mapcount -= 1;
        Ok(())
    }

    /// Removes a page outright, returning its frame.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::NotCached`] for an unknown key.
    pub fn remove(&mut self, key: PageKey) -> Result<FrameId, CacheError> {
        let idx = self.index.remove(&key).ok_or(CacheError::NotCached(key))?;
        match self.per_file.get_mut(&key.file) {
            Some(n) if *n > 1 => *n -= 1,
            _ => {
                self.per_file.remove(&key.file);
            }
        }
        self.detach(idx);
        match self.nodes[idx].state {
            PageState::Resident => self.resident -= 1,
            PageState::InFlight { .. } => self.in_flight -= 1,
        }
        self.free.push(idx);
        Ok(self.nodes[idx].frame)
    }

    /// Evicts up to `want` least-recently-used pages that are
    /// resident and unmapped, returning the freed `(key, frame)`
    /// pairs (the caller returns the frames to the buddy allocator).
    pub fn evict_lru(&mut self, want: u64) -> Vec<(PageKey, FrameId)> {
        let mut victims = Vec::new();
        let mut cursor = self.tail;
        while victims.len() < want as usize && cursor != NIL {
            let idx = cursor;
            cursor = self.nodes[idx].prev;
            let n = &self.nodes[idx];
            if n.mapcount == 0 && n.state == PageState::Resident {
                victims.push(n.key);
            }
        }
        let evicted: Vec<(PageKey, FrameId)> = victims
            .into_iter()
            .map(|key| {
                let frame = self.remove(key).expect("victim vanished");
                self.evictions += 1;
                (key, frame)
            })
            .collect();
        if !evicted.is_empty() {
            self.trace.add("mem.cache.evictions", evicted.len() as u64);
            if self.trace.events_enabled() {
                self.trace.instant_now(
                    "mem",
                    "cache-evict",
                    TID_KERNEL,
                    vec![("asked", want.into()), ("evicted", evicted.len().into())],
                );
            }
        }
        evicted
    }

    /// Iterates over all cached keys of a file (unordered).
    pub fn pages_of_file(&self, file: FileId) -> impl Iterator<Item = PageKey> + '_ {
        self.index.keys().copied().filter(move |k| k.file == file)
    }

    /// Number of cached pages (resident + in-flight) belonging to
    /// `file`, in O(1).
    ///
    /// Placement policies probe this per arrival per host, so it is
    /// maintained incrementally rather than derived by scanning the
    /// index like [`PageCache::pages_of_file`].
    pub fn file_page_count(&self, file: FileId) -> u64 {
        self.per_file.get(&file).copied().unwrap_or(0)
    }

    /// Removes every entry whose mapcount is zero (regardless of
    /// state), returning the freed `(key, frame)` pairs — the
    /// `drop_caches` path used between experiment phases.
    pub fn drain_unmapped(&mut self) -> Vec<(PageKey, FrameId)> {
        let keys: Vec<PageKey> = self
            .index
            .iter()
            .filter(|(_, &idx)| self.nodes[idx].mapcount == 0)
            .map(|(&k, _)| k)
            .collect();
        keys.into_iter()
            .map(|k| (k, self.remove(k).expect("key vanished")))
            .collect()
    }

    /// Drops every page of `file`, returning the freed frames.
    pub fn drop_file(&mut self, file: FileId) -> Vec<FrameId> {
        let keys: Vec<PageKey> = self.pages_of_file(file).collect();
        keys.into_iter()
            .map(|k| self.remove(k).expect("key vanished"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(n: u32) -> FileId {
        // FileId construction is only possible through Disk; mint ids
        // by creating files on a scratch disk.
        let mut disk =
            snapbpf_storage::Disk::new(Box::new(snapbpf_storage::SsdModel::micron_5300()));
        let mut last = None;
        for i in 0..=n {
            last = Some(disk.create_file(&format!("f{i}"), 1).unwrap());
        }
        last.unwrap()
    }

    fn key(f: FileId, page: u64) -> PageKey {
        PageKey::new(f, page)
    }

    #[test]
    fn insert_lookup_remove() {
        let f = file(0);
        let mut c = PageCache::new();
        c.insert(key(f, 1), FrameId::new(10), PageState::Resident)
            .unwrap();
        assert_eq!(c.len(), 1);
        let v = c.lookup(key(f, 1)).unwrap();
        assert_eq!(v.frame, FrameId::new(10));
        assert_eq!(c.hits(), 1);
        assert!(c.lookup(key(f, 2)).is_none());
        assert_eq!(c.misses(), 1);
        assert_eq!(c.remove(key(f, 1)).unwrap(), FrameId::new(10));
        assert!(c.is_empty());
    }

    #[test]
    fn double_insert_rejected() {
        let f = file(0);
        let mut c = PageCache::new();
        c.insert(key(f, 1), FrameId::new(1), PageState::Resident)
            .unwrap();
        assert_eq!(
            c.insert(key(f, 1), FrameId::new(2), PageState::Resident),
            Err(CacheError::AlreadyCached(key(f, 1)))
        );
    }

    #[test]
    fn in_flight_transitions() {
        let f = file(0);
        let mut c = PageCache::new();
        let k = key(f, 0);
        c.insert(
            k,
            FrameId::new(5),
            PageState::InFlight {
                ready_at: SimTime::from_micros(10),
            },
        )
        .unwrap();
        assert_eq!(c.in_flight_pages(), 1);
        assert_eq!(c.resident_pages(), 0);
        assert_eq!(c.get(k).unwrap().available_at(), SimTime::from_micros(10));
        c.mark_resident(k).unwrap();
        assert_eq!(c.in_flight_pages(), 0);
        assert_eq!(c.resident_pages(), 1);
        // Idempotent.
        c.mark_resident(k).unwrap();
        assert_eq!(c.resident_pages(), 1);
    }

    #[test]
    fn lru_order_governs_eviction() {
        let f = file(0);
        let mut c = PageCache::new();
        for p in 0..4 {
            c.insert(key(f, p), FrameId::new(p), PageState::Resident)
                .unwrap();
        }
        // Touch page 0 so page 1 becomes the LRU.
        c.lookup(key(f, 0));
        let evicted = c.evict_lru(2);
        let keys: Vec<u64> = evicted.iter().map(|(k, _)| k.page).collect();
        assert_eq!(keys, vec![1, 2]);
        assert_eq!(c.evictions(), 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn mapped_pages_are_not_evicted() {
        let f = file(0);
        let mut c = PageCache::new();
        c.insert(key(f, 0), FrameId::new(0), PageState::Resident)
            .unwrap();
        c.insert(key(f, 1), FrameId::new(1), PageState::Resident)
            .unwrap();
        c.map_page(key(f, 0)).unwrap();
        let evicted = c.evict_lru(10);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0.page, 1);
        c.unmap_page(key(f, 0)).unwrap();
        assert_eq!(c.evict_lru(10).len(), 1);
    }

    #[test]
    fn in_flight_pages_are_not_evicted() {
        let f = file(0);
        let mut c = PageCache::new();
        c.insert(
            key(f, 0),
            FrameId::new(0),
            PageState::InFlight {
                ready_at: SimTime::ZERO,
            },
        )
        .unwrap();
        assert!(c.evict_lru(1).is_empty());
    }

    #[test]
    fn unmap_underflow_detected() {
        let f = file(0);
        let mut c = PageCache::new();
        c.insert(key(f, 0), FrameId::new(0), PageState::Resident)
            .unwrap();
        assert_eq!(
            c.unmap_page(key(f, 0)),
            Err(CacheError::NotMapped(key(f, 0)))
        );
    }

    #[test]
    fn missing_key_errors() {
        let f = file(0);
        let mut c = PageCache::new();
        let k = key(f, 9);
        assert_eq!(c.mark_resident(k), Err(CacheError::NotCached(k)));
        assert_eq!(c.map_page(k), Err(CacheError::NotCached(k)));
        assert_eq!(c.remove(k), Err(CacheError::NotCached(k)));
    }

    #[test]
    fn drop_file_only_touches_that_file() {
        let fa = file(0);
        let fb = file(1);
        assert_ne!(fa, fb);
        let mut c = PageCache::new();
        for p in 0..5 {
            c.insert(key(fa, p), FrameId::new(p), PageState::Resident)
                .unwrap();
            c.insert(key(fb, p), FrameId::new(100 + p), PageState::Resident)
                .unwrap();
        }
        let freed = c.drop_file(fa);
        assert_eq!(freed.len(), 5);
        assert_eq!(c.len(), 5);
        assert_eq!(c.pages_of_file(fb).count(), 5);
        assert_eq!(c.pages_of_file(fa).count(), 0);
    }

    #[test]
    fn per_file_counts_track_inserts_and_removals() {
        let fa = file(0);
        let fb = file(1);
        let mut c = PageCache::new();
        assert_eq!(c.file_page_count(fa), 0);
        for p in 0..7 {
            c.insert(key(fa, p), FrameId::new(p), PageState::Resident)
                .unwrap();
        }
        c.insert(key(fb, 0), FrameId::new(99), PageState::Resident)
            .unwrap();
        assert_eq!(c.file_page_count(fa), 7);
        assert_eq!(c.file_page_count(fb), 1);
        assert_eq!(c.file_page_count(fa), c.pages_of_file(fa).count() as u64);
        c.remove(key(fa, 3)).unwrap();
        assert_eq!(c.file_page_count(fa), 6);
        let evicted = c.evict_lru(100);
        assert_eq!(evicted.len(), 7);
        assert_eq!(c.file_page_count(fa), 0);
        assert_eq!(c.file_page_count(fb), 0);
    }

    #[test]
    fn slab_reuses_slots() {
        let f = file(0);
        let mut c = PageCache::new();
        for round in 0..3 {
            for p in 0..100 {
                c.insert(key(f, p), FrameId::new(p), PageState::Resident)
                    .unwrap();
            }
            assert_eq!(c.len(), 100, "round {round}");
            for p in 0..100 {
                c.remove(key(f, p)).unwrap();
            }
        }
        // Node storage must not have grown beyond one round's worth.
        assert!(c.nodes.len() <= 100);
    }

    #[test]
    fn error_display() {
        let f = file(0);
        assert!(CacheError::AlreadyCached(key(f, 1))
            .to_string()
            .contains("already"));
        assert!(CacheError::NotCached(key(f, 1))
            .to_string()
            .contains("not cached"));
    }

    #[test]
    fn cache_reports_trace_metrics() {
        let f = file(0);
        let mut c = PageCache::new();
        let tr = Tracer::recording();
        c.set_tracer(tr.clone());
        c.insert(key(f, 0), FrameId::new(1), PageState::Resident)
            .unwrap();
        assert!(c.lookup(key(f, 0)).is_some());
        assert!(c.lookup(key(f, 9)).is_none());
        // Two sandboxes map the same page: the second map is a dedup
        // hit; the first is not.
        c.map_page(key(f, 0)).unwrap();
        c.map_page(key(f, 0)).unwrap();
        c.unmap_page(key(f, 0)).unwrap();
        c.unmap_page(key(f, 0)).unwrap();
        assert_eq!(c.evict_lru(4).len(), 1);
        assert_eq!(tr.counter("mem.cache.hits"), 1);
        assert_eq!(tr.counter("mem.cache.misses"), 1);
        assert_eq!(tr.counter("mem.cache.inserts"), 1);
        assert_eq!(tr.counter("mem.cache.evictions"), 1);
        assert_eq!(tr.counter("mem.cache.dedup_hits"), 1);
        assert_eq!(tr.counter("mem.cache.dedup_bytes"), 4096);
        let events = tr.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "cache-evict");
    }
}
