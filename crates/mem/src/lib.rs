//! # snapbpf-mem — simulated host memory subsystem
//!
//! The memory substrate under the SnapBPF reproduction's host kernel:
//!
//! * [`BuddyAllocator`] — Linux-style buddy system handing out host
//!   frames; the ground truth for system-wide memory usage,
//! * [`PageCache`] — the shared OS page cache with LRU eviction and
//!   in-flight read tracking; where SnapBPF's cross-sandbox
//!   deduplication happens,
//! * [`AnonRegistry`] — per-owner anonymous memory; where
//!   userfaultfd-based approaches (REAP/Faast) put their private,
//!   non-shareable working sets,
//! * [`MemorySnapshot`] — the accounting split Figure 3c reports.
//!
//! ## Examples
//!
//! Two sandboxes mapping the same snapshot page share one frame via
//! the page cache:
//!
//! ```
//! use snapbpf_mem::{BuddyAllocator, PageCache, PageKey, PageState};
//! use snapbpf_storage::{Disk, SsdModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut disk = Disk::new(Box::new(SsdModel::micron_5300()));
//! let snapshot = disk.create_file("func.mem", 1024)?;
//! let mut buddy = BuddyAllocator::new(1 << 16);
//! let mut cache = PageCache::new();
//!
//! let key = PageKey::new(snapshot, 42);
//! let frame = buddy.alloc_pages(1)?;
//! cache.insert(key, frame, PageState::Resident)?;
//!
//! // Sandbox A and sandbox B both map the cached page:
//! cache.map_page(key)?;
//! cache.map_page(key)?;
//! assert_eq!(cache.get(key).unwrap().mapcount, 2);
//! assert_eq!(buddy.allocated_pages(), 1); // one frame, two mappings
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod account;
mod anon;
mod cache;
mod frame;

pub use account::MemorySnapshot;
pub use anon::{AnonRegistry, OwnerId};
pub use cache::{CacheError, PageCache, PageKey, PageState, PageView};
pub use frame::{AllocError, BuddyAllocator, FrameId, MAX_ORDER};
