//! Anonymous memory.
//!
//! Userfaultfd-based prefetchers (REAP, Faast) install working-set
//! pages into **anonymous** memory, which is private to each VM
//! sandbox — this is precisely why they cannot deduplicate across
//! sandboxes (paper §2.1, Figure 3c). SnapBPF's PV PTE marking also
//! uses anonymous memory, but only for the pages the guest freshly
//! allocates. This module tracks anonymous allocations per owner so
//! experiments can attribute memory to sandboxes.

use std::collections::HashMap;
use std::fmt;

use crate::frame::{AllocError, BuddyAllocator, FrameId};

/// Identifies an owner of anonymous memory (in practice: a microVM
/// sandbox / VMM process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OwnerId(u32);

impl OwnerId {
    /// Creates an owner id.
    pub const fn new(id: u32) -> Self {
        OwnerId(id)
    }

    /// The raw id.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for OwnerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "owner#{}", self.0)
    }
}

/// Per-owner anonymous memory registry.
///
/// # Examples
///
/// ```
/// use snapbpf_mem::{AnonRegistry, BuddyAllocator, OwnerId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut buddy = BuddyAllocator::new(4096);
/// let mut anon = AnonRegistry::new();
/// let vm = OwnerId::new(0);
///
/// anon.alloc_page(vm, &mut buddy)?;
/// anon.alloc_page(vm, &mut buddy)?;
/// assert_eq!(anon.pages(vm), 2);
/// assert_eq!(buddy.allocated_pages(), 2);
///
/// let freed = anon.release_owner(vm, &mut buddy)?;
/// assert_eq!(freed, 2);
/// assert_eq!(buddy.allocated_pages(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct AnonRegistry {
    frames: HashMap<OwnerId, Vec<FrameId>>,
    total: u64,
    peak_total: u64,
}

impl AnonRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        AnonRegistry::default()
    }

    /// Allocates one anonymous page for `owner` from `buddy`.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocError::OutOfMemory`] from the allocator.
    pub fn alloc_page(
        &mut self,
        owner: OwnerId,
        buddy: &mut BuddyAllocator,
    ) -> Result<FrameId, AllocError> {
        let frame = buddy.alloc_pages(1)?;
        self.frames.entry(owner).or_default().push(frame);
        self.total += 1;
        self.peak_total = self.peak_total.max(self.total);
        Ok(frame)
    }

    /// Number of anonymous pages currently held by `owner`.
    pub fn pages(&self, owner: OwnerId) -> u64 {
        self.frames.get(&owner).map_or(0, |v| v.len() as u64)
    }

    /// Anonymous pages across all owners.
    pub fn total_pages(&self) -> u64 {
        self.total
    }

    /// High-water mark of total anonymous pages.
    pub fn peak_total_pages(&self) -> u64 {
        self.peak_total
    }

    /// Owners that currently hold pages, in id order.
    pub fn owners(&self) -> Vec<OwnerId> {
        let mut v: Vec<OwnerId> = self
            .frames
            .iter()
            .filter(|(_, f)| !f.is_empty())
            .map(|(&o, _)| o)
            .collect();
        v.sort_unstable();
        v
    }

    /// Frees every page held by `owner`, returning how many were
    /// freed.
    ///
    /// # Errors
    ///
    /// Propagates allocator errors (which would indicate registry
    /// corruption).
    pub fn release_owner(
        &mut self,
        owner: OwnerId,
        buddy: &mut BuddyAllocator,
    ) -> Result<u64, AllocError> {
        let frames = self.frames.remove(&owner).unwrap_or_default();
        let n = frames.len() as u64;
        for f in frames {
            buddy.dealloc_pages(f, 1)?;
        }
        self.total -= n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_per_owner() {
        let mut buddy = BuddyAllocator::new(4096);
        let mut anon = AnonRegistry::new();
        let a = OwnerId::new(1);
        let b = OwnerId::new(2);
        for _ in 0..3 {
            anon.alloc_page(a, &mut buddy).unwrap();
        }
        anon.alloc_page(b, &mut buddy).unwrap();
        assert_eq!(anon.pages(a), 3);
        assert_eq!(anon.pages(b), 1);
        assert_eq!(anon.pages(OwnerId::new(3)), 0);
        assert_eq!(anon.total_pages(), 4);
        assert_eq!(anon.owners(), vec![a, b]);
    }

    #[test]
    fn release_returns_frames_to_buddy() {
        let mut buddy = BuddyAllocator::new(4096);
        let mut anon = AnonRegistry::new();
        let a = OwnerId::new(1);
        for _ in 0..10 {
            anon.alloc_page(a, &mut buddy).unwrap();
        }
        assert_eq!(buddy.allocated_pages(), 10);
        assert_eq!(anon.release_owner(a, &mut buddy).unwrap(), 10);
        assert_eq!(buddy.allocated_pages(), 0);
        assert_eq!(anon.total_pages(), 0);
        // Releasing again is a no-op.
        assert_eq!(anon.release_owner(a, &mut buddy).unwrap(), 0);
    }

    #[test]
    fn peak_survives_release() {
        let mut buddy = BuddyAllocator::new(4096);
        let mut anon = AnonRegistry::new();
        let a = OwnerId::new(0);
        for _ in 0..5 {
            anon.alloc_page(a, &mut buddy).unwrap();
        }
        anon.release_owner(a, &mut buddy).unwrap();
        assert_eq!(anon.peak_total_pages(), 5);
        assert_eq!(anon.total_pages(), 0);
    }

    #[test]
    fn oom_propagates() {
        let mut buddy = BuddyAllocator::new(1024);
        let mut anon = AnonRegistry::new();
        let a = OwnerId::new(0);
        for _ in 0..1024 {
            anon.alloc_page(a, &mut buddy).unwrap();
        }
        assert!(anon.alloc_page(a, &mut buddy).is_err());
        assert_eq!(anon.total_pages(), 1024);
    }

    #[test]
    fn owner_display() {
        assert_eq!(OwnerId::new(4).to_string(), "owner#4");
    }
}
