//! Property-based tests for the memory substrate: buddy-allocator
//! and page-cache invariants under arbitrary operation sequences.

use proptest::prelude::*;
use snapbpf_mem::{BuddyAllocator, FrameId, PageCache, PageKey, PageState};
use snapbpf_storage::{Disk, SsdModel};

/// Random interleavings of allocations and frees keep the buddy
/// allocator's books balanced and its blocks disjoint.
#[derive(Debug, Clone)]
enum BuddyOp {
    Alloc(u64),
    FreeIdx(usize),
}

fn buddy_ops() -> impl Strategy<Value = Vec<BuddyOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..64).prop_map(BuddyOp::Alloc),
            (0usize..128).prop_map(BuddyOp::FreeIdx),
        ],
        1..200,
    )
}

proptest! {
    #[test]
    fn buddy_invariants(ops in buddy_ops()) {
        let total = 4096u64;
        let mut buddy = BuddyAllocator::new(total);
        let mut live: Vec<(FrameId, u64)> = Vec::new();

        for op in ops {
            match op {
                BuddyOp::Alloc(pages) => {
                    if let Ok(frame) = buddy.alloc_pages(pages) {
                        let size = pages.next_power_of_two();
                        // No overlap with any live block.
                        for &(base, len) in &live {
                            let disjoint = frame.as_u64() + size <= base.as_u64()
                                || base.as_u64() + len <= frame.as_u64();
                            prop_assert!(disjoint);
                        }
                        live.push((frame, size));
                    }
                }
                BuddyOp::FreeIdx(i) => {
                    if !live.is_empty() {
                        let (frame, size) = live.swap_remove(i % live.len());
                        buddy.dealloc_pages(frame, size).unwrap();
                    }
                }
            }
            let live_pages: u64 = live.iter().map(|&(_, s)| s).sum();
            prop_assert_eq!(buddy.allocated_pages(), live_pages);
            prop_assert_eq!(buddy.free_pages(), total - live_pages);
        }

        // Free everything: the allocator must coalesce back to empty.
        for (frame, size) in live.drain(..) {
            buddy.dealloc_pages(frame, size).unwrap();
        }
        prop_assert_eq!(buddy.allocated_pages(), 0);
        // And a max-order allocation must succeed again.
        prop_assert!(buddy.alloc_pages(1 << snapbpf_mem::MAX_ORDER).is_ok());
    }
}

#[derive(Debug, Clone)]
enum CacheOp {
    Insert(u64),
    Lookup(u64),
    Map(u64),
    Unmap(u64),
    Remove(u64),
    Evict(u64),
}

fn cache_ops() -> impl Strategy<Value = Vec<CacheOp>> {
    let page = 0u64..64;
    prop::collection::vec(
        prop_oneof![
            page.clone().prop_map(CacheOp::Insert),
            page.clone().prop_map(CacheOp::Lookup),
            page.clone().prop_map(CacheOp::Map),
            page.clone().prop_map(CacheOp::Unmap),
            page.clone().prop_map(CacheOp::Remove),
            (1u64..8).prop_map(CacheOp::Evict),
        ],
        1..300,
    )
}

proptest! {
    #[test]
    fn page_cache_invariants(ops in cache_ops()) {
        let mut disk = Disk::new(Box::new(SsdModel::micron_5300()));
        let file = disk.create_file("f", 64).unwrap();
        let mut cache = PageCache::new();
        let mut model: std::collections::HashMap<u64, u32> = Default::default();
        let mut next_frame = 0u64;

        for op in ops {
            let key = |p: u64| PageKey::new(file, p);
            match op {
                CacheOp::Insert(p) => {
                    let r = cache.insert(key(p), FrameId::new(next_frame), PageState::Resident);
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(p) {
                        prop_assert!(r.is_ok());
                        e.insert(0);
                        next_frame += 1;
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                CacheOp::Lookup(p) => {
                    prop_assert_eq!(cache.lookup(key(p)).is_some(), model.contains_key(&p));
                }
                CacheOp::Map(p) => {
                    let r = cache.map_page(key(p));
                    match model.get_mut(&p) {
                        Some(mc) => { prop_assert!(r.is_ok()); *mc += 1; }
                        None => prop_assert!(r.is_err()),
                    }
                }
                CacheOp::Unmap(p) => {
                    let r = cache.unmap_page(key(p));
                    match model.get_mut(&p) {
                        Some(mc) if *mc > 0 => { prop_assert!(r.is_ok()); *mc -= 1; }
                        _ => prop_assert!(r.is_err()),
                    }
                }
                CacheOp::Remove(p) => {
                    let r = cache.remove(key(p));
                    prop_assert_eq!(r.is_ok(), model.remove(&p).is_some());
                }
                CacheOp::Evict(n) => {
                    let evicted = cache.evict_lru(n);
                    prop_assert!(evicted.len() as u64 <= n);
                    for (k, _) in evicted {
                        // Only unmapped pages may be evicted.
                        let mc = model.remove(&k.page);
                        prop_assert_eq!(mc, Some(0));
                    }
                }
            }
            prop_assert_eq!(cache.len(), model.len() as u64);
        }
    }

    /// `drain_unmapped` removes exactly the unmapped entries.
    #[test]
    fn drain_unmapped_is_exact(mapped in prop::collection::btree_set(0u64..64, 0..32),
                               all in prop::collection::btree_set(0u64..64, 1..64)) {
        let mut disk = Disk::new(Box::new(SsdModel::micron_5300()));
        let file = disk.create_file("f", 64).unwrap();
        let mut cache = PageCache::new();
        for &p in &all {
            cache.insert(PageKey::new(file, p), FrameId::new(p), PageState::Resident).unwrap();
            if mapped.contains(&p) {
                cache.map_page(PageKey::new(file, p)).unwrap();
            }
        }
        let drained = cache.drain_unmapped();
        let expected: Vec<u64> = all.iter().copied().filter(|p| !mapped.contains(p)).collect();
        let mut got: Vec<u64> = drained.iter().map(|(k, _)| k.page).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(cache.len() as usize, all.intersection(&mapped).count());
    }
}
