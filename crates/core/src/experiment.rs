//! The experiment runner.
//!
//! Reproduces the paper's methodology (§4): create the function
//! snapshot, run the strategy's record phase, drop the page cache
//! (so the invocation phase starts cache-cold), restore `n`
//! sandboxes, and replay one invocation per sandbox concurrently.
//! Latency, memory, and I/O are measured exactly where the paper
//! measures them.

use snapbpf_kernel::{HostKernel, KernelConfig, VmMemStats};
use snapbpf_mem::{MemorySnapshot, OwnerId};
use snapbpf_sim::{SimDuration, SimTime, Tracer};
use snapbpf_storage::{BlockDevice, Disk, HddModel, IoTracer, SsdModel};
use snapbpf_vmm::{run_concurrent, MicroVm, Snapshot, UffdResolver};
use snapbpf_workloads::Workload;

use crate::restore::StageTimings;
use crate::strategy::{FunctionCtx, RestoredVm, Strategy, StrategyError, StrategyKind};

/// The storage device an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeviceKind {
    /// The paper's testbed: Micron 5300 SATA SSD.
    #[default]
    Sata5300,
    /// A modern NVMe drive (sensitivity analysis).
    Nvme,
    /// A 7200 RPM spindle disk (ablation A2: where the "SSDs relax
    /// sequential-I/O needs" insight stops holding).
    Hdd7200,
}

impl DeviceKind {
    /// Builds the device model.
    pub fn build(&self) -> Box<dyn BlockDevice> {
        match self {
            DeviceKind::Sata5300 => Box::new(SsdModel::micron_5300()),
            DeviceKind::Nvme => Box::new(SsdModel::nvme()),
            DeviceKind::Hdd7200 => Box::new(HddModel::sata_7200rpm()),
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            DeviceKind::Sata5300 => "sata-ssd",
            DeviceKind::Nvme => "nvme",
            DeviceKind::Hdd7200 => "hdd",
        }
    }

    /// Every modeled device, in sweep order.
    pub const ALL: [DeviceKind; 3] = [DeviceKind::Sata5300, DeviceKind::Nvme, DeviceKind::Hdd7200];

    /// Parses a [`DeviceKind::label`] string (CLI `--device` values).
    pub fn parse(s: &str) -> Option<DeviceKind> {
        DeviceKind::ALL.into_iter().find(|d| d.label() == s)
    }
}

/// Configuration of one experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Storage device.
    pub device: DeviceKind,
    /// Workload size scale in `(0, 1]` (1.0 = paper-sized functions;
    /// tests use small scales).
    pub scale: f64,
    /// Number of concurrent sandboxes.
    pub instances: usize,
    /// When `true`, each sandbox is invoked with a *different input*
    /// (trace variant = sandbox index) while recording still used
    /// the canonical input — the paper's deferred future-work
    /// question on how input variation affects deduplication.
    pub vary_inputs: bool,
    /// Optional host-memory cap in pages (`None` = the default
    /// 32 GiB). Used by the memory-pressure extension.
    pub memory_pages: Option<u64>,
}

impl RunConfig {
    /// A single-instance run (Figure 3a / Figure 4 shape).
    pub fn single(scale: f64) -> Self {
        RunConfig {
            device: DeviceKind::Sata5300,
            scale,
            instances: 1,
            vary_inputs: false,
            memory_pages: None,
        }
    }

    /// A concurrent run (Figures 3b / 3c use 10 instances).
    pub fn concurrent(scale: f64, instances: usize) -> Self {
        RunConfig {
            instances,
            ..RunConfig::single(scale)
        }
    }

    /// Same configuration on a different device.
    #[must_use]
    pub fn on(mut self, device: DeviceKind) -> Self {
        self.device = device;
        self
    }

    /// Same configuration with per-sandbox input variants.
    #[must_use]
    pub fn with_varying_inputs(mut self) -> Self {
        self.vary_inputs = true;
        self
    }

    /// Same configuration with a host-memory cap, in pages.
    #[must_use]
    pub fn with_memory_pages(mut self, pages: u64) -> Self {
        self.memory_pages = Some(pages);
        self
    }
}

/// Everything measured in one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Function name.
    pub function: &'static str,
    /// Strategy label.
    pub strategy: &'static str,
    /// Number of concurrent sandboxes.
    pub instances: usize,
    /// Per-sandbox end-to-end invocation latency.
    pub e2e: Vec<SimDuration>,
    /// System-wide memory at the end of the invocations (before
    /// teardown) — what Figure 3c reports.
    pub memory: MemorySnapshot,
    /// Bytes read from storage during the invocation phase.
    pub invoke_read_bytes: u64,
    /// Read requests issued during the invocation phase.
    pub invoke_read_requests: u64,
    /// Offsets-map load cost (SnapBPF only; §4 overheads).
    pub offset_load_cost: SimDuration,
    /// Per-stage restore durations, element-wise maxima over the
    /// restored instances (the §4 cold-start breakdown's tail
    /// profile).
    pub restore_stages: StageTimings,
    /// Fault statistics summed over all sandboxes.
    pub stats: VmMemStats,
    /// Pages of on-disk artifacts the record phase produced (working
    /// set files and metadata).
    pub artifact_pages: u64,
    /// Duration of the record/prepare phase (recording invocation
    /// plus any snapshot scanning and artifact serialization) — what
    /// Table 1's "no preemptive scanning" column costs in time.
    pub record_duration: SimDuration,
    /// CPU time spent in kprobe dispatch + eBPF program execution
    /// across the whole run (record + invoke) — part of the paper's
    /// deferred "comprehensive overhead analysis".
    pub ebpf_cpu: SimDuration,
    /// Page-cache-insertion hook firings across the whole run.
    pub hook_fires: u64,
}

impl RunResult {
    /// Mean end-to-end latency across sandboxes.
    pub fn e2e_mean(&self) -> SimDuration {
        if self.e2e.is_empty() {
            return SimDuration::ZERO;
        }
        self.e2e.iter().copied().sum::<SimDuration>() / self.e2e.len() as u64
    }

    /// Maximum (tail) end-to-end latency.
    pub fn e2e_max(&self) -> SimDuration {
        self.e2e.iter().copied().max().unwrap_or(SimDuration::ZERO)
    }
}

fn sum_stats(results: &[snapbpf_vmm::InvocationResult]) -> VmMemStats {
    let mut total = VmMemStats::default();
    for r in results {
        total.hits += r.stats.hits;
        total.minor_faults += r.stats.minor_faults;
        total.major_faults += r.stats.major_faults;
        total.pv_anon_faults += r.stats.pv_anon_faults;
        total.cow_breaks += r.stats.cow_breaks;
        total.uffd_faults += r.stats.uffd_faults;
        total.filtered_anon_faults += r.stats.filtered_anon_faults;
    }
    total
}

/// Runs one experiment: `kind` on `workload` under `cfg`.
///
/// # Errors
///
/// Strategy and kernel errors propagate.
pub fn run_one(
    kind: StrategyKind,
    workload: &Workload,
    cfg: &RunConfig,
) -> Result<RunResult, StrategyError> {
    run_one_with(kind.build().as_mut(), kind.label(), workload, cfg)
}

/// Like [`run_one`] but with a caller-configured strategy instance
/// (used by the ablations, e.g. FaaSnap with a custom coalescing gap
/// or SnapBPF with grouping/sorting disabled).
///
/// # Errors
///
/// Strategy and kernel errors propagate.
pub fn run_one_with(
    strategy: &mut dyn Strategy,
    label: &'static str,
    workload: &Workload,
    cfg: &RunConfig,
) -> Result<RunResult, StrategyError> {
    run_one_inner(strategy, label, workload, cfg, &Tracer::disabled())
}

/// Like [`run_one`] but with a structured tracer installed on the
/// host for the invocation phase (after the cache drop, at the same
/// point the I/O tracer resets), so traces and metrics cover exactly
/// what the run measures.
///
/// # Errors
///
/// Strategy and kernel errors propagate.
pub fn run_one_traced(
    kind: StrategyKind,
    workload: &Workload,
    cfg: &RunConfig,
    tracer: &Tracer,
) -> Result<RunResult, StrategyError> {
    run_one_inner(kind.build().as_mut(), kind.label(), workload, cfg, tracer)
}

fn run_one_inner(
    strategy: &mut dyn Strategy,
    label: &'static str,
    workload: &Workload,
    cfg: &RunConfig,
    tracer: &Tracer,
) -> Result<RunResult, StrategyError> {
    let mut kernel_config = KernelConfig::default();
    if let Some(pages) = cfg.memory_pages {
        kernel_config.total_memory_pages = pages;
    }
    let mut host = HostKernel::new(Disk::new(cfg.device.build()), kernel_config);
    let workload = workload.scaled(cfg.scale);

    // Phase 0: snapshot creation (shared by all approaches).
    let (snapshot, t_snap) = Snapshot::create(
        SimTime::ZERO,
        workload.name(),
        workload.snapshot_pages(),
        &mut host,
    )?;
    let func = FunctionCtx { workload, snapshot };

    // Phase 1: record.
    let t_rec = strategy.record(t_snap, &mut host, &func)?;
    let record_duration = t_rec.saturating_since(t_snap);

    // Cache-cold invocation phase, with a fresh I/O tracer so the
    // measurements cover only the invocation.
    host.drop_all_caches()?;
    let artifact_pages = artifact_pages_of(&host, func.workload.name());
    host.disk_mut().set_tracer(IoTracer::summary_only());
    host.install_tracer(tracer);

    // Phase 2: restore `instances` sandboxes at the same instant.
    let mut restored: Vec<RestoredVm> = (0..cfg.instances)
        .map(|i| strategy.restore(t_rec, &mut host, &func, OwnerId::new(i as u32)))
        .collect::<Result<_, _>>()?;
    let offset_load_cost = restored
        .iter()
        .map(|r| r.offset_load_cost)
        .max()
        .unwrap_or(SimDuration::ZERO);
    let mut restore_stages = StageTimings::default();
    for r in &restored {
        restore_stages.merge_max(&r.stages);
    }

    // Phase 3: concurrent invocations — identical inputs by
    // default (the paper's methodology), or one input variant per
    // sandbox when configured.
    let owned_traces: Vec<snapbpf_workloads::InvocationTrace> = if cfg.vary_inputs {
        (0..cfg.instances)
            .map(|i| func.workload.trace_variant(i as u32))
            .collect()
    } else {
        vec![func.workload.trace()]
    };
    let starts: Vec<SimTime> = restored.iter().map(|r| r.ready_at).collect();
    let (mut vms, mut resolvers): (Vec<&mut MicroVm>, Vec<&mut dyn UffdResolver>) = restored
        .iter_mut()
        .map(|r| (&mut r.vm, r.resolver.as_mut() as &mut dyn UffdResolver))
        .unzip();
    let traces: Vec<&snapbpf_workloads::InvocationTrace> = (0..cfg.instances)
        .map(|i| &owned_traces[if cfg.vary_inputs { i } else { 0 }])
        .collect();
    let results = run_concurrent(&starts, &mut vms, &traces, &mut host, &mut resolvers)?;

    // Phase 4: measure, then tear down.
    let memory = host.memory_snapshot();
    let invoke_read_bytes = host.disk().tracer().read_bytes();
    let invoke_read_requests = host.disk().tracer().read_requests();
    let stats = sum_stats(&results);
    for r in &mut restored {
        r.vm.kvm_mut().teardown(&mut host)?;
    }
    debug_assert_eq!(host.accounting_discrepancy(), 0);

    Ok(RunResult {
        function: func.workload.name(),
        strategy: label,
        instances: cfg.instances,
        e2e: results.iter().map(|r| r.e2e_latency).collect(),
        memory,
        invoke_read_bytes,
        invoke_read_requests,
        offset_load_cost,
        restore_stages,
        stats,
        artifact_pages,
        record_duration,
        ebpf_cpu: host.ebpf_cpu(),
        hook_fires: host.counters().get("hook_fires"),
    })
}

/// Result of a co-located run: one sandbox per function on a shared
/// host.
#[derive(Debug, Clone, PartialEq)]
pub struct ColocatedResult {
    /// Strategy label.
    pub strategy: &'static str,
    /// Per-function latency from the *common* restore-request
    /// instant to invocation completion (so queueing behind other
    /// tenants' restores is visible), in input order.
    pub e2e: Vec<(&'static str, SimDuration)>,
    /// System-wide memory at the end of the invocations.
    pub memory: MemorySnapshot,
    /// Bytes read from storage during the invocation phase.
    pub invoke_read_bytes: u64,
}

/// Runs one sandbox of *each* workload concurrently on a shared host
/// — the multi-tenant co-location scenario a FaaS node actually
/// sees. Each function gets its own snapshot and its own strategy
/// instance (record + restore); all sandboxes start at the same
/// instant and contend for the one disk and page cache.
///
/// # Errors
///
/// Strategy and kernel errors propagate.
pub fn run_colocated(
    kind: StrategyKind,
    workloads: &[Workload],
    cfg: &RunConfig,
) -> Result<ColocatedResult, StrategyError> {
    let mut kernel_config = KernelConfig::default();
    if let Some(pages) = cfg.memory_pages {
        kernel_config.total_memory_pages = pages;
    }
    let mut host = HostKernel::new(Disk::new(cfg.device.build()), kernel_config);

    // Snapshots + record phases, sequentially in virtual time.
    let mut t = SimTime::ZERO;
    let mut funcs = Vec::with_capacity(workloads.len());
    let mut strategies = Vec::with_capacity(workloads.len());
    for w in workloads {
        let w = w.scaled(cfg.scale);
        let (snapshot, t_snap) = Snapshot::create(t, w.name(), w.snapshot_pages(), &mut host)?;
        let func = FunctionCtx {
            workload: w,
            snapshot,
        };
        let mut strategy = kind.build();
        t = strategy.record(t_snap, &mut host, &func)?;
        funcs.push(func);
        strategies.push(strategy);
    }

    host.drop_all_caches()?;
    host.disk_mut().set_tracer(IoTracer::summary_only());

    // Restore one sandbox per function at the same instant.
    let mut restored: Vec<RestoredVm> = funcs
        .iter()
        .zip(&mut strategies)
        .enumerate()
        .map(|(i, (func, strategy))| strategy.restore(t, &mut host, func, OwnerId::new(i as u32)))
        .collect::<Result<_, _>>()?;

    let owned_traces: Vec<snapbpf_workloads::InvocationTrace> =
        funcs.iter().map(|f| f.workload.trace()).collect();
    let starts: Vec<SimTime> = restored.iter().map(|r| r.ready_at).collect();
    let (mut vms, mut resolvers): (Vec<&mut MicroVm>, Vec<&mut dyn UffdResolver>) = restored
        .iter_mut()
        .map(|r| (&mut r.vm, r.resolver.as_mut() as &mut dyn UffdResolver))
        .unzip();
    let traces: Vec<&snapbpf_workloads::InvocationTrace> = owned_traces.iter().collect();
    let results = run_concurrent(&starts, &mut vms, &traces, &mut host, &mut resolvers)?;

    let memory = host.memory_snapshot();
    let invoke_read_bytes = host.disk().tracer().read_bytes();
    for r in &mut restored {
        r.vm.kvm_mut().teardown(&mut host)?;
    }
    debug_assert_eq!(host.accounting_discrepancy(), 0);

    Ok(ColocatedResult {
        strategy: kind.label(),
        e2e: funcs
            .iter()
            .zip(&results)
            .map(|(f, r)| (f.workload.name(), r.end_time.saturating_since(t)))
            .collect(),
        memory,
        invoke_read_bytes,
    })
}

/// Total pages of `<function>.*` artifact files (everything but the
/// snapshot itself).
fn artifact_pages_of(host: &HostKernel, function: &str) -> u64 {
    let suffixes = [
        ".reap.ws",
        ".reap.meta",
        ".faast.ws",
        ".faasnap.ws",
        ".snapbpf.offsets",
    ];
    suffixes
        .iter()
        .filter_map(|s| host.disk().file_by_name(&format!("{function}{s}")))
        .map(|f| host.disk().file_pages(f).unwrap_or(0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: f64 = 0.05;

    #[test]
    fn single_instance_shapes_fig3a() {
        // Figure 3a's qualitative claims. On an allocation-heavy
        // function, REAP wastes I/O fetching + installing dead
        // ephemeral pages, so SnapBPF clearly outperforms it ("in
        // some cases outperforms", §4); it also stays at least
        // comparable to FaaSnap.
        let w = Workload::by_name("image").unwrap();
        let cfg = RunConfig::single(SCALE);
        let reap = run_one(StrategyKind::Reap, &w, &cfg).unwrap();
        let faasnap = run_one(StrategyKind::Faasnap, &w, &cfg).unwrap();
        let snapbpf = run_one(StrategyKind::SnapBpf, &w, &cfg).unwrap();
        assert!(
            snapbpf.e2e_mean().mul_f64(1.2) < reap.e2e_mean(),
            "SnapBPF {} vs REAP {}",
            snapbpf.e2e_mean(),
            reap.e2e_mean()
        );
        assert!(
            snapbpf.e2e_mean() < faasnap.e2e_mean().mul_f64(1.3),
            "SnapBPF {} should be comparable to FaaSnap {}",
            snapbpf.e2e_mean(),
            faasnap.e2e_mean()
        );
        // And SnapBPF wrote no working-set pages to disk.
        assert!(snapbpf.artifact_pages < reap.artifact_pages / 10);

        // On a read-mostly model-serving function both approaches
        // are storage-bound and converge ("comparable latency to
        // state-of-the-art", §1): SnapBPF within ~15% of REAP.
        let big = Workload::by_name("bert").unwrap();
        let reap_b = run_one(StrategyKind::Reap, &big, &cfg).unwrap();
        let snap_b = run_one(StrategyKind::SnapBpf, &big, &cfg).unwrap();
        assert!(
            snap_b.e2e_mean() < reap_b.e2e_mean().mul_f64(1.15),
            "SnapBPF {} should stay comparable to REAP {} on bert",
            snap_b.e2e_mean(),
            reap_b.e2e_mean()
        );
    }

    #[test]
    fn concurrent_dedup_shapes_fig3c() {
        // Figure 3c's claim on a large-WS function: SnapBPF's memory
        // is far below REAP's at 10x concurrency (scaled here: 4x).
        let w = Workload::by_name("bfs").unwrap();
        let cfg = RunConfig::concurrent(SCALE, 4);
        let reap = run_one(StrategyKind::Reap, &w, &cfg).unwrap();
        let snapbpf = run_one(StrategyKind::SnapBpf, &w, &cfg).unwrap();
        let ratio = reap.memory.total_bytes() as f64 / snapbpf.memory.total_bytes() as f64;
        assert!(
            ratio > 2.0,
            "REAP {} vs SnapBPF {} (ratio {ratio:.2})",
            reap.memory,
            snapbpf.memory
        );
        // SnapBPF's memory is mostly shared page cache.
        assert!(snapbpf.memory.shared_fraction() > 0.5);
        // REAP's is all anonymous.
        assert_eq!(reap.memory.page_cache_pages, 0);
    }

    #[test]
    fn concurrent_latency_shapes_fig3b() {
        let w = Workload::by_name("bert").unwrap();
        let cfg = RunConfig::concurrent(SCALE, 4);
        let reap = run_one(StrategyKind::Reap, &w, &cfg).unwrap();
        let snapbpf = run_one(StrategyKind::SnapBpf, &w, &cfg).unwrap();
        let nora = run_one(StrategyKind::LinuxNoRa, &w, &cfg).unwrap();
        assert!(snapbpf.e2e_mean() < reap.e2e_mean());
        assert!(snapbpf.e2e_mean() < nora.e2e_mean());
        // Reads scale with instance count for REAP but not SnapBPF.
        assert!(reap.invoke_read_bytes > 2 * snapbpf.invoke_read_bytes);
    }

    #[test]
    fn pv_pte_breakdown_shapes_fig4() {
        // image (allocation-heavy) gains a lot from PV PTEs alone;
        // rnn (model-heavy) gains mostly from prefetching.
        let cfg = RunConfig::single(SCALE);
        let image_ra = run_one(
            StrategyKind::LinuxRa,
            &Workload::by_name("image").unwrap(),
            &cfg,
        )
        .unwrap();
        let image_pv = run_one(
            StrategyKind::SnapBpfPvOnly,
            &Workload::by_name("image").unwrap(),
            &cfg,
        )
        .unwrap();
        let image_full = run_one(
            StrategyKind::SnapBpf,
            &Workload::by_name("image").unwrap(),
            &cfg,
        )
        .unwrap();
        assert!(
            (image_pv.e2e_mean().as_nanos() as f64) < 0.8 * image_ra.e2e_mean().as_nanos() as f64,
            "PV alone should speed up image noticeably: {} vs {}",
            image_pv.e2e_mean(),
            image_ra.e2e_mean()
        );
        assert!(image_full.e2e_mean() <= image_pv.e2e_mean());

        let rnn_ra = run_one(
            StrategyKind::LinuxRa,
            &Workload::by_name("rnn").unwrap(),
            &cfg,
        )
        .unwrap();
        let rnn_pv = run_one(
            StrategyKind::SnapBpfPvOnly,
            &Workload::by_name("rnn").unwrap(),
            &cfg,
        )
        .unwrap();
        let rnn_ratio = rnn_pv.e2e_mean().ratio(rnn_ra.e2e_mean());
        assert!(
            rnn_ratio > 0.85,
            "PV alone should barely help rnn (got {rnn_ratio:.2})"
        );
    }

    #[test]
    fn traced_runs_match_untraced_and_reconcile_stages() {
        let w = Workload::by_name("json").unwrap();
        let cfg = RunConfig::single(SCALE);
        let plain = run_one(StrategyKind::SnapBpf, &w, &cfg).unwrap();

        // A metrics-only (noop-sink) tracer must not perturb results.
        let noop = Tracer::noop();
        let with_noop = run_one_traced(StrategyKind::SnapBpf, &w, &cfg, &noop).unwrap();
        assert_eq!(plain, with_noop);
        assert!(noop.counter("mem.cache.misses") > 0);

        // Neither must a full recording tracer.
        let rec = Tracer::recording();
        let traced = run_one_traced(StrategyKind::SnapBpf, &w, &cfg, &rec).unwrap();
        assert_eq!(plain, traced);

        // Restore-stage spans reconcile exactly with the reported
        // per-stage breakdown (single instance: merge_max is the
        // identity).
        let events = rec.take_events();
        assert!(!events.is_empty());
        for stage in crate::restore::RestoreStage::ALL {
            let total: u64 = events
                .iter()
                .filter(|e| e.cat == "restore" && e.name == stage.label())
                .filter_map(|e| e.dur)
                .map(|d| d.as_nanos())
                .sum();
            assert_eq!(
                total,
                traced.restore_stages.get(stage).as_nanos(),
                "stage {stage} span total disagrees with stage_breakdown"
            );
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let w = Workload::by_name("pyaes").unwrap();
        let cfg = RunConfig::single(SCALE);
        let a = run_one(StrategyKind::SnapBpf, &w, &cfg).unwrap();
        let b = run_one(StrategyKind::SnapBpf, &w, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn all_strategies_run_every_small_workload() {
        let cfg = RunConfig::single(0.02);
        for kind in [
            StrategyKind::LinuxNoRa,
            StrategyKind::LinuxRa,
            StrategyKind::Reap,
            StrategyKind::Faast,
            StrategyKind::Faasnap,
            StrategyKind::SnapBpf,
            StrategyKind::SnapBpfPvOnly,
            StrategyKind::SnapBpfEbpfOnly,
            StrategyKind::SnapBpfBuggyCow,
        ] {
            let w = Workload::by_name("html").unwrap();
            let r = run_one(kind, &w, &cfg).unwrap();
            assert!(!r.e2e.is_empty(), "{kind}");
            assert!(r.e2e_mean() > SimDuration::ZERO, "{kind}");
        }
    }

    #[test]
    fn buggy_cow_destroys_dedup() {
        let w = Workload::by_name("html").unwrap();
        let cfg = RunConfig::concurrent(0.05, 4);
        let patched = run_one(StrategyKind::SnapBpf, &w, &cfg).unwrap();
        let buggy = run_one(StrategyKind::SnapBpfBuggyCow, &w, &cfg).unwrap();
        assert!(
            buggy.memory.anon_pages > 2 * patched.memory.anon_pages,
            "buggy {} vs patched {}",
            buggy.memory,
            patched.memory
        );
    }
}
