//! Figure data and rendering.
//!
//! Every figure and table of the paper is regenerated as a
//! [`FigureData`]: named series of per-function values, renderable
//! as an aligned text table (what the benchmark harness prints) and
//! serializable to JSON (what `EXPERIMENTS.md` tooling consumes).

use snapbpf_json::{Json, JsonError};

/// One series (one bar colour) of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// One value per function, in figure order.
    pub values: Vec<f64>,
}

/// A regenerated figure: functions on the x-axis, one or more
/// series, plus optional scalar metadata (run parameters, summary
/// statistics) carried alongside the series in the JSON output.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureData {
    /// Figure identifier (e.g. `"fig3a"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Unit of the values (e.g. `"s"`, `"GiB"`, `"normalized"`).
    pub unit: String,
    /// X-axis labels.
    pub functions: Vec<String>,
    /// The series.
    pub series: Vec<Series>,
    /// Named scalar metadata (e.g. `"sustained-rate-rps"`), in
    /// insertion order; empty for plain paper figures.
    pub meta: Vec<(String, f64)>,
}

impl FigureData {
    /// Creates an empty figure.
    pub fn new(id: &str, title: &str, unit: &str, functions: Vec<String>) -> Self {
        FigureData {
            id: id.to_owned(),
            title: title.to_owned(),
            unit: unit.to_owned(),
            functions,
            series: Vec::new(),
            meta: Vec::new(),
        }
    }

    /// Attaches (or overwrites) a scalar metadata entry.
    pub fn set_meta(&mut self, key: &str, value: f64) {
        if let Some(slot) = self.meta.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
            return;
        }
        self.meta.push((key.to_owned(), value));
    }

    /// The value of a scalar metadata entry, if present.
    pub fn meta_value(&self, key: &str) -> Option<f64> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    /// Appends a series.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the function count.
    pub fn push_series(&mut self, label: &str, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.functions.len(),
            "series length must match function count"
        );
        self.series.push(Series {
            label: label.to_owned(),
            values,
        });
    }

    /// The values of the series with the given label.
    pub fn series_values(&self, label: &str) -> Option<&[f64]> {
        self.series
            .iter()
            .find(|s| s.label == label)
            .map(|s| s.values.as_slice())
    }

    /// A copy with every series divided point-wise by the series
    /// labelled `baseline` (which becomes all-ones).
    ///
    /// # Panics
    ///
    /// Panics if `baseline` is not a series or contains zeros.
    #[must_use]
    pub fn normalized_to(&self, baseline: &str) -> FigureData {
        let base = self
            .series_values(baseline)
            .unwrap_or_else(|| panic!("no such series: {baseline}"))
            .to_vec();
        assert!(base.iter().all(|&v| v != 0.0), "baseline contains zeros");
        let mut out = FigureData::new(
            &self.id,
            &format!("{} (normalized to {baseline})", self.title),
            "normalized",
            self.functions.clone(),
        );
        for s in &self.series {
            let values = s.values.iter().zip(&base).map(|(v, b)| v / b).collect();
            out.push_series(&s.label, values);
        }
        out
    }

    /// Geometric mean of a series across functions (figure-level
    /// summary), `None` for unknown labels or non-positive values.
    pub fn geomean(&self, label: &str) -> Option<f64> {
        let values = self.series_values(label)?;
        if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
            return None;
        }
        let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
        Some((log_sum / values.len() as f64).exp())
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} — {} [{}]\n", self.id, self.title, self.unit));
        let col0 = self
            .functions
            .iter()
            .map(|f| f.len())
            .max()
            .unwrap_or(8)
            .max("function".len());
        let width = self
            .series
            .iter()
            .map(|s| s.label.len())
            .max()
            .unwrap_or(10)
            .max(10);

        out.push_str(&format!("{:col0$}", "function"));
        for s in &self.series {
            out.push_str(&format!("  {:>width$}", s.label));
        }
        out.push('\n');
        for (i, f) in self.functions.iter().enumerate() {
            out.push_str(&format!("{f:col0$}"));
            for s in &self.series {
                out.push_str(&format!("  {:>width$.4}", s.values[i]));
            }
            out.push('\n');
        }
        out
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Serialization errors (practically unreachable).
    pub fn to_json(&self) -> Result<String, JsonError> {
        let mut fields = vec![
            ("id".to_owned(), Json::from(self.id.as_str())),
            ("title".to_owned(), Json::from(self.title.as_str())),
            ("unit".to_owned(), Json::from(self.unit.as_str())),
            (
                "functions".to_owned(),
                Json::array(self.functions.iter().map(|f| Json::from(f.as_str()))),
            ),
            (
                "series".to_owned(),
                Json::array(self.series.iter().map(|s| {
                    Json::object([
                        ("label".to_owned(), Json::from(s.label.as_str())),
                        (
                            "values".to_owned(),
                            Json::array(s.values.iter().map(|&v| Json::from(v))),
                        ),
                    ])
                })),
            ),
        ];
        if !self.meta.is_empty() {
            fields.push((
                "meta".to_owned(),
                Json::object(self.meta.iter().map(|(k, v)| (k.clone(), Json::from(*v)))),
            ));
        }
        Ok(Json::Object(fields).pretty())
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Malformed input.
    pub fn from_json(json: &str) -> Result<FigureData, JsonError> {
        let v = Json::parse(json)?;
        let field_err = |what: &str| JsonError {
            message: format!("figure data: missing or invalid '{what}'"),
            offset: 0,
        };
        let str_field = |key: &str| {
            v[key]
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| field_err(key))
        };
        let functions = v["functions"]
            .as_array()
            .ok_or_else(|| field_err("functions"))?
            .iter()
            .map(|f| {
                f.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| field_err("functions"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let series = v["series"]
            .as_array()
            .ok_or_else(|| field_err("series"))?
            .iter()
            .map(|s| {
                let label = s["label"]
                    .as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| field_err("series.label"))?;
                let values = s["values"]
                    .as_array()
                    .ok_or_else(|| field_err("series.values"))?
                    .iter()
                    .map(|x| x.as_f64().ok_or_else(|| field_err("series.values")))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Series { label, values })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let meta = match v.get("meta") {
            None => Vec::new(),
            Some(m) => m
                .as_object()
                .ok_or_else(|| field_err("meta"))?
                .iter()
                .map(|(k, x)| {
                    x.as_f64()
                        .map(|x| (k.clone(), x))
                        .ok_or_else(|| field_err("meta"))
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(FigureData {
            id: str_field("id")?,
            title: str_field("title")?,
            unit: str_field("unit")?,
            functions,
            series,
            meta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureData {
        let mut f = FigureData::new("figX", "test", "s", vec!["a".into(), "b".into()]);
        f.push_series("base", vec![2.0, 4.0]);
        f.push_series("fast", vec![1.0, 1.0]);
        f
    }

    #[test]
    fn series_lookup() {
        let f = sample();
        assert_eq!(f.series_values("base"), Some(&[2.0, 4.0][..]));
        assert_eq!(f.series_values("nope"), None);
    }

    #[test]
    fn normalization() {
        let n = sample().normalized_to("base");
        assert_eq!(n.series_values("base"), Some(&[1.0, 1.0][..]));
        assert_eq!(n.series_values("fast"), Some(&[0.5, 0.25][..]));
        assert_eq!(n.unit, "normalized");
    }

    #[test]
    #[should_panic(expected = "no such series")]
    fn normalize_to_missing_series_panics() {
        let _ = sample().normalized_to("ghost");
    }

    #[test]
    fn geomean() {
        let f = sample();
        let g = f.geomean("base").unwrap();
        assert!((g - (8.0f64).sqrt()).abs() < 1e-12);
        assert!(f.geomean("nope").is_none());
    }

    #[test]
    fn render_contains_everything() {
        let text = sample().render();
        assert!(text.contains("figX"));
        assert!(text.contains("base"));
        assert!(text.contains("fast"));
        assert!(text.contains('a'));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn json_roundtrip() {
        let f = sample();
        let back = FigureData::from_json(&f.to_json().unwrap()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn meta_roundtrips_and_overwrites() {
        let mut f = sample();
        f.set_meta("sustained-rate-rps", 120.0);
        f.set_meta("sustained-rate-rps", 150.0);
        f.set_meta("memory-hwm-bytes", 1024.0);
        assert_eq!(f.meta_value("sustained-rate-rps"), Some(150.0));
        let back = FigureData::from_json(&f.to_json().unwrap()).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.meta_value("memory-hwm-bytes"), Some(1024.0));
        assert_eq!(back.meta_value("missing"), None);
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(FigureData::from_json("{").is_err());
        assert!(FigureData::from_json("{\"id\": 3}").is_err());
        assert!(FigureData::from_json("null").is_err());
    }

    #[test]
    #[should_panic(expected = "series length")]
    fn mismatched_series_rejected() {
        let mut f = sample();
        f.push_series("bad", vec![1.0]);
    }
}
