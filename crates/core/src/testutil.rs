//! Shared test fixtures for the strategy and experiment tests.

use snapbpf_kernel::{HostKernel, KernelConfig};
use snapbpf_sim::SimTime;
use snapbpf_storage::{Disk, SsdModel};
use snapbpf_vmm::Snapshot;
use snapbpf_workloads::Workload;

use crate::strategy::FunctionCtx;

/// Builds a host kernel over the paper's SSD and a snapshot for the
/// named workload at `scale`.
pub(crate) fn test_env(name: &str, scale: f64) -> (HostKernel, FunctionCtx) {
    let mut host = HostKernel::new(
        Disk::new(Box::new(SsdModel::micron_5300())),
        KernelConfig::default(),
    );
    let workload = Workload::by_name(name)
        .unwrap_or_else(|| panic!("unknown workload {name}"))
        .scaled(scale);
    let (snapshot, _) = Snapshot::create(
        SimTime::ZERO,
        workload.name(),
        workload.snapshot_pages(),
        &mut host,
    )
    .expect("snapshot creation");
    (host, FunctionCtx { workload, snapshot })
}
