//! # snapbpf — eBPF-based serverless snapshot prefetching
//!
//! A from-scratch reproduction of *SnapBPF: Exploiting eBPF for
//! Serverless Snapshot Prefetching* (HotStorage '25) over a
//! deterministic simulated Linux/KVM/Firecracker substrate.
//!
//! The crate provides:
//!
//! * the **SnapBPF mechanisms** — the eBPF capture/prefetch programs
//!   ([`build_capture_program`], [`build_prefetch_program`]),
//!   working-set offset [grouping and sorting](group_offsets), and
//!   the PV-PTE-marking restore path — wired into the simulated
//!   kernel end-to-end,
//! * the **baselines** the paper compares against: REAP, Faast,
//!   FaaSnap, and vanilla Linux readahead on/off
//!   ([`strategies`], [`StrategyKind`]),
//! * the **experiment runner** ([`run_one`]) reproducing the paper's
//!   methodology, and
//! * the **figure generators** ([`figures`]) regenerating Table 1,
//!   Figures 3a/3b/3c, Figure 4, the §4 overhead numbers, and four
//!   ablations.
//!
//! ## Quickstart
//!
//! ```
//! use snapbpf::{run_one, RunConfig, StrategyKind};
//! use snapbpf_workloads::Workload;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The allocation-heavy image-processing function, at 5% size
//! // for a quick run.
//! let image = Workload::by_name("image").expect("suite function");
//! let cfg = RunConfig::single(0.05);
//!
//! let reap = run_one(StrategyKind::Reap, &image, &cfg)?;
//! let snapbpf = run_one(StrategyKind::SnapBpf, &image, &cfg)?;
//!
//! assert!(snapbpf.e2e_mean() < reap.e2e_mean());
//! println!(
//!     "REAP {} vs SnapBPF {}",
//!     reap.e2e_mean(),
//!     snapbpf.e2e_mean()
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiment;
pub mod figures;
mod programs;
mod report;
pub mod restore;
pub mod strategies;
mod strategy;
#[cfg(test)]
mod testutil;
mod wset;

pub use experiment::{
    run_colocated, run_one, run_one_traced, run_one_with, ColocatedResult, DeviceKind, RunConfig,
    RunResult,
};
pub use programs::{
    build_capture_program, build_prefetch_program, build_prefetch_program_cascade,
    build_prefetch_program_telemetry, groups_map_def, groups_map_image, lint_report, opt_report,
    read_captured_samples, verifier_log_report, wset_map_def, GROUPS_COUNT_SLOT,
    GROUPS_CURSOR_SLOT, WSET_COUNT_SLOT,
};
pub use report::{FigureData, Series};
pub use restore::{RestoreCursor, RestoreOps, RestoreStage, StageTimings, StepOutcome};
pub use strategy::{Capabilities, FunctionCtx, RestoredVm, Strategy, StrategyError, StrategyKind};
pub use wset::{
    coalesce_regions, decode_groups, encode_groups, group_offsets, total_pages, OffsetSample,
    WsGroup,
};
