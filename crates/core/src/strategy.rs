//! The restore-strategy abstraction and the Table 1 capability
//! matrix.
//!
//! A [`Strategy`] is one snapshot-prefetching approach: it owns a
//! **record** phase (capture the function's working set once) and a
//! **restore** phase (set up a new microVM so an invocation can run
//! against the snapshot). The experiment runner drives any strategy
//! through the same protocol, which is what makes the paper's
//! comparisons (Figures 3 and 4) apples-to-apples.

use std::fmt;

use snapbpf_kernel::{HostKernel, KernelError};
use snapbpf_mem::OwnerId;
use snapbpf_sim::{SimDuration, SimTime};
use snapbpf_vmm::{MicroVm, Snapshot, UffdResolver};
use snapbpf_workloads::Workload;

use crate::restore::{RestoreCursor, RestoreStage, StageTimings};

/// A function under test: its workload model and its snapshot.
#[derive(Debug)]
pub struct FunctionCtx {
    /// The workload model.
    pub workload: Workload,
    /// The function's snapshot on the experiment disk.
    pub snapshot: Snapshot,
}

/// Everything a restore produces: a VM ready to run, its userspace
/// fault handler, and timing metadata.
pub struct RestoredVm {
    /// The restored microVM.
    pub vm: MicroVm,
    /// Userspace handler for uffd faults ([`snapbpf_vmm::NoUffd`]
    /// for strategies that never take uffd faults).
    pub resolver: Box<dyn UffdResolver>,
    /// When guest execution can begin.
    pub ready_at: SimTime,
    /// Cost of loading offsets metadata into the kernel (SnapBPF's
    /// §4 overhead metric; zero for other strategies).
    pub offset_load_cost: SimDuration,
    /// Per-stage duration breakdown of the restore (see
    /// [`RestoreStage`]).
    pub stages: StageTimings,
}

impl fmt::Debug for RestoredVm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RestoredVm")
            .field("vm", &self.vm.owner())
            .field("ready_at", &self.ready_at)
            .field("offset_load_cost", &self.offset_load_cost)
            .finish_non_exhaustive()
    }
}

/// Errors from strategy operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StrategyError {
    /// The underlying kernel failed.
    Kernel(KernelError),
    /// `restore` was called before `record`.
    NotRecorded {
        /// The strategy.
        strategy: &'static str,
    },
    /// A restore stage failed (added by [`RestoreCursor::step`] so
    /// fleet logs say *where* a restore died).
    Stage {
        /// The stage that failed.
        stage: RestoreStage,
        /// The underlying failure.
        source: Box<StrategyError>,
    },
    /// Writing a trace output file failed.
    TraceIo(String),
    /// A run configuration was invalid (e.g. a zero-host cluster or
    /// an empty function mix) — reported instead of panicking so CLI
    /// surfaces can print a clean message.
    Config(String),
}

impl fmt::Display for StrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyError::Kernel(e) => write!(f, "kernel: {e}"),
            StrategyError::NotRecorded { strategy } => {
                write!(f, "{strategy}: restore before record")
            }
            StrategyError::Stage { stage, source } => {
                write!(f, "restore stage {stage}: {source}")
            }
            StrategyError::TraceIo(e) => write!(f, "trace output: {e}"),
            StrategyError::Config(e) => write!(f, "config: {e}"),
        }
    }
}

impl std::error::Error for StrategyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StrategyError::Kernel(e) => Some(e),
            StrategyError::NotRecorded { .. } => None,
            StrategyError::Stage { source, .. } => Some(source.as_ref()),
            StrategyError::TraceIo(_) | StrategyError::Config(_) => None,
        }
    }
}

impl From<KernelError> for StrategyError {
    fn from(e: KernelError) -> Self {
        StrategyError::Kernel(e)
    }
}

impl From<snapbpf_storage::DiskError> for StrategyError {
    fn from(e: snapbpf_storage::DiskError) -> Self {
        StrategyError::Kernel(KernelError::Disk(e))
    }
}

impl From<snapbpf_workloads::MixError> for StrategyError {
    fn from(e: snapbpf_workloads::MixError) -> Self {
        StrategyError::Config(e.to_string())
    }
}

/// The comparison dimensions of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// The capture/prefetch mechanism and where it runs.
    pub mechanism: &'static str,
    /// Does the approach serialize the working set to a separate
    /// file on disk?
    pub on_disk_ws_serialization: bool,
    /// Can working-set pages be deduplicated in memory across
    /// concurrent sandboxes?
    pub in_memory_ws_dedup: bool,
    /// Can VM-sandbox allocations be filtered to anonymous memory
    /// *without* snapshot scanning or pre-processing?
    pub stateless_vm_allocation_filtering: bool,
}

/// One snapshot-prefetching approach.
pub trait Strategy {
    /// Display name (figure legend label).
    fn name(&self) -> &'static str;

    /// Table 1 row for this strategy.
    fn capabilities(&self) -> Capabilities;

    /// Record phase: runs one recording invocation (or whatever
    /// preparation the approach requires — FaaSnap's snapshot scan,
    /// Faast's metadata scan) and persists its artifacts. Returns
    /// the completion time.
    ///
    /// # Errors
    ///
    /// Kernel errors propagate.
    fn record(
        &mut self,
        now: SimTime,
        host: &mut HostKernel,
        func: &FunctionCtx,
    ) -> Result<SimTime, StrategyError>;

    /// Begins a staged restore: validates preconditions and returns
    /// a [`RestoreCursor`] whose stages the caller steps in
    /// virtual-time order (a fleet scheduler interleaves them with
    /// other sandboxes' events; [`Strategy::restore`] drives them
    /// back-to-back).
    ///
    /// `begin_restore` itself charges no virtual time and performs
    /// no I/O — all restore work happens in the cursor's steps.
    ///
    /// # Errors
    ///
    /// Strategies requiring a record phase return
    /// [`StrategyError::NotRecorded`] if it did not happen.
    fn begin_restore(
        &mut self,
        now: SimTime,
        host: &mut HostKernel,
        func: &FunctionCtx,
        owner: OwnerId,
    ) -> Result<RestoreCursor, StrategyError>;

    /// Restore phase: prepares a new sandbox for one invocation
    /// (mmap, uffd registration, overlays, prefetch kick-off).
    ///
    /// The provided default drives [`Strategy::begin_restore`]'s
    /// cursor to completion, charging every stage — including
    /// background prefetch work — before returning, which preserves
    /// the classic blocking-restore semantics for single-invocation
    /// experiments.
    ///
    /// # Errors
    ///
    /// Kernel errors propagate wrapped in [`StrategyError::Stage`];
    /// strategies requiring a record phase return
    /// [`StrategyError::NotRecorded`] if it did not happen.
    fn restore(
        &mut self,
        now: SimTime,
        host: &mut HostKernel,
        func: &FunctionCtx,
        owner: OwnerId,
    ) -> Result<RestoredVm, StrategyError> {
        let mut cursor = self.begin_restore(now, host, func, owner)?;
        while !cursor.is_done() {
            cursor.step(host)?;
        }
        Ok(cursor.finish())
    }
}

/// Factory enum for the strategies the evaluation compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Vanilla Firecracker, demand paging, kernel readahead off.
    LinuxNoRa,
    /// Vanilla Firecracker, default 128 KiB kernel readahead.
    LinuxRa,
    /// REAP: userfaultfd + working-set file + direct I/O.
    Reap,
    /// Faast: REAP-style uffd with allocator-metadata allocation
    /// filtering (snapshot pre-scan).
    Faast,
    /// FaaSnap: mincore capture, coalesced working-set file, mmap
    /// overlay, userspace prefetch thread, zero-page scan.
    Faasnap,
    /// SnapBPF, both mechanisms (eBPF prefetch + PV PTE marking).
    SnapBpf,
    /// SnapBPF with only PV PTE marking (Figure 4's middle bar).
    SnapBpfPvOnly,
    /// SnapBPF with only the eBPF prefetcher (no guest PV patch).
    SnapBpfEbpfOnly,
    /// SnapBPF on an *unpatched* KVM that forcibly write-maps read
    /// faults (ablation A3 — shows why the paper's KVM patch
    /// matters).
    SnapBpfBuggyCow,
}

impl StrategyKind {
    /// All kinds, in presentation order.
    pub const ALL: [StrategyKind; 9] = [
        StrategyKind::LinuxNoRa,
        StrategyKind::LinuxRa,
        StrategyKind::Reap,
        StrategyKind::Faast,
        StrategyKind::Faasnap,
        StrategyKind::SnapBpf,
        StrategyKind::SnapBpfPvOnly,
        StrategyKind::SnapBpfEbpfOnly,
        StrategyKind::SnapBpfBuggyCow,
    ];

    /// The figure-legend label.
    pub fn label(&self) -> &'static str {
        match self {
            StrategyKind::LinuxNoRa => "Linux-NoRA",
            StrategyKind::LinuxRa => "Linux-RA",
            StrategyKind::Reap => "REAP",
            StrategyKind::Faast => "Faast",
            StrategyKind::Faasnap => "FaaSnap",
            StrategyKind::SnapBpf => "SnapBPF",
            StrategyKind::SnapBpfPvOnly => "PVPTEs",
            StrategyKind::SnapBpfEbpfOnly => "SnapBPF-eBPF-only",
            StrategyKind::SnapBpfBuggyCow => "SnapBPF-unpatched-KVM",
        }
    }

    /// Parses a figure-legend label back into a kind
    /// (case-insensitive), for CLI `--strategy` flags.
    pub fn parse(label: &str) -> Option<StrategyKind> {
        StrategyKind::ALL
            .into_iter()
            .find(|k| k.label().eq_ignore_ascii_case(label))
    }

    /// Builds a fresh strategy instance.
    pub fn build(&self) -> Box<dyn Strategy> {
        use crate::strategies::*;
        match self {
            StrategyKind::LinuxNoRa => Box::new(Vanilla::new(false)),
            StrategyKind::LinuxRa => Box::new(Vanilla::new(true)),
            StrategyKind::Reap => Box::new(Reap::new()),
            StrategyKind::Faast => Box::new(Faast::new()),
            StrategyKind::Faasnap => Box::new(Faasnap::new()),
            StrategyKind::SnapBpf => Box::new(SnapBpf::full()),
            StrategyKind::SnapBpfPvOnly => Box::new(SnapBpf::pv_only()),
            StrategyKind::SnapBpfEbpfOnly => Box::new(SnapBpf::ebpf_only()),
            StrategyKind::SnapBpfBuggyCow => Box::new(SnapBpf::with_buggy_cow()),
        }
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = StrategyKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        let n = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }

    #[test]
    fn table1_matrix_matches_paper() {
        // Table 1's qualitative claims.
        let reap = StrategyKind::Reap.build().capabilities();
        assert!(reap.on_disk_ws_serialization);
        assert!(!reap.in_memory_ws_dedup);
        assert!(!reap.stateless_vm_allocation_filtering);

        let faast = StrategyKind::Faast.build().capabilities();
        assert!(faast.on_disk_ws_serialization);
        assert!(!faast.in_memory_ws_dedup);
        assert!(!faast.stateless_vm_allocation_filtering); // scan-based

        let faasnap = StrategyKind::Faasnap.build().capabilities();
        assert!(faasnap.on_disk_ws_serialization);
        assert!(faasnap.in_memory_ws_dedup);
        assert!(!faasnap.stateless_vm_allocation_filtering); // scan-based

        let snapbpf = StrategyKind::SnapBpf.build().capabilities();
        assert!(!snapbpf.on_disk_ws_serialization);
        assert!(snapbpf.in_memory_ws_dedup);
        assert!(snapbpf.stateless_vm_allocation_filtering);
        assert!(snapbpf.mechanism.contains("eBPF"));
    }

    #[test]
    fn error_display() {
        let e = StrategyError::NotRecorded { strategy: "REAP" };
        assert!(e.to_string().contains("REAP"));
    }

    #[test]
    fn labels_parse_back() {
        for k in StrategyKind::ALL {
            assert_eq!(StrategyKind::parse(k.label()), Some(k));
        }
        assert_eq!(StrategyKind::parse("snapbpf"), Some(StrategyKind::SnapBpf));
        assert_eq!(StrategyKind::parse("reap"), Some(StrategyKind::Reap));
        assert_eq!(StrategyKind::parse("nope"), None);
    }

    #[test]
    fn mix_errors_become_config_errors() {
        let err = snapbpf_workloads::FunctionMix::from_weights(&[1.0, -3.0]).unwrap_err();
        let e: StrategyError = err.into();
        match &e {
            StrategyError::Config(msg) => assert!(msg.contains("index 1"), "{msg}"),
            other => panic!("expected Config, got {other:?}"),
        }
        assert!(e.to_string().starts_with("config:"));
    }
}
