//! The SnapBPF eBPF programs.
//!
//! Faithful to §3.1 of the paper, both programs attach to the
//! `add_to_page_cache_lru` kprobe:
//!
//! * the **capture** program filters insertions to the snapshot file
//!   and appends `(page offset, first-access timestamp)` samples to
//!   the working-set map,
//! * the **prefetch** program walks the pre-loaded, access-order
//!   sorted group list in a single bounded loop, issuing one
//!   contiguous range per group via the `snapbpf_prefetch()` kfunc
//!   and disabling itself once the list is exhausted — one hook
//!   invocation per restore. The pre-5.3 "re-trigger" variant
//!   ([`build_prefetch_program_cascade`]), which issued one range
//!   per trigger and relied on each range's insertions re-firing the
//!   hook, is retained for comparison.
//!
//! Both are built with [`ProgramBuilder`], verified by the kernel's
//! verifier at attach time, and executed by the interpreter — the
//! mechanism is exercised end-to-end, not narrated.

use snapbpf_ebpf::{AccessSize, HelperId, JmpCond, MapDef, MapId, Program, ProgramBuilder, Reg};
use snapbpf_kernel::{KFUNC_SNAPBPF_PREFETCH, PAGE_CACHE_ADD_HOOK, PROG_RET_DISABLE};
use snapbpf_storage::FileId;

use crate::wset::{OffsetSample, WsGroup};

/// Layout constants of the working-set (capture) map: slot 0 holds
/// the sample count; sample `i` occupies slots `1 + 2i` (offset) and
/// `2 + 2i` (timestamp).
pub const WSET_COUNT_SLOT: u32 = 0;

/// Layout constants of the groups (prefetch) map: slot 0 holds the
/// group count, slot 1 the cursor; group `i` occupies slots
/// `2 + 2i` (start) and `3 + 2i` (length).
pub const GROUPS_COUNT_SLOT: u32 = 0;
/// See [`GROUPS_COUNT_SLOT`].
pub const GROUPS_CURSOR_SLOT: u32 = 1;

/// Map definition for a capture map holding up to `max_samples`
/// working-set samples.
pub fn wset_map_def(max_samples: u32) -> MapDef {
    MapDef::array(8, 1 + 2 * max_samples)
}

/// Map definition for a groups map holding up to `max_groups`
/// ranges.
pub fn groups_map_def(max_groups: u32) -> MapDef {
    MapDef::array(8, 2 + 2 * max_groups)
}

/// Emits `lookup wset[key_slot]` with the key staged at `fp-4`; on
/// null jumps to `on_null`. Result pointer is left in `r0`.
fn emit_array_lookup(
    b: &mut ProgramBuilder,
    map: MapId,
    key_reg_or_imm: Option<Reg>,
    key_imm: i64,
    on_null: snapbpf_ebpf::Label,
) {
    match key_reg_or_imm {
        Some(r) => {
            b.store(Reg::R10, -4, r, AccessSize::B4);
        }
        None => {
            b.store_imm(Reg::R10, -4, key_imm, AccessSize::B4);
        }
    }
    b.load_map(Reg::R1, map)
        .mov(Reg::R2, Reg::R10)
        .add(Reg::R2, -4)
        .call(HelperId::MapLookup)
        .jump_if(JmpCond::Eq, Reg::R0, 0i64, on_null);
}

/// Builds the capture program for `snapshot` recording into `wset`
/// (an array map shaped by [`wset_map_def`] for `max_samples`).
///
/// Register roles: `r6` scratch/file, `r7` page offset, `r8` count
/// value pointer, `r9` count.
pub fn build_capture_program(snapshot: FileId, wset: MapId, max_samples: u32) -> Program {
    let mut b = ProgramBuilder::new("snapbpf_capture");
    let out = b.label();

    // Filter: only snapshot-file insertions.
    b.load_ctx(Reg::R6, 0)
        .jump_if(JmpCond::Ne, Reg::R6, snapshot.as_u32() as i64, out)
        .load_ctx(Reg::R7, 1);

    // r8 = &wset[count_slot]; r9 = count.
    emit_array_lookup(&mut b, wset, None, WSET_COUNT_SLOT as i64, out);
    b.mov(Reg::R8, Reg::R0)
        .load(Reg::R9, Reg::R8, 0, AccessSize::B8)
        .jump_if(JmpCond::Ge, Reg::R9, max_samples as i64, out);

    // wset[1 + 2*count] = page offset.
    b.mov(Reg::R6, Reg::R9).mul(Reg::R6, 2).add(Reg::R6, 1);
    emit_array_lookup(&mut b, wset, Some(Reg::R6), 0, out);
    b.store(Reg::R0, 0, Reg::R7, AccessSize::B8);

    // wset[2 + 2*count] = ktime.
    b.call(HelperId::KtimeGetNs).mov(Reg::R7, Reg::R0);
    b.mov(Reg::R6, Reg::R9).mul(Reg::R6, 2).add(Reg::R6, 2);
    emit_array_lookup(&mut b, wset, Some(Reg::R6), 0, out);
    b.store(Reg::R0, 0, Reg::R7, AccessSize::B8);

    // wset[count_slot] = count + 1 (through the stashed pointer).
    b.add(Reg::R9, 1).store(Reg::R8, 0, Reg::R9, AccessSize::B8);

    b.bind(out)
        .expect("label bound once")
        .mov(Reg::R0, 0)
        .exit();
    b.build().expect("capture program assembles")
}

/// Builds the looped prefetch program for `snapshot` reading ranges
/// from `groups` (an array map shaped by [`groups_map_def`] for
/// `max_groups`).
///
/// A single invocation loops `cursor` from 0 to `ngroups` (clamped
/// to `max_groups`, which is what lets the verifier bound the trip
/// count), calling `snapbpf_prefetch(snapshot, start, len)` per
/// group, then publishes the final cursor and returns
/// [`PROG_RET_DISABLE`]. The self-disable lands before the prefetch
/// queue drains, so the hook re-fires from the issued ranges hit a
/// disabled probe: one program invocation per restore instead of the
/// cascade's `ngroups + 1`.
///
/// Register roles: `r6` ngroups, `r7` loop cursor, `r9` slot index
/// scratch; `(start, len)` are staged at `fp-24`/`fp-32` across the
/// kfunc call.
pub fn build_prefetch_program(snapshot: FileId, groups: MapId, max_groups: u32) -> Program {
    let mut b = ProgramBuilder::new("snapbpf_prefetch_loop");
    let out = b.label();
    let top = b.label();
    let done = b.label();

    // r6 = ngroups, clamped so the verifier sees a loop bound.
    emit_array_lookup(&mut b, groups, None, GROUPS_COUNT_SLOT as i64, out);
    b.load(Reg::R6, Reg::R0, 0, AccessSize::B8)
        .jump_if(JmpCond::Gt, Reg::R6, max_groups as i64, out)
        .mov(Reg::R7, 0);

    b.bind(top)
        .expect("label bound once")
        .jump_if(JmpCond::Ge, Reg::R7, Reg::R6, done);

    // start = groups[2 + 2*cursor]  -> stash at fp-24.
    b.mov(Reg::R9, Reg::R7).mul(Reg::R9, 2).add(Reg::R9, 2);
    emit_array_lookup(&mut b, groups, Some(Reg::R9), 0, out);
    b.load(Reg::R2, Reg::R0, 0, AccessSize::B8)
        .store(Reg::R10, -24, Reg::R2, AccessSize::B8);

    // len = groups[3 + 2*cursor]    -> stash at fp-32.
    b.mov(Reg::R9, Reg::R7).mul(Reg::R9, 2).add(Reg::R9, 3);
    emit_array_lookup(&mut b, groups, Some(Reg::R9), 0, out);
    b.load(Reg::R2, Reg::R0, 0, AccessSize::B8)
        .store(Reg::R10, -32, Reg::R2, AccessSize::B8);

    // snapbpf_prefetch(snapshot, start, len); r6/r7 survive the call.
    b.mov(Reg::R1, snapshot.as_u32() as i64)
        .load(Reg::R2, Reg::R10, -24, AccessSize::B8)
        .load(Reg::R3, Reg::R10, -32, AccessSize::B8)
        .call_kfunc(KFUNC_SNAPBPF_PREFETCH)
        .add(Reg::R7, 1)
        .jump(top);

    // done: publish cursor = ngroups (same end state the cascade
    // leaves behind), then self-disable.
    b.bind(done).expect("label bound once");
    emit_array_lookup(&mut b, groups, None, GROUPS_CURSOR_SLOT as i64, out);
    b.store(Reg::R0, 0, Reg::R7, AccessSize::B8)
        .mov(Reg::R0, PROG_RET_DISABLE as i64)
        .exit();

    b.bind(out)
        .expect("label bound once")
        .mov(Reg::R0, 0)
        .exit();
    b.build().expect("looped prefetch program assembles")
}

/// Emits `*stats[slot] += delta` against a per-CPU stats map: the
/// lookup resolves to the current CPU's slot, so parallel shards
/// never contend. `delta` is either an immediate 1 or a `u64` staged
/// on the stack at `from_fp`.
fn emit_stat_bump(
    b: &mut ProgramBuilder,
    stats: MapId,
    slot: u32,
    from_fp: Option<i16>,
    on_null: snapbpf_ebpf::Label,
) {
    emit_array_lookup(b, stats, None, slot as i64, on_null);
    b.load(Reg::R1, Reg::R0, 0, AccessSize::B8);
    match from_fp {
        Some(off) => {
            b.load(Reg::R2, Reg::R10, off, AccessSize::B8)
                .add(Reg::R1, Reg::R2);
        }
        None => {
            b.add(Reg::R1, 1);
        }
    }
    b.store(Reg::R0, 0, Reg::R1, AccessSize::B8);
}

/// Stack frame of the telemetry record staged for `RingbufOutput`:
/// five `u64` words at `fp-72 .. fp-32` (kind, now_ns, then three
/// kind-specific fields), below the `fp-24`/`fp-32` range stashes
/// the base prefetch loop already uses.
const TEL_RECORD_FP: i16 = -72;

/// Emits `ringbuf_output(ring, fp-72, 40, 0)`; on `-ENOSPC` (or any
/// nonzero return) bumps the per-CPU `STAT_SLOT_ENOSPC` counter so
/// drops are accounted instead of vanishing.
fn emit_ring_emit(b: &mut ProgramBuilder, ring: MapId, stats: MapId, out: snapbpf_ebpf::Label) {
    let sent = b.label();
    b.load_map(Reg::R1, ring)
        .mov(Reg::R2, Reg::R10)
        .add(Reg::R2, TEL_RECORD_FP as i64)
        .mov(Reg::R3, snapbpf_ebpf::TELEMETRY_RECORD_BYTES as i64)
        .mov(Reg::R4, 0)
        .call(HelperId::RingbufOutput)
        .jump_if(JmpCond::Eq, Reg::R0, 0i64, sent);
    emit_stat_bump(b, stats, snapbpf_ebpf::STAT_SLOT_ENOSPC, None, out);
    b.bind(sent).expect("label bound once");
}

/// Builds the telemetry-instrumented looped prefetch program: the
/// exact range-issuing behaviour of [`build_prefetch_program`], plus
/// the kernel→user reporting channel of DESIGN.md §12 — one
/// `PrefetchIssued` record per group and a final `PrefetchCompleted`
/// record over `ring`, with per-CPU counters (issued / pages /
/// enospc) bumped in `stats` (shaped by
/// [`snapbpf_ebpf::telemetry_stats_def`]).
///
/// Register roles match the base program (`r6` ngroups, `r7` cursor,
/// `r9` slot scratch); the 40-byte record is staged at
/// `fp-72..fp-32` and the running page total at `fp-80`.
pub fn build_prefetch_program_telemetry(
    snapshot: FileId,
    groups: MapId,
    max_groups: u32,
    ring: MapId,
    stats: MapId,
) -> Program {
    let mut b = ProgramBuilder::new("snapbpf_prefetch_tel");
    let out = b.label();
    let top = b.label();
    let done = b.label();

    // r6 = ngroups, clamped so the verifier sees a loop bound; the
    // page total accumulator starts at zero.
    emit_array_lookup(&mut b, groups, None, GROUPS_COUNT_SLOT as i64, out);
    b.load(Reg::R6, Reg::R0, 0, AccessSize::B8)
        .jump_if(JmpCond::Gt, Reg::R6, max_groups as i64, out)
        .store_imm(Reg::R10, -80, 0, AccessSize::B8)
        .mov(Reg::R7, 0);

    b.bind(top)
        .expect("label bound once")
        .jump_if(JmpCond::Ge, Reg::R7, Reg::R6, done);

    // start = groups[2 + 2*cursor]  -> stash at fp-24.
    b.mov(Reg::R9, Reg::R7).mul(Reg::R9, 2).add(Reg::R9, 2);
    emit_array_lookup(&mut b, groups, Some(Reg::R9), 0, out);
    b.load(Reg::R2, Reg::R0, 0, AccessSize::B8)
        .store(Reg::R10, -24, Reg::R2, AccessSize::B8);

    // len = groups[3 + 2*cursor]    -> stash at fp-32.
    b.mov(Reg::R9, Reg::R7).mul(Reg::R9, 2).add(Reg::R9, 3);
    emit_array_lookup(&mut b, groups, Some(Reg::R9), 0, out);
    b.load(Reg::R2, Reg::R0, 0, AccessSize::B8)
        .store(Reg::R10, -32, Reg::R2, AccessSize::B8);

    // snapbpf_prefetch(snapshot, start, len); r6/r7 survive the call.
    b.mov(Reg::R1, snapshot.as_u32() as i64)
        .load(Reg::R2, Reg::R10, -24, AccessSize::B8)
        .load(Reg::R3, Reg::R10, -32, AccessSize::B8)
        .call_kfunc(KFUNC_SNAPBPF_PREFETCH);

    // Stage the PrefetchIssued record: [1, now, file, start, pages].
    b.store_imm(Reg::R10, TEL_RECORD_FP, 1, AccessSize::B8)
        .call(HelperId::KtimeGetNs)
        .store(Reg::R10, -64, Reg::R0, AccessSize::B8)
        .store_imm(Reg::R10, -56, snapshot.as_u32() as i64, AccessSize::B8)
        .load(Reg::R1, Reg::R10, -24, AccessSize::B8)
        .store(Reg::R10, -48, Reg::R1, AccessSize::B8)
        .load(Reg::R1, Reg::R10, -32, AccessSize::B8)
        .store(Reg::R10, -40, Reg::R1, AccessSize::B8);
    emit_ring_emit(&mut b, ring, stats, out);

    // Accumulate the page total and bump the per-CPU counters.
    b.load(Reg::R1, Reg::R10, -80, AccessSize::B8)
        .load(Reg::R2, Reg::R10, -32, AccessSize::B8)
        .add(Reg::R1, Reg::R2)
        .store(Reg::R10, -80, Reg::R1, AccessSize::B8);
    emit_stat_bump(&mut b, stats, snapbpf_ebpf::STAT_SLOT_ISSUED, None, out);
    emit_stat_bump(&mut b, stats, snapbpf_ebpf::STAT_SLOT_PAGES, Some(-32), out);

    b.add(Reg::R7, 1).jump(top);

    // done: emit PrefetchCompleted [2, now, groups, pages, 0], then
    // publish the cursor and self-disable.
    b.bind(done).expect("label bound once");
    b.store_imm(Reg::R10, TEL_RECORD_FP, 2, AccessSize::B8)
        .call(HelperId::KtimeGetNs)
        .store(Reg::R10, -64, Reg::R0, AccessSize::B8)
        .store(Reg::R10, -56, Reg::R7, AccessSize::B8)
        .load(Reg::R1, Reg::R10, -80, AccessSize::B8)
        .store(Reg::R10, -48, Reg::R1, AccessSize::B8)
        .store_imm(Reg::R10, -40, 0, AccessSize::B8);
    emit_ring_emit(&mut b, ring, stats, out);
    emit_array_lookup(&mut b, groups, None, GROUPS_CURSOR_SLOT as i64, out);
    b.store(Reg::R0, 0, Reg::R7, AccessSize::B8)
        .mov(Reg::R0, PROG_RET_DISABLE as i64)
        .exit();

    b.bind(out)
        .expect("label bound once")
        .mov(Reg::R0, 0)
        .exit();
    b.build().expect("telemetry prefetch program assembles")
}

/// Builds the pre-5.3 "re-trigger" prefetch program for `snapshot`
/// reading ranges from `groups` (an array map shaped by
/// [`groups_map_def`]).
///
/// Per trigger: load `ngroups` and `cursor`; if `cursor >= ngroups`
/// return [`PROG_RET_DISABLE`]; otherwise advance the cursor, read
/// the group's `(start, len)`, and call
/// `snapbpf_prefetch(snapshot, start, len)` — each issued range's
/// insertions re-fire the hook, cascading through the list one group
/// per invocation. Retained as the comparison baseline for the
/// looped [`build_prefetch_program`].
pub fn build_prefetch_program_cascade(snapshot: FileId, groups: MapId) -> Program {
    let mut b = ProgramBuilder::new("snapbpf_prefetch");
    let out = b.label();
    let disable = b.label();

    // r6 = ngroups.
    emit_array_lookup(&mut b, groups, None, GROUPS_COUNT_SLOT as i64, out);
    b.load(Reg::R6, Reg::R0, 0, AccessSize::B8);

    // r8 = &cursor; r7 = cursor.
    emit_array_lookup(&mut b, groups, None, GROUPS_CURSOR_SLOT as i64, out);
    b.mov(Reg::R8, Reg::R0)
        .load(Reg::R7, Reg::R8, 0, AccessSize::B8)
        .jump_if(JmpCond::Ge, Reg::R7, Reg::R6, disable);

    // start = groups[2 + 2*cursor]  -> stash at fp-24.
    b.mov(Reg::R9, Reg::R7).mul(Reg::R9, 2).add(Reg::R9, 2);
    emit_array_lookup(&mut b, groups, Some(Reg::R9), 0, out);
    b.load(Reg::R2, Reg::R0, 0, AccessSize::B8)
        .store(Reg::R10, -24, Reg::R2, AccessSize::B8);

    // len = groups[3 + 2*cursor]    -> stash at fp-32.
    b.mov(Reg::R9, Reg::R7).mul(Reg::R9, 2).add(Reg::R9, 3);
    emit_array_lookup(&mut b, groups, Some(Reg::R9), 0, out);
    b.load(Reg::R2, Reg::R0, 0, AccessSize::B8)
        .store(Reg::R10, -32, Reg::R2, AccessSize::B8);

    // cursor += 1 *before* the kfunc so the cascade sees progress.
    b.mov(Reg::R9, Reg::R7)
        .add(Reg::R9, 1)
        .store(Reg::R8, 0, Reg::R9, AccessSize::B8);

    // snapbpf_prefetch(snapshot, start, len).
    b.mov(Reg::R1, snapshot.as_u32() as i64)
        .load(Reg::R2, Reg::R10, -24, AccessSize::B8)
        .load(Reg::R3, Reg::R10, -32, AccessSize::B8)
        .call_kfunc(KFUNC_SNAPBPF_PREFETCH)
        .mov(Reg::R0, 0)
        .exit();

    b.bind(disable)
        .expect("label bound once")
        .mov(Reg::R0, PROG_RET_DISABLE as i64)
        .exit();
    b.bind(out)
        .expect("label bound once")
        .mov(Reg::R0, 0)
        .exit();
    b.build().expect("prefetch program assembles")
}

/// Verifies every shipped program — capture, the looped prefetch
/// program, its telemetry-instrumented variant, and the re-trigger
/// cascade baseline — against a fresh
/// host kernel with the verifier log enabled, returning the
/// concatenated rendered logs. This backs the `figures` CLI's
/// `--verifier-log` flag and the CI `verifier-corpus` smoke step.
///
/// # Errors
///
/// Fails if any shipped program is rejected by the verifier.
pub fn verifier_log_report() -> Result<String, snapbpf_kernel::KernelError> {
    let (mut k, programs) = shipped_programs()?;
    k.set_verifier_log(true);
    for prog in programs {
        let probe = k.load_and_attach(PAGE_CACHE_ADD_HOOK, &prog)?;
        k.detach(probe)?;
    }
    Ok(k.take_verifier_logs().join("\n"))
}

/// The signatures of the kfuncs the host kernel registers, for
/// running the static-analysis layer outside a [`HostKernel`].
const HOST_KFUNCS: &[snapbpf_ebpf::KfuncSig] = &[snapbpf_ebpf::KfuncSig {
    name: "snapbpf_prefetch",
    args: 3,
}];

/// Builds a fresh host kernel plus every shipped program — capture,
/// the looped prefetch program, its telemetry-instrumented variant,
/// and the re-trigger cascade baseline — against representatively
/// sized maps.
fn shipped_programs(
) -> Result<(snapbpf_kernel::HostKernel, Vec<Program>), snapbpf_kernel::KernelError> {
    use snapbpf_kernel::{HostKernel, KernelConfig};
    use snapbpf_storage::{Disk, SsdModel};

    let mut k = HostKernel::new(
        Disk::new(Box::new(SsdModel::micron_5300())),
        KernelConfig::default(),
    );
    let snap = k.disk_mut().create_file("snap", 8192)?;
    let wset = k.create_map(wset_map_def(4096))?;
    let groups = k.create_map(groups_map_def(256))?;
    let ring = k.create_map(snapbpf_ebpf::telemetry_ring_def())?;
    let stats = k.create_map(snapbpf_ebpf::telemetry_stats_def())?;
    let programs = vec![
        build_capture_program(snap, wset, 4096),
        build_prefetch_program(snap, groups, 256),
        build_prefetch_program_telemetry(snap, groups, 256, ring, stats),
        build_prefetch_program_cascade(snap, groups),
    ];
    Ok((k, programs))
}

/// Lints every shipped program with the full
/// [`snapbpf_ebpf::lint_program`] suite and returns the concatenated
/// rendered reports. This backs the `figures` CLI's `lint-report`
/// output and the CI `opt_check` smoke step; shipped programs must
/// stay free of `deny`-severity diagnostics.
///
/// # Errors
///
/// Fails if the backing maps cannot be created.
pub fn lint_report() -> Result<String, snapbpf_kernel::KernelError> {
    let (k, programs) = shipped_programs()?;
    let mut out = String::new();
    for prog in &programs {
        out.push_str(&snapbpf_ebpf::lint_program(prog, k.maps(), HOST_KFUNCS).render());
    }
    Ok(out)
}

/// Optimizes every shipped program with the full
/// [`snapbpf_ebpf::PassManager`] pipeline, re-verifies each
/// optimized image, and returns a per-program report of the
/// optimization statistics. This backs the `figures` CLI's
/// `opt-report` output.
///
/// # Errors
///
/// Fails if the backing maps cannot be created or an optimized
/// image no longer verifies (a pipeline bug by construction).
pub fn opt_report() -> Result<String, snapbpf_kernel::KernelError> {
    let (k, programs) = shipped_programs()?;
    let mut out = String::new();
    for prog in &programs {
        let (optimized, stats) =
            snapbpf_ebpf::PassManager::new().optimize(prog, k.maps(), HOST_KFUNCS);
        snapbpf_ebpf::Verifier::new(k.maps(), HOST_KFUNCS)
            .verify(&optimized)
            .map_err(snapbpf_kernel::KernelError::Verify)?;
        use std::fmt::Write as _;
        let _ = writeln!(out, "optimizing program {}", prog.name());
        let _ = writeln!(out, "  {stats}");
        let _ = writeln!(out, "  re-verification OK");
    }
    Ok(out)
}

/// Reads the captured samples back out of a capture map (the
/// userspace side of the record phase: "the VMM reads the offsets
/// from the eBPF map").
///
/// # Errors
///
/// Propagates map access errors.
pub fn read_captured_samples(
    maps: &snapbpf_ebpf::MapSet,
    wset: MapId,
) -> Result<Vec<OffsetSample>, snapbpf_ebpf::MapError> {
    let count = maps.array_load_u64(wset, WSET_COUNT_SLOT)? as u32;
    let mut samples = Vec::with_capacity(count as usize);
    for i in 0..count {
        let page = maps.array_load_u64(wset, 1 + 2 * i)?;
        let first_access_ns = maps.array_load_u64(wset, 2 + 2 * i)?;
        samples.push(OffsetSample {
            page,
            first_access_ns,
        });
    }
    Ok(samples)
}

/// Encodes groups into the slots of a groups map, as a `u64` slice
/// ready for [`snapbpf_kernel::HostKernel::load_map_from_user`]
/// (slot 0 = count, slot 1 = cursor 0, then (start, len) pairs).
pub fn groups_map_image(groups: &[WsGroup]) -> Vec<u64> {
    let mut image = Vec::with_capacity(2 + groups.len() * 2);
    image.push(groups.len() as u64);
    image.push(0); // cursor
    for g in groups {
        image.push(g.start);
        image.push(g.len);
    }
    image
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapbpf_kernel::{HostKernel, KernelConfig, PAGE_CACHE_ADD_HOOK};
    use snapbpf_sim::SimTime;
    use snapbpf_storage::{Disk, SsdModel};

    fn kernel() -> HostKernel {
        HostKernel::new(
            Disk::new(Box::new(SsdModel::micron_5300())),
            KernelConfig::default(),
        )
    }

    #[test]
    fn capture_program_verifies_and_records_in_order() {
        let mut k = kernel();
        k.set_readahead(false);
        let snap = k.disk_mut().create_file("snap", 8192).unwrap();
        let other = k.disk_mut().create_file("other", 64).unwrap();
        let wset = k.create_map(wset_map_def(1024)).unwrap();
        let prog = build_capture_program(snap, wset, 1024);
        k.load_and_attach(PAGE_CACHE_ADD_HOOK, &prog).unwrap();

        let mut t = SimTime::ZERO;
        for page in [500u64, 100, 101, 4000] {
            t = k.read_file_page(t, snap, page).unwrap().ready_at;
        }
        k.read_file_page(t, other, 5).unwrap();

        let samples = read_captured_samples(k.maps(), wset).unwrap();
        let pages: Vec<u64> = samples.iter().map(|s| s.page).collect();
        assert_eq!(pages, vec![500, 100, 101, 4000]);
        // Timestamps are non-decreasing in capture order.
        assert!(samples
            .windows(2)
            .all(|w| w[0].first_access_ns <= w[1].first_access_ns));
    }

    #[test]
    fn capture_stops_at_capacity() {
        let mut k = kernel();
        k.set_readahead(false);
        let snap = k.disk_mut().create_file("snap", 8192).unwrap();
        let wset = k.create_map(wset_map_def(2)).unwrap();
        let prog = build_capture_program(snap, wset, 2);
        k.load_and_attach(PAGE_CACHE_ADD_HOOK, &prog).unwrap();
        let mut t = SimTime::ZERO;
        for page in [1u64, 2, 3, 4] {
            t = k.read_file_page(t, snap, page).unwrap().ready_at;
        }
        let samples = read_captured_samples(k.maps(), wset).unwrap();
        assert_eq!(samples.len(), 2);
    }

    fn test_groups() -> Vec<WsGroup> {
        vec![
            WsGroup {
                start: 1000,
                len: 16,
                earliest_ns: 0,
            },
            WsGroup {
                start: 200,
                len: 8,
                earliest_ns: 1,
            },
            WsGroup {
                start: 4000,
                len: 4,
                earliest_ns: 2,
            },
        ]
    }

    /// Runs one restore with `prog` attached and returns the ordered
    /// `(start_page, pages)` prefetch-range sequence plus the probe's
    /// invocation count.
    fn run_prefetch(
        groups: &[WsGroup],
        build: impl FnOnce(snapbpf_storage::FileId, snapbpf_ebpf::MapId) -> snapbpf_ebpf::Program,
    ) -> (Vec<(u64, u64)>, u64) {
        let mut k = kernel();
        let tracer = snapbpf_sim::Tracer::recording();
        k.install_tracer(&tracer);
        k.set_readahead(false);
        let snap = k.disk_mut().create_file("snap", 8192).unwrap();
        let map = k.create_map(groups_map_def(groups.len() as u32)).unwrap();
        k.load_map_from_user(map, 0, &groups_map_image(groups))
            .unwrap();
        let prog = build(snap, map);
        let probe = k.load_and_attach(PAGE_CACHE_ADD_HOOK, &prog).unwrap();

        k.trigger_access(SimTime::ZERO, snap, 0).unwrap();

        for g in groups {
            for p in g.start..g.end() {
                assert!(k.page_state(snap, p).is_some(), "page {p} missing");
            }
        }
        assert!(!k.probe_enabled(probe), "program must disable itself");
        assert_eq!(
            k.maps().array_load_u64(map, GROUPS_CURSOR_SLOT).unwrap(),
            groups.len() as u64,
            "final cursor must equal ngroups"
        );

        let ranges = tracer
            .take_events()
            .into_iter()
            .filter(|e| e.name == "prefetch-range")
            .map(|e| {
                let field = |key: &str| {
                    e.args
                        .iter()
                        .find_map(|(k, v)| match v {
                            snapbpf_sim::TraceValue::U64(n) if *k == key => Some(*n),
                            _ => None,
                        })
                        .expect("u64 arg present")
                };
                (field("start_page"), field("pages"))
            })
            .collect();
        (ranges, k.probe_runs(probe).unwrap())
    }

    #[test]
    fn prefetch_program_cascades_through_groups() {
        let groups = test_groups();
        let (_, runs) = run_prefetch(&groups, build_prefetch_program_cascade);
        // One invocation per issued group plus the final self-disable.
        assert_eq!(runs, groups.len() as u64 + 1);
    }

    #[test]
    fn looped_prefetch_program_runs_once() {
        let groups = test_groups();
        let (ranges, runs) = run_prefetch(&groups, |snap, map| {
            build_prefetch_program(snap, map, groups.len() as u32)
        });
        assert_eq!(runs, 1, "looped program must need a single invocation");
        assert_eq!(
            ranges,
            groups.iter().map(|g| (g.start, g.len)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn looped_and_cascade_prefetch_identical_sequences() {
        // The equivalence the verifier upgrade must preserve: on the
        // same recorded working set, the looped program issues the
        // exact range sequence of the re-trigger cascade — while
        // cutting `ebpf.prog.invocations` from `ngroups + 1` to 1.
        let groups = test_groups();
        let (cascade_seq, cascade_runs) = run_prefetch(&groups, build_prefetch_program_cascade);
        let (looped_seq, looped_runs) = run_prefetch(&groups, |snap, map| {
            build_prefetch_program(snap, map, groups.len() as u32)
        });
        assert_eq!(looped_seq, cascade_seq);
        assert!(!looped_seq.is_empty());
        assert_eq!(cascade_runs, groups.len() as u64 + 1);
        assert_eq!(looped_runs, 1);
        assert!(looped_runs < cascade_runs);
    }

    #[test]
    fn looped_prefetch_handles_empty_and_full_maps() {
        // ngroups == 0: the loop body never runs, the program still
        // self-disables on its first invocation.
        let (ranges, runs) = run_prefetch(&[], |snap, map| build_prefetch_program(snap, map, 0));
        assert_eq!(ranges, vec![]);
        assert_eq!(runs, 1);
    }

    #[test]
    fn verify_rejection_chains_through_error_sources() {
        use std::error::Error as _;

        let mut k = kernel();
        let mut b = snapbpf_ebpf::ProgramBuilder::new("bad");
        b.mov(Reg::R0, Reg::R3).exit(); // r3 is never initialized
        let err = k
            .load_and_attach(PAGE_CACHE_ADD_HOOK, &b.build().unwrap())
            .unwrap_err();
        // KernelError -> VerifyError -> VerifyErrorKind, the same
        // chain StrategyError::Stage exposes via source().
        let verify = err
            .source()
            .expect("kernel error has a source")
            .downcast_ref::<snapbpf_ebpf::VerifyError>()
            .expect("source is the verifier rejection");
        assert_eq!(verify.at, Some(0), "Display must carry the offending pc");
        assert!(
            verify.register_snapshot().is_some(),
            "rejection carries the abstract register state"
        );
        assert!(verify.source().is_some(), "kind terminates the chain");
    }

    #[test]
    fn verifier_log_report_covers_all_shipped_programs() {
        let report = verifier_log_report().unwrap();
        assert_eq!(
            report.matches("verification OK").count(),
            4,
            "capture, looped prefetch, telemetry prefetch, and cascade must all verify:\n{report}"
        );
        assert_eq!(report.matches("verifying program ").count(), 4);
    }

    #[test]
    fn telemetry_prefetch_issues_the_same_ranges_and_reports_them() {
        use snapbpf_ebpf::TelemetryRecord;

        let groups = test_groups();
        let mut k = kernel();
        k.set_readahead(false);
        let snap = k.disk_mut().create_file("snap", 8192).unwrap();
        let map = k.create_map(groups_map_def(groups.len() as u32)).unwrap();
        k.load_map_from_user(map, 0, &groups_map_image(&groups))
            .unwrap();
        let ring = k.create_map(snapbpf_ebpf::telemetry_ring_def()).unwrap();
        let stats = k.create_map(snapbpf_ebpf::telemetry_stats_def()).unwrap();
        let prog = build_prefetch_program_telemetry(snap, map, groups.len() as u32, ring, stats);
        let probe = k.load_and_attach(PAGE_CACHE_ADD_HOOK, &prog).unwrap();

        k.trigger_access(SimTime::ZERO, snap, 0).unwrap();
        assert!(!k.probe_enabled(probe), "program must disable itself");

        // The ring carries one PrefetchIssued per group, in group
        // order, then the PrefetchCompleted marker.
        let mut records = Vec::new();
        while let Some(raw) = k.maps_mut().ring_pop(ring).unwrap() {
            records.push(TelemetryRecord::decode(&raw).unwrap());
        }
        assert_eq!(records.len(), groups.len() + 1);
        for (rec, g) in records.iter().zip(&groups) {
            assert_eq!(
                *rec,
                TelemetryRecord::PrefetchIssued {
                    now_ns: 0,
                    file: snap.as_u32() as u64,
                    start_page: g.start,
                    pages: g.len,
                }
            );
        }
        let total: u64 = groups.iter().map(|g| g.len).sum();
        assert_eq!(
            records[groups.len()],
            TelemetryRecord::PrefetchCompleted {
                now_ns: 0,
                groups: groups.len() as u64,
                pages: total,
            }
        );

        // Per-CPU stats agree, and nothing was dropped.
        let stat = |slot| k.maps().percpu_load_merged_u64(stats, slot).unwrap();
        assert_eq!(stat(snapbpf_ebpf::STAT_SLOT_ISSUED), groups.len() as u64);
        assert_eq!(stat(snapbpf_ebpf::STAT_SLOT_PAGES), total);
        assert_eq!(stat(snapbpf_ebpf::STAT_SLOT_ENOSPC), 0);
        assert_eq!(k.maps().ring_dropped(ring).unwrap(), 0);
    }

    #[test]
    fn telemetry_prefetch_round_trips_through_asm_text() {
        // Satellite of the telemetry PR: the shipped telemetry
        // program survives the disassemble → parse round trip.
        let mut k = kernel();
        let snap = k.disk_mut().create_file("snap", 8192).unwrap();
        let map = k.create_map(groups_map_def(8)).unwrap();
        let ring = k.create_map(snapbpf_ebpf::telemetry_ring_def()).unwrap();
        let stats = k.create_map(snapbpf_ebpf::telemetry_stats_def()).unwrap();
        let prog = build_prefetch_program_telemetry(snap, map, 8, ring, stats);
        let parsed =
            snapbpf_ebpf::parse_program("snapbpf_prefetch_tel", &prog.to_string()).unwrap();
        assert_eq!(parsed, prog);
    }

    #[test]
    fn groups_map_image_layout() {
        let groups = [WsGroup {
            start: 7,
            len: 3,
            earliest_ns: 0,
        }];
        let image = groups_map_image(&groups);
        assert_eq!(image, vec![1, 0, 7, 3]);
    }

    #[test]
    fn map_defs_size_correctly() {
        assert_eq!(wset_map_def(10).max_entries, 21);
        assert_eq!(groups_map_def(10).max_entries, 22);
    }
}
