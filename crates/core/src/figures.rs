//! Regeneration of every table and figure in the paper's evaluation,
//! plus the ablations DESIGN.md calls out.
//!
//! Each function returns a [`FigureData`] with the same series the
//! paper plots; the `snapbpf-bench` crate prints them and
//! `EXPERIMENTS.md` records paper-vs-measured shapes.

use snapbpf_sim::SimDuration;
use snapbpf_workloads::Workload;

use crate::experiment::{run_colocated, run_one, run_one_with, DeviceKind, RunConfig, RunResult};
use crate::report::FigureData;
use crate::strategies::{Faasnap, SnapBpf};
use crate::strategy::{StrategyError, StrategyKind};

/// Configuration shared by the figure generators.
#[derive(Debug, Clone)]
pub struct FigureConfig {
    /// Workload size scale in `(0, 1]`.
    pub scale: f64,
    /// Concurrent sandboxes for Figures 3b/3c (paper: 10).
    pub instances: usize,
    /// The functions to evaluate (paper: the full 14-function suite).
    pub workloads: Vec<Workload>,
    /// Storage device every run uses (paper testbed: SATA SSD;
    /// sweepable to NVMe/HDD from the `figures` CLI).
    pub device: DeviceKind,
}

impl FigureConfig {
    /// Paper-sized configuration: full suite, scale 1.0, 10
    /// instances.
    pub fn paper() -> Self {
        FigureConfig {
            scale: 1.0,
            instances: 10,
            workloads: Workload::suite(),
            device: DeviceKind::Sata5300,
        }
    }

    /// A reduced configuration for quick runs and tests.
    pub fn quick(scale: f64) -> Self {
        FigureConfig {
            scale,
            instances: 4,
            workloads: ["json", "image", "rnn", "bert"]
                .iter()
                .map(|n| Workload::by_name(n).expect("suite function"))
                .collect(),
            device: DeviceKind::Sata5300,
        }
    }

    fn names(&self) -> Vec<String> {
        self.workloads.iter().map(|w| w.name().to_owned()).collect()
    }

    /// A single-instance run configuration on this figure set's
    /// device.
    fn single(&self) -> RunConfig {
        RunConfig::single(self.scale).on(self.device)
    }

    /// A `instances`-way concurrent run configuration on this figure
    /// set's device.
    fn concurrent(&self) -> RunConfig {
        RunConfig::concurrent(self.scale, self.instances).on(self.device)
    }
}

fn collect_series(
    cfg: &FigureConfig,
    kinds: &[StrategyKind],
    run_cfg: &RunConfig,
    metric: impl Fn(&RunResult) -> f64,
    figure: &mut FigureData,
) -> Result<(), StrategyError> {
    for &kind in kinds {
        let mut values = Vec::with_capacity(cfg.workloads.len());
        for w in &cfg.workloads {
            let r = run_one(kind, w, run_cfg)?;
            values.push(metric(&r));
        }
        figure.push_series(kind.label(), values);
    }
    Ok(())
}

/// Figure 3a: end-to-end latency, single instance — REAP vs FaaSnap
/// vs SnapBPF. Values in seconds (normalize with
/// [`FigureData::normalized_to`] for the paper's presentation).
///
/// # Errors
///
/// Strategy errors propagate.
pub fn fig3a(cfg: &FigureConfig) -> Result<FigureData, StrategyError> {
    let mut fig = FigureData::new(
        "fig3a",
        "E2E function latency, 1 instance",
        "s",
        cfg.names(),
    );
    let run_cfg = cfg.single();
    collect_series(
        cfg,
        &[
            StrategyKind::Reap,
            StrategyKind::Faasnap,
            StrategyKind::SnapBpf,
        ],
        &run_cfg,
        |r| r.e2e_mean().as_secs_f64(),
        &mut fig,
    )?;
    Ok(fig)
}

/// Figure 3b: end-to-end latency, `instances` concurrent sandboxes —
/// Linux-NoRA, Linux-RA, REAP, SnapBPF. Values in seconds.
///
/// # Errors
///
/// Strategy errors propagate.
pub fn fig3b(cfg: &FigureConfig) -> Result<FigureData, StrategyError> {
    let mut fig = FigureData::new(
        "fig3b",
        &format!(
            "E2E function latency, {} concurrent instances",
            cfg.instances
        ),
        "s",
        cfg.names(),
    );
    let run_cfg = cfg.concurrent();
    collect_series(
        cfg,
        &[
            StrategyKind::LinuxNoRa,
            StrategyKind::LinuxRa,
            StrategyKind::Reap,
            StrategyKind::SnapBpf,
        ],
        &run_cfg,
        |r| r.e2e_mean().as_secs_f64(),
        &mut fig,
    )?;
    Ok(fig)
}

/// Figure 3c: system-wide memory, `instances` concurrent sandboxes —
/// Linux-NoRA, Linux-RA, REAP, SnapBPF. Values in GiB.
///
/// # Errors
///
/// Strategy errors propagate.
pub fn fig3c(cfg: &FigureConfig) -> Result<FigureData, StrategyError> {
    let mut fig = FigureData::new(
        "fig3c",
        &format!("Memory consumption, {} concurrent instances", cfg.instances),
        "GiB",
        cfg.names(),
    );
    let run_cfg = cfg.concurrent();
    collect_series(
        cfg,
        &[
            StrategyKind::LinuxNoRa,
            StrategyKind::LinuxRa,
            StrategyKind::Reap,
            StrategyKind::SnapBpf,
        ],
        &run_cfg,
        |r| r.memory.total_gib(),
        &mut fig,
    )?;
    Ok(fig)
}

/// Figure 4: mechanism breakdown, single instance — Linux-RA,
/// PV PTEs only, and full SnapBPF, normalized to Linux-RA.
///
/// # Errors
///
/// Strategy errors propagate.
pub fn fig4(cfg: &FigureConfig) -> Result<FigureData, StrategyError> {
    let mut fig = FigureData::new(
        "fig4",
        "Breakdown: PV PTE marking vs eBPF prefetching",
        "s",
        cfg.names(),
    );
    let run_cfg = cfg.single();
    collect_series(
        cfg,
        &[
            StrategyKind::LinuxRa,
            StrategyKind::SnapBpfPvOnly,
            StrategyKind::SnapBpf,
        ],
        &run_cfg,
        |r| r.e2e_mean().as_secs_f64(),
        &mut fig,
    )?;
    Ok(fig.normalized_to("Linux-RA"))
}

/// Table 1: the mechanism-comparison matrix, rendered as text.
pub fn table1() -> String {
    let mut out = String::new();
    out.push_str("# Table 1 — Comparison of snapshot prefetching techniques\n");
    out.push_str(&format!(
        "{:<22}  {:<28}  {:^10}  {:^10}  {:^10}\n",
        "Approach", "Mechanism", "On-disk WS", "WS dedup", "Stateless filter"
    ));
    for kind in [
        StrategyKind::Reap,
        StrategyKind::Faast,
        StrategyKind::Faasnap,
        StrategyKind::SnapBpf,
    ] {
        let caps = kind.build().capabilities();
        let mark = |b: bool| if b { "yes" } else { "no" };
        out.push_str(&format!(
            "{:<22}  {:<28}  {:^10}  {:^10}  {:^10}\n",
            kind.label(),
            caps.mechanism,
            mark(caps.on_disk_ws_serialization),
            mark(caps.in_memory_ws_dedup),
            mark(caps.stateless_vm_allocation_filtering),
        ));
    }
    out
}

/// §4 "SnapBPF Overheads": per function, the offsets-map load cost
/// in milliseconds and its fraction of E2E latency (paper: ~1–2 ms,
/// <1% on average).
///
/// # Errors
///
/// Strategy errors propagate.
pub fn overheads(cfg: &FigureConfig) -> Result<FigureData, StrategyError> {
    let mut fig = FigureData::new(
        "overheads",
        "SnapBPF offsets-load overhead",
        "ms / fraction",
        cfg.names(),
    );
    let run_cfg = cfg.single();
    let mut load_ms = Vec::new();
    let mut frac = Vec::new();
    for w in &cfg.workloads {
        let r = run_one(StrategyKind::SnapBpf, w, &run_cfg)?;
        load_ms.push(r.offset_load_cost.as_millis_f64());
        frac.push(r.offset_load_cost.ratio(r.e2e_mean()));
    }
    fig.push_series("offset-load-ms", load_ms);
    fig.push_series("fraction-of-e2e", frac);
    Ok(fig)
}

/// Ablation A1 — FaaSnap's region coalescing: working-set file size
/// and invoke-phase read bytes as the gap threshold grows (the I/O
/// amplification the paper verified with eBPF, §2.1). Uses the
/// `gaps` thresholds as the x-axis instead of functions.
///
/// # Errors
///
/// Strategy errors propagate.
pub fn ablation_coalesce(
    workload: &Workload,
    scale: f64,
    gaps: &[u64],
) -> Result<FigureData, StrategyError> {
    let mut fig = FigureData::new(
        "ablation-coalesce",
        &format!("FaaSnap coalescing gap sweep ({})", workload.name()),
        "MiB",
        gaps.iter().map(|g| format!("gap={g}")).collect(),
    );
    let run_cfg = RunConfig::single(scale);
    let mut ws_mib = Vec::new();
    let mut read_mib = Vec::new();
    for &gap in gaps {
        let mut strat = Faasnap::with_gap(gap);
        let r = run_one_with(&mut strat, "FaaSnap", workload, &run_cfg)?;
        ws_mib.push(r.artifact_pages as f64 * 4096.0 / (1 << 20) as f64);
        read_mib.push(r.invoke_read_bytes as f64 / (1 << 20) as f64);
    }
    fig.push_series("ws-file-MiB", ws_mib);
    fig.push_series("invoke-read-MiB", read_mib);
    Ok(fig)
}

/// Ablation A2 — device sensitivity: REAP (sequential WS file, no
/// sharing) vs SnapBPF (scattered ranges from the snapshot) on the
/// SATA SSD, an NVMe drive, and a spindle disk. X-axis is the
/// device.
///
/// # Errors
///
/// Strategy errors propagate.
pub fn ablation_device(workload: &Workload, scale: f64) -> Result<FigureData, StrategyError> {
    let devices = DeviceKind::ALL;
    let mut fig = FigureData::new(
        "ablation-device",
        &format!("Device sensitivity ({})", workload.name()),
        "s",
        devices.iter().map(|d| d.label().to_owned()).collect(),
    );
    for kind in [StrategyKind::Reap, StrategyKind::SnapBpf] {
        let mut values = Vec::new();
        for d in devices {
            let r = run_one(kind, workload, &RunConfig::single(scale).on(d))?;
            values.push(r.e2e_mean().as_secs_f64());
        }
        fig.push_series(kind.label(), values);
    }
    Ok(fig)
}

/// Ablation A3 — the KVM CoW patch: memory at concurrency with the
/// patched (opportunistic) vs unpatched (forced-write) KVM.
///
/// # Errors
///
/// Strategy errors propagate.
pub fn ablation_cow(cfg: &FigureConfig) -> Result<FigureData, StrategyError> {
    let mut fig = FigureData::new(
        "ablation-cow",
        &format!("KVM CoW patch effect, {} instances", cfg.instances),
        "GiB",
        cfg.names(),
    );
    let run_cfg = cfg.concurrent();
    collect_series(
        cfg,
        &[StrategyKind::SnapBpf, StrategyKind::SnapBpfBuggyCow],
        &run_cfg,
        |r| r.memory.total_gib(),
        &mut fig,
    )?;
    Ok(fig)
}

/// Ablation A4 — offset grouping and access-order sorting: E2E
/// latency of SnapBPF with both, only grouping, only sorting, and
/// neither.
///
/// # Errors
///
/// Strategy errors propagate.
pub fn ablation_grouping(cfg: &FigureConfig) -> Result<FigureData, StrategyError> {
    let mut fig = FigureData::new(
        "ablation-grouping",
        "SnapBPF grouping/sorting design",
        "s",
        cfg.names(),
    );
    let variants: [(&'static str, bool, bool); 4] = [
        ("group+sort", true, true),
        ("group-only", true, false),
        ("sort-only", false, true),
        ("neither", false, false),
    ];
    let run_cfg = cfg.single();
    for (label, group, sort) in variants {
        let mut values = Vec::new();
        for w in &cfg.workloads {
            let mut strat = SnapBpf::full().with_layout(group, sort);
            let r = run_one_with(&mut strat, label, w, &run_cfg)?;
            values.push(r.e2e_mean().as_secs_f64());
        }
        fig.push_series(label, values);
    }
    Ok(fig)
}

/// Extension E1 — the paper's deferred future work, §4: "We
/// consider evaluating the effect of varying function inputs on
/// SnapBPF's memory deduplication for future work." Each sandbox is
/// invoked with a different input variant (75% of the working set is
/// input-independent in the workload models); the figure reports
/// memory under identical vs varying inputs for REAP and SnapBPF.
///
/// # Errors
///
/// Strategy errors propagate.
pub fn ext_input_variants(cfg: &FigureConfig) -> Result<FigureData, StrategyError> {
    let mut fig = FigureData::new(
        "ext-variants",
        &format!("Memory under input variation, {} instances", cfg.instances),
        "GiB",
        cfg.names(),
    );
    let base = cfg.concurrent();
    let varying = base.with_varying_inputs();
    for (label, run_cfg, kind) in [
        ("REAP-identical", base, StrategyKind::Reap),
        ("REAP-varying", varying, StrategyKind::Reap),
        ("SnapBPF-identical", base, StrategyKind::SnapBpf),
        ("SnapBPF-varying", varying, StrategyKind::SnapBpf),
    ] {
        let mut values = Vec::new();
        for w in &cfg.workloads {
            values.push(run_one(kind, w, &run_cfg)?.memory.total_gib());
        }
        fig.push_series(label, values);
    }
    Ok(fig)
}

/// Extension E2 — the paper's deferred "comprehensive analysis of
/// the computational and memory costs of SnapBPF": per function, the
/// CPU spent in kprobe dispatch + eBPF program execution, the hook
/// fire count, and the record-phase capture overhead versus a
/// vanilla invocation.
///
/// # Errors
///
/// Strategy errors propagate.
pub fn ext_cost_analysis(cfg: &FigureConfig) -> Result<FigureData, StrategyError> {
    let mut fig = FigureData::new(
        "ext-costs",
        "SnapBPF computational costs",
        "ms / count / ratio",
        cfg.names(),
    );
    let run_cfg = cfg.single();
    let mut ebpf_ms = Vec::new();
    let mut fires = Vec::new();
    let mut ebpf_frac = Vec::new();
    for w in &cfg.workloads {
        let r = run_one(StrategyKind::SnapBpf, w, &run_cfg)?;
        ebpf_ms.push(r.ebpf_cpu.as_millis_f64());
        fires.push(r.hook_fires as f64);
        ebpf_frac.push(r.ebpf_cpu.ratio(r.e2e_mean()));
    }
    fig.push_series("ebpf-cpu-ms", ebpf_ms);
    fig.push_series("hook-fires", fires);
    fig.push_series("ebpf-cpu-vs-e2e", ebpf_frac);
    Ok(fig)
}

/// Extension E3 — memory pressure: cap host memory and report
/// whether each approach completes `instances` concurrent sandboxes
/// (1.0 = completed, 0.0 = out of memory) plus the memory it used.
/// REAP's per-sandbox anonymous copies exhaust a cap that SnapBPF's
/// shared page cache fits comfortably.
///
/// # Errors
///
/// Only non-OOM kernel errors propagate.
pub fn ext_memory_pressure(
    workload: &Workload,
    scale: f64,
    instances: usize,
    cap_pages: u64,
) -> Result<FigureData, StrategyError> {
    let mut fig = FigureData::new(
        "ext-memory-pressure",
        &format!(
            "{} x{} under a {} MiB host-memory cap",
            workload.name(),
            instances,
            cap_pages * 4096 / (1 << 20)
        ),
        "completed / GiB",
        vec!["REAP".into(), "SnapBPF".into()],
    );
    let cfg = RunConfig::concurrent(scale, instances).with_memory_pages(cap_pages);
    let mut completed = Vec::new();
    let mut memory = Vec::new();
    for kind in [StrategyKind::Reap, StrategyKind::SnapBpf] {
        match run_one(kind, workload, &cfg) {
            Ok(r) => {
                completed.push(1.0);
                memory.push(r.memory.total_gib());
            }
            Err(StrategyError::Kernel(snapbpf_kernel::KernelError::OutOfMemory)) => {
                completed.push(0.0);
                memory.push(cap_pages as f64 * 4096.0 / (1u64 << 30) as f64);
            }
            Err(e) => return Err(e),
        }
    }
    fig.push_series("completed", completed);
    fig.push_series("memory-GiB", memory);
    Ok(fig)
}

/// Extension E7 — concurrency scaling: the paper evaluates 1 and 10
/// instances; this sweep fills in the curve. X-axis is the instance
/// count; series are REAP and SnapBPF latency (seconds) and memory
/// (GiB).
///
/// # Errors
///
/// Strategy errors propagate.
pub fn ext_concurrency_sweep(
    workload: &Workload,
    scale: f64,
    instance_counts: &[usize],
) -> Result<FigureData, StrategyError> {
    let mut fig = FigureData::new(
        "ext-concurrency",
        &format!("Concurrency sweep ({})", workload.name()),
        "s / GiB",
        instance_counts.iter().map(|n| format!("n={n}")).collect(),
    );
    for kind in [StrategyKind::Reap, StrategyKind::SnapBpf] {
        let mut lat = Vec::new();
        let mut mem = Vec::new();
        for &n in instance_counts {
            let r = run_one(kind, workload, &RunConfig::concurrent(scale, n))?;
            lat.push(r.e2e_mean().as_secs_f64());
            mem.push(r.memory.total_gib());
        }
        fig.push_series(&format!("{}-latency", kind.label()), lat);
        fig.push_series(&format!("{}-memory-GiB", kind.label()), mem);
    }
    Ok(fig)
}

/// Extension E5 — the cost of preparation: record-phase duration per
/// strategy. REAP and SnapBPF run one recording invocation; Faast
/// adds an allocator-metadata scan; FaaSnap adds a *full snapshot*
/// zero-page scan plus an inflated working-set serialization — the
/// "preemptive snapshot scanning and pre-processing" SnapBPF's
/// Table 1 column abolishes, priced in seconds.
///
/// # Errors
///
/// Strategy errors propagate.
pub fn ext_record_cost(cfg: &FigureConfig) -> Result<FigureData, StrategyError> {
    let mut fig = FigureData::new(
        "ext-record-cost",
        "Record/prepare phase duration",
        "s",
        cfg.names(),
    );
    let run_cfg = cfg.single();
    collect_series(
        cfg,
        &[
            StrategyKind::Reap,
            StrategyKind::Faast,
            StrategyKind::Faasnap,
            StrategyKind::SnapBpf,
        ],
        &run_cfg,
        |r| r.record_duration.as_secs_f64(),
        &mut fig,
    )?;
    Ok(fig)
}

/// Extension E6 — warm starts: the second invocation on an
/// already-started sandbox. All approaches converge to near
/// compute-only latency; the figure reports cold vs warm for
/// SnapBPF, bounding the model's steady state.
///
/// # Errors
///
/// Strategy errors propagate.
pub fn ext_warm_start(cfg: &FigureConfig) -> Result<FigureData, StrategyError> {
    use crate::strategy::FunctionCtx;
    use snapbpf_kernel::{HostKernel, KernelConfig};
    use snapbpf_storage::Disk;
    use snapbpf_vmm::{run_invocation, Snapshot};

    let mut fig = FigureData::new(
        "ext-warm-start",
        "SnapBPF cold vs warm invocation",
        "s",
        cfg.names(),
    );
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    let mut compute = Vec::new();
    for w in &cfg.workloads {
        let mut host = HostKernel::new(
            Disk::new(DeviceKind::Sata5300.build()),
            KernelConfig::default(),
        );
        let scaled = w.scaled(cfg.scale);
        let (snapshot, t_snap) = Snapshot::create(
            snapbpf_sim::SimTime::ZERO,
            scaled.name(),
            scaled.snapshot_pages(),
            &mut host,
        )?;
        let func = FunctionCtx {
            workload: scaled,
            snapshot,
        };
        let mut strat = crate::strategies::SnapBpf::full();
        let t_rec = crate::strategy::Strategy::record(&mut strat, t_snap, &mut host, &func)?;
        host.drop_all_caches()
            .map_err(crate::strategy::StrategyError::Kernel)?;
        let mut restored = crate::strategy::Strategy::restore(
            &mut strat,
            t_rec,
            &mut host,
            &func,
            snapbpf_mem::OwnerId::new(0),
        )?;
        let trace = func.workload.trace();
        let first = run_invocation(
            restored.ready_at,
            &mut restored.vm,
            &trace,
            &mut host,
            restored.resolver.as_mut(),
        )
        .map_err(crate::strategy::StrategyError::Kernel)?;
        let second = run_invocation(
            first.end_time,
            &mut restored.vm,
            &trace,
            &mut host,
            restored.resolver.as_mut(),
        )
        .map_err(crate::strategy::StrategyError::Kernel)?;
        cold.push(first.e2e_latency.as_secs_f64());
        warm.push(second.e2e_latency.as_secs_f64());
        compute.push(trace.total_compute().as_secs_f64());
    }
    fig.push_series("cold", cold);
    fig.push_series("warm", warm);
    fig.push_series("pure-compute", compute);
    Ok(fig)
}

/// Extension E4 — multi-tenant co-location: one sandbox of *every*
/// configured function on a shared host, all starting at once. The
/// figure reports per-function latency for REAP vs SnapBPF plus a
/// total-memory row appended as its own series.
///
/// # Errors
///
/// Strategy errors propagate.
pub fn ext_colocation(cfg: &FigureConfig) -> Result<FigureData, StrategyError> {
    let mut fig = FigureData::new(
        "ext-colocation",
        &format!(
            "{} co-located functions, one sandbox each",
            cfg.workloads.len()
        ),
        "s",
        cfg.names(),
    );
    let run_cfg = cfg.single();
    for kind in [StrategyKind::Reap, StrategyKind::SnapBpf] {
        let r = run_colocated(kind, &cfg.workloads, &run_cfg)?;
        fig.push_series(
            kind.label(),
            r.e2e.iter().map(|(_, d)| d.as_secs_f64()).collect(),
        );
        log_total(&mut fig, kind.label(), r.memory.total_gib());
    }
    Ok(fig)
}

fn log_total(fig: &mut FigureData, label: &str, gib: f64) {
    // Memory totals ride along as constant series (one value per
    // function keeps the FigureData shape rectangular).
    let n = fig.functions.len();
    fig.push_series(&format!("{label}-total-GiB"), vec![gib; n]);
}

/// Mean offsets-load latency across a config's workloads — the
/// paper's headline "~1–2 ms" number.
///
/// # Errors
///
/// Strategy errors propagate.
pub fn mean_offset_load(cfg: &FigureConfig) -> Result<SimDuration, StrategyError> {
    let fig = overheads(cfg)?;
    let values = fig
        .series_values("offset-load-ms")
        .expect("series just built");
    let mean_ms = values.iter().sum::<f64>() / values.len().max(1) as f64;
    Ok(SimDuration::from_secs_f64(mean_ms / 1e3))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FigureConfig {
        FigureConfig {
            scale: 0.05,
            instances: 3,
            workloads: ["json", "image", "bert"]
                .iter()
                .map(|n| Workload::by_name(n).unwrap())
                .collect(),
            device: DeviceKind::Sata5300,
        }
    }

    #[test]
    fn fig3a_shape_holds() {
        // tiny() evaluates json, image, bert (in that order).
        let fig = fig3a(&tiny()).unwrap();
        let norm = fig.normalized_to("REAP");
        let snap = norm.series_values("SnapBPF").unwrap();
        // "Matches and in some cases outperforms": overall at parity…
        assert!(
            norm.geomean("SnapBPF").unwrap() < 1.1,
            "geomean {}",
            norm.geomean("SnapBPF").unwrap()
        );
        // …clearly ahead on the allocation-heavy function…
        assert!(snap[1] < 0.8, "image: {}", snap[1]);
        // …and never far behind anywhere.
        assert!(snap.iter().all(|&v| v < 1.5), "{snap:?}");
    }

    #[test]
    fn fig3b_and_3c_shapes_hold() {
        let cfg = tiny();
        let b = fig3b(&cfg).unwrap();
        let snap = b.series_values("SnapBPF").unwrap();
        let reap = b.series_values("REAP").unwrap();
        // bert (index 2): REAP should be several times slower.
        assert!(
            reap[2] / snap[2] > 2.0,
            "bert: REAP {} vs SnapBPF {}",
            reap[2],
            snap[2]
        );

        let c = fig3c(&cfg).unwrap();
        let snap_mem = c.series_values("SnapBPF").unwrap();
        let reap_mem = c.series_values("REAP").unwrap();
        assert!(reap_mem[2] / snap_mem[2] > 2.0, "bert memory dedup");
    }

    #[test]
    fn fig4_shape_holds() {
        let fig = fig4(&tiny()).unwrap();
        let ra = fig.series_values("Linux-RA").unwrap();
        let pv = fig.series_values("PVPTEs").unwrap();
        let full = fig.series_values("SnapBPF").unwrap();
        assert!(ra.iter().all(|&v| (v - 1.0).abs() < 1e-9));
        // image (index 1) gains from PV alone; full is best or tied.
        assert!(pv[1] < 0.85, "image PV-only was {}", pv[1]);
        for i in 0..3 {
            assert!(full[i] <= pv[i] + 0.05, "function {i}");
        }
    }

    #[test]
    fn table1_renders() {
        let t = table1();
        assert!(t.contains("SnapBPF"));
        assert!(t.contains("eBPF (kernel-space)"));
        assert!(t.contains("REAP"));
    }

    #[test]
    fn overheads_are_small() {
        let fig = overheads(&tiny()).unwrap();
        for &f in fig.series_values("fraction-of-e2e").unwrap() {
            assert!(f < 0.1, "offset load fraction {f}");
        }
    }

    #[test]
    fn ablation_coalesce_shows_inflation() {
        let w = Workload::by_name("chameleon").unwrap();
        let fig = ablation_coalesce(&w, 0.2, &[0, 256]).unwrap();
        let ws = fig.series_values("ws-file-MiB").unwrap();
        assert!(ws[1] > ws[0], "larger gap must inflate the ws file");
    }

    #[test]
    fn concurrency_sweep_scaling_shapes() {
        let w = Workload::by_name("bfs").unwrap();
        let fig = ext_concurrency_sweep(&w, 0.05, &[1, 2, 4, 8]).unwrap();
        let reap_mem = fig.series_values("REAP-memory-GiB").unwrap();
        let snap_mem = fig.series_values("SnapBPF-memory-GiB").unwrap();
        // REAP memory grows ~linearly with instances; SnapBPF's is
        // ~flat (shared working set).
        assert!(reap_mem[3] / reap_mem[0] > 5.0, "{reap_mem:?}");
        assert!(snap_mem[3] / snap_mem[0] < 2.0, "{snap_mem:?}");
        // REAP latency degrades with concurrency; SnapBPF stays
        // within a small factor of its single-instance latency.
        let reap_lat = fig.series_values("REAP-latency").unwrap();
        let snap_lat = fig.series_values("SnapBPF-latency").unwrap();
        assert!(reap_lat[3] > reap_lat[0] * 2.0, "{reap_lat:?}");
        assert!(snap_lat[3] < snap_lat[0] * 3.0, "{snap_lat:?}");
    }

    #[test]
    fn record_cost_prices_preemptive_scanning() {
        let fig = ext_record_cost(&tiny()).unwrap();
        // FaaSnap's full-snapshot scan makes its record phase the
        // most expensive on every function.
        let faasnap = fig.series_values("FaaSnap").unwrap();
        let snapbpf = fig.series_values("SnapBPF").unwrap();
        for i in 0..faasnap.len() {
            assert!(
                faasnap[i] > snapbpf[i],
                "function {i}: FaaSnap {} vs SnapBPF {}",
                faasnap[i],
                snapbpf[i]
            );
        }
    }

    #[test]
    fn warm_start_converges_to_compute() {
        let fig = ext_warm_start(&tiny()).unwrap();
        let cold = fig.series_values("cold").unwrap();
        let warm = fig.series_values("warm").unwrap();
        let compute = fig.series_values("pure-compute").unwrap();
        for i in 0..cold.len() {
            assert!(warm[i] < cold[i], "function {i}");
            // Warm ≈ compute + small fault-free overhead.
            assert!(
                warm[i] < compute[i] * 2.0 + 0.001,
                "function {i}: warm {} vs compute {}",
                warm[i],
                compute[i]
            );
        }
    }

    #[test]
    fn colocation_preserves_the_memory_story() {
        let cfg = FigureConfig {
            scale: 0.04,
            instances: 1,
            workloads: ["json", "cnn", "bfs", "bert"]
                .iter()
                .map(|n| Workload::by_name(n).unwrap())
                .collect(),
            device: DeviceKind::Sata5300,
        };
        let fig = ext_colocation(&cfg).unwrap();
        let reap_mem = fig.series_values("REAP-total-GiB").unwrap()[0];
        let snap_mem = fig.series_values("SnapBPF-total-GiB").unwrap()[0];
        // With one sandbox per function there is nothing to dedup
        // *across* sandboxes, so memory stays comparable (SnapBPF
        // keeps CoW'd originals in the cache; REAP skips the cache
        // entirely) — the point is that co-location does not erase
        // SnapBPF's advantages, it just moves them to latency.
        assert!(snap_mem < reap_mem * 1.3, "{snap_mem} vs {reap_mem}");
        let reap_lat: f64 = fig.series_values("REAP").unwrap().iter().sum();
        let snap_lat: f64 = fig.series_values("SnapBPF").unwrap().iter().sum();
        assert!(
            snap_lat < reap_lat,
            "total latency {snap_lat} vs {reap_lat}"
        );
        // Every function completed on both strategies.
        assert!(fig
            .series_values("SnapBPF")
            .unwrap()
            .iter()
            .all(|&v| v > 0.0));
    }

    #[test]
    fn input_variation_weakens_dedup_but_snapbpf_still_wins() {
        let cfg = FigureConfig {
            scale: 0.05,
            instances: 4,
            workloads: vec![Workload::by_name("bfs").unwrap()],
            device: DeviceKind::Sata5300,
        };
        let fig = ext_input_variants(&cfg).unwrap();
        let snap_same = fig.series_values("SnapBPF-identical").unwrap()[0];
        let snap_vary = fig.series_values("SnapBPF-varying").unwrap()[0];
        let reap_vary = fig.series_values("REAP-varying").unwrap()[0];
        // Varying inputs cost SnapBPF extra memory (the
        // input-dependent quarter of each WS is private)…
        assert!(snap_vary > snap_same, "{snap_vary} vs {snap_same}");
        // …but the stable 3/4 still deduplicates, so it stays well
        // below REAP.
        assert!(reap_vary / snap_vary > 1.5, "{reap_vary} vs {snap_vary}");
    }

    #[test]
    fn cost_analysis_reports_small_ebpf_overhead() {
        let fig = ext_cost_analysis(&tiny()).unwrap();
        for &frac in fig.series_values("ebpf-cpu-vs-e2e").unwrap() {
            assert!(frac < 0.2, "eBPF CPU fraction {frac}");
        }
        for &fires in fig.series_values("hook-fires").unwrap() {
            assert!(fires > 0.0);
        }
    }

    #[test]
    fn memory_pressure_breaks_reap_first() {
        let w = Workload::by_name("bert").unwrap();
        // Cap sized to hold one shared working set plus slack, but
        // not four private copies. bert at 0.05: WS ≈ 13 MiB/VM.
        let cap_pages = 8 << 10; // 32 MiB (buddy needs ≥ 4 MiB units)
        let fig = ext_memory_pressure(&w, 0.05, 4, cap_pages).unwrap();
        let completed = fig.series_values("completed").unwrap();
        assert_eq!(completed[1], 1.0, "SnapBPF must fit");
        assert_eq!(completed[0], 0.0, "REAP must exhaust the cap");
    }

    #[test]
    fn ablation_device_flips_on_hdd() {
        let w = Workload::by_name("image").unwrap();
        let fig = ablation_device(&w, 0.05).unwrap();
        let reap = fig.series_values("REAP").unwrap();
        let snap = fig.series_values("SnapBPF").unwrap();
        // On the SSD (index 0), SnapBPF wins.
        assert!(snap[0] < reap[0]);
        // On the HDD (index 2), everything is slow; scattered I/O
        // loses at least part of its advantage.
        let ssd_edge = reap[0] / snap[0];
        let hdd_edge = reap[2] / snap[2];
        assert!(
            hdd_edge < ssd_edge,
            "HDD should shrink SnapBPF's edge (ssd {ssd_edge:.2} vs hdd {hdd_edge:.2})"
        );
    }
}
