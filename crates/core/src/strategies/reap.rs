//! REAP (Record-and-Prefetch, ASPLOS '21).
//!
//! Userfaultfd-based record/replay:
//!
//! * **record** — register userfaultfd over all guest memory, run
//!   one invocation; the userspace handler fetches each faulting
//!   page from the snapshot with direct I/O and logs it. The logged
//!   pages (in fault order) are then serialized to a separate
//!   working-set file, plus an offsets metadata file.
//! * **restore** — register userfaultfd again; a prefetch thread
//!   reads the working-set file sequentially with direct I/O into a
//!   userspace buffer and installs pages via `UFFDIO_COPY`. Because
//!   installs are **anonymous memory**, nothing is shared between
//!   sandboxes of the same function — the dedup failure Figure 3c
//!   quantifies.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use snapbpf_kernel::{CowPolicy, HostKernel, KernelError};
use snapbpf_mem::OwnerId;
use snapbpf_sim::SimTime;
use snapbpf_storage::{FileId, IoPath};
use snapbpf_vmm::{run_invocation, MicroVm, Snapshot, UffdResolver};

use crate::restore::{RestoreCursor, RestoreOps, RestoreStage, StepOutcome};
use crate::strategy::{Capabilities, FunctionCtx, Strategy, StrategyError};

/// Pages per working-set-file read chunk during restore prefetch.
pub(crate) const PREFETCH_CHUNK_PAGES: u64 = 512;

/// Record-phase handler: serve each fault from the snapshot with
/// direct I/O and log the fault order.
struct RecordingResolver {
    snapshot: FileId,
    log: Vec<u64>,
}

impl UffdResolver for RecordingResolver {
    fn resolve(
        &mut self,
        now: SimTime,
        gpfn: u64,
        host: &mut HostKernel,
    ) -> Result<SimTime, KernelError> {
        let done = host
            .disk_mut()
            .read_file_pages(now, self.snapshot, gpfn, 1, IoPath::Direct)?;
        self.log.push(gpfn);
        Ok(done.done_at)
    }
}

/// Invocation-phase handler: working-set pages become available as
/// the prefetch thread's chunks arrive and install; anything else is
/// a demand direct-I/O read of the snapshot.
///
/// The availability map is shared (`Rc`) with the restore cursor's
/// background prefetch step: in a pipelined fleet a fault that races
/// ahead of the prefetch thread blocks until the page's install
/// lands (`UFFDIO_COPY` wakes the faulting vCPU), while non-recorded
/// pages take the demand-read path, exactly like the real system.
pub(crate) struct PrefetchedResolver {
    pub(crate) snapshot: FileId,
    /// gpfn -> time its bytes are installed by the prefetch thread.
    pub(crate) available: Rc<RefCell<HashMap<u64, SimTime>>>,
    /// gpfns served with zero-fill without any I/O (Faast's
    /// allocation filter; empty for REAP).
    pub(crate) zero_filled: HashSet<u64>,
}

impl UffdResolver for PrefetchedResolver {
    fn resolve(
        &mut self,
        now: SimTime,
        gpfn: u64,
        host: &mut HostKernel,
    ) -> Result<SimTime, KernelError> {
        if self.zero_filled.contains(&gpfn) {
            return Ok(now);
        }
        if let Some(&t) = self.available.borrow().get(&gpfn) {
            return Ok(t.max(now));
        }
        let done = host
            .disk_mut()
            .read_file_pages(now, self.snapshot, gpfn, 1, IoPath::Direct)?;
        Ok(done.done_at)
    }
}

/// Restore state machine shared by REAP and Faast (Faast is REAP
/// plus an allocation filter): readahead on, uffd registration, and
/// a **background** prefetch + install pipeline over the working-set
/// file:
///
/// * the prefetch thread issues one large direct-I/O read per chunk,
///   all queued at issue time (the device serializes them),
/// * the installer thread walks the buffer in file order, issuing
///   one `UFFDIO_COPY` per page — a serial chain of page-copy +
///   anonymous-allocation work that starts for page `i` only once
///   its chunk has arrived and page `i-1` is installed.
///
/// The vCPU resumes without waiting for any of it: pages the guest
/// touches before their install completes take a userfaultfd round
/// trip (handled by the engine); the rest are pre-installed and cost
/// nothing extra — which is exactly REAP's behaviour.
pub(crate) struct UffdRestoreOps {
    ws_file: FileId,
    ws_order: Vec<u64>,
    snapshot: Snapshot,
    zero_filled: HashSet<u64>,
    owner: OwnerId,
    available: Rc<RefCell<HashMap<u64, SimTime>>>,
    vm: Option<MicroVm>,
}

impl UffdRestoreOps {
    pub(crate) fn new(
        ws_file: FileId,
        ws_order: Vec<u64>,
        snapshot: Snapshot,
        zero_filled: HashSet<u64>,
        owner: OwnerId,
    ) -> Self {
        UffdRestoreOps {
            ws_file,
            ws_order,
            snapshot,
            zero_filled,
            owner,
            available: Rc::new(RefCell::new(HashMap::new())),
            vm: None,
        }
    }
}

impl RestoreOps for UffdRestoreOps {
    fn exec(
        &mut self,
        stage: RestoreStage,
        now: SimTime,
        host: &mut HostKernel,
    ) -> Result<StepOutcome, StrategyError> {
        Ok(match stage {
            RestoreStage::MetadataLoad => {
                host.set_readahead(true);
                StepOutcome::done(now)
            }
            RestoreStage::PrefetchIssue => {
                let total = self.ws_order.len() as u64;
                if total == 0 {
                    return Ok(StepOutcome::done(now));
                }
                let install_cost = host.config().page_copy + host.config().anon_zero_fill;
                let mut installer = now;
                let mut available = self.available.borrow_mut();
                // All chunks are issued at `now`; batching the
                // submissions delivers the completions in one call.
                let mut chunks = Vec::new();
                let mut page = 0;
                while page < total {
                    let n = PREFETCH_CHUNK_PAGES.min(total - page);
                    chunks.push((page, n));
                    page += n;
                }
                let completions =
                    host.disk_mut()
                        .read_file_runs(now, self.ws_file, &chunks, IoPath::Direct)?;
                for (&(first, n), done) in chunks.iter().zip(&completions) {
                    for i in first..first + n {
                        installer = installer.max(done.done_at) + install_cost;
                        available.insert(self.ws_order[i as usize], installer);
                    }
                }
                // The stage's work completes when the last install
                // lands; the critical path never waits for it.
                StepOutcome::background_done(installer)
            }
            RestoreStage::OverlaySetup => {
                let mut vm =
                    MicroVm::restore(self.owner, &self.snapshot, CowPolicy::Opportunistic, false);
                vm.kvm_mut().register_uffd(0, self.snapshot.memory_pages());
                self.vm = Some(vm);
                StepOutcome::done(now)
            }
            RestoreStage::Resume => StepOutcome::done(now + Snapshot::restore_overhead()).with_vm(
                self.vm.take().expect("overlay stage built the VM"),
                Box::new(PrefetchedResolver {
                    snapshot: self.snapshot.memory_file(),
                    available: Rc::clone(&self.available),
                    zero_filled: std::mem::take(&mut self.zero_filled),
                }),
            ),
        })
    }
}

/// The REAP strategy.
#[derive(Debug, Default)]
pub struct Reap {
    /// Working-set pages in fault order (the ws file's layout).
    ws_order: Vec<u64>,
    ws_file: Option<FileId>,
}

impl Reap {
    /// Creates an unrecorded REAP instance.
    pub fn new() -> Self {
        Reap::default()
    }

    /// The recorded working-set size in pages (0 before recording).
    pub fn ws_pages(&self) -> u64 {
        self.ws_order.len() as u64
    }
}

/// Writes `pages` pages to a fresh file `name`, sequentially,
/// returning the file and completion time.
pub(crate) fn write_ws_file(
    now: SimTime,
    name: &str,
    pages: u64,
    host: &mut HostKernel,
) -> Result<(FileId, SimTime), KernelError> {
    let file = host.disk_mut().create_file(name, pages.max(1))?;
    let mut t = now;
    let mut page = 0;
    while page < pages {
        let n = 1024.min(pages - page);
        let done = host
            .disk_mut()
            .write_file_pages(t, file, page, n, IoPath::Buffered)?;
        t = done.done_at;
        page += n;
    }
    Ok((file, t))
}

impl Strategy for Reap {
    fn name(&self) -> &'static str {
        "REAP"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            mechanism: "Userfaultfd (user-space)",
            on_disk_ws_serialization: true,
            in_memory_ws_dedup: false,
            stateless_vm_allocation_filtering: false,
        }
    }

    fn record(
        &mut self,
        now: SimTime,
        host: &mut HostKernel,
        func: &FunctionCtx,
    ) -> Result<SimTime, StrategyError> {
        let mut vm = MicroVm::restore(
            OwnerId::new(u32::MAX), // record sandbox
            &func.snapshot,
            CowPolicy::Opportunistic,
            false,
        );
        vm.kvm_mut().register_uffd(0, func.snapshot.memory_pages());
        let mut resolver = RecordingResolver {
            snapshot: func.snapshot.memory_file(),
            log: Vec::new(),
        };
        let trace = func.workload.trace();
        let result = run_invocation(
            now + Snapshot::restore_overhead(),
            &mut vm,
            &trace,
            host,
            &mut resolver,
        )?;
        vm.kvm_mut().teardown(host)?;

        self.ws_order = resolver.log;
        // Serialize the recorded pages (the pages themselves — this
        // is the on-disk duplication SnapBPF avoids) plus a tiny
        // offsets metadata file.
        let ws_name = format!("{}.reap.ws", func.workload.name());
        let (ws_file, t1) = write_ws_file(result.end_time, &ws_name, self.ws_pages(), host)?;
        self.ws_file = Some(ws_file);
        let meta_pages = (self.ws_pages() * 8)
            .div_ceil(snapbpf_sim::PAGE_SIZE)
            .max(1);
        let meta_name = format!("{}.reap.meta", func.workload.name());
        let (_meta, t2) = write_ws_file(t1, &meta_name, meta_pages, host)?;
        Ok(t2)
    }

    fn begin_restore(
        &mut self,
        now: SimTime,
        _host: &mut HostKernel,
        func: &FunctionCtx,
        owner: OwnerId,
    ) -> Result<RestoreCursor, StrategyError> {
        let ws_file = self
            .ws_file
            .ok_or(StrategyError::NotRecorded { strategy: "REAP" })?;
        Ok(RestoreCursor::new(
            now,
            Box::new(UffdRestoreOps::new(
                ws_file,
                self.ws_order.clone(),
                func.snapshot.clone(),
                HashSet::new(),
                owner,
            )),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_env;
    use snapbpf_vmm::run_invocation;

    #[test]
    fn record_captures_ws_and_ephemeral() {
        let (mut host, func) = test_env("json", 0.05);
        let mut reap = Reap::new();
        let done = reap.record(SimTime::ZERO, &mut host, &func).unwrap();
        assert!(done > SimTime::ZERO);
        let trace = func.workload.trace();
        // REAP's WS includes ephemeral allocations — the semantic gap.
        let expected = trace.ws_page_list().len() + trace.ephemeral_page_list().len();
        assert_eq!(reap.ws_pages() as usize, expected);
        assert!(host
            .disk()
            .file_by_name(&format!("{}.reap.ws", func.workload.name()))
            .is_some());
    }

    #[test]
    fn restore_before_record_fails() {
        let (mut host, func) = test_env("json", 0.05);
        let mut reap = Reap::new();
        assert!(matches!(
            reap.restore(SimTime::ZERO, &mut host, &func, OwnerId::new(0)),
            Err(StrategyError::NotRecorded { .. })
        ));
    }

    #[test]
    fn invocation_uses_uffd_and_no_page_cache_for_snapshot() {
        let (mut host, func) = test_env("json", 0.05);
        let mut reap = Reap::new();
        let t0 = reap.record(SimTime::ZERO, &mut host, &func).unwrap();
        host.drop_all_caches().unwrap();

        let mut restored = reap.restore(t0, &mut host, &func, OwnerId::new(0)).unwrap();
        let trace = func.workload.trace();
        let r = run_invocation(
            restored.ready_at,
            &mut restored.vm,
            &trace,
            &mut host,
            restored.resolver.as_mut(),
        )
        .unwrap();
        assert!(r.uffd_resolved > 0);
        assert_eq!(r.stats.major_faults, 0);
        assert_eq!(r.stats.minor_faults, 0);
        // Snapshot pages were never inserted into the page cache.
        assert_eq!(
            host.page_state(func.snapshot.memory_file(), trace.ws_page_list()[0]),
            None
        );
        // Everything the VM touched is private anonymous memory.
        assert!(host.anon_pages_of(OwnerId::new(0)) >= r.uffd_resolved);
    }

    #[test]
    fn two_sandboxes_do_not_share() {
        let (mut host, func) = test_env("html", 0.1);
        let mut reap = Reap::new();
        let t0 = reap.record(SimTime::ZERO, &mut host, &func).unwrap();
        host.drop_all_caches().unwrap();

        let trace = func.workload.trace();
        let mut total_anon = 0;
        let mut t = t0;
        for i in 0..2 {
            let mut restored = reap.restore(t, &mut host, &func, OwnerId::new(i)).unwrap();
            let r = run_invocation(
                restored.ready_at,
                &mut restored.vm,
                &trace,
                &mut host,
                restored.resolver.as_mut(),
            )
            .unwrap();
            t = r.end_time;
            total_anon += host.anon_pages_of(OwnerId::new(i));
        }
        // Memory scales with the instance count: no dedup.
        let per_vm = trace.ws_page_list().len() as u64 + trace.ephemeral_page_list().len() as u64;
        assert!(total_anon >= 2 * per_vm);
    }
}
