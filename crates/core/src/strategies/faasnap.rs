//! FaaSnap (EuroSys '22).
//!
//! Page-cache-based capture and prefetch:
//!
//! * **record** — run one invocation with vanilla demand paging,
//!   then use `mincore(2)` to learn which snapshot pages became
//!   resident; that resident set is the working set. Regions
//!   separated by small gaps are **coalesced** (fewer mmaps, but the
//!   gap pages inflate the working-set file — the I/O amplification
//!   the paper verifies with eBPF instrumentation, §2.1). The
//!   coalesced regions' pages are serialized to a working-set file.
//!   A separate **zero-page scan** over the whole snapshot finds
//!   pages the (patched) guest zeroed on free; they map to
//!   anonymous memory.
//! * **restore** — the working-set file is mmap'd over the snapshot
//!   region by region, and a userspace prefetch thread issues
//!   sequential *buffered* reads to pull it into the page cache —
//!   which is why FaaSnap, unlike REAP, deduplicates across
//!   sandboxes, while still paying a userspace copy per page.

use snapbpf_kernel::{CowPolicy, HostKernel};
use snapbpf_mem::OwnerId;
use snapbpf_sim::SimTime;
use snapbpf_storage::{FileId, IoPath};
use snapbpf_vmm::{run_invocation, MicroVm, NoUffd, Snapshot};

use crate::restore::{RestoreCursor, RestoreOps, RestoreStage, StepOutcome};
use crate::strategies::faast::allocator_free_region;
use crate::strategies::reap::write_ws_file;
use crate::strategy::{Capabilities, FunctionCtx, Strategy, StrategyError};
use crate::wset::{coalesce_regions, total_pages, WsGroup};

/// Default coalescing gap, in pages: regions closer than this merge.
pub const DEFAULT_COALESCE_GAP: u64 = 32;

/// Pages per prefetch-thread buffered read.
const PREFETCH_CHUNK_PAGES: u64 = 256;

/// The FaaSnap strategy.
#[derive(Debug)]
pub struct Faasnap {
    coalesce_gap: u64,
    regions: Vec<WsGroup>,
    ws_file: Option<FileId>,
}

impl Faasnap {
    /// Creates FaaSnap with the default coalescing gap.
    pub fn new() -> Self {
        Faasnap::with_gap(DEFAULT_COALESCE_GAP)
    }

    /// Creates FaaSnap with an explicit coalescing gap (ablation A1).
    pub fn with_gap(coalesce_gap: u64) -> Self {
        Faasnap {
            coalesce_gap,
            regions: Vec::new(),
            ws_file: None,
        }
    }

    /// Number of mmap'd regions after coalescing.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Total pages in the (inflated) working-set file.
    pub fn ws_file_pages(&self) -> u64 {
        total_pages(&self.regions)
    }
}

impl Default for Faasnap {
    fn default() -> Self {
        Faasnap::new()
    }
}

impl Strategy for Faasnap {
    fn name(&self) -> &'static str {
        "FaaSnap"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            mechanism: "mincore / mmap (user-space)",
            on_disk_ws_serialization: true,
            in_memory_ws_dedup: true,
            // Zero-page filtering requires the snapshot scan:
            stateless_vm_allocation_filtering: false,
        }
    }

    fn record(
        &mut self,
        now: SimTime,
        host: &mut HostKernel,
        func: &FunctionCtx,
    ) -> Result<SimTime, StrategyError> {
        let pages = func.snapshot.memory_pages();
        let snap_file = func.snapshot.memory_file();

        // 1. Recording invocation under vanilla demand paging, with
        //    the VMM's first-touch log enabled (FaaSnap instruments
        //    Firecracker to profile the access order, so its WS file
        //    can be laid out in the order pages are needed).
        host.set_readahead(true);
        let mut vm = MicroVm::restore(
            OwnerId::new(u32::MAX),
            &func.snapshot,
            CowPolicy::Opportunistic,
            false,
        );
        vm.kvm_mut().enable_access_log();
        let trace = func.workload.trace();
        let result = run_invocation(
            now + Snapshot::restore_overhead(),
            &mut vm,
            &trace,
            host,
            &mut NoUffd,
        )?;
        let access_order = vm.kvm_mut().take_access_log();
        vm.kvm_mut().teardown(host)?;
        let mut t = result.end_time;

        // 2. mincore over the snapshot: the resident set is the WS.
        let resident = host.mincore(t, snap_file, 0, pages);

        // 3. Zero-page scan: sequential read of the entire snapshot
        //    (the pre-processing cost SnapBPF avoids).
        let mut page = 0;
        while page < pages {
            let n = 1024.min(pages - page);
            let done = host
                .disk_mut()
                .read_file_pages(t, snap_file, page, n, IoPath::Direct)?;
            t = done.done_at;
            page += n;
        }
        let zero_region = allocator_free_region(pages);

        // 4. Group the resident, non-zero pages, coalesce, and order
        //    the regions by first access so the sequentially-read WS
        //    file streams in roughly the order the function consumes
        //    it. Pages resident only through readahead overshoot
        //    never faulted, so they inherit a late rank.
        let rank_of: std::collections::HashMap<u64, u64> = access_order
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u64))
            .collect();
        let late = access_order.len() as u64;
        let groups: Vec<WsGroup> = {
            let mut gs: Vec<WsGroup> = Vec::new();
            for (p, &res) in resident.iter().enumerate() {
                let p = p as u64;
                if !res || zero_region.contains(&p) {
                    continue;
                }
                let rank = rank_of.get(&p).copied().unwrap_or(late);
                match gs.last_mut() {
                    Some(g) if g.end() == p => {
                        g.len += 1;
                        g.earliest_ns = g.earliest_ns.min(rank);
                    }
                    _ => gs.push(WsGroup {
                        start: p,
                        len: 1,
                        earliest_ns: rank,
                    }),
                }
            }
            gs
        };
        let mut regions = coalesce_regions(&groups, self.coalesce_gap);
        regions.sort_by_key(|g| (g.earliest_ns, g.start));
        self.regions = regions;

        // 5. Serialize the coalesced regions to the ws file.
        let ws_name = format!("{}.faasnap.ws", func.workload.name());
        let (ws_file, t2) = write_ws_file(t, &ws_name, self.ws_file_pages(), host)?;
        self.ws_file = Some(ws_file);
        Ok(t2)
    }

    fn begin_restore(
        &mut self,
        now: SimTime,
        _host: &mut HostKernel,
        func: &FunctionCtx,
        owner: OwnerId,
    ) -> Result<RestoreCursor, StrategyError> {
        let ws_file = self.ws_file.ok_or(StrategyError::NotRecorded {
            strategy: "FaaSnap",
        })?;
        Ok(RestoreCursor::new(
            now,
            Box::new(FaasnapRestore {
                ws_file,
                regions: self.regions.clone(),
                snapshot: func.snapshot.clone(),
                owner,
                next_off: 0,
                vm: None,
            }),
        ))
    }
}

/// FaaSnap's restore state machine: mmap the working-set file's
/// regions over the snapshot, then let a userspace prefetch thread
/// stream the file into the page cache in the **background** while
/// the vCPU resumes.
struct FaasnapRestore {
    ws_file: FileId,
    regions: Vec<WsGroup>,
    snapshot: Snapshot,
    owner: OwnerId,
    /// Working-set-file offset of the prefetch thread's next read.
    next_off: u64,
    vm: Option<MicroVm>,
}

impl RestoreOps for FaasnapRestore {
    fn exec(
        &mut self,
        stage: RestoreStage,
        now: SimTime,
        host: &mut HostKernel,
    ) -> Result<StepOutcome, StrategyError> {
        Ok(match stage {
            RestoreStage::MetadataLoad => {
                host.set_readahead(true);
                StepOutcome::done(now)
            }
            RestoreStage::PrefetchIssue => {
                // Prefetch thread: sequential buffered reads of the
                // ws file. Kernel readahead keeps the device
                // streaming ahead of the thread, so at steady state
                // the thread's issue cadence is bounded by its
                // per-page userspace copy (the overhead SnapBPF's
                // in-kernel prefetch avoids); the device model paces
                // the actual data arrivals.
                let total = total_pages(&self.regions);
                if self.next_off >= total {
                    return Ok(StepOutcome::done(now));
                }
                let n = PREFETCH_CHUNK_PAGES.min(total - self.next_off);
                let read = host.ra_unbounded(now, self.ws_file, self.next_off, n)?;
                let issued = now + host.config().page_copy * n;
                self.next_off += n;
                if self.next_off >= total {
                    // The thread is done once its last read's data
                    // has actually arrived, not merely been issued.
                    StepOutcome::background_done(issued.max(read.ready_at))
                } else {
                    StepOutcome::background_pending(issued)
                }
            }
            RestoreStage::OverlaySetup => {
                let mut vm =
                    MicroVm::restore(self.owner, &self.snapshot, CowPolicy::Opportunistic, false);
                // mmap the ws file's regions over the snapshot
                // mapping.
                let mut file_off = 0u64;
                for r in &self.regions {
                    vm.kvm_mut()
                        .add_overlay(r.start, r.len, self.ws_file, file_off);
                    file_off += r.len;
                }
                // Zero pages map to anonymous memory.
                vm.kvm_mut()
                    .add_anon_filter(allocator_free_region(self.snapshot.memory_pages()));
                self.vm = Some(vm);
                StepOutcome::done(now)
            }
            RestoreStage::Resume => StepOutcome::done(now + Snapshot::restore_overhead()).with_vm(
                self.vm.take().expect("overlay stage built the VM"),
                Box::new(NoUffd),
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_env;

    #[test]
    fn record_builds_inflated_ws_file() {
        let (mut host, func) = test_env("chameleon", 0.05);
        let mut fs = Faasnap::new();
        fs.record(SimTime::ZERO, &mut host, &func).unwrap();
        let trace = func.workload.trace();
        let true_ws = trace.ws_page_list().len() as u64;
        // Coalescing + readahead overshoot inflate the WS file.
        assert!(fs.ws_file_pages() >= true_ws, "ws file must cover the WS");
        assert!(
            fs.ws_file_pages() > true_ws,
            "coalescing should inflate ({} vs {true_ws})",
            fs.ws_file_pages()
        );
        assert!(fs.region_count() > 0);
    }

    #[test]
    fn larger_gap_fewer_regions_more_inflation() {
        let (mut host, func) = test_env("chameleon", 0.05);
        let mut tight = Faasnap::with_gap(0);
        tight.record(SimTime::ZERO, &mut host, &func).unwrap();

        let (mut host2, func2) = test_env("chameleon", 0.05);
        let mut loose = Faasnap::with_gap(2048);
        loose.record(SimTime::ZERO, &mut host2, &func2).unwrap();

        assert!(loose.region_count() < tight.region_count());
        assert!(loose.ws_file_pages() > tight.ws_file_pages());
    }

    #[test]
    fn invocation_shares_ws_file_pages_across_sandboxes() {
        let (mut host, func) = test_env("html", 0.1);
        let mut fs = Faasnap::new();
        let t0 = fs.record(SimTime::ZERO, &mut host, &func).unwrap();
        host.drop_all_caches().unwrap();

        let trace = func.workload.trace();
        let mut t = t0;
        for i in 0..2 {
            let mut restored = fs.restore(t, &mut host, &func, OwnerId::new(i)).unwrap();
            let r = run_invocation(
                restored.ready_at,
                &mut restored.vm,
                &trace,
                &mut host,
                restored.resolver.as_mut(),
            )
            .unwrap();
            t = r.end_time;
        }
        // The WS lives once in the page cache; anon is only
        // ephemeral allocations + CoW'd written pages.
        let snap = host.memory_snapshot();
        assert!(snap.page_cache_pages >= fs.ws_file_pages());
        let per_vm_everything =
            trace.ws_page_list().len() as u64 + trace.ephemeral_page_list().len() as u64;
        assert!(
            snap.anon_pages < 2 * per_vm_everything,
            "anon {} must stay below no-dedup level {}",
            snap.anon_pages,
            2 * per_vm_everything
        );
    }

    #[test]
    fn allocations_route_to_anon_without_snapshot_io() {
        let (mut host, func) = test_env("image", 0.05);
        let mut fs = Faasnap::new();
        let t0 = fs.record(SimTime::ZERO, &mut host, &func).unwrap();
        host.drop_all_caches().unwrap();
        let tracer_before = host.disk().tracer().read_bytes();

        let mut restored = fs.restore(t0, &mut host, &func, OwnerId::new(0)).unwrap();
        let trace = func.workload.trace();
        let r = run_invocation(
            restored.ready_at,
            &mut restored.vm,
            &trace,
            &mut host,
            restored.resolver.as_mut(),
        )
        .unwrap();
        assert!(r.stats.filtered_anon_faults > 0);
        // Invoke-phase reads stay well below "WS + all allocations".
        let read = host.disk().tracer().read_bytes() - tracer_before;
        let everything = (trace.ws_page_list().len() + trace.ephemeral_page_list().len()) as u64
            * snapbpf_sim::PAGE_SIZE;
        assert!(read < everything * 2);
    }

    #[test]
    fn restore_before_record_fails() {
        let (mut host, func) = test_env("json", 0.05);
        assert!(matches!(
            Faasnap::new().restore(SimTime::ZERO, &mut host, &func, OwnerId::new(0)),
            Err(StrategyError::NotRecorded { .. })
        ));
    }
}
