//! The vanilla Firecracker baselines: Linux demand paging with the
//! kernel readahead window on (Linux-RA) or off (Linux-NoRA).
//!
//! No record phase, no working-set artifacts: the snapshot file is
//! mapped and every page arrives via a demand (major) fault, pulled
//! through the shared page cache — so vanilla *does* deduplicate,
//! it is just slow on first touch.

use snapbpf_kernel::{CowPolicy, HostKernel};
use snapbpf_mem::OwnerId;
use snapbpf_sim::SimTime;
use snapbpf_vmm::{MicroVm, NoUffd, Snapshot};

use crate::restore::{RestoreCursor, RestoreOps, RestoreStage, StepOutcome};
use crate::strategy::{Capabilities, FunctionCtx, Strategy, StrategyError};

/// Vanilla restore (no prefetching).
#[derive(Debug, Clone, Copy)]
pub struct Vanilla {
    readahead: bool,
}

impl Vanilla {
    /// Creates the baseline with kernel readahead on (`Linux-RA`) or
    /// off (`Linux-NoRA`).
    pub fn new(readahead: bool) -> Self {
        Vanilla { readahead }
    }
}

impl Strategy for Vanilla {
    fn name(&self) -> &'static str {
        if self.readahead {
            "Linux-RA"
        } else {
            "Linux-NoRA"
        }
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            mechanism: "Demand paging (kernel)",
            on_disk_ws_serialization: false,
            in_memory_ws_dedup: true,
            stateless_vm_allocation_filtering: false,
        }
    }

    fn record(
        &mut self,
        now: SimTime,
        _host: &mut HostKernel,
        _func: &FunctionCtx,
    ) -> Result<SimTime, StrategyError> {
        Ok(now) // nothing to record
    }

    fn begin_restore(
        &mut self,
        now: SimTime,
        _host: &mut HostKernel,
        func: &FunctionCtx,
        owner: OwnerId,
    ) -> Result<RestoreCursor, StrategyError> {
        Ok(RestoreCursor::new(
            now,
            Box::new(VanillaRestore {
                readahead: self.readahead,
                snapshot: func.snapshot.clone(),
                owner,
                vm: None,
            }),
        ))
    }
}

/// Vanilla's restore state machine: apply the readahead switch, map
/// the snapshot, resume. There is no prefetch work of any kind.
struct VanillaRestore {
    readahead: bool,
    snapshot: Snapshot,
    owner: OwnerId,
    vm: Option<MicroVm>,
}

impl RestoreOps for VanillaRestore {
    fn exec(
        &mut self,
        stage: RestoreStage,
        now: SimTime,
        host: &mut HostKernel,
    ) -> Result<StepOutcome, StrategyError> {
        Ok(match stage {
            RestoreStage::MetadataLoad => {
                host.set_readahead(self.readahead);
                StepOutcome::done(now)
            }
            RestoreStage::PrefetchIssue => StepOutcome::done(now),
            RestoreStage::OverlaySetup => {
                self.vm = Some(MicroVm::restore(
                    self.owner,
                    &self.snapshot,
                    CowPolicy::Opportunistic,
                    false,
                ));
                StepOutcome::done(now)
            }
            RestoreStage::Resume => StepOutcome::done(now + Snapshot::restore_overhead()).with_vm(
                self.vm.take().expect("overlay stage built the VM"),
                Box::new(NoUffd),
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_env;
    use snapbpf_sim::SimDuration;

    #[test]
    fn restore_is_immediate_and_cold() {
        let (mut host, func) = test_env("json", 0.05);
        let mut strat = Vanilla::new(true);
        let t = strat.record(SimTime::ZERO, &mut host, &func).unwrap();
        assert_eq!(t, SimTime::ZERO);
        let restored = strat.restore(t, &mut host, &func, OwnerId::new(0)).unwrap();
        assert_eq!(
            restored.ready_at,
            SimTime::ZERO + Snapshot::restore_overhead()
        );
        assert_eq!(restored.offset_load_cost, SimDuration::ZERO);
        assert!(!restored.vm.guest().pv_marking());
    }

    #[test]
    fn readahead_switch_is_applied() {
        let (mut host, func) = test_env("json", 0.05);
        Vanilla::new(false)
            .restore(SimTime::ZERO, &mut host, &func, OwnerId::new(0))
            .unwrap();
        assert!(!host.config().readahead_enabled);
        Vanilla::new(true)
            .restore(SimTime::ZERO, &mut host, &func, OwnerId::new(1))
            .unwrap();
        assert!(host.config().readahead_enabled);
    }
}
