//! SnapBPF — the paper's contribution (§3).
//!
//! * **record** — attach the eBPF *capture* program to the
//!   `add_to_page_cache_lru` kprobe, disable kernel readahead (so
//!   only truly-accessed pages are captured), run one invocation
//!   with the PV-patched guest (allocations never touch the page
//!   cache, so they never pollute the working set), read the
//!   `(offset, first-access-time)` samples back from the map, group
//!   them into contiguous ranges sorted by earliest access, and
//!   write the **offsets metadata file** — 16 bytes per range, not
//!   the pages themselves.
//! * **restore** — load the grouped offsets into an eBPF map
//!   (charged as the paper's §4 offset-loading overhead), attach the
//!   *prefetch* program to the same kprobe, and touch the first page
//!   of the snapshot to kick it off: a single verified bounded-loop
//!   invocation issues every range and disables itself (the 5.3
//!   verifier's range analysis proves the loop safe; the pre-5.3
//!   re-trigger cascade is retained only as a comparison baseline).
//!   Pages land directly in the shared page cache — no working-set
//!   file, no userspace copies, natural cross-sandbox deduplication.

use snapbpf_kernel::{CowPolicy, HostKernel, PAGE_CACHE_ADD_HOOK};
use snapbpf_mem::OwnerId;
use snapbpf_sim::{SimTime, PAGE_SIZE};
use snapbpf_storage::{FileId, IoPath};
use snapbpf_vmm::{run_invocation, MicroVm, NoUffd, Snapshot};

use crate::programs::{
    build_capture_program, build_prefetch_program_telemetry, groups_map_def, groups_map_image,
    read_captured_samples, wset_map_def,
};
use crate::restore::{RestoreCursor, RestoreOps, RestoreStage, StepOutcome};
use crate::strategy::{Capabilities, FunctionCtx, Strategy, StrategyError};
use crate::wset::{decode_groups, encode_groups, group_offsets, total_pages, WsGroup};

/// The SnapBPF strategy, with its two mechanisms independently
/// switchable (Figure 4's breakdown) and the KVM CoW patch
/// toggleable (ablation A3).
#[derive(Debug)]
pub struct SnapBpf {
    ebpf_prefetch: bool,
    pv_pte: bool,
    cow_policy: CowPolicy,
    group_contiguous: bool,
    sort_by_access: bool,
    groups: Vec<WsGroup>,
    offsets_file: Option<FileId>,
}

impl SnapBpf {
    /// Full SnapBPF: eBPF prefetch + PV PTE marking, patched KVM.
    pub fn full() -> Self {
        SnapBpf::with_flags(true, true, CowPolicy::Opportunistic)
    }

    /// Only PV PTE marking (Figure 4's "PVPTEs" bar).
    pub fn pv_only() -> Self {
        SnapBpf::with_flags(false, true, CowPolicy::Opportunistic)
    }

    /// Only the eBPF prefetcher (no guest PV patch).
    pub fn ebpf_only() -> Self {
        SnapBpf::with_flags(true, false, CowPolicy::Opportunistic)
    }

    /// Full SnapBPF on an unpatched KVM that forcibly write-maps
    /// read faults — reproduces the CoW misbehaviour the paper
    /// found and patched (§4, "Memory").
    pub fn with_buggy_cow() -> Self {
        SnapBpf::with_flags(true, true, CowPolicy::ForcedWrite)
    }

    /// Explicit flag combination.
    pub fn with_flags(ebpf_prefetch: bool, pv_pte: bool, cow_policy: CowPolicy) -> Self {
        SnapBpf {
            ebpf_prefetch,
            pv_pte,
            cow_policy,
            group_contiguous: true,
            sort_by_access: true,
            groups: Vec::new(),
            offsets_file: None,
        }
    }

    /// Ablation A4 knobs: disable contiguous-range grouping (one
    /// range per page) and/or earliest-access sorting (file order
    /// instead). The paper's design uses both (§3.1).
    #[must_use]
    pub fn with_layout(mut self, group_contiguous: bool, sort_by_access: bool) -> Self {
        self.group_contiguous = group_contiguous;
        self.sort_by_access = sort_by_access;
        self
    }

    /// Captured working-set groups (empty before recording).
    pub fn groups(&self) -> &[WsGroup] {
        &self.groups
    }

    /// Captured working-set size in pages.
    pub fn ws_pages(&self) -> u64 {
        total_pages(&self.groups)
    }
}

impl Strategy for SnapBpf {
    fn name(&self) -> &'static str {
        if self.ebpf_prefetch && self.pv_pte {
            "SnapBPF"
        } else if self.pv_pte {
            "PVPTEs"
        } else {
            "SnapBPF-eBPF-only"
        }
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            mechanism: "eBPF (kernel-space)",
            on_disk_ws_serialization: false,
            in_memory_ws_dedup: true,
            stateless_vm_allocation_filtering: true,
        }
    }

    fn record(
        &mut self,
        now: SimTime,
        host: &mut HostKernel,
        func: &FunctionCtx,
    ) -> Result<SimTime, StrategyError> {
        let snap_file = func.snapshot.memory_file();
        let pages = func.snapshot.memory_pages();

        // Capture setup: kprobe + capture program, readahead off
        // (paper §3.1: "we disable readahead in order to only fetch
        // and capture the working set pages in this phase").
        host.set_readahead(false);
        let max_samples = u32::try_from(pages).unwrap_or(u32::MAX);
        let wset_map = host.create_map(wset_map_def(max_samples))?;
        let capture = build_capture_program(snap_file, wset_map, max_samples);
        let probe = host.load_and_attach(PAGE_CACHE_ADD_HOOK, &capture)?;

        // Recording invocation with the PV-patched guest, so
        // allocations never pollute the capture.
        let mut vm = MicroVm::restore(
            OwnerId::new(u32::MAX),
            &func.snapshot,
            self.cow_policy,
            self.pv_pte,
        );
        let trace = func.workload.trace();
        let result = run_invocation(
            now + Snapshot::restore_overhead(),
            &mut vm,
            &trace,
            host,
            &mut NoUffd,
        )?;
        vm.kvm_mut().teardown(host)?;
        host.detach(probe)?;
        host.set_readahead(true);

        // Userspace: read the samples, group + sort, store offsets.
        let samples = read_captured_samples(host.maps(), wset_map)
            .map_err(snapbpf_kernel::KernelError::Map)?;
        self.groups = group_offsets(&samples);
        if !self.group_contiguous {
            self.groups = self
                .groups
                .iter()
                .flat_map(|g| {
                    (g.start..g.end()).map(|p| WsGroup {
                        start: p,
                        len: 1,
                        earliest_ns: g.earliest_ns,
                    })
                })
                .collect();
        }
        if !self.sort_by_access {
            self.groups.sort_by_key(|g| g.start);
        }

        let bytes = encode_groups(&self.groups);
        let file_pages = (bytes.len() as u64).div_ceil(PAGE_SIZE).max(1);
        let name = format!("{}.snapbpf.offsets", func.workload.name());
        let offsets_file = host.disk_mut().create_file(&name, file_pages)?;
        let done = host.disk_mut().write_file_pages(
            result.end_time,
            offsets_file,
            0,
            file_pages,
            IoPath::Buffered,
        )?;
        self.offsets_file = Some(offsets_file);

        // Round-trip through the on-disk encoding, as the real
        // system would at the next restore.
        debug_assert_eq!(
            decode_groups(&bytes).map(|g| g.len()),
            Some(self.groups.len())
        );
        Ok(done.done_at)
    }

    fn begin_restore(
        &mut self,
        now: SimTime,
        _host: &mut HostKernel,
        func: &FunctionCtx,
        owner: OwnerId,
    ) -> Result<RestoreCursor, StrategyError> {
        let offsets_file = if self.ebpf_prefetch {
            Some(self.offsets_file.ok_or(StrategyError::NotRecorded {
                strategy: "SnapBPF",
            })?)
        } else {
            None
        };
        Ok(RestoreCursor::new(
            now,
            Box::new(SnapBpfRestore {
                offsets_file,
                groups: self.groups.clone(),
                function: func.workload.name().to_owned(),
                snapshot: func.snapshot.clone(),
                cow_policy: self.cow_policy,
                pv_pte: self.pv_pte,
                owner,
                map: None,
                vm: None,
            }),
        ))
    }
}

/// SnapBPF's restore state machine — the paper's §3.2 sequence:
/// offsets-map load, eBPF prefetch kick-off, immediate resume with
/// demand paging. Nothing runs in userspace after the kick-off: one
/// looped prefetch invocation issues every range inside the kernel,
/// so every stage here is on the (short) critical path and the
/// cursor never has background work.
struct SnapBpfRestore {
    /// `Some` when the eBPF prefetcher is enabled (already validated
    /// as recorded).
    offsets_file: Option<FileId>,
    groups: Vec<WsGroup>,
    /// Function name telemetry series are attributed to.
    function: String,
    snapshot: Snapshot,
    cow_policy: CowPolicy,
    pv_pte: bool,
    owner: OwnerId,
    /// The groups map, created by `MetadataLoad` for `PrefetchIssue`.
    map: Option<snapbpf_ebpf::MapId>,
    vm: Option<MicroVm>,
}

impl RestoreOps for SnapBpfRestore {
    fn exec(
        &mut self,
        stage: RestoreStage,
        now: SimTime,
        host: &mut HostKernel,
    ) -> Result<StepOutcome, StrategyError> {
        let snap_file = self.snapshot.memory_file();
        Ok(match stage {
            RestoreStage::MetadataLoad => {
                host.set_readahead(true);
                let Some(offsets_file) = self.offsets_file else {
                    return Ok(StepOutcome::done(now));
                };
                // Read the grouped offsets from disk and load them
                // into the kernel via the eBPF map.
                let file_pages = host.disk().file_pages(offsets_file)?;
                let read = host.disk_mut().read_file_pages(
                    now,
                    offsets_file,
                    0,
                    file_pages,
                    IoPath::Buffered,
                )?;
                let map = host.create_map(groups_map_def(self.groups.len() as u32))?;
                let image = groups_map_image(&self.groups);
                let offset_load = host.load_map_from_user(map, 0, &image)?;
                self.map = Some(map);
                StepOutcome::done(read.done_at + offset_load).with_offset_load(offset_load)
            }
            RestoreStage::PrefetchIssue => {
                let Some(map) = self.map else {
                    return Ok(StepOutcome::done(now));
                };
                // Attach the looped prefetch program and trigger it
                // by touching the first page of the snapshot; one
                // in-kernel invocation issues every group, reporting
                // each range over the telemetry ring and per-CPU
                // stats map, which the kernel drains at the end of
                // the cascade.
                let ring = host.create_map(snapbpf_ebpf::telemetry_ring_def())?;
                let stats = host.create_map(snapbpf_ebpf::telemetry_stats_def())?;
                let prefetch = build_prefetch_program_telemetry(
                    snap_file,
                    map,
                    self.groups.len() as u32,
                    ring,
                    stats,
                );
                host.register_telemetry(ring, stats, &self.function);
                host.load_and_attach(PAGE_CACHE_ADD_HOOK, &prefetch)?;
                host.trigger_access(now, snap_file, 0)?;
                StepOutcome::done(now)
            }
            RestoreStage::OverlaySetup => {
                self.vm = Some(MicroVm::restore(
                    self.owner,
                    &self.snapshot,
                    self.cow_policy,
                    self.pv_pte,
                ));
                StepOutcome::done(now)
            }
            RestoreStage::Resume => StepOutcome::done(now + Snapshot::restore_overhead()).with_vm(
                self.vm.take().expect("overlay stage built the VM"),
                Box::new(NoUffd),
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_env;
    use snapbpf_mem::PageState;
    use snapbpf_sim::SimDuration;

    #[test]
    fn record_captures_exact_working_set() {
        let (mut host, func) = test_env("json", 0.05);
        let mut sb = SnapBpf::full();
        sb.record(SimTime::ZERO, &mut host, &func).unwrap();
        let trace = func.workload.trace();
        // The capture equals the true WS — no ephemeral pollution
        // (PV marking), no readahead overshoot (RA disabled).
        assert_eq!(sb.ws_pages() as usize, trace.ws_page_list().len());
        // Groups are sorted by access order, not file order.
        let starts: Vec<u64> = sb.groups().iter().map(|g| g.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_ne!(starts, sorted, "groups should be in access order");
        // The offsets file exists and is tiny (metadata, not pages).
        let f = host
            .disk()
            .file_by_name(&format!("{}.snapbpf.offsets", func.workload.name()))
            .unwrap();
        assert!(host.disk().file_pages(f).unwrap() * PAGE_SIZE <= sb.ws_pages() * 16 + PAGE_SIZE);
    }

    #[test]
    fn snapbpf_ws_is_lean_like_reap_but_without_ephemeral() {
        let (mut host, func) = test_env("image", 0.05);
        let mut sb = SnapBpf::full();
        sb.record(SimTime::ZERO, &mut host, &func).unwrap();
        let trace = func.workload.trace();
        assert_eq!(sb.ws_pages() as usize, trace.ws_page_list().len());

        // FaaSnap's WS for the same function is inflated.
        let (mut host2, func2) = test_env("image", 0.05);
        let mut fs = crate::strategies::Faasnap::new();
        fs.record(SimTime::ZERO, &mut host2, &func2).unwrap();
        assert!(fs.ws_file_pages() > sb.ws_pages());
    }

    #[test]
    fn restore_prefetches_into_shared_page_cache() {
        let (mut host, func) = test_env("json", 0.05);
        let mut sb = SnapBpf::full();
        let t0 = sb.record(SimTime::ZERO, &mut host, &func).unwrap();
        host.drop_all_caches().unwrap();

        let restored = sb.restore(t0, &mut host, &func, OwnerId::new(0)).unwrap();
        assert!(restored.offset_load_cost > SimDuration::ZERO);

        // Every captured group is now cached (in flight or resident).
        let snap_file = func.snapshot.memory_file();
        for g in sb.groups() {
            for p in g.start..g.end() {
                assert!(
                    host.page_state(snap_file, p).is_some(),
                    "group page {p} not prefetched"
                );
            }
        }
        // And no working-set file was ever created.
        assert!(host
            .disk()
            .file_by_name(&format!("{}.snapbpf.ws", func.workload.name()))
            .is_none());
    }

    #[test]
    fn restore_reports_telemetry_through_the_kernel_ring() {
        let (mut host, func) = test_env("json", 0.05);
        let tracer = snapbpf_sim::Tracer::noop();
        host.install_tracer(&tracer);
        let mut sb = SnapBpf::full();
        let t0 = sb.record(SimTime::ZERO, &mut host, &func).unwrap();
        host.drop_all_caches().unwrap();
        sb.restore(t0, &mut host, &func, OwnerId::new(0)).unwrap();

        // The prefetch program reported every group over the ring /
        // stats pair, and the drain folded them into the tracer.
        assert_eq!(
            tracer.counter("ebpf.telemetry.issued"),
            sb.groups().len() as u64
        );
        assert_eq!(tracer.counter("ebpf.telemetry.pages"), sb.ws_pages());
        assert_eq!(tracer.counter("ebpf.telemetry.completions"), 1);
        assert_eq!(tracer.counter("ebpf.ring.drops"), 0, "default ring sizing");
        let series = tracer.series_snapshot();
        let bins = series.get("ebpf.prefetch.pages", "json").unwrap();
        let total: f64 = bins.values().map(|b| b.sum()).sum();
        assert_eq!(total, sb.ws_pages() as f64);
    }

    #[test]
    fn invocation_after_prefetch_sees_mostly_minor_faults() {
        let (mut host, func) = test_env("json", 0.05);
        let mut sb = SnapBpf::full();
        let t0 = sb.record(SimTime::ZERO, &mut host, &func).unwrap();
        host.drop_all_caches().unwrap();

        let mut restored = sb.restore(t0, &mut host, &func, OwnerId::new(0)).unwrap();
        let trace = func.workload.trace();
        let r = run_invocation(
            restored.ready_at,
            &mut restored.vm,
            &trace,
            &mut host,
            restored.resolver.as_mut(),
        )
        .unwrap();
        assert!(
            r.stats.minor_faults > r.stats.major_faults,
            "prefetch should turn majors into minors ({} vs {})",
            r.stats.minor_faults,
            r.stats.major_faults
        );
        assert!(r.stats.pv_anon_faults > 0, "PV marking active");
    }

    #[test]
    fn pv_only_variant_skips_prefetch() {
        let (mut host, func) = test_env("json", 0.05);
        let mut sb = SnapBpf::pv_only();
        let t0 = sb.record(SimTime::ZERO, &mut host, &func).unwrap();
        host.drop_all_caches().unwrap();
        let restored = sb.restore(t0, &mut host, &func, OwnerId::new(0)).unwrap();
        assert_eq!(restored.offset_load_cost, SimDuration::ZERO);
        // Nothing was prefetched.
        let snap_file = func.snapshot.memory_file();
        let cached = sb
            .groups()
            .iter()
            .flat_map(|g| g.start..g.end())
            .filter(|&p| {
                matches!(
                    host.page_state(snap_file, p),
                    Some(PageState::Resident) | Some(PageState::InFlight { .. })
                )
            })
            .count();
        assert_eq!(cached, 0);
    }

    #[test]
    fn offset_load_cost_is_small_fraction_of_e2e() {
        let (mut host, func) = test_env("cnn", 0.1);
        let mut sb = SnapBpf::full();
        let t0 = sb.record(SimTime::ZERO, &mut host, &func).unwrap();
        host.drop_all_caches().unwrap();
        let mut restored = sb.restore(t0, &mut host, &func, OwnerId::new(0)).unwrap();
        let trace = func.workload.trace();
        let r = run_invocation(
            restored.ready_at,
            &mut restored.vm,
            &trace,
            &mut host,
            restored.resolver.as_mut(),
        )
        .unwrap();
        let frac = restored.offset_load_cost.ratio(r.e2e_latency);
        assert!(frac < 0.05, "offset load {frac} of E2E");
    }
}
