//! Faast (HPDC '24).
//!
//! Userfaultfd-based like REAP, with one addition: **allocation
//! filtering from allocator metadata**. Faast scans the guest
//! kernel's allocator metadata inside the snapshot to learn which
//! guest pages were free when the snapshot was taken; faults on
//! those pages are served with zero-filled anonymous memory instead
//! of snapshot bytes, and they are excluded from the serialized
//! working set. The filtering works — but it requires preemptive
//! snapshot scanning/pre-processing (paper §2.2), unlike SnapBPF's
//! online PV PTE marking, and the uffd mechanism still prevents any
//! cross-sandbox deduplication.

use std::collections::HashSet;

use snapbpf_kernel::{CowPolicy, HostKernel};
use snapbpf_mem::OwnerId;
use snapbpf_sim::SimTime;
use snapbpf_storage::{FileId, IoPath};
use snapbpf_vmm::{run_invocation, MicroVm, Snapshot, UffdResolver};

use crate::restore::RestoreCursor;
use crate::strategies::reap::{write_ws_file, UffdRestoreOps};
use crate::strategy::{Capabilities, FunctionCtx, Strategy, StrategyError};

/// Guest pages the allocator metadata marks as free at snapshot
/// time. In the guest memory layout of the workload models, the
/// allocator's free pool (from which invocation-time allocations are
/// served) is the top quarter of guest memory.
pub(crate) fn allocator_free_region(snapshot_pages: u64) -> std::ops::Range<u64> {
    snapshot_pages * 3 / 4..snapshot_pages
}

/// The Faast strategy.
#[derive(Debug, Default)]
pub struct Faast {
    ws_order: Vec<u64>,
    ws_file: Option<FileId>,
    filtered: HashSet<u64>,
}

impl Faast {
    /// Creates an unrecorded Faast instance.
    pub fn new() -> Self {
        Faast::default()
    }

    /// Pages excluded from the working set by the metadata scan.
    pub fn filtered_pages(&self) -> u64 {
        self.filtered.len() as u64
    }

    /// The serialized working-set size in pages.
    pub fn ws_pages(&self) -> u64 {
        self.ws_order.len() as u64
    }
}

/// Record handler that skips filtered pages (they resolve instantly
/// to zero-fill) and logs everything else via direct snapshot reads.
struct FilteringRecorder {
    snapshot: FileId,
    filtered: HashSet<u64>,
    log: Vec<u64>,
}

impl UffdResolver for FilteringRecorder {
    fn resolve(
        &mut self,
        now: SimTime,
        gpfn: u64,
        host: &mut HostKernel,
    ) -> Result<SimTime, snapbpf_kernel::KernelError> {
        if self.filtered.contains(&gpfn) {
            return Ok(now);
        }
        let done = host
            .disk_mut()
            .read_file_pages(now, self.snapshot, gpfn, 1, IoPath::Direct)?;
        self.log.push(gpfn);
        Ok(done.done_at)
    }
}

impl Strategy for Faast {
    fn name(&self) -> &'static str {
        "Faast"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            mechanism: "Userfaultfd (user-space)",
            on_disk_ws_serialization: true,
            in_memory_ws_dedup: false,
            // Filtering exists but depends on snapshot scanning:
            stateless_vm_allocation_filtering: false,
        }
    }

    fn record(
        &mut self,
        now: SimTime,
        host: &mut HostKernel,
        func: &FunctionCtx,
    ) -> Result<SimTime, StrategyError> {
        let pages = func.snapshot.memory_pages();

        // Pre-processing: scan the snapshot's allocator metadata
        // (page-table and buddy bitmaps — a sliver of the image,
        // read sequentially with direct I/O).
        let meta_pages = (pages / 512).max(1);
        let scan_done = host.disk_mut().read_file_pages(
            now,
            func.snapshot.memory_file(),
            0,
            meta_pages,
            IoPath::Direct,
        )?;
        self.filtered = allocator_free_region(pages).collect();

        // Record invocation, filtering allocator-free pages.
        let mut vm = MicroVm::restore(
            OwnerId::new(u32::MAX),
            &func.snapshot,
            CowPolicy::Opportunistic,
            false,
        );
        vm.kvm_mut().register_uffd(0, pages);
        let mut resolver = FilteringRecorder {
            snapshot: func.snapshot.memory_file(),
            filtered: self.filtered.clone(),
            log: Vec::new(),
        };
        let trace = func.workload.trace();
        let result = run_invocation(
            scan_done.done_at + Snapshot::restore_overhead(),
            &mut vm,
            &trace,
            host,
            &mut resolver,
        )?;
        vm.kvm_mut().teardown(host)?;

        self.ws_order = resolver.log;
        let ws_name = format!("{}.faast.ws", func.workload.name());
        let (ws_file, t1) = write_ws_file(result.end_time, &ws_name, self.ws_pages(), host)?;
        self.ws_file = Some(ws_file);
        Ok(t1)
    }

    fn begin_restore(
        &mut self,
        now: SimTime,
        _host: &mut HostKernel,
        func: &FunctionCtx,
        owner: OwnerId,
    ) -> Result<RestoreCursor, StrategyError> {
        let ws_file = self
            .ws_file
            .ok_or(StrategyError::NotRecorded { strategy: "Faast" })?;
        Ok(RestoreCursor::new(
            now,
            Box::new(UffdRestoreOps::new(
                ws_file,
                self.ws_order.clone(),
                func.snapshot.clone(),
                self.filtered.clone(),
                owner,
            )),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_env;

    #[test]
    fn ws_excludes_allocator_free_pages() {
        let (mut host, func) = test_env("image", 0.05); // allocation-heavy
        let mut faast = Faast::new();
        faast.record(SimTime::ZERO, &mut host, &func).unwrap();
        let trace = func.workload.trace();
        // Working set = true WS only; ephemeral pages filtered out.
        assert_eq!(faast.ws_pages() as usize, trace.ws_page_list().len());
        assert!(faast.filtered_pages() > 0);
        // The filter contains every ephemeral page.
        for &p in trace.ephemeral_page_list() {
            assert!(faast.filtered.contains(&p));
        }
    }

    #[test]
    fn faast_ws_is_leaner_than_reap() {
        let (mut host, func) = test_env("matmul", 0.05); // large ephemeral
        let mut faast = Faast::new();
        faast.record(SimTime::ZERO, &mut host, &func).unwrap();

        let (mut host2, func2) = test_env("matmul", 0.05);
        let mut reap = crate::strategies::Reap::new();
        reap.record(SimTime::ZERO, &mut host2, &func2).unwrap();

        assert!(faast.ws_pages() < reap.ws_pages());
    }

    #[test]
    fn filtered_faults_cost_no_io() {
        let (mut host, func) = test_env("image", 0.05);
        let mut faast = Faast::new();
        let t0 = faast.record(SimTime::ZERO, &mut host, &func).unwrap();
        host.drop_all_caches().unwrap();

        let mut restored = faast
            .restore(t0, &mut host, &func, OwnerId::new(0))
            .unwrap();
        let trace = func.workload.trace();
        let before = host.disk().tracer().read_bytes();
        let r = run_invocation(
            restored.ready_at,
            &mut restored.vm,
            &trace,
            &mut host,
            restored.resolver.as_mut(),
        )
        .unwrap();
        let read = host.disk().tracer().read_bytes() - before;
        // Reads cover only the serialized WS (chunks), not the
        // ephemeral allocations.
        let ws_bytes = faast.ws_pages() * snapbpf_sim::PAGE_SIZE;
        assert!(
            read <= ws_bytes + 64 * snapbpf_sim::PAGE_SIZE,
            "read {read} vs ws {ws_bytes}"
        );
        assert!(r.uffd_resolved > 0);
    }
}
