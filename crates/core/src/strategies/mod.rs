//! The strategy implementations the evaluation compares.

mod faasnap;
mod faast;
mod reap;
mod snapbpf;
mod vanilla;

pub use faasnap::{Faasnap, DEFAULT_COALESCE_GAP};
pub use faast::Faast;
pub use reap::Reap;
pub use snapbpf::SnapBpf;
pub use vanilla::Vanilla;
