//! Working-set metadata.
//!
//! SnapBPF stores *only* the file offsets of the working set — "we
//! only store the page offsets and not the pages themselves, as
//! prior art does" (paper §3.1). This module implements the offset
//! processing the paper describes:
//!
//! * grouping captured `(offset, first-access-time)` samples into
//!   contiguous ranges,
//! * sorting the groups by the earliest access time of any page in
//!   the group, so reads for the pages needed first are issued
//!   first,
//! * and, for the FaaSnap baseline, region **coalescing**: merging
//!   ranges separated by small gaps into larger regions, which keeps
//!   the mmap count manageable but inflates the working-set file
//!   (the I/O amplification the paper verifies with eBPF, §2.1).

/// One captured working-set sample: a page offset and when it was
/// first touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffsetSample {
    /// Page offset within the snapshot file.
    pub page: u64,
    /// Nanosecond timestamp of the first access.
    pub first_access_ns: u64,
}

/// A contiguous range of working-set pages with its scheduling key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WsGroup {
    /// First page of the range.
    pub start: u64,
    /// Length in pages.
    pub len: u64,
    /// Earliest first-access time of any page in the range.
    pub earliest_ns: u64,
}

impl WsGroup {
    /// One past the last page.
    pub const fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// Groups samples into contiguous ranges and sorts the ranges by
/// earliest access time (paper §3.1, "Loading the working set").
///
/// Duplicate offsets keep their earliest timestamp.
///
/// # Examples
///
/// ```
/// use snapbpf::{group_offsets, OffsetSample};
///
/// let samples = [
///     OffsetSample { page: 10, first_access_ns: 500 },
///     OffsetSample { page: 11, first_access_ns: 600 },
///     OffsetSample { page: 3, first_access_ns: 100 },
/// ];
/// let groups = group_offsets(&samples);
/// assert_eq!(groups.len(), 2);
/// // The page-3 group is needed first, so it sorts first:
/// assert_eq!(groups[0].start, 3);
/// assert_eq!(groups[1].start, 10);
/// assert_eq!(groups[1].len, 2);
/// ```
pub fn group_offsets(samples: &[OffsetSample]) -> Vec<WsGroup> {
    if samples.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<OffsetSample> = samples.to_vec();
    sorted.sort_unstable_by_key(|s| (s.page, s.first_access_ns));
    sorted.dedup_by(|next, kept| {
        if next.page == kept.page {
            kept.first_access_ns = kept.first_access_ns.min(next.first_access_ns);
            true
        } else {
            false
        }
    });

    let mut groups: Vec<WsGroup> = Vec::new();
    for s in sorted {
        match groups.last_mut() {
            Some(g) if g.end() == s.page => {
                g.len += 1;
                g.earliest_ns = g.earliest_ns.min(s.first_access_ns);
            }
            _ => groups.push(WsGroup {
                start: s.page,
                len: 1,
                earliest_ns: s.first_access_ns,
            }),
        }
    }
    groups.sort_by_key(|g| (g.earliest_ns, g.start));
    groups
}

/// FaaSnap-style coalescing: merges ranges whose gap is at most
/// `max_gap_pages`, *including the gap pages in the region* — this
/// is what inflates FaaSnap's working-set file.
///
/// Input ranges are taken in file order; the output is in file order
/// too (FaaSnap reads its working-set file sequentially).
///
/// # Examples
///
/// ```
/// use snapbpf::{coalesce_regions, WsGroup};
///
/// let groups = [
///     WsGroup { start: 0, len: 4, earliest_ns: 0 },
///     WsGroup { start: 6, len: 4, earliest_ns: 0 },   // gap of 2
///     WsGroup { start: 100, len: 4, earliest_ns: 0 }, // far away
/// ];
/// let regions = coalesce_regions(&groups, 8);
/// assert_eq!(regions.len(), 2);
/// assert_eq!(regions[0].len, 10); // 4 + 2 (gap) + 4
/// ```
pub fn coalesce_regions(groups: &[WsGroup], max_gap_pages: u64) -> Vec<WsGroup> {
    let mut in_order: Vec<WsGroup> = groups.to_vec();
    in_order.sort_by_key(|g| g.start);
    let mut out: Vec<WsGroup> = Vec::new();
    for g in in_order {
        match out.last_mut() {
            Some(last) if g.start <= last.end() + max_gap_pages => {
                last.len = g.end().max(last.end()) - last.start;
                last.earliest_ns = last.earliest_ns.min(g.earliest_ns);
            }
            _ => out.push(g),
        }
    }
    out
}

/// Total pages covered by a set of groups.
pub fn total_pages(groups: &[WsGroup]) -> u64 {
    groups.iter().map(|g| g.len).sum()
}

/// Serializes groups for the on-disk offsets metadata file (16 bytes
/// of (start, len) per group — contrast with prior art's full page
/// payloads).
pub fn encode_groups(groups: &[WsGroup]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(groups.len() * 16);
    for g in groups {
        bytes.extend_from_slice(&g.start.to_le_bytes());
        bytes.extend_from_slice(&g.len.to_le_bytes());
    }
    bytes
}

/// Parses the offsets metadata file written by [`encode_groups`].
/// Access-order is positional (the file stores groups pre-sorted),
/// so `earliest_ns` is reconstructed as the index.
///
/// # Errors
///
/// Returns `None` when the byte length is not a multiple of 16.
pub fn decode_groups(bytes: &[u8]) -> Option<Vec<WsGroup>> {
    if !bytes.len().is_multiple_of(16) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(16)
            .enumerate()
            .map(|(i, c)| WsGroup {
                start: u64::from_le_bytes(c[..8].try_into().expect("8 bytes")),
                len: u64::from_le_bytes(c[8..].try_into().expect("8 bytes")),
                earliest_ns: i as u64,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(page: u64, t: u64) -> OffsetSample {
        OffsetSample {
            page,
            first_access_ns: t,
        }
    }

    #[test]
    fn empty_input() {
        assert!(group_offsets(&[]).is_empty());
        assert_eq!(total_pages(&[]), 0);
    }

    #[test]
    fn single_run_groups_to_one() {
        let groups = group_offsets(&[s(5, 30), s(6, 10), s(7, 20)]);
        assert_eq!(
            groups,
            vec![WsGroup {
                start: 5,
                len: 3,
                earliest_ns: 10
            }]
        );
    }

    #[test]
    fn groups_sorted_by_earliest_access() {
        let groups = group_offsets(&[s(100, 50), s(0, 200), s(101, 60), s(50, 10)]);
        let starts: Vec<u64> = groups.iter().map(|g| g.start).collect();
        assert_eq!(starts, vec![50, 100, 0]);
    }

    #[test]
    fn duplicates_keep_earliest_timestamp() {
        let groups = group_offsets(&[s(5, 100), s(5, 40), s(5, 70)]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].earliest_ns, 40);
        assert_eq!(groups[0].len, 1);
    }

    #[test]
    fn non_adjacent_pages_split() {
        let groups = group_offsets(&[s(1, 0), s(3, 1)]);
        assert_eq!(groups.len(), 2);
        assert_eq!(total_pages(&groups), 2);
    }

    #[test]
    fn coalescing_includes_gap_pages() {
        let groups = [
            WsGroup {
                start: 10,
                len: 2,
                earliest_ns: 5,
            },
            WsGroup {
                start: 14,
                len: 2,
                earliest_ns: 3,
            },
        ];
        let merged = coalesce_regions(&groups, 2);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].start, 10);
        assert_eq!(merged[0].len, 6); // includes the 2-page gap
        assert_eq!(merged[0].earliest_ns, 3);
        // Inflation is visible in total pages.
        assert_eq!(total_pages(&merged), 6);
        assert_eq!(total_pages(&groups), 4);
    }

    #[test]
    fn zero_gap_coalescing_only_merges_adjacent() {
        let groups = [
            WsGroup {
                start: 0,
                len: 2,
                earliest_ns: 0,
            },
            WsGroup {
                start: 2,
                len: 2,
                earliest_ns: 0,
            },
            WsGroup {
                start: 5,
                len: 2,
                earliest_ns: 0,
            },
        ];
        let merged = coalesce_regions(&groups, 0);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].len, 4);
        assert_eq!(total_pages(&merged), total_pages(&groups));
    }

    #[test]
    fn larger_gaps_reduce_region_count_but_inflate() {
        let groups: Vec<WsGroup> = (0..50)
            .map(|i| WsGroup {
                start: i * 10,
                len: 3,
                earliest_ns: i,
            })
            .collect();
        let tight = coalesce_regions(&groups, 0);
        let loose = coalesce_regions(&groups, 16);
        assert!(loose.len() < tight.len());
        assert!(total_pages(&loose) > total_pages(&tight));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let groups = group_offsets(&[s(9, 2), s(1, 1), s(2, 3)]);
        let bytes = encode_groups(&groups);
        assert_eq!(bytes.len(), groups.len() * 16);
        let back = decode_groups(&bytes).unwrap();
        assert_eq!(back.len(), groups.len());
        for (a, b) in groups.iter().zip(&back) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.len, b.len);
        }
        // Positional order preserved: earliest_ns is the rank.
        assert!(back.windows(2).all(|w| w[0].earliest_ns < w[1].earliest_ns));
        assert_eq!(decode_groups(&[0u8; 15]), None);
    }
}
