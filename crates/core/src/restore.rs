//! The staged restore pipeline.
//!
//! [`crate::Strategy::restore`] used to be a single blocking call:
//! the caller got a [`crate::RestoredVm`] only after every piece of
//! restore work — metadata reads, prefetch issue, overlay setup,
//! vCPU resume — had been charged to virtual time. That shape cannot
//! express what the real systems do (REAP's and FaaSnap's prefetch
//! threads overlap guest execution) and it forces a fleet scheduler
//! to serialize one sandbox's entire restore against every other
//! event on the host.
//!
//! This module splits a restore into discrete [`RestoreStage`]s
//! behind a [`RestoreCursor`], mirroring how
//! [`snapbpf_vmm::InvocationCursor`] steps execution. A scheduler
//! advances whichever cursor owns the globally earliest event, so
//! concurrent cold starts pipeline against each other and against
//! running vCPUs, while the provided [`crate::Strategy::restore`]
//! default drives a cursor to completion for the single-invocation
//! experiments.
//!
//! ## Two tracks: critical path and background work
//!
//! The cursor keeps **two clocks**. The *critical* track walks the
//! four stages in order and decides when the guest may resume. A
//! stage may instead declare itself *background* work (REAP's
//! working-set reads, FaaSnap's prefetch thread): its remaining
//! sub-steps move to the background track and later stages — in
//! particular [`RestoreStage::Resume`] — stop waiting for it, which
//! is exactly the overlap the real systems permit. The cursor is
//! only [`RestoreCursor::is_done`] once both tracks drain, but the
//! restored VM can be claimed as soon as `Resume` executes via
//! [`RestoreCursor::take_resumed`].

use std::fmt;

use snapbpf_kernel::HostKernel;
use snapbpf_sim::{SimDuration, SimTime};
use snapbpf_vmm::{MicroVm, UffdResolver};

use crate::strategy::{RestoredVm, StrategyError};

/// One stage of a staged restore, in critical-path order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RestoreStage {
    /// Loading restore metadata: offsets files, eBPF map loads,
    /// readahead configuration.
    MetadataLoad,
    /// Issuing prefetch work: working-set-file reads (REAP, Faast,
    /// FaaSnap) or the eBPF prefetch-program kick-off (SnapBPF).
    PrefetchIssue,
    /// Building the sandbox: the microVM mapping, uffd registration,
    /// mmap overlays, anonymous-memory filters.
    OverlaySetup,
    /// Resuming the vCPU (the fixed VMM restore overhead); its
    /// completion is the [`RestoredVm::ready_at`] instant.
    Resume,
}

impl RestoreStage {
    /// Every stage, in critical-path order.
    pub const ALL: [RestoreStage; 4] = [
        RestoreStage::MetadataLoad,
        RestoreStage::PrefetchIssue,
        RestoreStage::OverlaySetup,
        RestoreStage::Resume,
    ];

    /// Stable display label (figure series and error messages).
    pub fn label(&self) -> &'static str {
        match self {
            RestoreStage::MetadataLoad => "metadata-load",
            RestoreStage::PrefetchIssue => "prefetch-issue",
            RestoreStage::OverlaySetup => "overlay-setup",
            RestoreStage::Resume => "resume",
        }
    }

    /// Position in [`RestoreStage::ALL`].
    pub fn index(&self) -> usize {
        match self {
            RestoreStage::MetadataLoad => 0,
            RestoreStage::PrefetchIssue => 1,
            RestoreStage::OverlaySetup => 2,
            RestoreStage::Resume => 3,
        }
    }
}

impl fmt::Display for RestoreStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Wall-clock duration of each restore stage, indexed by
/// [`RestoreStage`]. A stage's duration runs from its first sub-step
/// to its last completion, so background stages report the full span
/// of their overlapped work, not just the issue cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    durations: [SimDuration; 4],
}

impl StageTimings {
    /// The recorded duration of `stage`.
    pub fn get(&self, stage: RestoreStage) -> SimDuration {
        self.durations[stage.index()]
    }

    /// Sets the duration of `stage`.
    pub fn set(&mut self, stage: RestoreStage, d: SimDuration) {
        self.durations[stage.index()] = d;
    }

    /// Sum over all stages (an upper bound on the critical path when
    /// stages overlap).
    pub fn total(&self) -> SimDuration {
        self.durations.iter().copied().sum()
    }

    /// Element-wise maximum with `other` — how the experiment runner
    /// folds per-instance timings into one tail profile.
    pub fn merge_max(&mut self, other: &StageTimings) {
        for (a, b) in self.durations.iter_mut().zip(other.durations) {
            *a = (*a).max(b);
        }
    }
}

/// What one [`RestoreOps::exec`] sub-step did.
pub struct StepOutcome {
    /// Virtual time when this sub-step's work completes.
    pub done_at: SimTime,
    /// Whether this was the stage's final sub-step.
    pub stage_complete: bool,
    /// When `true`, the stage's work runs on a background thread the
    /// later stages do not wait for: the cursor moves any remaining
    /// sub-steps to the background track and advances the critical
    /// path immediately.
    pub background: bool,
    /// Offsets-metadata load cost charged by this sub-step (SnapBPF's
    /// §4 overhead metric; zero elsewhere).
    pub offset_load: SimDuration,
    /// The resumed sandbox; `Some` exactly on the completing
    /// [`RestoreStage::Resume`] sub-step.
    pub vm: Option<(MicroVm, Box<dyn UffdResolver>)>,
}

impl StepOutcome {
    /// A synchronous sub-step that finishes its stage at `done_at`.
    pub fn done(done_at: SimTime) -> StepOutcome {
        StepOutcome {
            done_at,
            stage_complete: true,
            background: false,
            offset_load: SimDuration::ZERO,
            vm: None,
        }
    }

    /// A background sub-step with more sub-steps to come: the next
    /// one executes at `done_at` on the background track while the
    /// critical path moves on.
    pub fn background_pending(done_at: SimTime) -> StepOutcome {
        StepOutcome {
            background: true,
            stage_complete: false,
            ..StepOutcome::done(done_at)
        }
    }

    /// A background sub-step that was also the stage's last: nothing
    /// further to execute, but the critical path never waited for
    /// `done_at`.
    pub fn background_done(done_at: SimTime) -> StepOutcome {
        StepOutcome {
            background: true,
            ..StepOutcome::done(done_at)
        }
    }

    /// Attaches an offsets-load cost to the outcome.
    #[must_use]
    pub fn with_offset_load(mut self, cost: SimDuration) -> StepOutcome {
        self.offset_load = cost;
        self
    }

    /// Attaches the resumed sandbox (the `Resume` stage's product).
    #[must_use]
    pub fn with_vm(mut self, vm: MicroVm, resolver: Box<dyn UffdResolver>) -> StepOutcome {
        self.vm = Some((vm, resolver));
        self
    }
}

/// A strategy's restore state machine: executes one sub-step of
/// `stage` at virtual time `now`.
///
/// Implementations own everything the restore needs (cloned out of
/// the strategy by `begin_restore`), so the cursor outlives the
/// `&mut self` borrow of the strategy that created it. `exec` is
/// called with stages in [`RestoreStage::ALL`] order; a stage is
/// re-entered (on the critical or background track) until it reports
/// [`StepOutcome::stage_complete`]. Stages with nothing to do return
/// [`StepOutcome::done`]`(now)`.
pub trait RestoreOps {
    /// Executes one sub-step of `stage` starting at `now`.
    ///
    /// # Errors
    ///
    /// Kernel errors propagate; the cursor wraps them with the
    /// failing stage ([`StrategyError::Stage`]).
    fn exec(
        &mut self,
        stage: RestoreStage,
        now: SimTime,
        host: &mut HostKernel,
    ) -> Result<StepOutcome, StrategyError>;
}

/// Background-track state: one stage whose remaining sub-steps run
/// off the critical path.
struct BgWork {
    stage: RestoreStage,
    next: SimTime,
    entry: SimTime,
}

/// An in-flight restore that can be advanced one stage sub-step at a
/// time, in virtual-time order, interleaved with any other cursor on
/// the host (see the [module docs](crate::restore)).
pub struct RestoreCursor {
    ops: Box<dyn RestoreOps>,
    /// Critical-path clock: when the next critical sub-step may run.
    crit: SimTime,
    /// Index into [`RestoreStage::ALL`] of the next critical stage.
    crit_idx: usize,
    /// First-sub-step time of the current critical stage.
    crit_entry: Option<SimTime>,
    bg: Option<BgWork>,
    timings: StageTimings,
    offset_load: SimDuration,
    ready_at: Option<SimTime>,
    resumed: Option<(MicroVm, Box<dyn UffdResolver>)>,
    /// Latest completion seen on either track.
    end: SimTime,
    /// Trace track (thread id) stage spans are emitted on.
    trace_tid: u64,
}

impl fmt::Debug for RestoreCursor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RestoreCursor")
            .field("clock", &self.clock())
            .field("next_stage", &self.next_stage())
            .field("ready_at", &self.ready_at)
            .finish_non_exhaustive()
    }
}

impl RestoreCursor {
    /// Starts a staged restore at `begin` over the given state
    /// machine (called by `Strategy::begin_restore` implementations
    /// after their precondition checks).
    pub fn new(begin: SimTime, ops: Box<dyn RestoreOps>) -> RestoreCursor {
        RestoreCursor {
            ops,
            crit: begin,
            crit_idx: 0,
            crit_entry: None,
            bg: None,
            timings: StageTimings::default(),
            offset_load: SimDuration::ZERO,
            ready_at: None,
            resumed: None,
            end: begin,
            trace_tid: 0,
        }
    }

    /// Sets the trace track (thread id) stage spans are emitted on —
    /// schedulers use [`snapbpf_sim::sandbox_tid`] so each sandbox's
    /// restore gets its own Perfetto row.
    pub fn set_trace_tid(&mut self, tid: u64) {
        self.trace_tid = tid;
    }

    /// Emits the trace span and metrics sample for one completed
    /// stage. Called at exactly the `timings.set` sites with the same
    /// `entry`/`done` instants, so trace-derived breakdowns reconcile
    /// with [`StageTimings`].
    fn note_stage(&self, host: &HostKernel, stage: RestoreStage, entry: SimTime, done: SimTime) {
        let trace = host.tracer();
        if !trace.is_enabled() {
            return;
        }
        trace.observe_duration(
            &format!("core.restore.stage.{}_ns", stage.label()),
            done.saturating_since(entry),
        );
        if trace.events_enabled() {
            trace.span(
                "restore",
                stage.label(),
                self.trace_tid,
                entry,
                done,
                vec![],
            );
        }
    }

    /// Virtual time of the next pending sub-step; once done, the
    /// completion time of the last one.
    pub fn clock(&self) -> SimTime {
        let crit = (self.crit_idx < RestoreStage::ALL.len()).then_some(self.crit);
        let bg = self.bg.as_ref().map(|b| b.next);
        match (crit, bg) {
            (Some(c), Some(b)) => c.min(b),
            (Some(c), None) => c,
            (None, Some(b)) => b,
            (None, None) => self.end,
        }
    }

    /// The stage the next [`RestoreCursor::step`] executes (`None`
    /// once done). Background work reports its own stage, so a
    /// cursor past `Resume` can still answer `PrefetchIssue`.
    pub fn next_stage(&self) -> Option<RestoreStage> {
        let crit = (self.crit_idx < RestoreStage::ALL.len())
            .then(|| (self.crit, RestoreStage::ALL[self.crit_idx]));
        let bg = self.bg.as_ref().map(|b| (b.next, b.stage));
        match (crit, bg) {
            (Some((c, cs)), Some((b, _))) if c <= b => Some(cs),
            (_, Some((_, bs))) => Some(bs),
            (Some((_, cs)), None) => Some(cs),
            (None, None) => None,
        }
    }

    /// Whether both tracks have drained.
    pub fn is_done(&self) -> bool {
        self.crit_idx >= RestoreStage::ALL.len() && self.bg.is_none()
    }

    /// When guest execution can begin (`None` until the `Resume`
    /// stage has executed).
    pub fn ready_at(&self) -> Option<SimTime> {
        self.ready_at
    }

    /// Accumulated offsets-map load cost so far.
    pub fn offset_load_cost(&self) -> SimDuration {
        self.offset_load
    }

    /// Per-stage durations (final once [`RestoreCursor::is_done`]).
    pub fn breakdown(&self) -> StageTimings {
        self.timings
    }

    /// Claims the restored sandbox as soon as `Resume` has executed,
    /// so a scheduler can start the invocation while background
    /// prefetch work is still pending. Returns the microVM, its
    /// fault resolver, and the ready instant; `None` before resume
    /// or after a previous claim.
    pub fn take_resumed(&mut self) -> Option<(MicroVm, Box<dyn UffdResolver>, SimTime)> {
        let ready = self.ready_at?;
        let (vm, resolver) = self.resumed.take()?;
        Some((vm, resolver, ready))
    }

    /// Executes the next sub-step: the earlier of the critical and
    /// background tracks (ties prefer the critical path, which is
    /// how the monolithic restore ordered its work). Does nothing
    /// once done.
    ///
    /// # Errors
    ///
    /// Failures are wrapped as [`StrategyError::Stage`] naming the
    /// stage that died.
    pub fn step(&mut self, host: &mut HostKernel) -> Result<(), StrategyError> {
        let crit_pending = self.crit_idx < RestoreStage::ALL.len();
        let run_crit = match (&self.bg, crit_pending) {
            (_, false) => false,
            (Some(b), true) => self.crit <= b.next,
            (None, true) => true,
        };
        if run_crit {
            self.step_critical(host)
        } else if self.bg.is_some() {
            self.step_background(host)
        } else {
            Ok(())
        }
    }

    fn step_critical(&mut self, host: &mut HostKernel) -> Result<(), StrategyError> {
        let stage = RestoreStage::ALL[self.crit_idx];
        let entry = *self.crit_entry.get_or_insert(self.crit);
        let out = self
            .ops
            .exec(stage, self.crit, host)
            .map_err(|e| StrategyError::Stage {
                stage,
                source: Box::new(e),
            })?;
        self.offset_load += out.offset_load;
        self.end = self.end.max(out.done_at);
        if out.background {
            // Later stages resume from the issue instant, not from
            // the background work's completion.
            if !out.stage_complete {
                self.bg = Some(BgWork {
                    stage,
                    next: out.done_at,
                    entry,
                });
            } else {
                self.timings.set(stage, out.done_at.saturating_since(entry));
                self.note_stage(host, stage, entry, out.done_at);
            }
            self.crit_idx += 1;
            self.crit_entry = None;
        } else if out.stage_complete {
            self.timings.set(stage, out.done_at.saturating_since(entry));
            self.note_stage(host, stage, entry, out.done_at);
            self.crit = out.done_at;
            self.crit_idx += 1;
            self.crit_entry = None;
        } else {
            self.crit = out.done_at;
        }
        if stage == RestoreStage::Resume && out.stage_complete {
            debug_assert!(out.vm.is_some(), "Resume must produce the sandbox");
            self.ready_at = Some(out.done_at);
            self.resumed = out.vm;
        } else {
            debug_assert!(out.vm.is_none(), "only Resume may produce the sandbox");
        }
        Ok(())
    }

    fn step_background(&mut self, host: &mut HostKernel) -> Result<(), StrategyError> {
        let bg = self.bg.as_mut().expect("background work pending");
        let (stage, at, entry) = (bg.stage, bg.next, bg.entry);
        let out = self
            .ops
            .exec(stage, at, host)
            .map_err(|e| StrategyError::Stage {
                stage,
                source: Box::new(e),
            })?;
        self.offset_load += out.offset_load;
        self.end = self.end.max(out.done_at);
        debug_assert!(out.vm.is_none(), "background work cannot resume the vCPU");
        if out.stage_complete {
            self.timings.set(stage, out.done_at.saturating_since(entry));
            self.note_stage(host, stage, entry, out.done_at);
            self.bg = None;
        } else {
            self.bg = Some(BgWork {
                stage,
                next: out.done_at,
                entry,
            });
        }
        Ok(())
    }

    /// Finishes a fully-driven restore, yielding the classic
    /// [`RestoredVm`] (what the monolithic `Strategy::restore`
    /// default returns).
    ///
    /// # Panics
    ///
    /// Panics if stages are pending or the sandbox was already
    /// claimed with [`RestoreCursor::take_resumed`].
    pub fn finish(self) -> RestoredVm {
        assert!(self.is_done(), "finish() before every stage completed");
        let (vm, resolver) = self
            .resumed
            .expect("finish() after take_resumed() claimed the sandbox");
        RestoredVm {
            vm,
            resolver,
            ready_at: self.ready_at.expect("Resume stage sets ready_at"),
            offset_load_cost: self.offset_load,
            stages: self.timings,
        }
    }

    /// Abandons the restore mid-flight (host crash in a fleet
    /// simulation). Returns the sandbox when the Resume stage had
    /// already produced one and nobody claimed it with
    /// [`RestoreCursor::take_resumed`]; `None` otherwise. Any
    /// anonymous memory the restore charged before the sandbox
    /// existed stays attributed to its owner — the caller releases
    /// it with `HostKernel::release_owner`.
    pub fn abort(self) -> Option<(MicroVm, Box<dyn UffdResolver>)> {
        self.resumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_order_and_labels() {
        for (i, s) in RestoreStage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        let mut labels: Vec<&str> = RestoreStage::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn timings_merge_max_is_elementwise() {
        let mut a = StageTimings::default();
        a.set(RestoreStage::MetadataLoad, SimDuration::from_millis(3));
        a.set(RestoreStage::Resume, SimDuration::from_millis(1));
        let mut b = StageTimings::default();
        b.set(RestoreStage::MetadataLoad, SimDuration::from_millis(1));
        b.set(RestoreStage::PrefetchIssue, SimDuration::from_millis(7));
        a.merge_max(&b);
        assert_eq!(
            a.get(RestoreStage::MetadataLoad),
            SimDuration::from_millis(3)
        );
        assert_eq!(
            a.get(RestoreStage::PrefetchIssue),
            SimDuration::from_millis(7)
        );
        assert_eq!(a.get(RestoreStage::Resume), SimDuration::from_millis(1));
        assert_eq!(a.total(), SimDuration::from_millis(11));
    }
}
