//! Staged-restore equivalence: for every strategy, driving
//! [`snapbpf::Strategy::begin_restore`] stage-by-stage must yield
//! exactly what the provided monolithic [`snapbpf::Strategy::restore`]
//! default yields — same `ready_at`, same `offset_load_cost`, same
//! per-stage breakdown, and an invocation replayed on the restored
//! sandbox must produce identical metrics.

use proptest::prelude::*;
use snapbpf::{FunctionCtx, RestoredVm, StrategyKind};
use snapbpf_kernel::HostKernel;
use snapbpf_mem::OwnerId;
use snapbpf_testkit::recorded_env;
use snapbpf_vmm::{run_invocation, InvocationResult};

/// Restores and replays one invocation, returning the restore
/// product and the invocation metrics.
fn replay(host: &mut HostKernel, func: &FunctionCtx, mut restored: RestoredVm) -> InvocationResult {
    let trace = func.workload.trace();
    let result = run_invocation(
        restored.ready_at,
        &mut restored.vm,
        &trace,
        host,
        restored.resolver.as_mut(),
    )
    .expect("invocation replay");
    restored
        .vm
        .kvm_mut()
        .teardown(host)
        .expect("sandbox teardown");
    result
}

fn assert_equivalent(kind: StrategyKind, name: &str, scale: f64) {
    // Twin deterministic environments: one per restore path.
    let (mut host_a, func_a, mut strat_a, t_a) = recorded_env(kind, name, scale);
    let (mut host_b, func_b, mut strat_b, t_b) = recorded_env(kind, name, scale);
    assert_eq!(t_a, t_b, "{kind:?}: record phases must be deterministic");

    // Path A: the provided monolithic default.
    let restored_a = strat_a
        .restore(t_a, &mut host_a, &func_a, OwnerId::new(0))
        .expect("monolithic restore");

    // Path B: manual stage-by-stage stepping.
    let mut cursor = strat_b
        .begin_restore(t_b, &mut host_b, &func_b, OwnerId::new(0))
        .expect("begin_restore");
    let mut steps = 0u32;
    while !cursor.is_done() {
        cursor.step(&mut host_b).expect("cursor step");
        steps += 1;
        assert!(steps < 1_000_000, "{kind:?}: cursor failed to converge");
    }
    assert!(steps > 0, "{kind:?}: a restore has at least one sub-step");
    let restored_b = cursor.finish();

    assert_eq!(
        restored_a.ready_at, restored_b.ready_at,
        "{kind:?}: ready_at must match"
    );
    assert_eq!(
        restored_a.offset_load_cost, restored_b.offset_load_cost,
        "{kind:?}: offset_load_cost must match"
    );
    assert_eq!(
        restored_a.stages, restored_b.stages,
        "{kind:?}: per-stage breakdown must match"
    );

    let result_a = replay(&mut host_a, &func_a, restored_a);
    let result_b = replay(&mut host_b, &func_b, restored_b);
    assert_eq!(
        result_a, result_b,
        "{kind:?}: invocation metrics must match"
    );
}

#[test]
fn staged_restore_matches_monolithic_for_every_kind() {
    for kind in StrategyKind::ALL {
        assert_equivalent(kind, "json", 0.05);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The equivalence holds across strategies, workloads, and
    /// scales, not just at one operating point.
    #[test]
    fn staged_restore_matches_monolithic(
        kind_idx in 0usize..StrategyKind::ALL.len(),
        name_idx in 0usize..3,
        scale_idx in 0usize..2,
    ) {
        let name = ["json", "html", "chameleon"][name_idx];
        let scale = [0.02, 0.05][scale_idx];
        assert_equivalent(StrategyKind::ALL[kind_idx], name, scale);
    }
}
