//! Optimizer equivalence on the shipped prefetch builders: with the
//! host kernel's optimizer on vs off, both the looped prefetch
//! program and its telemetry-instrumented variant must issue the
//! identical prefetch-range sequence, produce byte-identical
//! telemetry, and leave identical stat slots — while executing
//! measurably fewer instructions per invocation.

use snapbpf::{
    build_prefetch_program, build_prefetch_program_cascade, build_prefetch_program_telemetry,
    groups_map_def, groups_map_image, WsGroup, GROUPS_CURSOR_SLOT,
};
use snapbpf_kernel::{HostKernel, KernelConfig, PAGE_CACHE_ADD_HOOK};
use snapbpf_sim::{SimTime, TraceValue, Tracer};
use snapbpf_storage::{Disk, SsdModel};

fn groups() -> Vec<WsGroup> {
    vec![
        WsGroup {
            start: 1000,
            len: 16,
            earliest_ns: 0,
        },
        WsGroup {
            start: 200,
            len: 8,
            earliest_ns: 1,
        },
        WsGroup {
            start: 4000,
            len: 4,
            earliest_ns: 2,
        },
    ]
}

/// Everything observable from one restore run: the ordered prefetch
/// ranges, the raw (undecoded) ring records, the merged per-CPU stat
/// slots, and the mean dynamic instruction count per invocation.
#[derive(Debug, PartialEq)]
struct RunObservables {
    ranges: Vec<(u64, u64)>,
    ring_bytes: Vec<Vec<u8>>,
    stats: Vec<u64>,
    mean_insns: u64,
}

fn run(
    optimize: bool,
    telemetry: bool,
    build: impl FnOnce(
        snapbpf_storage::FileId,
        snapbpf_ebpf::MapId,
        Option<(snapbpf_ebpf::MapId, snapbpf_ebpf::MapId)>,
    ) -> snapbpf_ebpf::Program,
) -> RunObservables {
    let groups = groups();
    let mut k = HostKernel::new(
        Disk::new(Box::new(SsdModel::micron_5300())),
        KernelConfig::default(),
    );
    k.set_optimizer(optimize);
    let tracer = Tracer::recording();
    k.install_tracer(&tracer);
    k.set_readahead(false);
    let snap = k.disk_mut().create_file("snap", 8192).unwrap();
    let map = k.create_map(groups_map_def(groups.len() as u32)).unwrap();
    k.load_map_from_user(map, 0, &groups_map_image(&groups))
        .unwrap();
    let tel = if telemetry {
        let ring = k.create_map(snapbpf_ebpf::telemetry_ring_def()).unwrap();
        let stats = k.create_map(snapbpf_ebpf::telemetry_stats_def()).unwrap();
        Some((ring, stats))
    } else {
        None
    };
    let prog = build(snap, map, tel);
    let probe = k.load_and_attach(PAGE_CACHE_ADD_HOOK, &prog).unwrap();

    k.trigger_access(SimTime::ZERO, snap, 0).unwrap();

    // The optimized image must still satisfy every behavioral
    // postcondition of the original.
    for g in &groups {
        for p in g.start..g.end() {
            assert!(k.page_state(snap, p).is_some(), "page {p} missing");
        }
    }
    assert!(!k.probe_enabled(probe), "program must disable itself");
    assert_eq!(
        k.maps().array_load_u64(map, GROUPS_CURSOR_SLOT).unwrap(),
        groups.len() as u64
    );

    let ranges = tracer
        .take_events()
        .into_iter()
        .filter(|e| e.name == "prefetch-range")
        .map(|e| {
            let field = |key: &str| {
                e.args
                    .iter()
                    .find_map(|(k, v)| match v {
                        TraceValue::U64(n) if *k == key => Some(*n),
                        _ => None,
                    })
                    .expect("u64 arg present")
            };
            (field("start_page"), field("pages"))
        })
        .collect();

    let (mut ring_bytes, mut stats) = (Vec::new(), Vec::new());
    if let Some((ring, stat_map)) = tel {
        while let Some(raw) = k.maps_mut().ring_pop(ring).unwrap() {
            ring_bytes.push(raw);
        }
        for slot in [
            snapbpf_ebpf::STAT_SLOT_ISSUED,
            snapbpf_ebpf::STAT_SLOT_PAGES,
            snapbpf_ebpf::STAT_SLOT_ENOSPC,
        ] {
            stats.push(k.maps().percpu_load_merged_u64(stat_map, slot).unwrap());
        }
        assert_eq!(k.maps().ring_dropped(ring).unwrap(), 0);
    }

    let m = tracer.metrics_snapshot();
    let hist = m
        .histogram("ebpf.prog.insns_per_invocation")
        .expect("prefetch runs record per-invocation instruction counts");
    RunObservables {
        ranges,
        ring_bytes,
        stats,
        mean_insns: hist.mean().round() as u64,
    }
}

/// Asserts full observable equivalence and returns the
/// (unoptimized, optimized) mean instruction counts.
fn assert_equivalent(
    telemetry: bool,
    build: impl Fn(
        snapbpf_storage::FileId,
        snapbpf_ebpf::MapId,
        Option<(snapbpf_ebpf::MapId, snapbpf_ebpf::MapId)>,
    ) -> snapbpf_ebpf::Program,
) -> (u64, u64) {
    let base = run(false, telemetry, &build);
    let opt = run(true, telemetry, &build);
    assert_eq!(opt.ranges, base.ranges, "prefetch ranges diverged");
    assert!(!base.ranges.is_empty());
    assert_eq!(
        opt.ring_bytes, base.ring_bytes,
        "telemetry ring bytes diverged"
    );
    assert_eq!(opt.stats, base.stats, "stat slots diverged");
    assert!(
        opt.mean_insns <= base.mean_insns,
        "optimizer must never add dynamic instructions ({} -> {})",
        base.mean_insns,
        opt.mean_insns
    );
    (base.mean_insns, opt.mean_insns)
}

#[test]
fn looped_prefetch_is_equivalent_and_at_least_10_percent_cheaper() {
    let (base, opt) = assert_equivalent(false, |snap, map, _| {
        build_prefetch_program(snap, map, groups().len() as u32)
    });
    assert!(
        (opt as f64) <= (base as f64) * 0.90,
        "expected >= 10% dynamic insn reduction, got {base} -> {opt}"
    );
}

#[test]
fn telemetry_prefetch_is_equivalent_and_at_least_15_percent_cheaper() {
    // On the fleet workloads (more groups per invocation, so the
    // optimized loop body dominates) the reduction exceeds 20% — see
    // the pinned `ebpf.prog.insns_per_invocation` means in the fleet
    // goldens. This 3-group micro case carries proportionally more
    // fixed prologue cost, so the floor here is 15%.
    let (base, opt) = assert_equivalent(true, |snap, map, tel| {
        let (ring, stats) = tel.unwrap();
        build_prefetch_program_telemetry(snap, map, groups().len() as u32, ring, stats)
    });
    assert!(
        (opt as f64) <= (base as f64) * 0.85,
        "expected >= 15% dynamic insn reduction, got {base} -> {opt}"
    );
}

#[test]
fn cascade_prefetch_is_equivalent() {
    // The cascade baseline has no loop for the heavy passes to chew
    // on; equivalence must still hold (reduction is not required).
    assert_equivalent(false, |snap, map, _| {
        build_prefetch_program_cascade(snap, map)
    });
}
