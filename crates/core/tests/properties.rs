//! Property-based tests for the working-set metadata algorithms —
//! the part of SnapBPF where a silent bug would quietly corrupt
//! every experiment.

use proptest::prelude::*;
use snapbpf::{
    coalesce_regions, decode_groups, encode_groups, group_offsets, total_pages, OffsetSample,
    WsGroup,
};

fn arb_samples() -> impl Strategy<Value = Vec<OffsetSample>> {
    prop::collection::vec(
        (0u64..10_000, 0u64..1_000_000).prop_map(|(page, first_access_ns)| OffsetSample {
            page,
            first_access_ns,
        }),
        0..500,
    )
}

proptest! {
    /// Grouping covers exactly the distinct input pages, with
    /// disjoint contiguous ranges sorted by earliest access.
    #[test]
    fn grouping_partitions_the_input(samples in arb_samples()) {
        let groups = group_offsets(&samples);

        // Coverage: the union of groups equals the distinct pages.
        let mut covered: Vec<u64> = groups.iter().flat_map(|g| g.start..g.end()).collect();
        covered.sort_unstable();
        let mut expected: Vec<u64> = samples.iter().map(|s| s.page).collect();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(&covered, &expected);
        prop_assert_eq!(total_pages(&groups), expected.len() as u64);

        // Disjointness + maximality: consecutive file-order groups
        // never touch.
        let mut by_start = groups.clone();
        by_start.sort_by_key(|g| g.start);
        for w in by_start.windows(2) {
            prop_assert!(w[0].end() < w[1].start, "{:?} then {:?}", w[0], w[1]);
        }

        // Scheduling order: earliest access is non-decreasing.
        for w in groups.windows(2) {
            prop_assert!(w[0].earliest_ns <= w[1].earliest_ns);
        }

        // Each group's earliest equals the min timestamp of its pages.
        for g in &groups {
            let min_ts = samples
                .iter()
                .filter(|s| (g.start..g.end()).contains(&s.page))
                .map(|s| s.first_access_ns)
                .min()
                .unwrap();
            prop_assert_eq!(g.earliest_ns, min_ts);
        }
    }

    /// Grouping is insensitive to input order.
    #[test]
    fn grouping_is_order_invariant(mut samples in arb_samples(), seed in any::<u64>()) {
        let a = group_offsets(&samples);
        snapbpf_sim::SplitMix64::new(seed).shuffle(&mut samples);
        let b = group_offsets(&samples);
        prop_assert_eq!(a, b);
    }

    /// Coalescing covers every input page, is monotone in the gap
    /// threshold (pages and region count), and merges only across
    /// small gaps.
    #[test]
    fn coalescing_monotone(samples in arb_samples(), gap_a in 0u64..64, extra in 1u64..64) {
        let groups = group_offsets(&samples);
        let gap_b = gap_a + extra;
        let a = coalesce_regions(&groups, gap_a);
        let b = coalesce_regions(&groups, gap_b);

        // Larger gap: fewer (or equal) regions, more (or equal) pages.
        prop_assert!(b.len() <= a.len());
        prop_assert!(total_pages(&b) >= total_pages(&a));

        // Every original page is still covered.
        for g in &groups {
            for p in g.start..g.end() {
                prop_assert!(
                    a.iter().any(|r| (r.start..r.end()).contains(&p)),
                    "page {p} lost at gap {gap_a}"
                );
            }
        }

        // Output regions are disjoint and separated by > gap.
        for w in a.windows(2) {
            prop_assert!(w[1].start > w[0].end() + gap_a);
        }
    }

    /// The on-disk offsets encoding round-trips.
    #[test]
    fn encoding_roundtrip(samples in arb_samples()) {
        let groups = group_offsets(&samples);
        let decoded = decode_groups(&encode_groups(&groups)).unwrap();
        prop_assert_eq!(decoded.len(), groups.len());
        for (a, b) in groups.iter().zip(&decoded) {
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(a.len, b.len);
        }
        // Positional rank preserves the access order.
        prop_assert!(decoded.windows(2).all(|w| w[0].earliest_ns < w[1].earliest_ns));
    }

    /// Coalescing with gap 0 changes nothing for already-maximal
    /// groups.
    #[test]
    fn zero_gap_is_identity_on_maximal_groups(samples in arb_samples()) {
        let groups = group_offsets(&samples);
        let mut file_order: Vec<WsGroup> = groups.clone();
        file_order.sort_by_key(|g| g.start);
        let coalesced = coalesce_regions(&groups, 0);
        prop_assert_eq!(coalesced.len(), file_order.len());
        prop_assert_eq!(total_pages(&coalesced), total_pages(&file_order));
    }
}
