//! The microVM: KVM-side memory plus the (modified) guest kernel.
//!
//! The guest-kernel model carries the paper's §3.2 guest
//! modification: when PV PTE marking is enabled, freshly allocated
//! guest pages are mapped via their *mirrored* PFN (MSB set), which
//! the host's nested-fault handler recognizes and serves with
//! anonymous memory.

use snapbpf_kernel::{CowPolicy, KvmVm, PV_MIRROR_BIT};
use snapbpf_mem::OwnerId;

use crate::snapshot::Snapshot;

/// The guest kernel's memory allocator, as far as the host can tell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuestKernel {
    pv_marking: bool,
    marked_allocs: u64,
    unmarked_allocs: u64,
}

impl GuestKernel {
    /// A guest kernel with or without the PV PTE marking patch.
    pub fn new(pv_marking: bool) -> Self {
        GuestKernel {
            pv_marking,
            marked_allocs: 0,
            unmarked_allocs: 0,
        }
    }

    /// `true` when the guest marks fresh allocations.
    pub fn pv_marking(&self) -> bool {
        self.pv_marking
    }

    /// The guest allocator maps a freshly allocated page: returns
    /// the guest PFN as it appears to the host — mirror-marked when
    /// the PV patch is in (paper §3.2 step ③).
    pub fn alloc_page(&mut self, gpfn: u64) -> u64 {
        if self.pv_marking {
            self.marked_allocs += 1;
            gpfn | PV_MIRROR_BIT
        } else {
            self.unmarked_allocs += 1;
            gpfn
        }
    }

    /// Allocations mapped through the mirror space.
    pub fn marked_allocs(&self) -> u64 {
        self.marked_allocs
    }

    /// Allocations mapped normally.
    pub fn unmarked_allocs(&self) -> u64 {
        self.unmarked_allocs
    }
}

/// A restored microVM sandbox: guest kernel + KVM memory state.
///
/// # Examples
///
/// ```
/// use snapbpf_kernel::{CowPolicy, HostKernel, KernelConfig};
/// use snapbpf_mem::OwnerId;
/// use snapbpf_sim::SimTime;
/// use snapbpf_storage::{Disk, SsdModel};
/// use snapbpf_vmm::{MicroVm, Snapshot};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let disk = Disk::new(Box::new(SsdModel::micron_5300()));
/// let mut host = HostKernel::new(disk, KernelConfig::default());
/// let (snap, _) = Snapshot::create(SimTime::ZERO, "json", 256, &mut host)?;
///
/// let vm = MicroVm::restore(OwnerId::new(0), &snap, CowPolicy::Opportunistic, true);
/// assert!(vm.guest().pv_marking());
/// assert_eq!(vm.kvm().pages(), 256);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MicroVm {
    kvm: KvmVm,
    guest: GuestKernel,
}

impl MicroVm {
    /// Restores a microVM from a snapshot: guest memory is a private
    /// mapping of the snapshot's memory file.
    pub fn restore(
        owner: OwnerId,
        snapshot: &Snapshot,
        cow_policy: CowPolicy,
        pv_marking: bool,
    ) -> MicroVm {
        MicroVm {
            kvm: KvmVm::new(
                owner,
                snapshot.memory_file(),
                snapshot.memory_pages(),
                cow_policy,
            ),
            guest: GuestKernel::new(pv_marking),
        }
    }

    /// The KVM memory state.
    pub fn kvm(&self) -> &KvmVm {
        &self.kvm
    }

    /// Mutable KVM memory state (fault handling, uffd registration,
    /// overlays, teardown).
    pub fn kvm_mut(&mut self) -> &mut KvmVm {
        &mut self.kvm
    }

    /// The guest kernel model.
    pub fn guest(&self) -> &GuestKernel {
        &self.guest
    }

    /// Mutable guest kernel model.
    pub fn guest_mut(&mut self) -> &mut GuestKernel {
        &mut self.guest
    }

    /// The owning sandbox id.
    pub fn owner(&self) -> OwnerId {
        self.kvm.owner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapbpf_kernel::{HostKernel, KernelConfig};
    use snapbpf_sim::SimTime;
    use snapbpf_storage::{Disk, SsdModel};

    #[test]
    fn guest_marks_only_with_pv() {
        let mut with = GuestKernel::new(true);
        let mut without = GuestKernel::new(false);
        assert_eq!(with.alloc_page(100), 100 | PV_MIRROR_BIT);
        assert_eq!(without.alloc_page(100), 100);
        assert_eq!(with.marked_allocs(), 1);
        assert_eq!(with.unmarked_allocs(), 0);
        assert_eq!(without.marked_allocs(), 0);
        assert_eq!(without.unmarked_allocs(), 1);
    }

    #[test]
    fn restore_wires_snapshot_file() {
        let mut host = HostKernel::new(
            Disk::new(Box::new(SsdModel::micron_5300())),
            KernelConfig::default(),
        );
        let (snap, _) = Snapshot::create(SimTime::ZERO, "f", 512, &mut host).unwrap();
        let vm = MicroVm::restore(OwnerId::new(3), &snap, CowPolicy::Opportunistic, false);
        assert_eq!(vm.owner(), OwnerId::new(3));
        assert_eq!(vm.kvm().snapshot_file(), snap.memory_file());
        assert!(!vm.guest().pv_marking());
    }
}
