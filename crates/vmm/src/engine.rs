//! Invocation replay engine.
//!
//! Replays a workload's [`InvocationTrace`] against a restored
//! [`MicroVm`] over virtual time: compute advances the vCPU clock,
//! page accesses go through KVM's nested-fault path (possibly
//! stalling on snapshot I/O), allocations flow through the guest
//! allocator (mirror-marked under PV PTE marking), and userfaultfd
//! faults bounce to a strategy-provided userspace handler.
//!
//! For the paper's concurrent experiments, [`run_concurrent`]
//! interleaves several VMs deterministically in virtual-time order —
//! each VM has its own pinned vCPU (as in the paper's methodology),
//! so they only contend on the shared disk and page cache.

use snapbpf_kernel::{AccessKind, HostKernel, KernelError, VmMemStats};
use snapbpf_sim::{sandbox_tid, SimDuration, SimTime};
use snapbpf_workloads::{InvocationTrace, Step};

use crate::microvm::MicroVm;

/// Bumps the per-fault-kind metrics counters for one guest access.
fn note_access(host: &HostKernel, kind: AccessKind) {
    let trace = host.tracer();
    if !trace.is_enabled() {
        return;
    }
    match kind {
        AccessKind::Hit => {}
        AccessKind::PvAnon => trace.incr("vmm.guest.pv_anon_faults"),
        AccessKind::Minor => trace.incr("vmm.guest.minor_faults"),
        AccessKind::Major => trace.incr("vmm.guest.major_faults"),
        AccessKind::CowBreak => trace.incr("vmm.guest.cow_breaks"),
        AccessKind::Uffd => trace.incr("vmm.uffd.faults"),
    }
}

/// Userspace handler for userfaultfd faults (REAP / Faast).
///
/// Given a faulting guest page, the handler returns the time at
/// which it has the page's bytes available in its userspace buffer —
/// immediately for a prefetched page, or after disk I/O for a miss.
pub trait UffdResolver {
    /// Resolves the data for `gpfn`, returning when the bytes are
    /// available to copy.
    ///
    /// # Errors
    ///
    /// Kernel errors (I/O) propagate and abort the invocation.
    fn resolve(
        &mut self,
        now: SimTime,
        gpfn: u64,
        host: &mut HostKernel,
    ) -> Result<SimTime, KernelError>;
}

/// A resolver for configurations that must never see a uffd fault.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoUffd;

impl UffdResolver for NoUffd {
    fn resolve(
        &mut self,
        _now: SimTime,
        gpfn: u64,
        _host: &mut HostKernel,
    ) -> Result<SimTime, KernelError> {
        panic!("unexpected userfaultfd fault on gpfn {gpfn} (no uffd registered)");
    }
}

/// Result of one replayed invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvocationResult {
    /// When the invocation finished.
    pub end_time: SimTime,
    /// End-to-end latency from the invocation's start.
    pub e2e_latency: SimDuration,
    /// KVM fault statistics accumulated during the run.
    pub stats: VmMemStats,
    /// Faults resolved through the userspace handler.
    pub uffd_resolved: u64,
}

/// Replays `trace` on `vm` starting at `start`.
///
/// # Errors
///
/// Kernel errors (I/O, memory exhaustion) propagate.
pub fn run_invocation(
    start: SimTime,
    vm: &mut MicroVm,
    trace: &InvocationTrace,
    host: &mut HostKernel,
    uffd: &mut dyn UffdResolver,
) -> Result<InvocationResult, KernelError> {
    let mut t = start;
    let mut uffd_resolved = 0;
    for step in trace.steps() {
        t = advance(t, vm, *step, host, uffd, &mut uffd_resolved)?;
    }
    Ok(InvocationResult {
        end_time: t,
        e2e_latency: t.saturating_since(start),
        stats: vm.kvm().stats(),
        uffd_resolved,
    })
}

/// Executes one step, returning the new vCPU time.
fn advance(
    t: SimTime,
    vm: &mut MicroVm,
    step: Step,
    host: &mut HostKernel,
    uffd: &mut dyn UffdResolver,
    uffd_resolved: &mut u64,
) -> Result<SimTime, KernelError> {
    match step {
        Step::Compute(d) => Ok(t + d),
        Step::Access { gpfn, write } => {
            let out = vm.kvm_mut().access(t, gpfn, write, host)?;
            note_access(host, out.kind);
            if out.kind == AccessKind::Uffd {
                Ok(resolve_uffd(
                    t,
                    out.cpu,
                    gpfn,
                    vm,
                    host,
                    uffd,
                    uffd_resolved,
                )?)
            } else {
                Ok(out.ready_at)
            }
        }
        Step::Alloc { gpfn } => {
            let gpfn_as_mapped = vm.guest_mut().alloc_page(gpfn);
            let out = vm.kvm_mut().access(t, gpfn_as_mapped, true, host)?;
            note_access(host, out.kind);
            if out.kind == AccessKind::Uffd {
                // Allocation faults land in the uffd range too for
                // uffd-based restores (REAP cannot tell allocations
                // apart — exactly the semantic gap of §2.2).
                Ok(resolve_uffd(
                    t,
                    out.cpu,
                    gpfn,
                    vm,
                    host,
                    uffd,
                    uffd_resolved,
                )?)
            } else {
                Ok(out.ready_at)
            }
        }
    }
}

/// Resolves a userfaultfd fault through the userspace handler.
///
/// REAP-style handlers *pre-install* prefetched pages eagerly: when
/// the page's data arrived in the handler's buffer before the guest
/// touched it, the install already happened in the background and
/// the access costs only the fault exit — no userspace round trip on
/// the critical path. Only accesses that race ahead of the prefetch
/// stream (or miss it entirely) pay the full round trip plus copy.
fn resolve_uffd(
    t: SimTime,
    fault_cpu: snapbpf_sim::SimDuration,
    gpfn: u64,
    vm: &mut MicroVm,
    host: &mut HostKernel,
    uffd: &mut dyn UffdResolver,
    uffd_resolved: &mut u64,
) -> Result<SimTime, KernelError> {
    let fault_time = t + fault_cpu;
    let data_ready = uffd.resolve(fault_time, gpfn, host)?;
    *uffd_resolved += 1;
    if data_ready <= fault_time {
        // Pre-installed in the background; account the anonymous
        // page but charge no round trip.
        vm.kvm_mut()
            .uffd_install(fault_time, gpfn, data_ready, host)?;
        host.tracer()
            .observe_duration("vmm.uffd.wait_ns", SimDuration::ZERO);
        Ok(fault_time)
    } else {
        let round_trip = host.config().uffd_round_trip;
        let installed =
            vm.kvm_mut()
                .uffd_install(fault_time + round_trip, gpfn, data_ready, host)?;
        let done = installed.ready_at.max(fault_time + round_trip);
        let trace = host.tracer();
        trace.observe_duration("vmm.uffd.wait_ns", done.saturating_since(fault_time));
        if trace.events_enabled() {
            trace.span(
                "vmm",
                "uffd-round-trip",
                sandbox_tid(vm.owner().as_u32()),
                fault_time,
                done,
                vec![("gpfn", gpfn.into())],
            );
        }
        Ok(done)
    }
}

/// An in-flight invocation that can be advanced one step at a time.
///
/// [`run_invocation`] and [`run_concurrent`] replay fixed sets of
/// invocations to completion; a fleet scheduler instead interleaves
/// *ongoing* invocations with request arrivals, sandbox reuse, and
/// evictions. `InvocationCursor` owns everything one invocation
/// needs — the microVM, its uffd resolver, and the trace — and
/// exposes the vCPU clock so a scheduler can always advance the
/// globally earliest event (keeping disk submissions in virtual-time
/// order, the determinism contract of the concurrent engine).
pub struct InvocationCursor {
    vm: MicroVm,
    resolver: Box<dyn UffdResolver>,
    trace: InvocationTrace,
    next_step: usize,
    t: SimTime,
    start: SimTime,
    uffd_resolved: u64,
}

/// Builds an [`InvocationCursor`]: the microVM and trace are
/// mandatory, the start time defaults to [`SimTime::ZERO`], and the
/// resolver defaults to [`NoUffd`] — so the common no-uffd case reads
/// `InvocationCursor::builder(vm, trace).starting_at(t).begin()`.
pub struct InvocationCursorBuilder {
    vm: MicroVm,
    trace: InvocationTrace,
    start: SimTime,
    resolver: Box<dyn UffdResolver>,
}

impl InvocationCursorBuilder {
    /// Sets when the invocation begins guest execution (typically
    /// the restore's ready instant).
    #[must_use]
    pub fn starting_at(mut self, start: SimTime) -> InvocationCursorBuilder {
        self.start = start;
        self
    }

    /// Sets the userspace fault handler (REAP/Faast-style restores).
    #[must_use]
    pub fn with_resolver(mut self, resolver: Box<dyn UffdResolver>) -> InvocationCursorBuilder {
        self.resolver = resolver;
        self
    }

    /// Finalizes the cursor, positioned before the trace's first
    /// step.
    pub fn begin(self) -> InvocationCursor {
        InvocationCursor {
            vm: self.vm,
            resolver: self.resolver,
            trace: self.trace,
            next_step: 0,
            t: self.start,
            start: self.start,
            uffd_resolved: 0,
        }
    }
}

impl InvocationCursor {
    /// Starts building an invocation of `trace` on `vm` (see
    /// [`InvocationCursorBuilder`]).
    pub fn builder(vm: MicroVm, trace: InvocationTrace) -> InvocationCursorBuilder {
        InvocationCursorBuilder {
            vm,
            trace,
            start: SimTime::ZERO,
            resolver: Box::new(NoUffd),
        }
    }

    /// The invocation's vCPU clock (completion time once done).
    pub fn clock(&self) -> SimTime {
        self.t
    }

    /// When the invocation started.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Whether every step of the trace has executed.
    pub fn is_done(&self) -> bool {
        self.next_step >= self.trace.steps().len()
    }

    /// Executes the next step of the trace; does nothing once done.
    ///
    /// # Errors
    ///
    /// Kernel errors (I/O, memory exhaustion) propagate.
    pub fn step(&mut self, host: &mut HostKernel) -> Result<(), KernelError> {
        if let Some(&step) = self.trace.steps().get(self.next_step) {
            self.t = advance(
                self.t,
                &mut self.vm,
                step,
                host,
                self.resolver.as_mut(),
                &mut self.uffd_resolved,
            )?;
            self.next_step += 1;
        }
        Ok(())
    }

    /// Finishes the invocation, handing back the sandbox (for reuse
    /// or teardown) together with its result.
    ///
    /// # Panics
    ///
    /// Panics if the invocation has steps left.
    pub fn finish(self) -> (MicroVm, Box<dyn UffdResolver>, InvocationResult) {
        assert!(self.is_done(), "finish() before the trace completed");
        let result = InvocationResult {
            end_time: self.t,
            e2e_latency: self.t.saturating_since(self.start),
            stats: self.vm.kvm().stats(),
            uffd_resolved: self.uffd_resolved,
        };
        (self.vm, self.resolver, result)
    }

    /// Abandons the invocation mid-flight (host crash in a fleet
    /// simulation), handing back the sandbox for teardown. Unlike
    /// [`InvocationCursor::finish`] this never panics: remaining
    /// trace steps are simply discarded.
    pub fn abort(self) -> (MicroVm, Box<dyn UffdResolver>) {
        (self.vm, self.resolver)
    }
}

/// One VM's progress in a concurrent run.
struct VmCursor<'a> {
    vm: &'a mut MicroVm,
    trace: &'a InvocationTrace,
    next_step: usize,
    t: SimTime,
    start: SimTime,
    uffd_resolved: u64,
    done: bool,
}

/// Replays one invocation on each VM concurrently, interleaving
/// steps in virtual-time order (the VM whose vCPU clock is furthest
/// behind executes next). `starts[i]` is when VM `i` begins guest
/// execution (restores complete at different times). Returns per-VM
/// results in input order.
///
/// # Errors
///
/// Kernel errors propagate.
///
/// # Panics
///
/// Panics if `vms`, `traces`, `starts`, and `resolvers` have
/// different lengths.
pub fn run_concurrent(
    starts: &[SimTime],
    vms: &mut [&mut MicroVm],
    traces: &[&InvocationTrace],
    host: &mut HostKernel,
    resolvers: &mut [&mut dyn UffdResolver],
) -> Result<Vec<InvocationResult>, KernelError> {
    assert_eq!(vms.len(), traces.len(), "one trace per VM");
    assert_eq!(vms.len(), starts.len(), "one start time per VM");
    assert_eq!(vms.len(), resolvers.len(), "one resolver per VM");

    let mut cursors: Vec<VmCursor<'_>> = vms
        .iter_mut()
        .zip(traces)
        .zip(starts)
        .map(|((vm, trace), &start)| VmCursor {
            vm,
            trace,
            next_step: 0,
            t: start,
            start,
            uffd_resolved: 0,
            done: false,
        })
        .collect();

    // Pick the unfinished VM with the earliest vCPU clock; ties
    // break on index for determinism.
    while let Some(i) = cursors
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.done)
        .min_by_key(|(i, c)| (c.t, *i))
        .map(|(i, _)| i)
    {
        let c = &mut cursors[i];
        match c.trace.steps().get(c.next_step) {
            Some(&step) => {
                c.t = advance(c.t, c.vm, step, host, resolvers[i], &mut c.uffd_resolved)?;
                c.next_step += 1;
            }
            None => c.done = true,
        }
    }

    Ok(cursors
        .into_iter()
        .map(|c| InvocationResult {
            end_time: c.t,
            e2e_latency: c.t.saturating_since(c.start),
            stats: c.vm.kvm().stats(),
            uffd_resolved: c.uffd_resolved,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;
    use snapbpf_kernel::{CowPolicy, KernelConfig};
    use snapbpf_mem::OwnerId;
    use snapbpf_storage::{Disk, SsdModel};
    use snapbpf_workloads::Workload;

    fn setup(name: &str, scale: f64) -> (HostKernel, Snapshot, InvocationTrace) {
        let mut host = HostKernel::new(
            Disk::new(Box::new(SsdModel::micron_5300())),
            KernelConfig::default(),
        );
        let w = Workload::by_name(name).unwrap().scaled(scale);
        let (snap, _) =
            Snapshot::create(SimTime::ZERO, name, w.snapshot_pages(), &mut host).unwrap();
        (host, snap, w.trace())
    }

    #[test]
    fn invocation_completes_and_latency_exceeds_compute() {
        let (mut host, snap, trace) = setup("json", 0.1);
        let mut vm = MicroVm::restore(OwnerId::new(0), &snap, CowPolicy::Opportunistic, false);
        let r = run_invocation(SimTime::ZERO, &mut vm, &trace, &mut host, &mut NoUffd).unwrap();
        assert!(r.e2e_latency > trace.total_compute());
        assert!(r.stats.major_faults > 0, "cold start must fault");
        assert_eq!(r.uffd_resolved, 0);
    }

    #[test]
    fn warm_cache_invocation_is_faster() {
        let (mut host, snap, trace) = setup("json", 0.1);
        let mut cold_vm = MicroVm::restore(OwnerId::new(0), &snap, CowPolicy::Opportunistic, false);
        let cold =
            run_invocation(SimTime::ZERO, &mut cold_vm, &trace, &mut host, &mut NoUffd).unwrap();

        let mut warm_vm = MicroVm::restore(OwnerId::new(1), &snap, CowPolicy::Opportunistic, false);
        let warm =
            run_invocation(cold.end_time, &mut warm_vm, &trace, &mut host, &mut NoUffd).unwrap();
        assert!(
            warm.e2e_latency < cold.e2e_latency,
            "warm {} should beat cold {}",
            warm.e2e_latency,
            cold.e2e_latency
        );
        assert!(warm.stats.minor_faults > 0);
        assert_eq!(warm.stats.major_faults, 0, "everything came from the cache");
    }

    #[test]
    fn pv_marking_spares_allocation_io() {
        let (mut host, snap, trace) = setup("image", 0.05); // allocation-heavy
        let mut plain = MicroVm::restore(OwnerId::new(0), &snap, CowPolicy::Opportunistic, false);
        let r1 = run_invocation(SimTime::ZERO, &mut plain, &trace, &mut host, &mut NoUffd).unwrap();
        let reads_plain = host.disk().tracer().read_bytes();

        // Fresh host so the cache is cold again.
        let (mut host2, snap2, trace2) = setup("image", 0.05);
        let mut pv = MicroVm::restore(OwnerId::new(0), &snap2, CowPolicy::Opportunistic, true);
        let r2 = run_invocation(SimTime::ZERO, &mut pv, &trace2, &mut host2, &mut NoUffd).unwrap();
        let reads_pv = host2.disk().tracer().read_bytes();

        assert!(r2.stats.pv_anon_faults > 0);
        assert!(
            reads_pv < reads_plain,
            "PV marking must avoid snapshot reads for allocations"
        );
        assert!(r2.e2e_latency < r1.e2e_latency);
    }

    #[test]
    fn uffd_resolver_is_consulted() {
        struct InstantResolver {
            calls: u64,
        }
        impl UffdResolver for InstantResolver {
            fn resolve(
                &mut self,
                now: SimTime,
                _gpfn: u64,
                _host: &mut HostKernel,
            ) -> Result<SimTime, KernelError> {
                self.calls += 1;
                Ok(now)
            }
        }
        let (mut host, snap, trace) = setup("html", 0.1);
        let mut vm = MicroVm::restore(OwnerId::new(0), &snap, CowPolicy::Opportunistic, false);
        vm.kvm_mut().register_uffd(0, snap.memory_pages());
        let mut resolver = InstantResolver { calls: 0 };
        let r = run_invocation(SimTime::ZERO, &mut vm, &trace, &mut host, &mut resolver).unwrap();
        assert!(r.uffd_resolved > 0);
        assert_eq!(r.uffd_resolved, resolver.calls);
        assert_eq!(r.stats.major_faults, 0, "no page-cache I/O under uffd");
        // All installed memory is anonymous.
        assert!(host.memory_snapshot().anon_pages >= r.uffd_resolved);
    }

    #[test]
    fn concurrent_vms_share_cache() {
        let (mut host, snap, trace) = setup("html", 0.1);
        let mut vm_a = MicroVm::restore(OwnerId::new(0), &snap, CowPolicy::Opportunistic, false);
        let mut vm_b = MicroVm::restore(OwnerId::new(1), &snap, CowPolicy::Opportunistic, false);
        let mut r_a = NoUffd;
        let mut r_b = NoUffd;
        let results = run_concurrent(
            &[SimTime::ZERO; 2],
            &mut [&mut vm_a, &mut vm_b],
            &[&trace, &trace],
            &mut host,
            &mut [&mut r_a, &mut r_b],
        )
        .unwrap();
        assert_eq!(results.len(), 2);
        // Between the two VMs, each page is read from disk once.
        let total_major = results.iter().map(|r| r.stats.major_faults).sum::<u64>();
        let total_minor = results.iter().map(|r| r.stats.minor_faults).sum::<u64>();
        assert!(total_minor > 0, "the second VM must hit the shared cache");
        let unique_reads =
            trace.ws_page_list().len() as u64 + trace.ephemeral_page_list().len() as u64;
        assert!(
            total_major <= unique_reads + 64, // readahead may add a window
            "majors {total_major} vs unique pages {unique_reads}"
        );
        assert!(host.memory_snapshot().cow_pages as i64 >= 0);
    }

    #[test]
    fn concurrent_determinism() {
        let run = || {
            let (mut host, snap, trace) = setup("pyaes", 0.05);
            let mut vms: Vec<MicroVm> = (0..4)
                .map(|i| MicroVm::restore(OwnerId::new(i), &snap, CowPolicy::Opportunistic, false))
                .collect();
            let mut vm_refs: Vec<&mut MicroVm> = vms.iter_mut().collect();
            let traces: Vec<&InvocationTrace> = (0..4).map(|_| &trace).collect();
            let mut r: Vec<NoUffd> = vec![NoUffd; 4];
            let mut r_refs: Vec<&mut dyn UffdResolver> =
                r.iter_mut().map(|x| x as &mut dyn UffdResolver).collect();
            run_concurrent(
                &[SimTime::ZERO; 4],
                &mut vm_refs,
                &traces,
                &mut host,
                &mut r_refs,
            )
            .unwrap()
            .iter()
            .map(|x| x.e2e_latency.as_nanos())
            .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cursor_matches_run_invocation() {
        let (mut host_a, snap_a, trace_a) = setup("json", 0.1);
        let mut vm = MicroVm::restore(OwnerId::new(0), &snap_a, CowPolicy::Opportunistic, false);
        let direct =
            run_invocation(SimTime::ZERO, &mut vm, &trace_a, &mut host_a, &mut NoUffd).unwrap();

        let (mut host_b, snap_b, trace_b) = setup("json", 0.1);
        let vm = MicroVm::restore(OwnerId::new(0), &snap_b, CowPolicy::Opportunistic, false);
        let mut cursor = InvocationCursor::builder(vm, trace_b).begin();
        assert_eq!(cursor.start(), SimTime::ZERO);
        while !cursor.is_done() {
            cursor.step(&mut host_b).unwrap();
        }
        let before_done = cursor.clock();
        cursor.step(&mut host_b).unwrap(); // no-op past the end
        assert_eq!(cursor.clock(), before_done);
        let (_vm, _resolver, stepped) = cursor.finish();
        assert_eq!(stepped, direct);
    }

    #[test]
    #[should_panic(expected = "finish() before")]
    fn cursor_finish_requires_completion() {
        let (_host, snap, trace) = setup("json", 0.05);
        let vm = MicroVm::restore(OwnerId::new(0), &snap, CowPolicy::Opportunistic, false);
        let cursor = InvocationCursor::builder(vm, trace).begin();
        let _ = cursor.finish();
    }

    #[test]
    #[should_panic(expected = "one trace per VM")]
    fn mismatched_lengths_panic() {
        let (mut host, snap, trace) = setup("json", 0.05);
        let mut vm = MicroVm::restore(OwnerId::new(0), &snap, CowPolicy::Opportunistic, false);
        let _ = run_concurrent(
            &[SimTime::ZERO],
            &mut [&mut vm],
            &[&trace, &trace],
            &mut host,
            &mut [],
        );
    }
}
