//! Function snapshots.
//!
//! A Firecracker-style snapshot is the serialized guest memory of a
//! booted, initialized, pre-warmed function sandbox plus a metadata
//! sidecar. Creating one writes the memory file sequentially to the
//! disk (the one-time cost all approaches share); restoring maps it
//! as the memory of a fresh microVM.

use std::fmt;

use snapbpf_json::{Json, JsonError};
use snapbpf_kernel::{HostKernel, KernelError};
use snapbpf_sim::{SimDuration, SimTime};
use snapbpf_storage::{FileId, IoPath};

/// Metadata sidecar of a snapshot (what Firecracker stores in its
/// snapshot state file, reduced to what the memory path needs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Function name the snapshot belongs to.
    pub function: String,
    /// Guest memory size in pages.
    pub memory_pages: u64,
    /// Format version, for forward compatibility.
    pub version: u32,
}

impl SnapshotMeta {
    /// Serializes the sidecar to JSON.
    ///
    /// # Errors
    ///
    /// Serialization errors (practically unreachable for this type).
    pub fn to_json(&self) -> Result<String, JsonError> {
        Ok(Json::object([
            ("function".to_owned(), Json::from(self.function.as_str())),
            ("memory_pages".to_owned(), Json::from(self.memory_pages)),
            ("version".to_owned(), Json::from(self.version)),
        ])
        .pretty())
    }

    /// Parses a sidecar from JSON.
    ///
    /// # Errors
    ///
    /// Malformed JSON or missing fields.
    pub fn from_json(json: &str) -> Result<SnapshotMeta, JsonError> {
        let v = Json::parse(json)?;
        let field_err = |what: &str| JsonError {
            message: format!("snapshot meta: missing or invalid '{what}'"),
            offset: 0,
        };
        Ok(SnapshotMeta {
            function: v["function"]
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| field_err("function"))?,
            memory_pages: v["memory_pages"]
                .as_u64()
                .ok_or_else(|| field_err("memory_pages"))?,
            version: v["version"]
                .as_u64()
                .and_then(|x| u32::try_from(x).ok())
                .ok_or_else(|| field_err("version"))?,
        })
    }
}

/// A created snapshot: the on-disk memory file plus metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    meta: SnapshotMeta,
    memory_file: FileId,
}

impl Snapshot {
    /// Creates a snapshot for `function` by serializing
    /// `memory_pages` of guest memory to a new file named
    /// `<function>.mem`, writing sequentially in 4 MiB extents (how
    /// Firecracker dumps memory).
    ///
    /// Returns the snapshot and the time serialization finished.
    ///
    /// # Errors
    ///
    /// Disk errors (including a name collision when the snapshot
    /// already exists).
    pub fn create(
        now: SimTime,
        function: &str,
        memory_pages: u64,
        host: &mut HostKernel,
    ) -> Result<(Snapshot, SimTime), KernelError> {
        let file = host
            .disk_mut()
            .create_file(&format!("{function}.mem"), memory_pages)?;
        let chunk = 1024; // 4 MiB write extents
        let mut t = now;
        let mut page = 0;
        while page < memory_pages {
            let n = chunk.min(memory_pages - page);
            let done = host
                .disk_mut()
                .write_file_pages(t, file, page, n, IoPath::Buffered)?;
            t = done.done_at;
            page += n;
        }
        Ok((
            Snapshot {
                meta: SnapshotMeta {
                    function: function.to_owned(),
                    memory_pages,
                    version: 1,
                },
                memory_file: file,
            },
            t,
        ))
    }

    /// Wraps an existing memory file (restore-from-disk path).
    pub fn from_existing(meta: SnapshotMeta, memory_file: FileId) -> Snapshot {
        Snapshot { meta, memory_file }
    }

    /// The metadata sidecar.
    pub fn meta(&self) -> &SnapshotMeta {
        &self.meta
    }

    /// The on-disk memory file.
    pub fn memory_file(&self) -> FileId {
        self.memory_file
    }

    /// Guest memory size in pages.
    pub fn memory_pages(&self) -> u64 {
        self.meta.memory_pages
    }

    /// Fixed VMM-side restore overhead: loading the snapshot state
    /// file, re-creating the VM, reconfiguring devices. Firecracker
    /// reports single-digit milliseconds; the memory path the paper
    /// optimizes comes on top of this.
    pub const fn restore_overhead() -> SimDuration {
        SimDuration::from_millis(3)
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "snapshot({}, {} MiB)",
            self.meta.function,
            self.meta.memory_pages / 256
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapbpf_kernel::KernelConfig;
    use snapbpf_storage::{Disk, SsdModel};

    fn host() -> HostKernel {
        HostKernel::new(
            Disk::new(Box::new(SsdModel::micron_5300())),
            KernelConfig::default(),
        )
    }

    #[test]
    fn create_writes_whole_memory_sequentially() {
        let mut h = host();
        let pages = 32 * 256; // 32 MiB
        let (snap, done) = Snapshot::create(SimTime::ZERO, "json", pages, &mut h).unwrap();
        assert_eq!(snap.memory_pages(), pages);
        assert!(done > SimTime::ZERO);
        assert_eq!(h.disk().tracer().write_bytes(), pages * 4096);
        // Mostly sequential writes.
        assert!(h.disk().tracer().sequential_fraction() > 0.5);
        assert_eq!(h.disk().file_by_name("json.mem"), Some(snap.memory_file()));
    }

    #[test]
    fn duplicate_snapshot_rejected() {
        let mut h = host();
        Snapshot::create(SimTime::ZERO, "json", 256, &mut h).unwrap();
        assert!(Snapshot::create(SimTime::ZERO, "json", 256, &mut h).is_err());
    }

    #[test]
    fn meta_json_roundtrip() {
        let meta = SnapshotMeta {
            function: "bert".into(),
            memory_pages: 512 * 256,
            version: 1,
        };
        let json = meta.to_json().unwrap();
        assert!(json.contains("\"bert\""));
        let back = SnapshotMeta::from_json(&json).unwrap();
        assert_eq!(back, meta);
    }

    #[test]
    fn from_existing_wraps_file() {
        let mut h = host();
        let (snap, _) = Snapshot::create(SimTime::ZERO, "x", 256, &mut h).unwrap();
        let again = Snapshot::from_existing(snap.meta().clone(), snap.memory_file());
        assert_eq!(again, snap);
        assert_eq!(again.to_string(), "snapshot(x, 1 MiB)");
    }
}
