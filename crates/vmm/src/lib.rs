//! # snapbpf-vmm — a Firecracker-shaped VMM model
//!
//! The VMM layer of the reproduction: [`Snapshot`] creation and
//! restore, the [`MicroVm`] (KVM memory state plus a guest kernel
//! that performs PV PTE marking when patched), and the invocation
//! replay [`engine`](run_invocation) that drives workload traces
//! through the nested-fault machinery — singly or
//! [concurrently](run_concurrent), as in the paper's 10-instance
//! experiments.
//!
//! ## Examples
//!
//! Cold-start an invocation from a snapshot:
//!
//! ```
//! use snapbpf_kernel::{CowPolicy, HostKernel, KernelConfig};
//! use snapbpf_mem::OwnerId;
//! use snapbpf_sim::SimTime;
//! use snapbpf_storage::{Disk, SsdModel};
//! use snapbpf_vmm::{run_invocation, MicroVm, NoUffd, Snapshot};
//! use snapbpf_workloads::Workload;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut host = HostKernel::new(
//!     Disk::new(Box::new(SsdModel::micron_5300())),
//!     KernelConfig::default(),
//! );
//! let func = Workload::by_name("html").unwrap().scaled(0.1);
//! let (snap, ready) =
//!     Snapshot::create(SimTime::ZERO, "html", func.snapshot_pages(), &mut host)?;
//!
//! let mut vm = MicroVm::restore(OwnerId::new(0), &snap, CowPolicy::Opportunistic, true);
//! let result = run_invocation(ready, &mut vm, &func.trace(), &mut host, &mut NoUffd)?;
//! assert!(result.e2e_latency > func.trace().total_compute());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod microvm;
mod snapshot;

pub use engine::{
    run_concurrent, run_invocation, InvocationCursor, InvocationCursorBuilder, InvocationResult,
    NoUffd, UffdResolver,
};
pub use microvm::{GuestKernel, MicroVm};
pub use snapshot::{Snapshot, SnapshotMeta};
