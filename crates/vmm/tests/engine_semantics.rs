//! Engine-semantics tests: the uffd racing model, PV interactions,
//! and concurrent-scheduler fairness.

use snapbpf_kernel::{CowPolicy, HostKernel, KernelConfig, KernelError};
use snapbpf_mem::OwnerId;
use snapbpf_sim::{SimDuration, SimTime};
use snapbpf_storage::{Disk, SsdModel};
use snapbpf_vmm::{
    run_concurrent, run_invocation, InvocationResult, MicroVm, NoUffd, Snapshot, UffdResolver,
};
use snapbpf_workloads::Workload;

fn setup(name: &str, scale: f64) -> (HostKernel, Snapshot, snapbpf_workloads::InvocationTrace) {
    let mut host = HostKernel::new(
        Disk::new(Box::new(SsdModel::micron_5300())),
        KernelConfig::default(),
    );
    let w = Workload::by_name(name).unwrap().scaled(scale);
    let (snap, _) = Snapshot::create(SimTime::ZERO, name, w.snapshot_pages(), &mut host).unwrap();
    (host, snap, w.trace())
}

/// A resolver whose pages become available at a fixed future time —
/// lets us pin down the racing-vs-pre-installed split.
struct DelayedResolver {
    ready_at: SimTime,
}

impl UffdResolver for DelayedResolver {
    fn resolve(
        &mut self,
        _now: SimTime,
        _gpfn: u64,
        _host: &mut HostKernel,
    ) -> Result<SimTime, KernelError> {
        Ok(self.ready_at)
    }
}

#[test]
fn racing_uffd_faults_pay_the_round_trip() {
    let (mut host, snap, trace) = setup("html", 0.05);
    let round_trip = host.config().uffd_round_trip;

    // All data available far in the future: every fault races.
    let far = SimTime::from_millis(10_000);
    let mut vm = MicroVm::restore(OwnerId::new(0), &snap, CowPolicy::Opportunistic, false);
    vm.kvm_mut().register_uffd(0, snap.memory_pages());
    let mut racing = DelayedResolver { ready_at: far };
    let r = run_invocation(SimTime::ZERO, &mut vm, &trace, &mut host, &mut racing).unwrap();
    // The final fault resolves no earlier than data-ready + copy.
    assert!(r.end_time >= far);

    // All data available in the past: every fault is pre-installed,
    // costs no round trip, and the run is enormously faster.
    let (mut host2, snap2, trace2) = setup("html", 0.05);
    let mut vm2 = MicroVm::restore(OwnerId::new(0), &snap2, CowPolicy::Opportunistic, false);
    vm2.kvm_mut().register_uffd(0, snap2.memory_pages());
    let mut instant = DelayedResolver {
        ready_at: SimTime::ZERO,
    };
    let r2 = run_invocation(SimTime::ZERO, &mut vm2, &trace2, &mut host2, &mut instant).unwrap();
    assert_eq!(r.uffd_resolved, r2.uffd_resolved);
    assert!(r2.e2e_latency < SimDuration::from_millis(50));
    // With zero waiting, the per-fault cost must exclude the round
    // trip: total < faults x round_trip.
    assert!(
        r2.e2e_latency < round_trip * r2.uffd_resolved,
        "{} vs {} faults x {round_trip}",
        r2.e2e_latency,
        r2.uffd_resolved
    );
}

#[test]
fn pv_and_uffd_interact_correctly() {
    // PV-marked allocations must bypass uffd entirely (the nested
    // fault resolves to anonymous memory before uffd interception is
    // even considered).
    let (mut host, snap, trace) = setup("image", 0.05);
    let mut vm = MicroVm::restore(OwnerId::new(0), &snap, CowPolicy::Opportunistic, true);
    vm.kvm_mut().register_uffd(0, snap.memory_pages());
    let mut instant = DelayedResolver {
        ready_at: SimTime::ZERO,
    };
    let r = run_invocation(SimTime::ZERO, &mut vm, &trace, &mut host, &mut instant).unwrap();
    assert!(r.stats.pv_anon_faults > 0);
    assert_eq!(
        r.stats.pv_anon_faults as usize,
        trace.ephemeral_page_list().len()
    );
    // uffd handled only the working set.
    assert_eq!(r.uffd_resolved as usize, trace.ws_page_list().len());
}

#[test]
fn concurrent_scheduler_is_fair_and_exact() {
    let (mut host, snap, trace) = setup("pyaes", 0.05);
    let n = 5;
    let mut vms: Vec<MicroVm> = (0..n)
        .map(|i| MicroVm::restore(OwnerId::new(i), &snap, CowPolicy::Opportunistic, false))
        .collect();
    let mut vm_refs: Vec<&mut MicroVm> = vms.iter_mut().collect();
    let traces: Vec<&snapbpf_workloads::InvocationTrace> = (0..n).map(|_| &trace).collect();
    let mut rs: Vec<NoUffd> = vec![NoUffd; n as usize];
    let mut r_refs: Vec<&mut dyn UffdResolver> =
        rs.iter_mut().map(|x| x as &mut dyn UffdResolver).collect();
    // Stagger the starts.
    let starts: Vec<SimTime> = (0..n as u64).map(|i| SimTime::from_millis(i * 2)).collect();
    let results: Vec<InvocationResult> =
        run_concurrent(&starts, &mut vm_refs, &traces, &mut host, &mut r_refs).unwrap();

    assert_eq!(results.len(), n as usize);
    for (i, r) in results.iter().enumerate() {
        assert!(r.end_time >= starts[i]);
        assert_eq!(
            r.e2e_latency,
            r.end_time.saturating_since(starts[i]),
            "vm {i}: latency must be measured from its own start"
        );
    }
    // Later VMs benefit from the cache warmed by earlier ones.
    assert!(
        results[n as usize - 1].stats.major_faults <= results[0].stats.major_faults,
        "last VM should fault no more than the first"
    );
}

#[test]
fn concurrent_with_different_traces_per_vm() {
    let (mut host, snap, _) = setup("html", 0.1);
    let w = Workload::by_name("html").unwrap().scaled(0.1);
    let t0 = w.trace_variant(0);
    let t1 = w.trace_variant(1);
    let mut vm_a = MicroVm::restore(OwnerId::new(0), &snap, CowPolicy::Opportunistic, false);
    let mut vm_b = MicroVm::restore(OwnerId::new(1), &snap, CowPolicy::Opportunistic, false);
    let mut ra = NoUffd;
    let mut rb = NoUffd;
    let results = run_concurrent(
        &[SimTime::ZERO; 2],
        &mut [&mut vm_a, &mut vm_b],
        &[&t0, &t1],
        &mut host,
        &mut [&mut ra, &mut rb],
    )
    .unwrap();
    assert_eq!(results.len(), 2);
    // The union of the two variants' pages landed in the cache —
    // strictly more than one variant's working set.
    assert!(host.cache().len() as usize > t0.ws_page_list().len());
    // And the variants genuinely differ.
    assert_ne!(t0.ws_page_list(), t1.ws_page_list());
}

#[test]
fn invocation_against_warm_shared_cache_has_no_major_faults() {
    let (mut host, snap, trace) = setup("json", 0.05);
    // Warm the cache via an overt prefetch of the entire file.
    let total = snap.memory_pages();
    let out = host
        .ra_unbounded(SimTime::ZERO, snap.memory_file(), 0, total)
        .unwrap();
    let mut vm = MicroVm::restore(OwnerId::new(0), &snap, CowPolicy::Opportunistic, false);
    let r = run_invocation(out.ready_at, &mut vm, &trace, &mut host, &mut NoUffd).unwrap();
    assert_eq!(r.stats.major_faults, 0);
    assert!(r.stats.minor_faults > 0);
}
