//! Property-based tests for the device models: causality,
//! determinism, and bandwidth bounds under arbitrary request
//! streams.

use proptest::prelude::*;
use snapbpf_sim::SimTime;
use snapbpf_storage::{BlockAddr, BlockDevice, HddModel, IoPath, IoRequest, SsdModel};

#[derive(Debug, Clone)]
struct Req {
    at_ns: u64,
    addr: u64,
    blocks: u64,
    write: bool,
}

fn requests() -> impl Strategy<Value = Vec<Req>> {
    prop::collection::vec(
        (0u64..1_000_000, 0u64..100_000, 1u64..128, any::<bool>()).prop_map(
            |(at_ns, addr, blocks, write)| Req {
                at_ns,
                addr,
                blocks,
                write,
            },
        ),
        1..100,
    )
}

fn submit_all(dev: &mut dyn BlockDevice, reqs: &[Req]) -> Vec<(u64, u64)> {
    let mut sorted = reqs.to_vec();
    sorted.sort_by_key(|r| r.at_ns);
    sorted
        .iter()
        .map(|r| {
            let req = if r.write {
                IoRequest::write(BlockAddr::new(r.addr), r.blocks)
            } else {
                IoRequest::read(BlockAddr::new(r.addr), r.blocks)
            };
            let c = dev.submit(SimTime::from_nanos(r.at_ns), req);
            (c.started_at.as_nanos(), c.done_at.as_nanos())
        })
        .collect()
}

proptest! {
    /// Causality on both devices: a request never starts before it
    /// is submitted and never completes before it starts.
    #[test]
    fn completions_are_causal(reqs in requests()) {
        for dev in [&mut SsdModel::micron_5300() as &mut dyn BlockDevice,
                    &mut HddModel::sata_7200rpm() as &mut dyn BlockDevice] {
            let mut sorted = reqs.clone();
            sorted.sort_by_key(|r| r.at_ns);
            for (r, (start, done)) in sorted.iter().zip(submit_all(dev, &reqs)) {
                prop_assert!(start >= r.at_ns, "start {start} before submit {}", r.at_ns);
                prop_assert!(done > start);
            }
        }
    }

    /// Device behaviour is a pure function of the request stream.
    #[test]
    fn devices_are_deterministic(reqs in requests()) {
        let a = submit_all(&mut SsdModel::micron_5300(), &reqs);
        let b = submit_all(&mut SsdModel::micron_5300(), &reqs);
        prop_assert_eq!(a, b);
        let a = submit_all(&mut HddModel::sata_7200rpm(), &reqs);
        let b = submit_all(&mut HddModel::sata_7200rpm(), &reqs);
        prop_assert_eq!(a, b);
    }

    /// Aggregate SSD throughput never exceeds the interface
    /// bandwidth: N bytes submitted at t=0 cannot all complete
    /// before N/bandwidth has elapsed.
    #[test]
    fn ssd_respects_interface_bandwidth(sizes in prop::collection::vec(1u64..256, 1..50)) {
        let mut ssd = SsdModel::micron_5300();
        let bw = ssd.config().bandwidth_bytes_per_sec;
        let total_bytes: u64 = sizes.iter().map(|b| b * 4096).sum();
        let mut last_done = 0u64;
        for (i, &blocks) in sizes.iter().enumerate() {
            let c = ssd.submit(
                SimTime::ZERO,
                IoRequest::read(BlockAddr::new(i as u64 * 10_000), blocks),
            );
            last_done = last_done.max(c.done_at.as_nanos());
        }
        let min_ns = total_bytes as f64 / bw as f64 * 1e9;
        prop_assert!(
            (last_done as f64) >= min_ns * 0.99,
            "finished in {last_done} ns, below the bandwidth floor {min_ns} ns"
        );
    }

    /// `reset` fully restores initial state.
    #[test]
    fn reset_restores_state(reqs in requests()) {
        let mut ssd = SsdModel::micron_5300();
        let first = submit_all(&mut ssd, &reqs);
        ssd.reset();
        let second = submit_all(&mut ssd, &reqs);
        prop_assert_eq!(first, second);
    }

    /// The disk façade's bounds checks never let a request escape
    /// its file.
    #[test]
    fn disk_bounds(file_pages in 1u64..512, first in 0u64..1024, count in 0u64..1024) {
        let mut disk = snapbpf_storage::Disk::new(Box::new(SsdModel::micron_5300()));
        let f = disk.create_file("f", file_pages).unwrap();
        let r = disk.read_file_pages(SimTime::ZERO, f, first, count, IoPath::Buffered);
        let in_bounds = count > 0 && first + count <= file_pages;
        prop_assert_eq!(r.is_ok(), in_bounds);
        if in_bounds {
            prop_assert_eq!(disk.tracer().read_bytes(), count * 4096);
        }
    }
}
