//! The block-device abstraction shared by the SSD and HDD models.
//!
//! Devices use *analytic queueing*: a request submitted at virtual
//! time `t` immediately receives its completion time, computed from
//! the device's internal state (busy channels, pacing tokens, head
//! position). Outstanding requests overlap exactly as they would
//! under an event-driven model because each internal resource tracks
//! its own next-free time.

use std::fmt;

use snapbpf_sim::{SimDuration, SimTime};

use crate::addr::BlockAddr;

/// Direction of an I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Read from the device.
    Read,
    /// Write to the device.
    Write,
}

impl fmt::Display for IoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoKind::Read => write!(f, "R"),
            IoKind::Write => write!(f, "W"),
        }
    }
}

/// How the request was issued — affects the host-side cost accounting
/// but not the device service time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoPath {
    /// Buffered I/O through the page cache.
    Buffered,
    /// Direct I/O (`O_DIRECT`), bypassing the page cache; used by
    /// REAP and Faast to avoid double copies.
    Direct,
}

/// A single block-level I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IoRequest {
    /// First block.
    pub addr: BlockAddr,
    /// Number of contiguous blocks.
    pub blocks: u64,
    /// Read or write.
    pub kind: IoKind,
    /// Buffered or direct.
    pub path: IoPath,
}

impl IoRequest {
    /// Convenience constructor for a buffered read.
    pub fn read(addr: BlockAddr, blocks: u64) -> Self {
        IoRequest {
            addr,
            blocks,
            kind: IoKind::Read,
            path: IoPath::Buffered,
        }
    }

    /// Convenience constructor for a direct-I/O read.
    pub fn read_direct(addr: BlockAddr, blocks: u64) -> Self {
        IoRequest {
            addr,
            blocks,
            kind: IoKind::Read,
            path: IoPath::Direct,
        }
    }

    /// Convenience constructor for a buffered write.
    pub fn write(addr: BlockAddr, blocks: u64) -> Self {
        IoRequest {
            addr,
            blocks,
            kind: IoKind::Write,
            path: IoPath::Buffered,
        }
    }

    /// Total bytes moved by the request.
    pub const fn bytes(&self) -> u64 {
        self.blocks * snapbpf_sim::PAGE_SIZE
    }

    /// One past the last block touched.
    pub const fn end(&self) -> BlockAddr {
        BlockAddr::new(self.addr.as_u64() + self.blocks)
    }
}

impl fmt::Display for IoRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}+{}", self.kind, self.addr, self.blocks)
    }
}

/// The completion record returned by a device at submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoCompletion {
    /// When the device started servicing the request.
    pub started_at: SimTime,
    /// When the data is available (read) or durable (write).
    pub done_at: SimTime,
    /// Whether the device classified the request as sequential with
    /// respect to the previous one it serviced.
    pub sequential: bool,
}

impl IoCompletion {
    /// Total time from submission to completion.
    pub fn latency(&self, submitted_at: SimTime) -> SimDuration {
        self.done_at.saturating_since(submitted_at)
    }
}

/// A simulated block device.
///
/// Implementations are deterministic state machines: `submit` both
/// mutates queue state and returns the completion time of the
/// request.
pub trait BlockDevice: fmt::Debug {
    /// Submits a request at virtual time `now` and returns its
    /// completion record.
    fn submit(&mut self, now: SimTime, req: IoRequest) -> IoCompletion;

    /// Human-readable model name (for reports).
    fn model_name(&self) -> &str;

    /// The time at which the device would next be able to *start* a
    /// request submitted at `now` — used by schedulers to reason
    /// about queue pressure.
    fn next_free(&self, now: SimTime) -> SimTime;

    /// Resets all queue state (head position, channel busy times) as
    /// if freshly powered on. Counters are not part of the device.
    fn reset(&mut self);
}

/// A pacing token bucket that enforces a command-rate (IOPS) ceiling.
///
/// Commands may start no more often than once per `interval`; the
/// bucket remembers the last admitted start time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Pacer {
    interval: SimDuration,
    next_slot: SimTime,
}

impl Pacer {
    pub(crate) fn new(iops: u64) -> Self {
        let interval = SimDuration::from_nanos(1_000_000_000u64.checked_div(iops).unwrap_or(0));
        Pacer {
            interval,
            next_slot: SimTime::ZERO,
        }
    }

    /// Admits one command at or after `earliest`, returning the
    /// admitted start time.
    pub(crate) fn admit(&mut self, earliest: SimTime) -> SimTime {
        let start = earliest.max(self.next_slot);
        self.next_slot = start + self.interval;
        start
    }

    pub(crate) fn reset(&mut self) {
        self.next_slot = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_helpers() {
        let r = IoRequest::read(BlockAddr::new(4), 8);
        assert_eq!(r.bytes(), 8 * 4096);
        assert_eq!(r.end(), BlockAddr::new(12));
        assert_eq!(r.kind, IoKind::Read);
        assert_eq!(r.path, IoPath::Buffered);
        assert_eq!(
            IoRequest::read_direct(BlockAddr::new(0), 1).path,
            IoPath::Direct
        );
        assert_eq!(IoRequest::write(BlockAddr::new(0), 1).kind, IoKind::Write);
        assert_eq!(r.to_string(), "Rblk#4+8");
    }

    #[test]
    fn pacer_enforces_interval() {
        let mut p = Pacer::new(1_000_000); // 1 Mops -> 1000 ns interval
        let t0 = p.admit(SimTime::ZERO);
        let t1 = p.admit(SimTime::ZERO);
        let t2 = p.admit(SimTime::ZERO);
        assert_eq!(t0.as_nanos(), 0);
        assert_eq!(t1.as_nanos(), 1_000);
        assert_eq!(t2.as_nanos(), 2_000);
        // A late arrival is not penalized.
        let t3 = p.admit(SimTime::from_micros(100));
        assert_eq!(t3.as_micros(), 100);
    }

    #[test]
    fn pacer_zero_iops_means_unlimited() {
        let mut p = Pacer::new(0);
        assert_eq!(p.admit(SimTime::ZERO).as_nanos(), 0);
        assert_eq!(p.admit(SimTime::ZERO).as_nanos(), 0);
    }

    #[test]
    fn completion_latency() {
        let c = IoCompletion {
            started_at: SimTime::from_micros(10),
            done_at: SimTime::from_micros(25),
            sequential: false,
        };
        assert_eq!(c.latency(SimTime::from_micros(5)).as_micros(), 20);
    }
}
