//! # snapbpf-storage — simulated block devices
//!
//! Device models for the SnapBPF reproduction: a flash SSD with
//! channel parallelism and an IOPS ceiling (the paper's Micron 5300
//! SATA testbed device), a spindle HDD for the "why SSDs change the
//! game" contrast, a flat file layer allocating contiguous extents,
//! and an I/O tracer for amplification analysis.
//!
//! Devices are *analytically queued*: submitting a request returns
//! its completion time immediately, computed from internal busy
//! state, so overlapping requests contend exactly as they would in a
//! full event-driven model while staying deterministic.
//!
//! ## Examples
//!
//! ```
//! use snapbpf_sim::SimTime;
//! use snapbpf_storage::{Disk, IoPath, SsdModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut disk = Disk::new(Box::new(SsdModel::micron_5300()));
//! let snapshot = disk.create_file("func.mem", 4096)?;
//!
//! // A scattered working set read straight from the snapshot file:
//! let mut t = SimTime::ZERO;
//! for range_start in [0u64, 512, 300, 2048] {
//!     let done = disk.read_file_pages(t, snapshot, range_start, 16, IoPath::Buffered)?;
//!     t = done.done_at;
//! }
//! assert_eq!(disk.tracer().read_bytes(), 4 * 16 * 4096);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod device;
mod disk;
mod hdd;
mod ssd;
mod trace;

pub use addr::{BlockAddr, Extent};
pub use device::{BlockDevice, IoCompletion, IoKind, IoPath, IoRequest};
pub use disk::{Disk, DiskError, FileId};
pub use hdd::{HddConfig, HddModel};
pub use ssd::{SsdConfig, SsdModel};
pub use trace::{IoTracer, TraceEntry};
