//! I/O tracing and amplification accounting.
//!
//! The paper verifies FaaSnap's working-set-file inflation "by
//! instrumenting the kernel using eBPF" (§2.1). Here the equivalent
//! observability hook is a tracer attached to the disk façade: it
//! records every block request and computes totals, sequentiality,
//! and read amplification against a caller-declared useful-byte
//! count.

use std::fmt;

use snapbpf_sim::{SimDuration, SimTime, Summary};

use crate::device::{IoCompletion, IoKind, IoPath, IoRequest};

/// One traced I/O event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the request was submitted.
    pub submitted_at: SimTime,
    /// The request itself.
    pub request: IoRequest,
    /// The completion the device returned.
    pub completion: IoCompletion,
}

/// Records block-level I/O and summarizes it.
///
/// # Examples
///
/// ```
/// use snapbpf_sim::SimTime;
/// use snapbpf_storage::{BlockAddr, BlockDevice, IoRequest, IoTracer, SsdModel};
///
/// let mut ssd = SsdModel::micron_5300();
/// let mut tracer = IoTracer::new();
/// let req = IoRequest::read(BlockAddr::new(0), 4);
/// let done = ssd.submit(SimTime::ZERO, req);
/// tracer.record(SimTime::ZERO, req, done);
///
/// assert_eq!(tracer.read_bytes(), 4 * 4096);
/// assert_eq!(tracer.requests(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IoTracer {
    entries: Vec<TraceEntry>,
    keep_entries: bool,
    read_bytes: u64,
    write_bytes: u64,
    read_requests: u64,
    write_requests: u64,
    direct_requests: u64,
    sequential_requests: u64,
    latency: Summary,
}

impl IoTracer {
    /// Creates a tracer that keeps per-request entries.
    pub fn new() -> Self {
        IoTracer {
            keep_entries: true,
            ..IoTracer::default()
        }
    }

    /// Creates a tracer that keeps only aggregate statistics — use
    /// for long experiments where the entry log would dominate
    /// memory.
    pub fn summary_only() -> Self {
        IoTracer {
            keep_entries: false,
            ..IoTracer::default()
        }
    }

    /// Records one completed request.
    pub fn record(&mut self, submitted_at: SimTime, request: IoRequest, completion: IoCompletion) {
        match request.kind {
            IoKind::Read => {
                self.read_bytes += request.bytes();
                self.read_requests += 1;
            }
            IoKind::Write => {
                self.write_bytes += request.bytes();
                self.write_requests += 1;
            }
        }
        if request.path == IoPath::Direct {
            self.direct_requests += 1;
        }
        if completion.sequential {
            self.sequential_requests += 1;
        }
        self.latency
            .record(completion.latency(submitted_at).as_nanos() as f64);
        if self.keep_entries {
            self.entries.push(TraceEntry {
                submitted_at,
                request,
                completion,
            });
        }
    }

    /// Total bytes read.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes
    }

    /// Total bytes written.
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes
    }

    /// Total number of requests (reads + writes).
    pub fn requests(&self) -> u64 {
        self.read_requests + self.write_requests
    }

    /// Number of read requests.
    pub fn read_requests(&self) -> u64 {
        self.read_requests
    }

    /// Number of write requests.
    pub fn write_requests(&self) -> u64 {
        self.write_requests
    }

    /// Number of direct-I/O requests.
    pub fn direct_requests(&self) -> u64 {
        self.direct_requests
    }

    /// Fraction of requests the device classified as sequential
    /// continuations (0.0 when no requests were traced).
    pub fn sequential_fraction(&self) -> f64 {
        if self.requests() == 0 {
            0.0
        } else {
            self.sequential_requests as f64 / self.requests() as f64
        }
    }

    /// Read amplification: bytes actually read divided by
    /// `useful_bytes`. Returns `None` when `useful_bytes` is zero.
    pub fn read_amplification(&self, useful_bytes: u64) -> Option<f64> {
        (useful_bytes > 0).then(|| self.read_bytes as f64 / useful_bytes as f64)
    }

    /// Per-request device latency summary.
    pub fn latency(&self) -> &Summary {
        &self.latency
    }

    /// Mean per-request latency.
    pub fn mean_latency(&self) -> SimDuration {
        SimDuration::from_nanos(self.latency.mean() as u64)
    }

    /// The traced entries (empty if constructed with
    /// [`IoTracer::summary_only`]).
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Clears everything.
    pub fn clear(&mut self) {
        let keep = self.keep_entries;
        *self = IoTracer::default();
        self.keep_entries = keep;
    }
}

impl fmt::Display for IoTracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} ({} B) writes={} ({} B) seq={:.0}% mean_lat={}",
            self.read_requests,
            self.read_bytes,
            self.write_requests,
            self.write_bytes,
            self.sequential_fraction() * 100.0,
            self.mean_latency(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::BlockAddr;
    use crate::device::BlockDevice;
    use crate::ssd::{SsdConfig, SsdModel};

    fn traced_reads(n: u64, stride: u64) -> IoTracer {
        let mut cfg = SsdConfig::micron_5300();
        cfg.jitter_frac = 0.0;
        let mut ssd = SsdModel::new(cfg);
        let mut tracer = IoTracer::new();
        let mut t = SimTime::ZERO;
        for i in 0..n {
            let req = IoRequest::read(BlockAddr::new(i * stride), 1);
            let c = ssd.submit(t, req);
            tracer.record(t, req, c);
            t = c.done_at;
        }
        tracer
    }

    #[test]
    fn aggregates_bytes_and_counts() {
        let tracer = traced_reads(10, 1);
        assert_eq!(tracer.read_bytes(), 10 * 4096);
        assert_eq!(tracer.read_requests(), 10);
        assert_eq!(tracer.write_bytes(), 0);
        assert_eq!(tracer.entries().len(), 10);
        assert_eq!(tracer.latency().count(), 10);
    }

    #[test]
    fn sequential_fraction_detects_patterns() {
        let seq = traced_reads(20, 1);
        let rand = traced_reads(20, 977);
        assert!(
            seq.sequential_fraction() > 0.9,
            "{}",
            seq.sequential_fraction()
        );
        assert_eq!(rand.sequential_fraction(), 0.0);
    }

    #[test]
    fn amplification_math() {
        let tracer = traced_reads(10, 1);
        assert_eq!(tracer.read_amplification(10 * 4096), Some(1.0));
        assert_eq!(tracer.read_amplification(5 * 4096), Some(2.0));
        assert_eq!(tracer.read_amplification(0), None);
    }

    #[test]
    fn summary_only_drops_entries() {
        let mut tracer = IoTracer::summary_only();
        let mut ssd = SsdModel::micron_5300();
        let req = IoRequest::read(BlockAddr::new(3), 2);
        let c = ssd.submit(SimTime::ZERO, req);
        tracer.record(SimTime::ZERO, req, c);
        assert!(tracer.entries().is_empty());
        assert_eq!(tracer.read_bytes(), 2 * 4096);
    }

    #[test]
    fn clear_preserves_mode() {
        let mut tracer = IoTracer::summary_only();
        let mut ssd = SsdModel::micron_5300();
        let req = IoRequest::read(BlockAddr::new(3), 2);
        let c = ssd.submit(SimTime::ZERO, req);
        tracer.record(SimTime::ZERO, req, c);
        tracer.clear();
        assert_eq!(tracer.requests(), 0);
        tracer.record(SimTime::ZERO, req, c);
        assert!(
            tracer.entries().is_empty(),
            "summary_only mode must survive clear"
        );
    }

    #[test]
    fn display_is_nonempty() {
        let tracer = traced_reads(3, 1);
        let s = tracer.to_string();
        assert!(s.contains("reads=3"));
    }
}
