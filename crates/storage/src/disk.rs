//! The disk façade: a block device plus a flat file layer.
//!
//! Experiments deal in *files* — the snapshot memory file, the
//! working-set files REAP/FaaSnap serialize, the offsets metadata
//! file — not raw block addresses. `Disk` allocates each file a
//! contiguous extent (snapshot files are written once, sequentially,
//! at snapshot-creation time, so contiguity matches reality) and
//! routes page-granular reads and writes through the device model
//! while tracing them.

use std::collections::HashMap;
use std::fmt;

use snapbpf_sim::{SimTime, Tracer, TID_DISK};

use crate::addr::{BlockAddr, Extent};
use crate::device::{BlockDevice, IoCompletion, IoKind, IoPath, IoRequest};
use crate::trace::IoTracer;

/// Identifier of a file stored on a [`Disk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(u32);

impl FileId {
    /// The raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct FileMeta {
    name: String,
    extent: Extent,
}

/// Errors returned by [`Disk`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// The file id does not exist.
    NoSuchFile(FileId),
    /// A read or write crossed the end of the file.
    OutOfBounds {
        /// The offending file.
        file: FileId,
        /// First page of the attempted access.
        first_page: u64,
        /// Number of pages in the attempted access.
        pages: u64,
        /// The file's size in pages.
        file_pages: u64,
    },
    /// A file with this name already exists.
    NameTaken(String),
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::NoSuchFile(id) => write!(f, "no such file: {id}"),
            DiskError::OutOfBounds {
                file,
                first_page,
                pages,
                file_pages,
            } => write!(
                f,
                "access [{first_page}, {}) out of bounds for {file} of {file_pages} pages",
                first_page + pages
            ),
            DiskError::NameTaken(name) => write!(f, "file name already taken: {name:?}"),
        }
    }
}

impl std::error::Error for DiskError {}

/// A block device with a flat file layer and an attached tracer.
///
/// # Examples
///
/// ```
/// use snapbpf_sim::SimTime;
/// use snapbpf_storage::{Disk, IoPath, SsdModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut disk = Disk::new(Box::new(SsdModel::micron_5300()));
/// let snap = disk.create_file("snapshot", 1024)?;
/// let done = disk.read_file_pages(SimTime::ZERO, snap, 0, 32, IoPath::Buffered)?;
/// assert!(done.done_at > SimTime::ZERO);
/// assert_eq!(disk.tracer().read_bytes(), 32 * 4096);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Disk {
    device: Box<dyn BlockDevice>,
    files: Vec<FileMeta>,
    by_name: HashMap<String, FileId>,
    next_block: u64,
    tracer: IoTracer,
    trace: Tracer,
    // Completion times (ns) of submitted-but-not-yet-done requests —
    // pruned lazily, so `len()` at submit time is the queue depth.
    outstanding: Vec<u64>,
}

/// Gap (in blocks) left between consecutive file extents so that the
/// last block of one file and the first of the next never look
/// sequential to the device.
const FILE_GAP_BLOCKS: u64 = 64;

impl Disk {
    /// Creates a disk over the given device model with a
    /// summary-only tracer (swap in a full tracer with
    /// [`Disk::set_tracer`] when per-request logs are needed).
    pub fn new(device: Box<dyn BlockDevice>) -> Self {
        Disk {
            device,
            files: Vec::new(),
            by_name: HashMap::new(),
            next_block: 0,
            tracer: IoTracer::summary_only(),
            trace: Tracer::disabled(),
            outstanding: Vec::new(),
        }
    }

    /// Allocates a new file of `pages` pages in a fresh contiguous
    /// extent.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::NameTaken`] if the name is in use.
    pub fn create_file(&mut self, name: &str, pages: u64) -> Result<FileId, DiskError> {
        if self.by_name.contains_key(name) {
            return Err(DiskError::NameTaken(name.to_owned()));
        }
        let id = FileId(self.files.len() as u32);
        let extent = Extent::new(BlockAddr::new(self.next_block), pages);
        self.next_block += pages + FILE_GAP_BLOCKS;
        self.files.push(FileMeta {
            name: name.to_owned(),
            extent,
        });
        self.by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Looks a file up by name.
    pub fn file_by_name(&self, name: &str) -> Option<FileId> {
        self.by_name.get(name).copied()
    }

    /// Looks a file up by its raw index (e.g. recovered from an eBPF
    /// context word); `None` if no such file exists.
    pub fn file_by_index(&self, index: u32) -> Option<FileId> {
        ((index as usize) < self.files.len()).then_some(FileId(index))
    }

    /// The file's name.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::NoSuchFile`] for an unknown id.
    pub fn file_name(&self, file: FileId) -> Result<&str, DiskError> {
        self.meta(file).map(|m| m.name.as_str())
    }

    /// The file's size in pages.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::NoSuchFile`] for an unknown id.
    pub fn file_pages(&self, file: FileId) -> Result<u64, DiskError> {
        self.meta(file).map(|m| m.extent.blocks())
    }

    /// The extent backing the file.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::NoSuchFile`] for an unknown id.
    pub fn file_extent(&self, file: FileId) -> Result<Extent, DiskError> {
        self.meta(file).map(|m| m.extent)
    }

    fn meta(&self, file: FileId) -> Result<&FileMeta, DiskError> {
        self.files
            .get(file.0 as usize)
            .ok_or(DiskError::NoSuchFile(file))
    }

    fn check_bounds(&self, file: FileId, first_page: u64, pages: u64) -> Result<Extent, DiskError> {
        let extent = self.file_extent(file)?;
        if pages == 0 || first_page + pages > extent.blocks() {
            return Err(DiskError::OutOfBounds {
                file,
                first_page,
                pages,
                file_pages: extent.blocks(),
            });
        }
        Ok(extent)
    }

    /// Reads `pages` contiguous pages of `file` starting at
    /// `first_page`, returning the device completion.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::OutOfBounds`] when the range leaves the
    /// file, and [`DiskError::NoSuchFile`] for an unknown id.
    pub fn read_file_pages(
        &mut self,
        now: SimTime,
        file: FileId,
        first_page: u64,
        pages: u64,
        path: IoPath,
    ) -> Result<IoCompletion, DiskError> {
        let extent = self.check_bounds(file, first_page, pages)?;
        let req = IoRequest {
            addr: extent.start().offset(first_page),
            blocks: pages,
            kind: IoKind::Read,
            path,
        };
        let completion = self.device.submit(now, req);
        self.tracer.record(now, req, completion);
        self.note_trace(now, file, req, completion);
        Ok(completion)
    }

    /// Reads a batch of contiguous runs of `file` — each element of
    /// `runs` is `(first_page, pages)` — submitting them back-to-back
    /// and returning one completion per run, in order.
    ///
    /// Equivalent to calling [`Disk::read_file_pages`] once per run
    /// (same device submissions, same trace spans) but with the file
    /// metadata resolved once, so hot restore paths that fault in
    /// many runs of the same snapshot file pay one lookup instead of
    /// one per run. The whole batch is bounds-checked up front:
    /// either every run is submitted or none is.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::NoSuchFile`] for an unknown id and
    /// [`DiskError::OutOfBounds`] if any run leaves the file (no I/O
    /// is issued in that case).
    pub fn read_file_runs(
        &mut self,
        now: SimTime,
        file: FileId,
        runs: &[(u64, u64)],
        path: IoPath,
    ) -> Result<Vec<IoCompletion>, DiskError> {
        let extent = self.file_extent(file)?;
        for &(first_page, pages) in runs {
            if pages == 0 || first_page + pages > extent.blocks() {
                return Err(DiskError::OutOfBounds {
                    file,
                    first_page,
                    pages,
                    file_pages: extent.blocks(),
                });
            }
        }
        let mut completions = Vec::with_capacity(runs.len());
        for &(first_page, pages) in runs {
            let req = IoRequest {
                addr: extent.start().offset(first_page),
                blocks: pages,
                kind: IoKind::Read,
                path,
            };
            let completion = self.device.submit(now, req);
            self.tracer.record(now, req, completion);
            self.note_trace(now, file, req, completion);
            completions.push(completion);
        }
        Ok(completions)
    }

    /// Writes `pages` contiguous pages of `file` starting at
    /// `first_page`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Disk::read_file_pages`].
    pub fn write_file_pages(
        &mut self,
        now: SimTime,
        file: FileId,
        first_page: u64,
        pages: u64,
        path: IoPath,
    ) -> Result<IoCompletion, DiskError> {
        let extent = self.check_bounds(file, first_page, pages)?;
        let req = IoRequest {
            addr: extent.start().offset(first_page),
            blocks: pages,
            kind: IoKind::Write,
            path,
        };
        let completion = self.device.submit(now, req);
        self.tracer.record(now, req, completion);
        self.note_trace(now, file, req, completion);
        Ok(completion)
    }

    /// Reports one submitted request to the structured trace layer:
    /// a submit→complete span on the disk track with the queue depth
    /// observed at submit time, plus request/byte/latency metrics.
    fn note_trace(&mut self, now: SimTime, file: FileId, req: IoRequest, done: IoCompletion) {
        if !self.trace.is_enabled() {
            return;
        }
        let now_ns = now.as_nanos();
        self.outstanding.retain(|&d| d > now_ns);
        let depth = self.outstanding.len() as u64;
        self.outstanding.push(done.done_at.as_nanos());
        let (name, requests, bytes, latency) = match req.kind {
            IoKind::Read => (
                "disk-read",
                "storage.read.requests",
                "storage.read.bytes",
                "storage.read.latency_ns",
            ),
            IoKind::Write => (
                "disk-write",
                "storage.write.requests",
                "storage.write.bytes",
                "storage.write.latency_ns",
            ),
        };
        self.trace.incr(requests);
        self.trace.add(bytes, req.bytes());
        self.trace
            .observe_duration(latency, done.done_at.saturating_since(now));
        self.trace.observe("storage.queue.depth", depth);
        if self.trace.events_enabled() {
            let file_name = self
                .files
                .get(file.as_u32() as usize)
                .map(|m| m.name.as_str())
                .unwrap_or("?");
            self.trace.span(
                "storage",
                name,
                TID_DISK,
                now,
                done.done_at,
                vec![
                    ("device", self.device.model_name().into()),
                    ("file", file_name.into()),
                    ("blocks", req.blocks.into()),
                    ("bytes", req.bytes().into()),
                    (
                        "path",
                        match req.path {
                            IoPath::Buffered => "buffered",
                            IoPath::Direct => "direct",
                        }
                        .into(),
                    ),
                    ("sequential", done.sequential.into()),
                    ("queue_depth", depth.into()),
                    (
                        "queue_ns",
                        done.started_at.saturating_since(now).as_nanos().into(),
                    ),
                ],
            );
        }
    }

    /// Attaches the structured trace handle disk spans and metrics
    /// report through (shared with the rest of the host).
    pub fn set_trace(&mut self, trace: Tracer) {
        self.trace = trace;
        self.outstanding.clear();
    }

    /// The attached tracer.
    pub fn tracer(&self) -> &IoTracer {
        &self.tracer
    }

    /// Replaces the tracer (e.g. with a per-request one) and returns
    /// the previous tracer.
    pub fn set_tracer(&mut self, tracer: IoTracer) -> IoTracer {
        std::mem::replace(&mut self.tracer, tracer)
    }

    /// Name of the underlying device model.
    pub fn device_name(&self) -> &str {
        self.device.model_name()
    }

    /// When the device could next start a request submitted at `now`.
    pub fn device_next_free(&self, now: SimTime) -> SimTime {
        self.device.next_free(now)
    }

    /// Resets the device's queue state (files and tracer are kept).
    pub fn reset_device(&mut self) {
        self.device.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssd::{SsdConfig, SsdModel};

    fn disk() -> Disk {
        let mut cfg = SsdConfig::micron_5300();
        cfg.jitter_frac = 0.0;
        Disk::new(Box::new(SsdModel::new(cfg)))
    }

    #[test]
    fn create_and_lookup() {
        let mut d = disk();
        let a = d.create_file("snap", 100).unwrap();
        let b = d.create_file("ws", 50).unwrap();
        assert_ne!(a, b);
        assert_eq!(d.file_by_name("snap"), Some(a));
        assert_eq!(d.file_by_name("nope"), None);
        assert_eq!(d.file_pages(a).unwrap(), 100);
        assert_eq!(d.file_name(b).unwrap(), "ws");
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut d = disk();
        d.create_file("snap", 10).unwrap();
        assert!(matches!(
            d.create_file("snap", 10),
            Err(DiskError::NameTaken(_))
        ));
    }

    #[test]
    fn extents_do_not_overlap_or_abut() {
        let mut d = disk();
        let a = d.create_file("a", 100).unwrap();
        let b = d.create_file("b", 100).unwrap();
        let ea = d.file_extent(a).unwrap();
        let eb = d.file_extent(b).unwrap();
        assert!(ea.end().as_u64() < eb.start().as_u64());
    }

    #[test]
    fn reads_are_traced() {
        let mut d = disk();
        let f = d.create_file("snap", 64).unwrap();
        d.read_file_pages(SimTime::ZERO, f, 0, 8, IoPath::Buffered)
            .unwrap();
        d.read_file_pages(SimTime::ZERO, f, 32, 8, IoPath::Direct)
            .unwrap();
        assert_eq!(d.tracer().read_requests(), 2);
        assert_eq!(d.tracer().read_bytes(), 16 * 4096);
        assert_eq!(d.tracer().direct_requests(), 1);
    }

    #[test]
    fn batched_runs_match_per_run_reads() {
        let mut a = disk();
        let mut b = disk();
        let fa = a.create_file("snap", 64).unwrap();
        let fb = b.create_file("snap", 64).unwrap();
        let runs = [(0u64, 4u64), (10, 2), (40, 8)];
        let batched = a
            .read_file_runs(SimTime::from_micros(5), fa, &runs, IoPath::Buffered)
            .unwrap();
        let singles: Vec<_> = runs
            .iter()
            .map(|&(first, pages)| {
                b.read_file_pages(SimTime::from_micros(5), fb, first, pages, IoPath::Buffered)
                    .unwrap()
            })
            .collect();
        assert_eq!(batched, singles);
        assert_eq!(a.tracer().read_requests(), b.tracer().read_requests());
        assert_eq!(a.tracer().read_bytes(), b.tracer().read_bytes());
    }

    #[test]
    fn batched_runs_are_all_or_nothing() {
        let mut d = disk();
        let f = d.create_file("snap", 10).unwrap();
        // Second run is out of bounds: nothing may be submitted.
        assert!(matches!(
            d.read_file_runs(SimTime::ZERO, f, &[(0, 4), (8, 4)], IoPath::Buffered),
            Err(DiskError::OutOfBounds { .. })
        ));
        assert_eq!(d.tracer().read_requests(), 0);
        assert!(matches!(
            d.read_file_runs(SimTime::ZERO, FileId(99), &[(0, 1)], IoPath::Buffered),
            Err(DiskError::NoSuchFile(_))
        ));
    }

    #[test]
    fn bounds_are_enforced() {
        let mut d = disk();
        let f = d.create_file("snap", 10).unwrap();
        assert!(matches!(
            d.read_file_pages(SimTime::ZERO, f, 8, 4, IoPath::Buffered),
            Err(DiskError::OutOfBounds { .. })
        ));
        assert!(matches!(
            d.read_file_pages(SimTime::ZERO, f, 0, 0, IoPath::Buffered),
            Err(DiskError::OutOfBounds { .. })
        ));
        assert!(matches!(
            d.read_file_pages(SimTime::ZERO, FileId(99), 0, 1, IoPath::Buffered),
            Err(DiskError::NoSuchFile(_))
        ));
    }

    #[test]
    fn file_relative_addressing() {
        let mut d = disk();
        let _a = d.create_file("a", 100).unwrap();
        let b = d.create_file("b", 100).unwrap();
        let eb = d.file_extent(b).unwrap();
        // Reading page 5 of file b must land at extent-start + 5.
        d.read_file_pages(SimTime::ZERO, b, 5, 1, IoPath::Buffered)
            .unwrap();
        let mut full = IoTracer::new();
        std::mem::swap(&mut full, &mut d.tracer); // inspect via swap
                                                  // tracer was summary_only; switch to checking extents directly
        assert_eq!(eb.block(5).as_u64(), eb.start().as_u64() + 5);
    }

    #[test]
    fn writes_are_traced() {
        let mut d = disk();
        let f = d.create_file("ws", 16).unwrap();
        d.write_file_pages(SimTime::ZERO, f, 0, 16, IoPath::Buffered)
            .unwrap();
        assert_eq!(d.tracer().write_requests(), 1);
        assert_eq!(d.tracer().write_bytes(), 16 * 4096);
    }

    #[test]
    fn set_tracer_swaps() {
        let mut d = disk();
        let f = d.create_file("snap", 4).unwrap();
        d.set_tracer(IoTracer::new());
        d.read_file_pages(SimTime::ZERO, f, 0, 1, IoPath::Buffered)
            .unwrap();
        let old = d.set_tracer(IoTracer::new());
        assert_eq!(old.entries().len(), 1);
        assert_eq!(d.tracer().requests(), 0);
    }

    #[test]
    fn requests_emit_trace_spans_and_metrics() {
        let mut d = disk();
        let f = d.create_file("snap", 64).unwrap();
        let tr = Tracer::recording();
        d.set_trace(tr.clone());
        d.read_file_pages(SimTime::ZERO, f, 0, 8, IoPath::Buffered)
            .unwrap();
        d.write_file_pages(SimTime::ZERO, f, 0, 4, IoPath::Direct)
            .unwrap();
        assert_eq!(tr.counter("storage.read.requests"), 1);
        assert_eq!(tr.counter("storage.write.requests"), 1);
        assert_eq!(tr.counter("storage.read.bytes"), 8 * 4096);
        let events = tr.take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "disk-read");
        assert_eq!(events[0].tid, TID_DISK);
        assert!(events[0].dur.unwrap().as_nanos() > 0);
        // The write was submitted while the read still occupied the
        // device, so it observed queue depth 1.
        let depth = events[1]
            .args
            .iter()
            .find(|(k, _)| *k == "queue_depth")
            .unwrap();
        assert_eq!(depth.1, snapbpf_sim::TraceValue::U64(1));
        let m = tr.metrics_snapshot();
        assert_eq!(m.histogram("storage.queue.depth").unwrap().count(), 2);
        assert!(m.histogram("storage.read.latency_ns").unwrap().mean() > 0.0);
    }

    #[test]
    fn error_display() {
        let e = DiskError::OutOfBounds {
            file: FileId(1),
            first_page: 8,
            pages: 4,
            file_pages: 10,
        };
        assert!(e.to_string().contains("out of bounds"));
        assert!(DiskError::NoSuchFile(FileId(3))
            .to_string()
            .contains("file#3"));
    }
}
