//! Spindle hard-disk model.
//!
//! The paper's storage insight is framed as a contrast: "in contrast
//! to spindle HDDs, modern SSDs don't have the same limitations with
//! regard to high-IOPS, non-sequential I/O" (§3.1). This model exists
//! so the ablation `A2` can show where metadata-driven scattered
//! prefetch *stops* being competitive: on a disk with a single
//! actuator, every discontiguous range pays a seek plus rotational
//! latency.

use snapbpf_sim::{SimDuration, SimTime, SplitMix64};

use crate::addr::BlockAddr;
use crate::device::{BlockDevice, IoCompletion, IoKind, IoRequest};

/// Configuration for [`HddModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct HddConfig {
    /// Model name used in reports.
    pub name: &'static str,
    /// Full-stroke seek time; actual seeks scale with distance.
    pub full_seek: SimDuration,
    /// Minimum (track-to-track) seek time.
    pub min_seek: SimDuration,
    /// Average rotational latency (half a revolution).
    pub avg_rotational: SimDuration,
    /// Media transfer bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
    /// Number of blocks on the device (for seek-distance scaling).
    pub total_blocks: u64,
    /// Relative service-time jitter (fraction of mean); 0 disables.
    pub jitter_frac: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl HddConfig {
    /// A 7200 RPM SATA disk: ~8 ms average seek, 4.17 ms average
    /// rotational latency, ~180 MB/s outer-track transfer.
    pub fn sata_7200rpm() -> Self {
        HddConfig {
            name: "hdd-7200rpm",
            full_seek: SimDuration::from_millis(16),
            min_seek: SimDuration::from_micros(500),
            avg_rotational: SimDuration::from_micros(4170),
            bandwidth_bytes_per_sec: 180_000_000,
            total_blocks: 1_000_000_000 / 4, // ~1 TB
            jitter_frac: 0.05,
            seed: 0x5EED_11DD,
        }
    }
}

impl Default for HddConfig {
    fn default() -> Self {
        HddConfig::sata_7200rpm()
    }
}

/// Deterministic spindle-disk model with a single actuator.
///
/// # Examples
///
/// ```
/// use snapbpf_sim::SimTime;
/// use snapbpf_storage::{BlockAddr, BlockDevice, HddModel, IoRequest};
///
/// let mut hdd = HddModel::sata_7200rpm();
/// let near = hdd.submit(SimTime::ZERO, IoRequest::read(BlockAddr::new(0), 1));
/// let far = hdd.submit(near.done_at, IoRequest::read(BlockAddr::new(900_000_000 / 4), 1));
/// assert!(far.done_at.saturating_since(far.started_at)
///     > near.done_at.saturating_since(near.started_at));
/// ```
#[derive(Debug, Clone)]
pub struct HddModel {
    config: HddConfig,
    head: BlockAddr,
    busy_until: SimTime,
    last_end: Option<BlockAddr>,
    rng: SplitMix64,
}

impl HddModel {
    /// Creates a disk from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth or total size is zero.
    pub fn new(config: HddConfig) -> Self {
        assert!(
            config.bandwidth_bytes_per_sec > 0,
            "HDD bandwidth must be positive"
        );
        assert!(config.total_blocks > 0, "HDD must have at least one block");
        HddModel {
            head: BlockAddr::new(0),
            busy_until: SimTime::ZERO,
            last_end: None,
            rng: SplitMix64::new(config.seed),
            config,
        }
    }

    /// A 7200 RPM SATA disk ([`HddConfig::sata_7200rpm`]).
    pub fn sata_7200rpm() -> Self {
        HddModel::new(HddConfig::sata_7200rpm())
    }

    /// The configuration this device was built from.
    pub fn config(&self) -> &HddConfig {
        &self.config
    }

    fn seek_time(&self, from: BlockAddr, to: BlockAddr) -> SimDuration {
        if from == to {
            return SimDuration::ZERO;
        }
        // Square-root seek curve: short seeks are disproportionately
        // cheap, matching measured disk behaviour.
        let frac = (from.distance(to) as f64 / self.config.total_blocks as f64).min(1.0);
        let range = self
            .config
            .full_seek
            .saturating_sub(self.config.min_seek)
            .as_nanos() as f64;
        self.config.min_seek + SimDuration::from_nanos((range * frac.sqrt()) as u64)
    }

    fn transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.config.bandwidth_bytes_per_sec as f64)
    }
}

impl BlockDevice for HddModel {
    fn submit(&mut self, now: SimTime, req: IoRequest) -> IoCompletion {
        let sequential = self.last_end == Some(req.addr) && self.head == req.addr;
        self.last_end = Some(req.end());

        let started_at = now.max(self.busy_until);
        let mut service = self.transfer_time(req.bytes());
        if !sequential {
            service += self.seek_time(self.head, req.addr) + self.config.avg_rotational;
        }
        if req.kind == IoKind::Write {
            // Writes pay an extra rotation on average for verify-less
            // in-place update; modest but nonzero.
            service += self.config.avg_rotational / 2;
        }
        if self.config.jitter_frac > 0.0 {
            let mean = service.as_nanos() as f64;
            let jittered = self
                .rng
                .next_gaussian(mean, mean * self.config.jitter_frac)
                .max(mean * 0.5);
            service = SimDuration::from_nanos(jittered as u64);
        }

        let done_at = started_at + service;
        self.busy_until = done_at;
        self.head = req.end();

        IoCompletion {
            started_at,
            done_at,
            sequential,
        }
    }

    fn model_name(&self) -> &str {
        self.config.name
    }

    fn next_free(&self, now: SimTime) -> SimTime {
        self.busy_until.max(now)
    }

    fn reset(&mut self) {
        self.head = BlockAddr::new(0);
        self.busy_until = SimTime::ZERO;
        self.last_end = None;
        self.rng = SplitMix64::new(self.config.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_jitter() -> HddModel {
        let mut cfg = HddConfig::sata_7200rpm();
        cfg.jitter_frac = 0.0;
        HddModel::new(cfg)
    }

    #[test]
    fn sequential_run_avoids_seeks() {
        let mut hdd = no_jitter();
        let first = hdd.submit(SimTime::ZERO, IoRequest::read(BlockAddr::new(0), 8));
        let second = hdd.submit(first.done_at, IoRequest::read(BlockAddr::new(8), 8));
        assert!(second.sequential);
        let first_lat = first.done_at.saturating_since(first.started_at);
        let second_lat = second.done_at.saturating_since(second.started_at);
        assert!(
            second_lat < first_lat / 5,
            "sequential continuation {second_lat} should be far cheaper than seek+rotate {first_lat}"
        );
    }

    #[test]
    fn random_io_serializes_on_single_actuator() {
        let mut hdd = no_jitter();
        // 8 scattered reads: each pays seek + rotation, and they
        // cannot overlap.
        let mut last = SimTime::ZERO;
        for i in 0..8u64 {
            let c = hdd.submit(
                SimTime::ZERO,
                IoRequest::read(BlockAddr::new((i * 37_000_000) % 250_000_000), 1),
            );
            assert!(c.started_at >= last || last == SimTime::ZERO);
            last = c.done_at;
        }
        // 8 random reads at ~>4.6ms each must take > 30 ms total.
        assert!(
            last > SimTime::from_millis(30),
            "random HDD I/O finished suspiciously fast: {last}"
        );
    }

    #[test]
    fn longer_seeks_cost_more() {
        let hdd = no_jitter();
        let near = hdd.seek_time(BlockAddr::new(0), BlockAddr::new(1000));
        let far = hdd.seek_time(BlockAddr::new(0), BlockAddr::new(200_000_000));
        assert!(near < far);
        assert!(near >= hdd.config.min_seek);
        assert!(far <= hdd.config.full_seek);
        assert_eq!(
            hdd.seek_time(BlockAddr::new(5), BlockAddr::new(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn determinism_and_reset() {
        let mut hdd = HddModel::sata_7200rpm();
        let a = hdd.submit(SimTime::ZERO, IoRequest::read(BlockAddr::new(12345), 4));
        hdd.submit(a.done_at, IoRequest::read(BlockAddr::new(999), 4));
        hdd.reset();
        let b = hdd.submit(SimTime::ZERO, IoRequest::read(BlockAddr::new(12345), 4));
        assert_eq!(a, b);
    }

    #[test]
    fn writes_slower_than_reads() {
        let mut r = no_jitter();
        let mut w = no_jitter();
        let cr = r.submit(SimTime::ZERO, IoRequest::read(BlockAddr::new(777), 1));
        let cw = w.submit(SimTime::ZERO, IoRequest::write(BlockAddr::new(777), 1));
        assert!(cw.done_at > cr.done_at);
    }
}
