//! Block addressing and extents.
//!
//! The device address space is measured in 4 KiB blocks (one block
//! per memory page, matching the snapshot layout on the paper's
//! testbed, where the Firecracker memory file is read in page-sized
//! units).

use std::fmt;
use std::ops::Range;

/// Address of a 4 KiB block on a block device.
///
/// A newtype so logical block addresses cannot be confused with file
/// page indices or guest frame numbers.
///
/// # Examples
///
/// ```
/// use snapbpf_storage::BlockAddr;
///
/// let a = BlockAddr::new(10);
/// assert_eq!(a.offset(5).as_u64(), 15);
/// assert_eq!(a.as_bytes(), 10 * 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address.
    pub const fn new(block: u64) -> Self {
        BlockAddr(block)
    }

    /// The raw block number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Byte offset of the start of this block.
    pub const fn as_bytes(self) -> u64 {
        self.0 * snapbpf_sim::PAGE_SIZE
    }

    /// The address `n` blocks after this one.
    #[must_use]
    pub const fn offset(self, n: u64) -> BlockAddr {
        BlockAddr(self.0 + n)
    }

    /// Absolute distance in blocks between two addresses.
    pub const fn distance(self, other: BlockAddr) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk#{}", self.0)
    }
}

impl From<u64> for BlockAddr {
    fn from(v: u64) -> Self {
        BlockAddr(v)
    }
}

/// A contiguous run of blocks on a device: `[start, start + blocks)`.
///
/// # Examples
///
/// ```
/// use snapbpf_storage::{BlockAddr, Extent};
///
/// let e = Extent::new(BlockAddr::new(100), 8);
/// assert!(e.contains(BlockAddr::new(107)));
/// assert!(!e.contains(BlockAddr::new(108)));
/// assert_eq!(e.end().as_u64(), 108);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Extent {
    start: BlockAddr,
    blocks: u64,
}

impl Extent {
    /// Creates an extent of `blocks` blocks starting at `start`.
    pub const fn new(start: BlockAddr, blocks: u64) -> Self {
        Extent { start, blocks }
    }

    /// First block of the extent.
    pub const fn start(&self) -> BlockAddr {
        self.start
    }

    /// One past the last block of the extent.
    pub const fn end(&self) -> BlockAddr {
        BlockAddr(self.start.0 + self.blocks)
    }

    /// Number of blocks.
    pub const fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Size in bytes.
    pub const fn bytes(&self) -> u64 {
        self.blocks * snapbpf_sim::PAGE_SIZE
    }

    /// `true` if `addr` falls inside the extent.
    pub const fn contains(&self, addr: BlockAddr) -> bool {
        addr.0 >= self.start.0 && addr.0 < self.start.0 + self.blocks
    }

    /// The device address of the `index`-th block of the extent.
    ///
    /// # Panics
    ///
    /// Panics if `index >= blocks()`.
    pub fn block(&self, index: u64) -> BlockAddr {
        assert!(index < self.blocks, "extent index out of range");
        self.start.offset(index)
    }

    /// The block range as raw block numbers.
    pub const fn range(&self) -> Range<u64> {
        self.start.0..self.start.0 + self.blocks
    }
}

impl fmt::Display for Extent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{})", self.start.0, self.start.0 + self.blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_addr_arithmetic() {
        let a = BlockAddr::new(5);
        assert_eq!(a.offset(3).as_u64(), 8);
        assert_eq!(a.distance(BlockAddr::new(2)), 3);
        assert_eq!(BlockAddr::new(2).distance(a), 3);
        assert_eq!(a.as_bytes(), 5 * 4096);
        assert_eq!(BlockAddr::from(9u64).as_u64(), 9);
    }

    #[test]
    fn extent_bounds() {
        let e = Extent::new(BlockAddr::new(10), 4);
        assert!(e.contains(BlockAddr::new(10)));
        assert!(e.contains(BlockAddr::new(13)));
        assert!(!e.contains(BlockAddr::new(14)));
        assert!(!e.contains(BlockAddr::new(9)));
        assert_eq!(e.bytes(), 4 * 4096);
        assert_eq!(e.range(), 10..14);
        assert_eq!(e.block(0), BlockAddr::new(10));
        assert_eq!(e.block(3), BlockAddr::new(13));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn extent_block_out_of_range() {
        Extent::new(BlockAddr::new(0), 2).block(2);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(BlockAddr::new(7).to_string(), "blk#7");
        assert_eq!(Extent::new(BlockAddr::new(1), 2).to_string(), "[1..3)");
    }
}
