//! Flash SSD model.
//!
//! Models the properties SnapBPF's storage argument rests on (§3.1 of
//! the paper): modern SSDs serve high-IOPS *non-sequential* reads at
//! latencies close to sequential ones because internal channel
//! parallelism hides flash-array access time, so prefetching a
//! scattered working set directly from the snapshot file is not
//! penalized the way it would be on a spindle disk.
//!
//! The model has three moving parts:
//!
//! * **channels** — N independent service units; a request occupies
//!   the earliest-free channel for its full service time,
//! * **a pacer** — a command-rate ceiling (IOPS) shared by all
//!   channels, modelling the host interface / controller limit,
//! * **service time** — per-command setup latency (cheaper when the
//!   request is sequential to the previous one) plus size-dependent
//!   transfer time at the interface bandwidth.

use snapbpf_sim::{SimDuration, SimTime, SplitMix64};

use crate::addr::BlockAddr;
use crate::device::{BlockDevice, IoCompletion, IoKind, IoRequest, Pacer};

/// Configuration for [`SsdModel`].
///
/// Use the presets ([`SsdConfig::micron_5300`], [`SsdConfig::nvme`])
/// unless an ablation calls for something custom.
#[derive(Debug, Clone, PartialEq)]
pub struct SsdConfig {
    /// Model name used in reports.
    pub name: &'static str,
    /// Internal parallelism: number of concurrently serviced commands.
    pub channels: usize,
    /// Command setup latency when the request does *not* continue the
    /// previous one.
    pub random_cmd_latency: SimDuration,
    /// Command setup latency when the request is sequential to the
    /// previous serviced request.
    pub seq_cmd_latency: SimDuration,
    /// Extra latency for a write command (program > read on flash).
    pub write_penalty: SimDuration,
    /// Interface bandwidth in bytes per second (shared, modelled per
    /// command as transfer time).
    pub bandwidth_bytes_per_sec: u64,
    /// Command-rate ceiling (4 KiB IOPS); 0 disables pacing.
    pub max_iops: u64,
    /// Relative jitter applied to each command's service time
    /// (standard deviation as a fraction of the mean); 0 disables.
    pub jitter_frac: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl SsdConfig {
    /// The paper's testbed device: a 480 GiB Micron 5300 TLC SATA SSD
    /// (≈540 MB/s sequential read, ≈95 k random-read IOPS, SATA
    /// command latency in the tens of microseconds).
    pub fn micron_5300() -> Self {
        SsdConfig {
            name: "micron-5300-sata",
            channels: 8,
            random_cmd_latency: SimDuration::from_micros(80),
            seq_cmd_latency: SimDuration::from_micros(22),
            write_penalty: SimDuration::from_micros(40),
            bandwidth_bytes_per_sec: 540_000_000,
            max_iops: 95_000,
            jitter_frac: 0.04,
            seed: 0x5EED_55D0,
        }
    }

    /// A modern NVMe drive, used by ablations that ask how the
    /// comparison shifts on faster storage.
    pub fn nvme() -> Self {
        SsdConfig {
            name: "nvme-gen4",
            channels: 32,
            random_cmd_latency: SimDuration::from_micros(18),
            seq_cmd_latency: SimDuration::from_micros(9),
            write_penalty: SimDuration::from_micros(12),
            bandwidth_bytes_per_sec: 5_000_000_000,
            max_iops: 800_000,
            jitter_frac: 0.04,
            seed: 0x5EED_4E13,
        }
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig::micron_5300()
    }
}

/// Deterministic flash SSD model. See the crate docs for the model
/// structure (channels, shared interface bus, IOPS pacer).
///
/// # Examples
///
/// ```
/// use snapbpf_sim::SimTime;
/// use snapbpf_storage::{BlockAddr, BlockDevice, IoRequest, SsdModel};
///
/// let mut ssd = SsdModel::micron_5300();
/// let c = ssd.submit(SimTime::ZERO, IoRequest::read(BlockAddr::new(0), 32));
/// assert!(c.done_at > SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct SsdModel {
    config: SsdConfig,
    channel_free: Vec<SimTime>,
    /// When the shared host interface is next free for a transfer.
    bus_free: SimTime,
    pacer: Pacer,
    last_end: Option<BlockAddr>,
    rng: SplitMix64,
}

impl SsdModel {
    /// Creates an SSD from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.channels` is zero or the bandwidth is zero.
    pub fn new(config: SsdConfig) -> Self {
        assert!(config.channels > 0, "SSD needs at least one channel");
        assert!(
            config.bandwidth_bytes_per_sec > 0,
            "SSD bandwidth must be positive"
        );
        SsdModel {
            channel_free: vec![SimTime::ZERO; config.channels],
            bus_free: SimTime::ZERO,
            pacer: Pacer::new(config.max_iops),
            last_end: None,
            rng: SplitMix64::new(config.seed),
            config,
        }
    }

    /// The paper's testbed SSD ([`SsdConfig::micron_5300`]).
    pub fn micron_5300() -> Self {
        SsdModel::new(SsdConfig::micron_5300())
    }

    /// A fast NVMe device ([`SsdConfig::nvme`]).
    pub fn nvme() -> Self {
        SsdModel::new(SsdConfig::nvme())
    }

    /// The configuration this device was built from.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    fn transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.config.bandwidth_bytes_per_sec as f64)
    }

    /// Per-command setup time (channel-parallel part), with jitter.
    fn setup_time(&mut self, req: &IoRequest, sequential: bool) -> SimDuration {
        let mut t = if sequential {
            self.config.seq_cmd_latency
        } else {
            self.config.random_cmd_latency
        };
        if req.kind == IoKind::Write {
            t += self.config.write_penalty;
        }
        if self.config.jitter_frac > 0.0 {
            let mean = t.as_nanos() as f64;
            let jittered = self
                .rng
                .next_gaussian(mean, mean * self.config.jitter_frac)
                .max(mean * 0.5);
            t = SimDuration::from_nanos(jittered as u64);
        }
        t
    }
}

impl BlockDevice for SsdModel {
    fn submit(&mut self, now: SimTime, req: IoRequest) -> IoCompletion {
        let sequential = self.last_end == Some(req.addr);
        self.last_end = Some(req.end());

        // Earliest-free channel; ties resolve to the lowest index,
        // keeping the model deterministic.
        let (idx, &free) = self
            .channel_free
            .iter()
            .enumerate()
            .min_by_key(|(i, &t)| (t, *i))
            .expect("at least one channel");

        let started_at = self.pacer.admit(now.max(free));
        let setup = self.setup_time(&req, sequential);
        // The data transfer serializes on the shared interface bus.
        let bus_start = (started_at + setup).max(self.bus_free);
        let done_at = bus_start + self.transfer_time(req.bytes());
        self.bus_free = done_at;
        self.channel_free[idx] = done_at;

        IoCompletion {
            started_at,
            done_at,
            sequential,
        }
    }

    fn model_name(&self) -> &str {
        self.config.name
    }

    fn next_free(&self, now: SimTime) -> SimTime {
        self.channel_free
            .iter()
            .copied()
            .min()
            .unwrap_or(SimTime::ZERO)
            .max(now)
    }

    fn reset(&mut self) {
        for t in &mut self.channel_free {
            *t = SimTime::ZERO;
        }
        self.bus_free = SimTime::ZERO;
        self.pacer.reset();
        self.last_end = None;
        self.rng = SplitMix64::new(self.config.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_jitter(mut cfg: SsdConfig) -> SsdConfig {
        cfg.jitter_frac = 0.0;
        cfg
    }

    #[test]
    fn sequential_reads_are_cheaper_than_random() {
        let mut ssd = SsdModel::new(no_jitter(SsdConfig::micron_5300()));
        // Warm up so the first request's randomness doesn't skew.
        ssd.submit(SimTime::ZERO, IoRequest::read(BlockAddr::new(0), 1));
        let seq = ssd.submit(
            SimTime::from_millis(10),
            IoRequest::read(BlockAddr::new(1), 1),
        );
        let rand = ssd.submit(
            SimTime::from_millis(20),
            IoRequest::read(BlockAddr::new(500), 1),
        );
        let seq_lat = seq.done_at.saturating_since(seq.started_at);
        let rand_lat = rand.done_at.saturating_since(rand.started_at);
        assert!(seq.sequential);
        assert!(!rand.sequential);
        assert!(
            seq_lat < rand_lat,
            "sequential {seq_lat} should beat random {rand_lat}"
        );
    }

    #[test]
    fn random_reads_overlap_across_channels() {
        // 8 concurrent random reads should take far less than 8x one
        // read: that is the paper's core storage insight.
        let cfg = no_jitter(SsdConfig::micron_5300());
        let one_latency = cfg.random_cmd_latency;
        let mut ssd = SsdModel::new(cfg);
        let mut last_done = SimTime::ZERO;
        for i in 0..8 {
            let c = ssd.submit(SimTime::ZERO, IoRequest::read(BlockAddr::new(i * 1000), 1));
            last_done = last_done.max(c.done_at);
        }
        let total = last_done.saturating_since(SimTime::ZERO);
        assert!(
            total < one_latency * 3,
            "8 parallel random reads took {total}, expected < 3x single-cmd latency"
        );
    }

    #[test]
    fn iops_ceiling_paces_small_requests() {
        let mut cfg = no_jitter(SsdConfig::micron_5300());
        cfg.max_iops = 1000; // 1 ms between command starts
        cfg.channels = 64;
        let mut ssd = SsdModel::new(cfg);
        let mut last_start = SimTime::ZERO;
        for i in 0..10 {
            let c = ssd.submit(SimTime::ZERO, IoRequest::read(BlockAddr::new(i * 7919), 1));
            if i > 0 {
                assert!(
                    c.started_at.saturating_since(last_start) >= SimDuration::from_millis(1),
                    "pacing violated"
                );
            }
            last_start = c.started_at;
        }
    }

    #[test]
    fn large_requests_are_bandwidth_bound() {
        let cfg = no_jitter(SsdConfig::micron_5300());
        let mut ssd = SsdModel::new(cfg.clone());
        // 64 MiB read: transfer ~124 ms at 540 MB/s dominates setup.
        let blocks = 64 * 1024 * 1024 / 4096;
        let c = ssd.submit(SimTime::ZERO, IoRequest::read(BlockAddr::new(0), blocks));
        let lat = c.done_at.saturating_since(SimTime::ZERO);
        let expected = 64.0 * 1024.0 * 1024.0 / cfg.bandwidth_bytes_per_sec as f64;
        let got = lat.as_secs_f64();
        assert!(
            (got - expected).abs() / expected < 0.05,
            "expected ~{expected}s got {got}s"
        );
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let mut ssd = SsdModel::new(no_jitter(SsdConfig::micron_5300()));
        let r = ssd.submit(SimTime::ZERO, IoRequest::read(BlockAddr::new(100), 1));
        let mut ssd2 = SsdModel::new(no_jitter(SsdConfig::micron_5300()));
        let w = ssd2.submit(SimTime::ZERO, IoRequest::write(BlockAddr::new(100), 1));
        assert!(w.done_at > r.done_at);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut ssd = SsdModel::micron_5300();
            (0..100)
                .map(|i| {
                    ssd.submit(
                        SimTime::from_micros(i),
                        IoRequest::read(BlockAddr::new(i * 37 % 4096), 1),
                    )
                    .done_at
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut ssd = SsdModel::micron_5300();
        let first = ssd.submit(SimTime::ZERO, IoRequest::read(BlockAddr::new(5), 2));
        ssd.submit(SimTime::ZERO, IoRequest::read(BlockAddr::new(900), 2));
        ssd.reset();
        let again = ssd.submit(SimTime::ZERO, IoRequest::read(BlockAddr::new(5), 2));
        assert_eq!(first, again);
    }

    #[test]
    fn next_free_reflects_queue_pressure() {
        let mut cfg = no_jitter(SsdConfig::micron_5300());
        cfg.channels = 1;
        let mut ssd = SsdModel::new(cfg);
        assert_eq!(ssd.next_free(SimTime::ZERO), SimTime::ZERO);
        let c = ssd.submit(SimTime::ZERO, IoRequest::read(BlockAddr::new(0), 8));
        assert_eq!(ssd.next_free(SimTime::ZERO), c.done_at);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let mut cfg = SsdConfig::micron_5300();
        cfg.channels = 0;
        SsdModel::new(cfg);
    }
}
