//! Virtual-time structured tracing and a namespaced metrics
//! registry.
//!
//! Every layer of the simulation (storage, page cache, eBPF runtime,
//! VMM, restore pipeline, fleet scheduler) reports *spans* and
//! *instant events* stamped with **virtual** time — never the wall
//! clock — through a shared [`Tracer`] handle, and bumps counters /
//! gauges / histograms in a [`MetricsRegistry`]. Recorded events
//! serialize to Chrome trace-event JSON ([`chrome_trace_json`]) that
//! loads directly in Perfetto or `chrome://tracing`.
//!
//! The handle is cheap to clone (the simulation is single-threaded,
//! so it is an `Rc` internally) and free when disabled: a
//! [`Tracer::disabled`] handle holds no allocation and every call on
//! it is a single `Option` check.
//!
//! Track (`tid`) conventions: [`TID_CONTROL`] carries scheduler
//! decisions, [`TID_DISK`] block-device request spans, [`TID_KERNEL`]
//! host-kernel/eBPF events, and each sandbox gets its own track via
//! [`sandbox_tid`].
//!
//! # Examples
//!
//! ```
//! use snapbpf_sim::{chrome_trace_json, SimTime, Tracer, TID_DISK};
//!
//! let tracer = Tracer::recording();
//! tracer.span(
//!     "storage",
//!     "disk-read",
//!     TID_DISK,
//!     SimTime::ZERO,
//!     SimTime::from_nanos(5_000),
//!     vec![("blocks", 8u64.into())],
//! );
//! tracer.incr("storage.read.requests");
//! let events = tracer.take_events();
//! assert_eq!(events.len(), 1);
//! let json = chrome_trace_json(&events, Some(&tracer.metrics_snapshot()));
//! assert!(json.pretty().contains("traceEvents"));
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use snapbpf_json::Json;

use crate::series::SeriesRegistry;
use crate::stats::{Histogram, Quantile};
use crate::time::{SimDuration, SimTime};

/// Trace track (Chrome `tid`) carrying control-plane / fleet
/// scheduler events.
pub const TID_CONTROL: u64 = 0;

/// Trace track carrying block-device request spans.
pub const TID_DISK: u64 = 1;

/// Trace track carrying host-kernel and eBPF runtime events (page
/// cache, prefetch programs, map loads).
pub const TID_KERNEL: u64 = 2;

/// The trace track of one sandbox (vCPU), keyed by its owner id.
/// Sandbox tracks start above the reserved infrastructure tracks.
pub const fn sandbox_tid(owner: u32) -> u64 {
    16 + owner as u64
}

/// One argument value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceValue {
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl TraceValue {
    fn to_json(&self) -> Json {
        match self {
            TraceValue::U64(v) => Json::Number(*v as f64),
            TraceValue::F64(v) => Json::Number(*v),
            TraceValue::Str(s) => Json::String(s.clone()),
            TraceValue::Bool(b) => Json::Bool(*b),
        }
    }
}

impl From<u64> for TraceValue {
    fn from(v: u64) -> TraceValue {
        TraceValue::U64(v)
    }
}

impl From<u32> for TraceValue {
    fn from(v: u32) -> TraceValue {
        TraceValue::U64(v as u64)
    }
}

impl From<usize> for TraceValue {
    fn from(v: usize) -> TraceValue {
        TraceValue::U64(v as u64)
    }
}

impl From<f64> for TraceValue {
    fn from(v: f64) -> TraceValue {
        TraceValue::F64(v)
    }
}

impl From<&str> for TraceValue {
    fn from(v: &str) -> TraceValue {
        TraceValue::Str(v.to_owned())
    }
}

impl From<String> for TraceValue {
    fn from(v: String) -> TraceValue {
        TraceValue::Str(v)
    }
}

impl From<bool> for TraceValue {
    fn from(v: bool) -> TraceValue {
        TraceValue::Bool(v)
    }
}

/// Chrome trace-event phase of a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A complete event (`"X"`): a span with a start and a duration.
    Complete,
    /// An instant event (`"i"`), thread-scoped.
    Instant,
    /// A metadata event (`"M"`), naming processes and threads.
    Metadata,
}

impl TracePhase {
    /// The single-character Chrome phase code.
    pub const fn code(self) -> &'static str {
        match self {
            TracePhase::Complete => "X",
            TracePhase::Instant => "i",
            TracePhase::Metadata => "M",
        }
    }
}

/// One structured trace event, stamped in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Process id — by convention one simulated host (or one fleet
    /// run) per pid.
    pub pid: u32,
    /// Thread id — the track this event renders on (see [`TID_DISK`]
    /// and friends, plus [`sandbox_tid`]).
    pub tid: u64,
    /// Virtual start time.
    pub ts: SimTime,
    /// Span duration; `None` for instant and metadata events.
    pub dur: Option<SimDuration>,
    /// Event phase.
    pub phase: TracePhase,
    /// Category (e.g. `"storage"`, `"restore"`, `"fleet"`).
    pub cat: &'static str,
    /// Event name (stage label, request kind, decision).
    pub name: String,
    /// Event arguments, in emission order.
    pub args: Vec<(&'static str, TraceValue)>,
}

impl TraceEvent {
    /// Serializes this event to one Chrome trace-event JSON object.
    ///
    /// Timestamps and durations convert to *microseconds* (Chrome's
    /// unit); key order is fixed so output is deterministic.
    pub fn to_chrome_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("name".into(), Json::from(self.name.as_str())),
            ("cat".into(), Json::from(self.cat)),
            ("ph".into(), Json::from(self.phase.code())),
            ("ts".into(), Json::Number(self.ts.as_nanos() as f64 / 1e3)),
        ];
        if let Some(dur) = self.dur {
            fields.push(("dur".into(), Json::Number(dur.as_nanos() as f64 / 1e3)));
        }
        fields.push(("pid".into(), Json::from(self.pid)));
        fields.push(("tid".into(), Json::Number(self.tid as f64)));
        if self.phase == TracePhase::Instant {
            fields.push(("s".into(), Json::from("t")));
        }
        if !self.args.is_empty() {
            let args: Vec<(String, Json)> = self
                .args
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.to_json()))
                .collect();
            fields.push(("args".into(), Json::Object(args)));
        }
        Json::Object(fields)
    }
}

/// Destination for emitted trace events.
pub trait TraceSink: fmt::Debug {
    /// Consumes one event.
    fn record(&mut self, event: TraceEvent);

    /// Whether this sink retains events — `false` lets the [`Tracer`]
    /// skip event construction entirely.
    fn retains(&self) -> bool {
        true
    }

    /// Removes and returns everything recorded so far (empty for
    /// sinks that do not retain events).
    fn drain(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// Discards every event; metrics still accumulate.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&mut self, _event: TraceEvent) {}

    fn retains(&self) -> bool {
        false
    }
}

/// Buffers events in memory, in emission order.
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    events: Vec<TraceEvent>,
}

impl RecordingSink {
    /// Creates an empty recording sink.
    pub fn new() -> Self {
        RecordingSink::default()
    }

    /// Everything recorded so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }
}

impl TraceSink for RecordingSink {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

/// A namespaced registry of counters, gauges, and histograms.
///
/// Names are dotted paths (`"mem.cache.hits"`,
/// `"storage.read.latency_ns"`); iteration order is always name
/// order, so snapshots serialize deterministically.
///
/// # Examples
///
/// ```
/// use snapbpf_sim::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.add("mem.cache.hits", 3);
/// m.incr("mem.cache.hits");
/// m.observe("storage.read.latency_ns", 125_000);
/// assert_eq!(m.counter("mem.cache.hits"), 4);
/// assert_eq!(m.histogram("storage.read.latency_ns").unwrap().count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to the named counter, creating it at zero first.
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += n;
        } else {
            self.counters.insert(name.to_owned(), n);
        }
    }

    /// Adds one to the named counter.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Sets the named gauge to `v` (last write wins).
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = v;
        } else {
            self.gauges.insert(name.to_owned(), v);
        }
    }

    /// Records `v` into the named histogram.
    pub fn observe(&mut self, name: &str, v: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(v);
        } else {
            let mut h = Histogram::new();
            h.record(v);
            self.histograms.insert(name.to_owned(), h);
        }
    }

    /// Records a duration (as nanoseconds) into the named histogram.
    pub fn observe_duration(&mut self, name: &str, d: SimDuration) {
        self.observe(name, d.as_nanos());
    }

    /// Current value of the named counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of the named gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if anything was observed into it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// `true` when nothing has ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one: counters add, gauges
    /// take the other's value, histograms merge.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.add(k, *v);
        }
        for (k, v) in &other.gauges {
            self.set_gauge(k, *v);
        }
        for (k, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(k) {
                mine.merge(h);
            } else {
                self.histograms.insert(k.clone(), h.clone());
            }
        }
    }

    /// Serializes the registry to a JSON object: counters and gauges
    /// as plain numbers, histograms as `{count, mean, min, max, p50,
    /// p90, p99, p99.9}` summaries.
    pub fn to_json(&self) -> Json {
        let counters: Vec<(String, Json)> = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::from(v)))
            .collect();
        let gauges: Vec<(String, Json)> = self
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone(), Json::Number(v)))
            .collect();
        let histograms: Vec<(String, Json)> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let mut fields: Vec<(String, Json)> = vec![
                    ("count".into(), Json::from(h.count())),
                    ("mean".into(), Json::Number(h.mean())),
                    ("min".into(), Json::from(h.min().unwrap_or(0))),
                    ("max".into(), Json::from(h.max().unwrap_or(0))),
                ];
                for q in Quantile::ALL {
                    fields.push((q.label().into(), Json::from(h.quantile(q).unwrap_or(0))));
                }
                (k.clone(), Json::Object(fields))
            })
            .collect();
        Json::Object(vec![
            ("counters".into(), Json::Object(counters)),
            ("gauges".into(), Json::Object(gauges)),
            ("histograms".into(), Json::Object(histograms)),
        ])
    }
}

/// The capability class of a [`Tracer`] handle: what it collects,
/// independent of which concrete sink backs it.
///
/// A parallel cluster run cannot share one `Tracer` (the handle is
/// deliberately single-threaded); instead each host runs under a
/// fresh tracer **of the same class** ([`Tracer::of_class`]) and the
/// driver merges the buffered events back into the caller's tracer
/// in host order ([`Tracer::record_all`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracerClass {
    /// Collects nothing ([`Tracer::disabled`]).
    Disabled,
    /// Collects metrics, discards events ([`Tracer::noop`]).
    Metrics,
    /// Collects metrics and retains events ([`Tracer::recording`]).
    Recording,
}

#[derive(Debug)]
struct TracerInner {
    sink: Box<dyn TraceSink>,
    events: bool,
    metrics: MetricsRegistry,
    series: SeriesRegistry,
    pid: u32,
    now: SimTime,
    process_names: BTreeMap<u32, String>,
    thread_names: BTreeMap<(u32, u64), String>,
}

/// A cheaply cloneable handle every layer emits trace events and
/// metrics through.
///
/// Clones share state: the host kernel, disk, page cache, eBPF
/// runtime, and fleet scheduler all hold clones of one `Tracer`, so
/// a single drain at the end of a run sees everything in emission
/// order. The default (and [`Tracer::disabled`]) handle carries no
/// allocation; every operation on it returns immediately.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<TracerInner>>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(disabled)"),
            Some(inner) => {
                let inner = inner.borrow();
                write!(f, "Tracer(pid={}, events={})", inner.pid, inner.events)
            }
        }
    }
}

impl Tracer {
    /// A handle that drops everything — the zero-cost default.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A handle that collects metrics but discards events (the
    /// [`NoopSink`]).
    pub fn noop() -> Tracer {
        Tracer::with_sink(Box::new(NoopSink))
    }

    /// A handle that collects metrics and buffers every event in
    /// memory (the [`RecordingSink`]); drain with
    /// [`Tracer::take_events`].
    pub fn recording() -> Tracer {
        Tracer::with_sink(Box::new(RecordingSink::new()))
    }

    /// A handle over a caller-supplied sink.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Tracer {
        let events = sink.retains();
        Tracer {
            inner: Some(Rc::new(RefCell::new(TracerInner {
                sink,
                events,
                metrics: MetricsRegistry::new(),
                series: SeriesRegistry::new(),
                pid: 1,
                now: SimTime::ZERO,
                process_names: BTreeMap::new(),
                thread_names: BTreeMap::new(),
            }))),
        }
    }

    /// The capability class of this handle (see [`TracerClass`]).
    /// Custom sinks classify by whether they retain events.
    pub fn class(&self) -> TracerClass {
        match &self.inner {
            None => TracerClass::Disabled,
            Some(inner) if inner.borrow().events => TracerClass::Recording,
            Some(_) => TracerClass::Metrics,
        }
    }

    /// A fresh, independent tracer of the given capability class —
    /// the per-host tracer a cluster run forks for each host world.
    pub fn of_class(class: TracerClass) -> Tracer {
        match class {
            TracerClass::Disabled => Tracer::disabled(),
            TracerClass::Metrics => Tracer::noop(),
            TracerClass::Recording => Tracer::recording(),
        }
    }

    /// `true` when this handle collects anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// `true` when emitted events are actually retained — callers
    /// with expensive argument construction guard on this.
    pub fn events_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.borrow().events)
    }

    /// Sets the Chrome `pid` stamped on subsequent events (one host /
    /// fleet run per pid; defaults to 1).
    pub fn set_pid(&self, pid: u32) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().pid = pid;
        }
    }

    /// Names the current process (Perfetto shows it as the process
    /// row label).
    pub fn name_process(&self, name: &str) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            let pid = inner.pid;
            inner.process_names.insert(pid, name.to_owned());
        }
    }

    /// Names a track (thread row) under the current process.
    pub fn name_thread(&self, tid: u64, name: &str) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            let pid = inner.pid;
            inner.thread_names.insert((pid, tid), name.to_owned());
        }
    }

    /// Advances the tracer's notion of "current virtual time" — used
    /// to stamp events from layers that observe state changes without
    /// carrying an explicit timestamp (e.g. the page cache).
    pub fn advance_clock(&self, now: SimTime) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().now = now;
        }
    }

    /// The most recently advanced virtual time ([`SimTime::ZERO`]
    /// when disabled).
    pub fn now(&self) -> SimTime {
        self.inner
            .as_ref()
            .map_or(SimTime::ZERO, |i| i.borrow().now)
    }

    /// Emits a complete span from `begin` to `end` on track `tid`.
    /// Dropped (without constructing the event) unless events are
    /// retained.
    pub fn span(
        &self,
        cat: &'static str,
        name: &str,
        tid: u64,
        begin: SimTime,
        end: SimTime,
        args: Vec<(&'static str, TraceValue)>,
    ) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            if !inner.events {
                return;
            }
            let pid = inner.pid;
            inner.sink.record(TraceEvent {
                pid,
                tid,
                ts: begin,
                dur: Some(end.saturating_since(begin)),
                phase: TracePhase::Complete,
                cat,
                name: name.to_owned(),
                args,
            });
        }
    }

    /// Emits an instant event at `at` on track `tid`.
    pub fn instant(
        &self,
        cat: &'static str,
        name: &str,
        tid: u64,
        at: SimTime,
        args: Vec<(&'static str, TraceValue)>,
    ) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            if !inner.events {
                return;
            }
            let pid = inner.pid;
            inner.sink.record(TraceEvent {
                pid,
                tid,
                ts: at,
                dur: None,
                phase: TracePhase::Instant,
                cat,
                name: name.to_owned(),
                args,
            });
        }
    }

    /// Emits an instant event at the tracer's current clock (see
    /// [`Tracer::advance_clock`]).
    pub fn instant_now(
        &self,
        cat: &'static str,
        name: &str,
        tid: u64,
        args: Vec<(&'static str, TraceValue)>,
    ) {
        let at = self.now();
        self.instant(cat, name, tid, at, args);
    }

    /// Adds `n` to the named metrics counter.
    pub fn add(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().metrics.add(name, n);
        }
    }

    /// Adds one to the named metrics counter.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets the named gauge.
    pub fn set_gauge(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().metrics.set_gauge(name, v);
        }
    }

    /// Records `v` into the named histogram.
    pub fn observe(&self, name: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().metrics.observe(name, v);
        }
    }

    /// Records a duration into the named histogram.
    pub fn observe_duration(&self, name: &str, d: SimDuration) {
        self.observe(name, d.as_nanos());
    }

    /// Current value of the named counter (0 when disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.borrow().metrics.counter(name))
    }

    /// A snapshot of the metrics registry (empty when disabled).
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        self.inner
            .as_ref()
            .map_or_else(MetricsRegistry::new, |i| i.borrow().metrics.clone())
    }

    /// Records one windowed time-series sample at virtual time `at`
    /// (see [`SeriesRegistry::record`]). Dropped when disabled;
    /// collected for metrics-only handles too, like counters.
    pub fn series_record(&self, metric: &str, function: &str, at: SimTime, value: f64) {
        if let Some(inner) = &self.inner {
            inner
                .borrow_mut()
                .series
                .record(metric, function, at, value);
        }
    }

    /// A snapshot of the windowed time series (empty when disabled).
    pub fn series_snapshot(&self) -> SeriesRegistry {
        self.inner
            .as_ref()
            .map_or_else(SeriesRegistry::new, |i| i.borrow().series.clone())
    }

    /// Folds a series registry into this tracer's (see
    /// [`SeriesRegistry::merge`]) — the cluster driver calls this in
    /// ascending host-index order at each epoch barrier so merged
    /// series are byte-identical at any worker-thread count.
    pub fn merge_series(&self, other: &SeriesRegistry) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().series.merge(other);
        }
    }

    /// Records pre-stamped events through the sink verbatim (pids,
    /// tids, and timestamps untouched) — how a cluster driver feeds
    /// per-host buffers back into the caller's tracer in canonical
    /// host order. Dropped unless events are retained.
    pub fn record_all(&self, events: Vec<TraceEvent>) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            if !inner.events {
                return;
            }
            for event in events {
                inner.sink.record(event);
            }
        }
    }

    /// Drains the sink's buffered events only — no metadata rows,
    /// unlike [`Tracer::take_events`]. Empty for disabled and no-op
    /// handles.
    pub fn drain_events(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.borrow_mut().sink.drain())
    }

    /// Removes and returns the process / thread name maps.
    #[allow(clippy::type_complexity)]
    pub fn take_names(&self) -> (BTreeMap<u32, String>, BTreeMap<(u32, u64), String>) {
        match &self.inner {
            None => (BTreeMap::new(), BTreeMap::new()),
            Some(inner) => {
                let mut inner = inner.borrow_mut();
                (
                    std::mem::take(&mut inner.process_names),
                    std::mem::take(&mut inner.thread_names),
                )
            }
        }
    }

    /// Folds explicit process / thread name maps into this tracer's
    /// (later inserts win on key collisions, which cannot happen when
    /// each source used a distinct pid).
    pub fn merge_names(
        &self,
        processes: BTreeMap<u32, String>,
        threads: BTreeMap<(u32, u64), String>,
    ) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            inner.process_names.extend(processes);
            inner.thread_names.extend(threads);
        }
    }

    /// Folds a metrics registry into this tracer's: counters add,
    /// histograms merge (see [`MetricsRegistry::merge`]).
    pub fn merge_metrics(&self, other: &MetricsRegistry) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().metrics.merge(other);
        }
    }

    /// Drains recorded events: metadata (process / thread names)
    /// first, then every buffered event in emission order. Empty for
    /// disabled and no-op handles.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut inner = inner.borrow_mut();
        let mut out = Vec::new();
        for (&pid, name) in &inner.process_names {
            out.push(TraceEvent {
                pid,
                tid: 0,
                ts: SimTime::ZERO,
                dur: None,
                phase: TracePhase::Metadata,
                cat: "__metadata",
                name: "process_name".to_owned(),
                args: vec![("name", TraceValue::Str(name.clone()))],
            });
        }
        for (&(pid, tid), name) in &inner.thread_names {
            out.push(TraceEvent {
                pid,
                tid,
                ts: SimTime::ZERO,
                dur: None,
                phase: TracePhase::Metadata,
                cat: "__metadata",
                name: "thread_name".to_owned(),
                args: vec![("name", TraceValue::Str(name.clone()))],
            });
        }
        out.extend(inner.sink.drain());
        out
    }
}

/// Assembles events (and an optional metrics snapshot) into a Chrome
/// trace-event JSON document: `{"traceEvents": [...],
/// "displayTimeUnit": "ms", "metrics": {...}}`. The extra `metrics`
/// key is ignored by Perfetto and `chrome://tracing`.
pub fn chrome_trace_json(events: &[TraceEvent], metrics: Option<&MetricsRegistry>) -> Json {
    let mut fields: Vec<(String, Json)> = vec![
        (
            "traceEvents".into(),
            Json::Array(events.iter().map(TraceEvent::to_chrome_json).collect()),
        ),
        ("displayTimeUnit".into(), Json::from("ms")),
    ];
    if let Some(m) = metrics {
        fields.push(("metrics".into(), m.to_json()));
    }
    Json::Object(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tr = Tracer::disabled();
        assert!(!tr.is_enabled());
        assert!(!tr.events_enabled());
        tr.incr("x");
        tr.span("c", "n", 0, t(0), t(10), Vec::new());
        tr.instant("c", "n", 0, t(5), Vec::new());
        tr.advance_clock(t(99));
        assert_eq!(tr.now(), SimTime::ZERO);
        assert_eq!(tr.counter("x"), 0);
        assert!(tr.take_events().is_empty());
        assert!(tr.metrics_snapshot().is_empty());
    }

    #[test]
    fn noop_sink_keeps_metrics_drops_events() {
        let tr = Tracer::noop();
        assert!(tr.is_enabled());
        assert!(!tr.events_enabled());
        tr.incr("a.b");
        tr.add("a.b", 2);
        tr.observe("h", 10);
        tr.span("c", "n", 0, t(0), t(10), Vec::new());
        assert_eq!(tr.counter("a.b"), 3);
        assert_eq!(tr.metrics_snapshot().histogram("h").unwrap().count(), 1);
        assert!(tr.take_events().is_empty());
    }

    #[test]
    fn recording_sink_buffers_in_order() {
        let tr = Tracer::recording();
        tr.span(
            "storage",
            "read",
            TID_DISK,
            t(100),
            t(400),
            vec![("blocks", 8u64.into())],
        );
        tr.instant("fleet", "shed", TID_CONTROL, t(200), Vec::new());
        let events = tr.take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "read");
        assert_eq!(events[0].dur, Some(SimDuration::from_nanos(300)));
        assert_eq!(events[1].phase, TracePhase::Instant);
        // Drained: a second take is empty.
        assert!(tr.take_events().is_empty());
    }

    #[test]
    fn clones_share_state() {
        let tr = Tracer::recording();
        let other = tr.clone();
        other.incr("shared");
        other.instant("c", "e", 0, t(1), Vec::new());
        assert_eq!(tr.counter("shared"), 1);
        assert_eq!(tr.take_events().len(), 1);
    }

    #[test]
    fn clock_advances_and_stamps_instants() {
        let tr = Tracer::recording();
        tr.advance_clock(t(777));
        assert_eq!(tr.now(), t(777));
        tr.instant_now("c", "e", 3, Vec::new());
        let events = tr.take_events();
        assert_eq!(events[0].ts, t(777));
        assert_eq!(events[0].tid, 3);
    }

    #[test]
    fn metadata_events_precede_payload() {
        let tr = Tracer::recording();
        tr.set_pid(4);
        tr.name_process("SnapBPF");
        tr.name_thread(sandbox_tid(0), "sandbox-0");
        tr.instant("c", "e", sandbox_tid(0), t(5), Vec::new());
        let events = tr.take_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].phase, TracePhase::Metadata);
        assert_eq!(events[0].name, "process_name");
        assert_eq!(events[1].name, "thread_name");
        assert_eq!(events[2].pid, 4);
    }

    #[test]
    fn chrome_json_shape_parses_back() {
        let tr = Tracer::recording();
        tr.span(
            "restore",
            "metadata-load",
            sandbox_tid(1),
            t(1_000),
            t(26_000),
            Vec::new(),
        );
        tr.incr("fleet.cold_starts");
        let json = chrome_trace_json(&tr.take_events(), Some(&tr.metrics_snapshot()));
        let text = json.pretty();
        let back = Json::parse(&text).expect("round-trips");
        let events = match &back["traceEvents"] {
            Json::Array(a) => a,
            other => panic!("traceEvents not an array: {other:?}"),
        };
        assert_eq!(events.len(), 1);
        assert_eq!(events[0]["ph"].as_str(), Some("X"));
        assert_eq!(events[0]["ts"].as_f64(), Some(1.0));
        assert_eq!(events[0]["dur"].as_f64(), Some(25.0));
        assert_eq!(events[0]["tid"].as_f64(), Some(17.0));
        assert_eq!(
            back["metrics"]["counters"]["fleet.cold_starts"].as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn class_round_trips_through_of_class() {
        for class in [
            TracerClass::Disabled,
            TracerClass::Metrics,
            TracerClass::Recording,
        ] {
            assert_eq!(Tracer::of_class(class).class(), class);
        }
        // A custom retaining sink classifies as recording.
        let tr = Tracer::with_sink(Box::new(RecordingSink::new()));
        assert_eq!(tr.class(), TracerClass::Recording);
    }

    #[test]
    fn record_all_feeds_pre_stamped_events_through_the_sink() {
        let host = Tracer::recording();
        host.set_pid(7);
        host.instant("c", "e", 3, t(10), Vec::new());
        let caller = Tracer::recording();
        caller.record_all(host.drain_events());
        let merged = caller.take_events();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].pid, 7, "pids pass through verbatim");
        assert_eq!(merged[0].ts, t(10));
        // A non-retaining caller drops them.
        let noop = Tracer::noop();
        host.instant("c", "e", 3, t(11), Vec::new());
        noop.record_all(host.drain_events());
        assert!(noop.take_events().is_empty());
    }

    #[test]
    fn names_and_metrics_merge_across_tracers() {
        let host = Tracer::recording();
        host.set_pid(2);
        host.name_process("host 1");
        host.name_thread(5, "track");
        host.incr("a.b");
        host.observe("h", 7);
        let caller = Tracer::recording();
        let (procs, threads) = host.take_names();
        caller.merge_names(procs, threads);
        caller.merge_metrics(&host.metrics_snapshot());
        caller.incr("a.b");
        assert_eq!(caller.counter("a.b"), 2);
        assert_eq!(caller.metrics_snapshot().histogram("h").unwrap().count(), 1);
        let events = caller.take_events();
        assert_eq!(events.len(), 2, "both name rows surface as metadata");
        assert!(events.iter().all(|e| e.phase == TracePhase::Metadata));
        assert_eq!(events[0].pid, 2);
        // Source maps were drained.
        let (procs, threads) = host.take_names();
        assert!(procs.is_empty() && threads.is_empty());
    }

    #[test]
    fn series_flow_through_tracers_like_metrics() {
        // Disabled handles drop series samples silently.
        let off = Tracer::disabled();
        off.series_record("cold_ns", "image", t(1), 5.0);
        assert!(off.series_snapshot().is_empty());

        // Metrics-only handles collect them, and a caller merges
        // per-host snapshots exactly like metrics registries.
        let host = Tracer::noop();
        host.series_record("cold_ns", "image", t(1), 5.0);
        host.series_record("cold_ns", "image", t(2), 7.0);
        let caller = Tracer::recording();
        caller.series_record("cold_ns", "json", t(3), 11.0);
        caller.merge_series(&host.series_snapshot());
        let merged = caller.series_snapshot();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.get("cold_ns", "image").unwrap()[&0].count(), 2);
        assert_eq!(merged.get("cold_ns", "json").unwrap()[&0].sum(), 11.0);
    }

    #[test]
    fn registry_merge_and_json() {
        let mut a = MetricsRegistry::new();
        a.add("c", 1);
        a.set_gauge("g", 0.5);
        a.observe(" h", 4);
        let mut b = MetricsRegistry::new();
        b.add("c", 2);
        b.set_gauge("g", 0.7);
        b.observe(" h", 8);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), Some(0.7));
        assert_eq!(a.histogram(" h").unwrap().count(), 2);
        let text = a.to_json().pretty();
        assert!(text.contains("\"p99.9\""));
    }
}
