//! Deterministic future-event queue.
//!
//! The heart of a discrete-event simulation: a priority queue of
//! `(time, payload)` pairs. Ties on time are broken by insertion
//! order (FIFO), which is what makes two runs with the same inputs
//! produce identical event interleavings.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event drawn from the queue: when it fires and what it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// Virtual time at which the event fires.
    pub at: SimTime,
    /// Caller-defined payload.
    pub event: E,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (and,
        // within a time, the lowest sequence number) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-priority queue of future events.
///
/// # Examples
///
/// ```
/// use snapbpf_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "late");
/// q.schedule(SimTime::from_nanos(10), "early");
/// q.schedule(SimTime::from_nanos(10), "early-second");
///
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert_eq!(q.pop().unwrap().event, "early-second"); // FIFO on ties
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at time `at`.
    ///
    /// Scheduling in the past is permitted (the event simply pops
    /// next); the simulation driver is responsible for monotonic
    /// clock advancement.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|e| Scheduled {
            at: e.at,
            event: e.event,
        })
    }

    /// The firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (at, event) in iter {
            self.schedule(at, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

/// A virtual clock paired with an event queue: the minimal driver
/// loop most simulations need.
///
/// The clock only moves forward; popping an event advances the clock
/// to the event's timestamp.
///
/// # Examples
///
/// ```
/// use snapbpf_sim::{Clock, SimDuration, SimTime};
///
/// let mut clock = Clock::new();
/// clock.schedule_after(SimDuration::from_micros(5), 1u32);
/// clock.schedule_after(SimDuration::from_micros(2), 2u32);
///
/// let first = clock.next().unwrap();
/// assert_eq!(first.event, 2);
/// assert_eq!(clock.now(), SimTime::from_micros(2));
/// ```
#[derive(Debug)]
pub struct Clock<E> {
    now: SimTime,
    queue: EventQueue<E>,
}

impl<E> Clock<E> {
    /// Creates a clock at time zero with an empty queue.
    pub fn new() -> Self {
        Clock {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is earlier than the current
    /// time — an event in the past indicates a model bug.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling an event in the past");
        self.queue.schedule(at, event);
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_after(&mut self, delay: crate::time::SimDuration, event: E) {
        let at = self.now + delay;
        self.queue.schedule(at, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    #[allow(clippy::should_implement_trait)] // deliberate: `Clock` is not an `Iterator` (no `&mut self`-only iteration contract)
    pub fn next(&mut self) -> Option<Scheduled<E>> {
        let ev = self.queue.pop()?;
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = self.now.max(ev.at);
        Some(ev)
    }

    /// Firing time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// `true` if no events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Manually advances the clock (e.g. to account for synchronous
    /// work performed between events). Never moves backwards.
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }
}

impl<E> Default for Clock<E> {
    fn default() -> Self {
        Clock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 'c');
        q.schedule(SimTime::from_nanos(10), 'a');
        q.schedule(SimTime::from_nanos(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_nanos(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "x");
        assert_eq!(q.pop().unwrap().event, "x");
        q.schedule(SimTime::from_nanos(5), "y");
        q.schedule(SimTime::from_nanos(5), "z");
        assert_eq!(q.pop().unwrap().event, "y");
        assert_eq!(q.pop().unwrap().event, "z");
        assert!(q.is_empty());
    }

    #[test]
    fn from_iterator_collects() {
        let q: EventQueue<u8> = vec![(SimTime::from_nanos(2), 2u8), (SimTime::from_nanos(1), 1u8)]
            .into_iter()
            .collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1)));
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut clock: Clock<u32> = Clock::new();
        clock.schedule_after(SimDuration::from_nanos(100), 1);
        clock.schedule_after(SimDuration::from_nanos(50), 2);
        assert_eq!(clock.next().unwrap().event, 2);
        assert_eq!(clock.now().as_nanos(), 50);
        assert_eq!(clock.next().unwrap().event, 1);
        assert_eq!(clock.now().as_nanos(), 100);
        assert!(clock.next().is_none());
        // Clock stays at the last event time once drained.
        assert_eq!(clock.now().as_nanos(), 100);
    }

    #[test]
    fn clock_advance_to_never_goes_back() {
        let mut clock: Clock<()> = Clock::new();
        clock.advance_to(SimTime::from_nanos(10));
        clock.advance_to(SimTime::from_nanos(5));
        assert_eq!(clock.now().as_nanos(), 10);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
