//! Windowed per-function time series.
//!
//! Point metrics (counters, gauges, histograms in
//! [`crate::trace::MetricsRegistry`]) answer "how much over the whole
//! run"; a [`SeriesRegistry`] answers "how did it evolve" by binning
//! samples into fixed virtual-time windows keyed by
//! `(metric, function)`. Each bin keeps count / sum / min / max plus
//! a [`Histogram`] so the figure layer can plot means *and* tails
//! (e.g. per-function cold-start p99 over a diurnal replay).
//!
//! Everything here is plain owned data over `BTreeMap`s: registries
//! are `Send`, cross thread boundaries by value, and merge
//! deterministically — the cluster driver merges per-host registries
//! in ascending host-index order at each epoch barrier, so the JSON
//! snapshot is byte-identical at any worker-thread count.
//!
//! # Examples
//!
//! ```
//! use snapbpf_sim::{SeriesRegistry, SimTime, SERIES_WINDOW_NS};
//!
//! let mut s = SeriesRegistry::new();
//! s.record("cold_ns", "image", SimTime::from_nanos(10), 250.0);
//! s.record("cold_ns", "image", SimTime::from_nanos(SERIES_WINDOW_NS + 1), 750.0);
//! let bins = s.get("cold_ns", "image").unwrap();
//! assert_eq!(bins.len(), 2);
//! assert_eq!(bins[&0].count(), 1);
//! assert_eq!(bins[&1].sum(), 750.0);
//! ```

use std::collections::BTreeMap;

use crate::stats::{Histogram, Quantile};
use crate::time::SimTime;
use snapbpf_json::Json;

/// Default series window: one second of virtual time per bin. Wide
/// enough that a diurnal Azure replay stays a few thousand points
/// per series, narrow enough to resolve the bursts the paper's
/// figures discuss.
pub const SERIES_WINDOW_NS: u64 = 1_000_000_000;

/// One time-window's worth of samples for a single
/// `(metric, function)` series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesBin {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    hist: Histogram,
}

impl Default for SeriesBin {
    fn default() -> Self {
        SeriesBin {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            hist: Histogram::new(),
        }
    }
}

impl SeriesBin {
    fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        // The histogram backs quantile queries; clamp into u64 range
        // (series values are latencies in ns or small ratios).
        self.hist.record(value.max(0.0) as u64);
    }

    fn merge(&mut self, other: &SeriesBin) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.hist.merge(&other.hist);
    }

    /// Samples recorded in this bin.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples in this bin.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean of samples in this bin (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate value at quantile `q` (`None` when empty), via the
    /// bin's log-bucketed [`Histogram`].
    pub fn quantile(&self, q: Quantile) -> Option<u64> {
        self.hist.quantile(q)
    }
}

/// Windowed time series keyed by `(metric, function)`.
///
/// Merging follows the determinism contract in the module docs:
/// merge in host-index order and the result is a pure function of
/// the schedule, independent of thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesRegistry {
    window_ns: u64,
    series: BTreeMap<(String, String), BTreeMap<u64, SeriesBin>>,
}

impl Default for SeriesRegistry {
    fn default() -> Self {
        SeriesRegistry::new()
    }
}

impl SeriesRegistry {
    /// Creates an empty registry with the default
    /// [`SERIES_WINDOW_NS`] window.
    pub fn new() -> Self {
        SeriesRegistry::with_window_ns(SERIES_WINDOW_NS)
    }

    /// Creates an empty registry with an explicit window width.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero.
    pub fn with_window_ns(window_ns: u64) -> Self {
        assert!(window_ns > 0, "series window must be positive");
        SeriesRegistry {
            window_ns,
            series: BTreeMap::new(),
        }
    }

    /// Width of one bin, in virtual nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Number of distinct `(metric, function)` series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Records one sample at virtual time `at`.
    pub fn record(&mut self, metric: &str, function: &str, at: SimTime, value: f64) {
        let bin = at.as_nanos() / self.window_ns;
        self.series
            .entry((metric.to_string(), function.to_string()))
            .or_default()
            .entry(bin)
            .or_default()
            .record(value);
    }

    /// The bins of one series, keyed by bin index (start time =
    /// `bin * window_ns`), if any samples exist for it.
    pub fn get(&self, metric: &str, function: &str) -> Option<&BTreeMap<u64, SeriesBin>> {
        self.series.get(&(metric.to_string(), function.to_string()))
    }

    /// Iterates over series in `(metric, function)` order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, &BTreeMap<u64, SeriesBin>)> + '_ {
        self.series
            .iter()
            .map(|((m, f), bins)| (m.as_str(), f.as_str(), bins))
    }

    /// Merges another registry into this one, as if every one of its
    /// samples had been recorded here.
    ///
    /// When windows differ, the other registry's bins land in the
    /// bin covering their start time under *this* registry's window.
    pub fn merge(&mut self, other: &SeriesRegistry) {
        for ((m, f), bins) in &other.series {
            let target = self.series.entry((m.clone(), f.clone())).or_default();
            for (&bin, src) in bins {
                let bin = if other.window_ns == self.window_ns {
                    bin
                } else {
                    bin.saturating_mul(other.window_ns) / self.window_ns
                };
                target.entry(bin).or_default().merge(src);
            }
        }
    }

    /// Deterministic JSON snapshot: window width plus an array of
    /// series (in key order), each with its bins (in time order).
    pub fn to_json(&self) -> Json {
        let series = self.series.iter().map(|((m, f), bins)| {
            let bins = bins.iter().map(|(&bin, b)| {
                let mut fields = vec![
                    ("bin".into(), Json::from(bin)),
                    ("start_ns".into(), Json::from(bin * self.window_ns)),
                    ("count".into(), Json::from(b.count)),
                    ("sum".into(), Json::Number(b.sum)),
                    ("mean".into(), Json::Number(b.mean())),
                    ("min".into(), Json::Number(b.min().unwrap_or(0.0))),
                    ("max".into(), Json::Number(b.max().unwrap_or(0.0))),
                ];
                for q in Quantile::ALL {
                    fields.push((q.label().into(), Json::from(b.quantile(q).unwrap_or(0))));
                }
                Json::Object(fields)
            });
            Json::Object(vec![
                ("metric".into(), Json::from(m.as_str())),
                ("function".into(), Json::from(f.as_str())),
                ("bins".into(), Json::array(bins)),
            ])
        });
        Json::Object(vec![
            ("window_ns".into(), Json::from(self.window_ns)),
            ("series".into(), Json::array(series)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn samples_land_in_their_window() {
        let mut s = SeriesRegistry::with_window_ns(100);
        s.record("lat", "f", t(0), 10.0);
        s.record("lat", "f", t(99), 30.0);
        s.record("lat", "f", t(100), 7.0);
        let bins = s.get("lat", "f").unwrap();
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[&0].count(), 2);
        assert_eq!(bins[&0].sum(), 40.0);
        assert_eq!(bins[&0].mean(), 20.0);
        assert_eq!(bins[&0].min(), Some(10.0));
        assert_eq!(bins[&0].max(), Some(30.0));
        assert_eq!(bins[&1].count(), 1);
        assert!(s.get("lat", "other").is_none());
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn merge_matches_combined_recording_regardless_of_order() {
        let mut all = SeriesRegistry::new();
        let mut a = SeriesRegistry::new();
        let mut b = SeriesRegistry::new();
        for i in 0..50u64 {
            let metric = if i % 3 == 0 { "hit" } else { "cold_ns" };
            let func = if i % 2 == 0 { "image" } else { "json" };
            let at = t(i * 400_000_000);
            let v = (i * 37 % 11) as f64;
            all.record(metric, func, at, v);
            if i % 2 == 0 {
                a.record(metric, func, at, v);
            } else {
                b.record(metric, func, at, v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, all);
        assert_eq!(ba.to_json().compact(), all.to_json().compact());
    }

    #[test]
    fn mismatched_windows_rebin_by_start_time() {
        let mut fine = SeriesRegistry::with_window_ns(10);
        fine.record("m", "f", t(25), 1.0);
        let mut coarse = SeriesRegistry::with_window_ns(100);
        coarse.merge(&fine);
        let bins = coarse.get("m", "f").unwrap();
        assert_eq!(bins[&0].count(), 1);
    }

    #[test]
    fn json_snapshot_is_deterministic_and_complete() {
        let mut s = SeriesRegistry::new();
        for i in 0..20u64 {
            s.record("cold_ns", "video", t(i * 250_000_000), 1000.0 + i as f64);
        }
        s.record("hit", "video", t(0), 1.0);
        let json = s.to_json();
        assert_eq!(
            json.get("window_ns").unwrap().as_u64(),
            Some(SERIES_WINDOW_NS)
        );
        let series = json.get("series").unwrap().as_array().unwrap();
        assert_eq!(series.len(), 2);
        // BTreeMap order: ("cold_ns", "video") before ("hit", "video").
        assert_eq!(series[0].get("metric").unwrap().as_str(), Some("cold_ns"));
        let bins = series[0].get("bins").unwrap().as_array().unwrap();
        assert_eq!(bins.len(), 5);
        assert_eq!(
            bins[1].get("start_ns").unwrap().as_u64(),
            Some(SERIES_WINDOW_NS)
        );
        assert_eq!(bins[0].get("count").unwrap().as_u64(), Some(4));
        assert!(bins[0].get("p99").is_some());
        assert_eq!(s.to_json().compact(), json.compact());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        SeriesRegistry::with_window_ns(0);
    }
}
