//! Statistics collection: online summaries, percentile histograms,
//! and counters used by every layer of the simulation.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimDuration;

/// The standard quantile points reported across the workspace
/// (p50 / p90 / p99 / p99.9).
///
/// Both [`Summary::quantile`] and [`Histogram::quantile`] accept
/// these, so every layer shares one tail-latency vocabulary.
///
/// # Examples
///
/// ```
/// use snapbpf_sim::Quantile;
///
/// assert_eq!(Quantile::P999.percent(), 99.9);
/// assert_eq!(Quantile::P90.label(), "p90");
/// assert_eq!(Quantile::ALL.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quantile {
    /// The median.
    P50,
    /// The 90th percentile.
    P90,
    /// The 99th percentile.
    P99,
    /// The 99.9th percentile.
    P999,
}

impl Quantile {
    /// Every quantile point, in ascending order.
    pub const ALL: [Quantile; 4] = [Quantile::P50, Quantile::P90, Quantile::P99, Quantile::P999];

    /// Percentile rank in `0..=100` (`P999` → `99.9`).
    pub const fn percent(self) -> f64 {
        match self {
            Quantile::P50 => 50.0,
            Quantile::P90 => 90.0,
            Quantile::P99 => 99.0,
            Quantile::P999 => 99.9,
        }
    }

    /// Short display label (`"p50"` … `"p99.9"`).
    pub const fn label(self) -> &'static str {
        match self {
            Quantile::P50 => "p50",
            Quantile::P90 => "p90",
            Quantile::P99 => "p99",
            Quantile::P999 => "p99.9",
        }
    }

    /// Standard-normal z-score of this quantile, used by
    /// [`Summary::quantile`]'s normal approximation.
    const fn z(self) -> f64 {
        match self {
            Quantile::P50 => 0.0,
            Quantile::P90 => 1.281_551_565_544_600_4,
            Quantile::P99 => 2.326_347_874_040_840_8,
            Quantile::P999 => 3.090_232_306_167_813,
        }
    }
}

/// Online summary of a stream of `f64` samples (count, mean, min,
/// max, variance) using Welford's algorithm.
///
/// # Examples
///
/// ```
/// use snapbpf_sim::Summary;
///
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(3.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
    sum: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Adds one sample.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Adds a duration sample, in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos() as f64);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Approximate value at quantile `q` under a normal model:
    /// `mean + z·σ`, clamped to the observed `[min, max]` range so a
    /// heavy tail can never push the estimate past a real sample.
    /// `None` when empty.
    ///
    /// A Welford summary keeps no per-sample state, so this is an
    /// *approximation* — exact for symmetric distributions, and
    /// bounded by the observed extremes otherwise. Use [`Histogram`]
    /// where accurate tails matter.
    pub fn quantile(&self, q: Quantile) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let est = self.mean() + q.z() * self.stddev();
        let (min, max) = (self.min?, self.max?);
        Some(est.clamp(min, max))
    }

    /// Merges another summary into this one, as if all of its samples
    /// had been recorded here.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.sum += other.sum;
        self.count = total;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} min={:.2} max={:.2} sd={:.2}",
            self.count,
            self.mean(),
            self.min.unwrap_or(0.0),
            self.max.unwrap_or(0.0),
            self.stddev()
        )
    }
}

/// A log-bucketed histogram for latency-like values.
///
/// Buckets are powers of two of nanoseconds with 4 sub-buckets each,
/// giving ~19% worst-case relative error on percentile queries — more
/// than enough for "who wins and by what factor" comparisons.
///
/// # Examples
///
/// ```
/// use snapbpf_sim::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.percentile(50.0).unwrap();
/// assert!((400..=600).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: BTreeMap<u64, u64>,
    count: u64,
    total: u128,
    max: u64,
    min: u64,
}

const SUB_BUCKET_BITS: u32 = 2; // 4 sub-buckets per power of two

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: BTreeMap::new(),
            count: 0,
            total: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn bucket_key(value: u64) -> u64 {
        if value < (1 << SUB_BUCKET_BITS) {
            return value;
        }
        let exp = 63 - value.leading_zeros();
        let shift = exp - SUB_BUCKET_BITS;
        // Key encodes (exponent, top sub-bucket bits): monotone in value.
        (value >> shift) + ((shift as u64) << (SUB_BUCKET_BITS + 1))
    }

    fn bucket_representative(value: u64) -> u64 {
        // Midpoint of the bucket containing `value`.
        if value < (1 << SUB_BUCKET_BITS) {
            return value;
        }
        let exp = 63 - value.leading_zeros();
        let shift = exp - SUB_BUCKET_BITS;
        let base = (value >> shift) << shift;
        base + (1u64 << shift) / 2
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        *self.buckets.entry(Self::bucket_key(value)).or_insert(0) += 1;
        self.count += 1;
        self.total += value as u128;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Records a duration, in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Exact maximum recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact minimum recorded value, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Approximate value at percentile `p` (0–100), or `None` when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=100.0`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        let mut result = self.min;
        for (&key, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                // Reconstruct a representative value for this key by
                // scanning: key encoding is monotone so we invert it
                // approximately via the recorded min/max clamp below.
                result = Self::invert_key(key);
                break;
            }
        }
        Some(result.clamp(self.min, self.max))
    }

    fn invert_key(key: u64) -> u64 {
        if key < (1 << SUB_BUCKET_BITS) {
            return key;
        }
        let shift = key >> (SUB_BUCKET_BITS + 1);
        let mantissa = key & ((1 << (SUB_BUCKET_BITS + 1)) - 1);
        let base = mantissa << shift;
        Self::bucket_representative(base)
    }

    /// Approximate value at quantile `q`, or `None` when empty.
    /// Shares [`Histogram::percentile`]'s ~19% worst-case relative
    /// error.
    pub fn quantile(&self, q: Quantile) -> Option<u64> {
        self.percentile(q.percent())
    }

    /// The `p`-th percentile of a *nanosecond-valued* histogram,
    /// converted to seconds (0.0 when empty) — the common shape the
    /// figure generators report.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=100.0`.
    pub fn percentile_secs(&self, p: f64) -> f64 {
        self.percentile(p).map(|ns| ns as f64 / 1e9).unwrap_or(0.0)
    }

    /// Mean of a *nanosecond-valued* histogram, in seconds (0.0 when
    /// empty).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.mean() / 1e9
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (&k, &n) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += n;
        }
        self.count += other.count;
        self.total += other.total;
        if other.count > 0 {
            self.max = self.max.max(other.max);
            self.min = self.min.min(other.min);
        }
    }
}

/// A named bag of monotonically increasing counters.
///
/// Components report events ("pages_faulted", "bytes_read") into a
/// `Counters` value that experiments later inspect.
///
/// # Examples
///
/// ```
/// use snapbpf_sim::Counters;
///
/// let mut c = Counters::new();
/// c.add("page_faults", 3);
/// c.incr("page_faults");
/// assert_eq!(c.get("page_faults"), 4);
/// assert_eq!(c.get("unknown"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    values: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Creates an empty counter bag.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `n` to the named counter, creating it at zero first.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.values.entry(name).or_insert(0) += n;
    }

    /// Adds one to the named counter.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of the named counter (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.values.iter().map(|(&k, &v)| (k, v))
    }

    /// Merges another counter bag into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Resets every counter to zero (keeps names).
    pub fn reset(&mut self) {
        for v in self.values.values_mut() {
            *v = 0;
        }
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.values.is_empty() {
            return write!(f, "(no counters)");
        }
        for (i, (k, v)) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{k}={v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn summary_empty_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn summary_merge_equals_combined_stream() {
        let mut all = Summary::new();
        let mut a = Summary::new();
        let mut b = Summary::new();
        for i in 0..100 {
            let v = (i * 37 % 11) as f64;
            all.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.record(5.0);
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut empty = Summary::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn histogram_percentiles_are_monotone() {
        let mut h = Histogram::new();
        let mut rng = crate::rng::SplitMix64::new(42);
        for _ in 0..10_000 {
            h.record(rng.next_range(1, 1_000_000));
        }
        let p50 = h.percentile(50.0).unwrap();
        let p90 = h.percentile(90.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        assert!(p50 <= p90 && p90 <= p99);
        assert!(h.min().unwrap() <= p50);
        assert!(p99 <= h.max().unwrap());
    }

    #[test]
    fn histogram_relative_error_is_bounded() {
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(100_000);
        }
        let p50 = h.percentile(50.0).unwrap() as f64;
        let err = (p50 - 100_000.0).abs() / 100_000.0;
        assert!(err < 0.20, "relative error {err} too large");
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.percentile(1.0), Some(0));
        assert_eq!(h.percentile(100.0), Some(3));
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_merge_sums_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(1_000_000));
    }

    #[test]
    fn histogram_quantiles_match_uniform_distribution() {
        // Uniform on [1, 1_000_000]: the q-th quantile is q * max.
        let mut h = Histogram::new();
        let mut rng = crate::rng::SplitMix64::new(7);
        for _ in 0..50_000 {
            h.record(rng.next_range(1, 1_000_000));
        }
        for q in Quantile::ALL {
            let expect = q.percent() / 100.0 * 1_000_000.0;
            let got = h.quantile(q).unwrap() as f64;
            // Bucketing error (~19%) plus sampling noise.
            let err = (got - expect).abs() / expect;
            assert!(err < 0.25, "{}: got {got}, expected {expect}", q.label());
        }
        assert_eq!(h.quantile(Quantile::P50), h.percentile(50.0));
        assert_eq!(h.quantile(Quantile::P999), h.percentile(99.9));
    }

    #[test]
    fn histogram_secs_helpers() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile_secs(99.0), 0.0);
        assert_eq!(h.mean_secs(), 0.0);
        h.record_duration(SimDuration::from_secs(2));
        assert!((h.percentile_secs(50.0) - 2.0).abs() < 0.5);
        assert!((h.mean_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_quantiles_match_normal_distribution() {
        let mut s = Summary::new();
        let mut rng = crate::rng::SplitMix64::new(99);
        for _ in 0..50_000 {
            s.record(rng.next_gaussian(100.0, 15.0));
        }
        let expect = [
            (Quantile::P50, 100.0),
            (Quantile::P90, 100.0 + 15.0 * 1.2816),
            (Quantile::P99, 100.0 + 15.0 * 2.3263),
        ];
        for (q, want) in expect {
            let got = s.quantile(q).unwrap();
            assert!(
                (got - want).abs() / want < 0.02,
                "{}: got {got}, expected {want}",
                q.label()
            );
        }
    }

    #[test]
    fn summary_quantiles_clamp_and_empty() {
        assert_eq!(Summary::new().quantile(Quantile::P99), None);
        let mut s = Summary::new();
        for _ in 0..10 {
            s.record(5.0);
        }
        // Degenerate distribution: every quantile is the value.
        for q in Quantile::ALL {
            assert_eq!(s.quantile(q), Some(5.0));
        }
        // A single outlier cannot be exceeded by the estimate.
        s.record(50.0);
        assert!(s.quantile(Quantile::P999).unwrap() <= 50.0);
    }

    #[test]
    fn counters_roundtrip() {
        let mut c = Counters::new();
        c.add("io", 10);
        c.incr("io");
        c.incr("faults");
        assert_eq!(c.get("io"), 11);
        assert_eq!(c.get("faults"), 1);
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs, vec![("faults", 1), ("io", 11)]);
        let mut d = Counters::new();
        d.add("io", 1);
        d.merge(&c);
        assert_eq!(d.get("io"), 12);
        d.reset();
        assert_eq!(d.get("io"), 0);
    }

    #[test]
    fn display_formats() {
        let mut c = Counters::new();
        assert_eq!(c.to_string(), "(no counters)");
        c.add("a", 1);
        c.add("b", 2);
        assert_eq!(c.to_string(), "a=1 b=2");
        let mut s = Summary::new();
        s.record(1.0);
        assert!(s.to_string().contains("n=1"));
    }
}
