//! Deterministic arrival processes.
//!
//! Serverless fleet experiments need request arrivals whose shape is
//! controllable (smooth vs. bursty vs. trace-like) but whose exact
//! sequence is a pure function of the seed, so two runs of the same
//! configuration see bit-identical arrival times.
//!
//! Three processes cover the fleet experiments:
//!
//! * [`ArrivalProcess::Poisson`] — memoryless arrivals at a fixed
//!   rate, the classic open-loop load model.
//! * [`ArrivalProcess::Mmpp`] — a two-state Markov-modulated Poisson
//!   process alternating between a quiet and a burst rate; the
//!   standard way to model the bursty invocation trains production
//!   FaaS traces show.
//! * [`ArrivalProcess::Periodic`] — fixed-period arrivals with
//!   bounded uniform jitter, the dominant pattern of the Azure
//!   Functions trace (most functions are timers/cron).

use crate::rng::SplitMix64;
use crate::time::{SimDuration, SimTime};

/// A stochastic arrival process specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential interarrivals at `rate_rps`
    /// requests per (virtual) second.
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_rps: f64,
    },
    /// Two-state Markov-modulated Poisson process: the process dwells
    /// in a quiet state (rate `low_rps`) and a burst state (rate
    /// `high_rps`), with exponentially distributed dwell times of
    /// mean `mean_dwell` in each state.
    Mmpp {
        /// Arrival rate in the quiet state.
        low_rps: f64,
        /// Arrival rate in the burst state.
        high_rps: f64,
        /// Mean dwell time in each state.
        mean_dwell: SimDuration,
    },
    /// Timer-driven arrivals: one per `period`, each shifted by a
    /// uniform jitter in `[0, jitter_frac * period)`.
    Periodic {
        /// Base interarrival period.
        period: SimDuration,
        /// Jitter as a fraction of the period, in `[0, 1]`.
        jitter_frac: f64,
    },
}

impl ArrivalProcess {
    /// The long-run mean arrival rate in requests per second.
    pub fn mean_rate_rps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_rps } => rate_rps,
            // Equal mean dwell in both states: the average of the
            // two rates.
            ArrivalProcess::Mmpp {
                low_rps, high_rps, ..
            } => (low_rps + high_rps) / 2.0,
            ArrivalProcess::Periodic { period, .. } => 1.0 / period.as_secs_f64(),
        }
    }

    /// Starts generating this process from `seed`.
    pub fn generator(&self, seed: u64) -> ArrivalGen {
        ArrivalGen {
            process: *self,
            rng: SplitMix64::new(seed),
            next_at: SimTime::ZERO,
            burst: false,
            state_left: SimDuration::ZERO,
            tick: 0,
        }
    }
}

/// Draws an exponential variate with the given mean (in seconds).
fn exp_secs(rng: &mut SplitMix64, mean_secs: f64) -> f64 {
    // next_f64() is in [0, 1); flip to (0, 1] so ln() is finite.
    let u = 1.0 - rng.next_f64();
    -u.ln() * mean_secs
}

/// A deterministic arrival-time generator (see [`ArrivalProcess`]).
///
/// Yields strictly ordered `SimTime`s starting after time zero. The
/// sequence depends only on the process parameters and the seed.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: SplitMix64,
    next_at: SimTime,
    /// MMPP: currently in the burst state?
    burst: bool,
    /// MMPP: time left in the current state.
    state_left: SimDuration,
    /// Periodic: index of the next tick.
    tick: u64,
}

impl ArrivalGen {
    /// The next arrival time.
    pub fn next_arrival(&mut self) -> SimTime {
        match self.process {
            ArrivalProcess::Poisson { rate_rps } => {
                assert!(rate_rps > 0.0, "Poisson rate must be positive");
                let gap = SimDuration::from_secs_f64(exp_secs(&mut self.rng, 1.0 / rate_rps));
                self.next_at += gap.max(SimDuration::from_nanos(1));
            }
            ArrivalProcess::Mmpp {
                low_rps,
                high_rps,
                mean_dwell,
            } => {
                assert!(
                    low_rps > 0.0 && high_rps > 0.0,
                    "MMPP rates must be positive"
                );
                // Consume state dwell time until an arrival fits in
                // the current state.
                loop {
                    if self.state_left.is_zero() {
                        self.burst = !self.burst;
                        self.state_left = SimDuration::from_secs_f64(exp_secs(
                            &mut self.rng,
                            mean_dwell.as_secs_f64(),
                        ))
                        .max(SimDuration::from_nanos(1));
                    }
                    let rate = if self.burst { high_rps } else { low_rps };
                    let gap = SimDuration::from_secs_f64(exp_secs(&mut self.rng, 1.0 / rate))
                        .max(SimDuration::from_nanos(1));
                    if gap <= self.state_left {
                        self.state_left = self.state_left.saturating_sub(gap);
                        self.next_at += gap;
                        break;
                    }
                    // The residual exponential restarts in the next
                    // state (memorylessness makes this exact).
                    self.next_at += self.state_left;
                    self.state_left = SimDuration::ZERO;
                }
            }
            ArrivalProcess::Periodic {
                period,
                jitter_frac,
            } => {
                assert!(!period.is_zero(), "period must be positive");
                assert!(
                    (0.0..=1.0).contains(&jitter_frac),
                    "jitter fraction must be in [0, 1]"
                );
                self.tick += 1;
                let base = SimDuration::from_nanos(period.as_nanos() * self.tick);
                let jitter = period.mul_f64(jitter_frac * self.rng.next_f64());
                self.next_at = SimTime::ZERO + base + jitter;
            }
        }
        self.next_at
    }

    /// All arrivals strictly before `horizon`, in order.
    pub fn take_until(&mut self, horizon: SimTime) -> Vec<SimTime> {
        let mut out = Vec::new();
        loop {
            let t = self.next_arrival();
            if t >= horizon {
                return out;
            }
            out.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: SimDuration = SimDuration::from_secs(1);

    #[test]
    fn poisson_hits_its_mean_rate() {
        let p = ArrivalProcess::Poisson { rate_rps: 100.0 };
        let arrivals = p.generator(7).take_until(SimTime::ZERO + SEC * 50);
        let rate = arrivals.len() as f64 / 50.0;
        assert!((rate - 100.0).abs() < 5.0, "measured {rate} rps");
    }

    #[test]
    fn generators_are_deterministic() {
        for p in [
            ArrivalProcess::Poisson { rate_rps: 30.0 },
            ArrivalProcess::Mmpp {
                low_rps: 5.0,
                high_rps: 80.0,
                mean_dwell: SimDuration::from_millis(500),
            },
            ArrivalProcess::Periodic {
                period: SimDuration::from_millis(40),
                jitter_frac: 0.3,
            },
        ] {
            let a = p.generator(42).take_until(SimTime::ZERO + SEC * 10);
            let b = p.generator(42).take_until(SimTime::ZERO + SEC * 10);
            assert_eq!(a, b);
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "ordered arrivals");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = ArrivalProcess::Poisson { rate_rps: 50.0 };
        let a = p.generator(1).take_until(SimTime::ZERO + SEC * 2);
        let b = p.generator(2).take_until(SimTime::ZERO + SEC * 2);
        assert_ne!(a, b);
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Count arrivals per 100 ms window; the MMPP's window counts
        // must have a higher coefficient of variation than a Poisson
        // process of the same mean rate.
        let window = SimDuration::from_millis(100);
        let horizon = SimTime::ZERO + SEC * 60;
        let count_cv = |arrivals: &[SimTime]| {
            let n_windows = 600usize;
            let mut counts = vec![0u32; n_windows];
            for &t in arrivals {
                let w = (t.as_nanos() / window.as_nanos()) as usize;
                counts[w.min(n_windows - 1)] += 1;
            }
            let mean = counts.iter().map(|&c| c as f64).sum::<f64>() / n_windows as f64;
            let var = counts
                .iter()
                .map(|&c| (c as f64 - mean).powi(2))
                .sum::<f64>()
                / n_windows as f64;
            var.sqrt() / mean
        };
        let mmpp = ArrivalProcess::Mmpp {
            low_rps: 4.0,
            high_rps: 76.0,
            mean_dwell: SimDuration::from_millis(800),
        };
        let poisson = ArrivalProcess::Poisson {
            rate_rps: mmpp.mean_rate_rps(),
        };
        let cv_mmpp = count_cv(&mmpp.generator(3).take_until(horizon));
        let cv_poisson = count_cv(&poisson.generator(3).take_until(horizon));
        assert!(
            cv_mmpp > 1.5 * cv_poisson,
            "MMPP CV {cv_mmpp:.2} vs Poisson CV {cv_poisson:.2}"
        );
    }

    #[test]
    fn periodic_respects_period_and_jitter() {
        let period = SimDuration::from_millis(50);
        let p = ArrivalProcess::Periodic {
            period,
            jitter_frac: 0.2,
        };
        let arrivals = p.generator(9).take_until(SimTime::ZERO + SEC * 5);
        // ~100 ticks in 5 s.
        assert!((90..=101).contains(&arrivals.len()), "{}", arrivals.len());
        for (i, &t) in arrivals.iter().enumerate() {
            let tick = (i + 1) as u64;
            let base = period.as_nanos() * tick;
            assert!(t.as_nanos() >= base, "tick {tick} before its base time");
            assert!(
                t.as_nanos() < base + period.mul_f64(0.2).as_nanos() + 1,
                "tick {tick} past its jitter window"
            );
        }
    }

    #[test]
    fn mean_rates_are_consistent() {
        assert_eq!(
            ArrivalProcess::Poisson { rate_rps: 8.0 }.mean_rate_rps(),
            8.0
        );
        let mmpp = ArrivalProcess::Mmpp {
            low_rps: 2.0,
            high_rps: 10.0,
            mean_dwell: SEC,
        };
        assert_eq!(mmpp.mean_rate_rps(), 6.0);
        let per = ArrivalProcess::Periodic {
            period: SimDuration::from_millis(250),
            jitter_frac: 0.0,
        };
        assert!((per.mean_rate_rps() - 4.0).abs() < 1e-12);
    }
}
