//! Deterministic arrival processes.
//!
//! Serverless fleet experiments need request arrivals whose shape is
//! controllable (smooth vs. bursty vs. trace-like) but whose exact
//! sequence is a pure function of the seed, so two runs of the same
//! configuration see bit-identical arrival times.
//!
//! Three processes cover the fleet experiments:
//!
//! * [`ArrivalProcess::Poisson`] — memoryless arrivals at a fixed
//!   rate, the classic open-loop load model.
//! * [`ArrivalProcess::Mmpp`] — a two-state Markov-modulated Poisson
//!   process alternating between a quiet and a burst rate; the
//!   standard way to model the bursty invocation trains production
//!   FaaS traces show.
//! * [`ArrivalProcess::Periodic`] — fixed-period arrivals with
//!   bounded uniform jitter, the dominant pattern of the Azure
//!   Functions trace (most functions are timers/cron).
//!
//! Beyond the synthetic processes, [`TraceArrival`] replays an
//! explicit recorded schedule — a sorted list of (offset, function)
//! points — with loop, time-scale, and rate-scale controls. Both
//! kinds implement [`ArrivalSchedule`], and [`ArrivalSource`] is the
//! closed enum run configurations store, so experiment code accepts
//! recorded or trace-derived workloads anywhere synthetic ones work.

use std::sync::Arc;

use crate::rng::SplitMix64;
use crate::time::{SimDuration, SimTime};

/// A stochastic arrival process specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential interarrivals at `rate_rps`
    /// requests per (virtual) second.
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_rps: f64,
    },
    /// Two-state Markov-modulated Poisson process: the process dwells
    /// in a quiet state (rate `low_rps`) and a burst state (rate
    /// `high_rps`), with exponentially distributed dwell times of
    /// mean `mean_dwell` in each state.
    Mmpp {
        /// Arrival rate in the quiet state.
        low_rps: f64,
        /// Arrival rate in the burst state.
        high_rps: f64,
        /// Mean dwell time in each state.
        mean_dwell: SimDuration,
    },
    /// Timer-driven arrivals: one per `period`, each shifted by a
    /// uniform jitter in `[0, jitter_frac * period)`.
    Periodic {
        /// Base interarrival period.
        period: SimDuration,
        /// Jitter as a fraction of the period, in `[0, 1]`.
        jitter_frac: f64,
    },
}

impl ArrivalProcess {
    /// The long-run mean arrival rate in requests per second.
    pub fn mean_rate_rps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_rps } => rate_rps,
            // Equal mean dwell in both states: the average of the
            // two rates.
            ArrivalProcess::Mmpp {
                low_rps, high_rps, ..
            } => (low_rps + high_rps) / 2.0,
            ArrivalProcess::Periodic { period, .. } => 1.0 / period.as_secs_f64(),
        }
    }

    /// Starts generating this process from `seed`.
    pub fn generator(&self, seed: u64) -> ArrivalGen {
        ArrivalGen {
            process: *self,
            rng: SplitMix64::new(seed),
            next_at: SimTime::ZERO,
            burst: false,
            state_left: SimDuration::ZERO,
            tick: 0,
        }
    }
}

/// Draws an exponential variate with the given mean (in seconds).
fn exp_secs(rng: &mut SplitMix64, mean_secs: f64) -> f64 {
    // next_f64() is in [0, 1); flip to (0, 1] so ln() is finite.
    let u = 1.0 - rng.next_f64();
    -u.ln() * mean_secs
}

/// A deterministic arrival-time generator (see [`ArrivalProcess`]).
///
/// Yields strictly ordered `SimTime`s starting after time zero. The
/// sequence depends only on the process parameters and the seed.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: SplitMix64,
    next_at: SimTime,
    /// MMPP: currently in the burst state?
    burst: bool,
    /// MMPP: time left in the current state.
    state_left: SimDuration,
    /// Periodic: index of the next tick.
    tick: u64,
}

impl ArrivalGen {
    /// The next arrival time.
    pub fn next_arrival(&mut self) -> SimTime {
        match self.process {
            ArrivalProcess::Poisson { rate_rps } => {
                assert!(rate_rps > 0.0, "Poisson rate must be positive");
                let gap = SimDuration::from_secs_f64(exp_secs(&mut self.rng, 1.0 / rate_rps));
                self.next_at += gap.max(SimDuration::from_nanos(1));
            }
            ArrivalProcess::Mmpp {
                low_rps,
                high_rps,
                mean_dwell,
            } => {
                assert!(
                    low_rps > 0.0 && high_rps > 0.0,
                    "MMPP rates must be positive"
                );
                // Consume state dwell time until an arrival fits in
                // the current state.
                loop {
                    if self.state_left.is_zero() {
                        self.burst = !self.burst;
                        self.state_left = SimDuration::from_secs_f64(exp_secs(
                            &mut self.rng,
                            mean_dwell.as_secs_f64(),
                        ))
                        .max(SimDuration::from_nanos(1));
                    }
                    let rate = if self.burst { high_rps } else { low_rps };
                    let gap = SimDuration::from_secs_f64(exp_secs(&mut self.rng, 1.0 / rate))
                        .max(SimDuration::from_nanos(1));
                    if gap <= self.state_left {
                        self.state_left = self.state_left.saturating_sub(gap);
                        self.next_at += gap;
                        break;
                    }
                    // The residual exponential restarts in the next
                    // state (memorylessness makes this exact).
                    self.next_at += self.state_left;
                    self.state_left = SimDuration::ZERO;
                }
            }
            ArrivalProcess::Periodic {
                period,
                jitter_frac,
            } => {
                assert!(!period.is_zero(), "period must be positive");
                assert!(
                    (0.0..=1.0).contains(&jitter_frac),
                    "jitter fraction must be in [0, 1]"
                );
                self.tick += 1;
                let base = SimDuration::from_nanos(period.as_nanos() * self.tick);
                let jitter = period.mul_f64(jitter_frac * self.rng.next_f64());
                self.next_at = SimTime::ZERO + base + jitter;
            }
        }
        self.next_at
    }

    /// All arrivals strictly before `horizon`, in order.
    pub fn take_until(&mut self, horizon: SimTime) -> Vec<SimTime> {
        let mut out = Vec::new();
        loop {
            let t = self.next_arrival();
            if t >= horizon {
                return out;
            }
            out.push(t);
        }
    }
}

/// One scheduled request: an absolute arrival time plus, for
/// replayed traces, the function index it targets. Synthetic
/// processes leave `func` unset and let the run's popularity mix
/// pick a function per arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Arrival {
    /// Absolute (virtual) arrival time.
    pub at: SimTime,
    /// Function index, if the schedule pins one.
    pub func: Option<u32>,
}

/// Anything that can produce a deterministic arrival schedule for a
/// run: the synthetic [`ArrivalProcess`]es, a recorded
/// [`TraceArrival`], or the [`ArrivalSource`] enum wrapping either.
///
/// `draw` is a pure function of `(self, seed, horizon)`; two calls
/// with identical arguments return identical schedules.
pub trait ArrivalSchedule {
    /// Long-run mean arrival rate in requests per (virtual) second.
    fn mean_rate_rps(&self) -> f64;

    /// All arrivals strictly before `horizon` (measured from time
    /// zero), in non-decreasing time order.
    fn draw(&self, seed: u64, horizon: SimDuration) -> Vec<Arrival>;
}

impl ArrivalSchedule for ArrivalProcess {
    fn mean_rate_rps(&self) -> f64 {
        ArrivalProcess::mean_rate_rps(self)
    }

    fn draw(&self, seed: u64, horizon: SimDuration) -> Vec<Arrival> {
        self.generator(seed)
            .take_until(SimTime::ZERO + horizon)
            .into_iter()
            .map(|at| Arrival { at, func: None })
            .collect()
    }
}

/// One point of a recorded schedule: an offset from the start of the
/// trace plus the function index invoked there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TracePoint {
    /// Offset from the start of the trace.
    pub offset: SimDuration,
    /// Function index invoked at this point.
    pub func: u32,
}

/// How many passes a [`TraceArrival`] replay makes over its points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopMode {
    /// Play the trace once.
    Once,
    /// Play the trace back to back the given number of times
    /// (must be at least 1; `Repeat(1)` equals `Once`).
    Repeat(u32),
}

impl LoopMode {
    /// Number of passes this mode makes.
    pub fn passes(&self) -> u32 {
        match *self {
            LoopMode::Once => 1,
            LoopMode::Repeat(n) => n,
        }
    }
}

/// A replayable recorded arrival schedule.
///
/// Holds a sorted list of [`TracePoint`]s plus the nominal span of
/// one pass, and replays them deterministically with three controls:
///
/// * **loop mode** — play the trace once or `N` times back to back,
/// * **time scale** — stretch (`> 1`) or compress (`< 1`) every
///   offset, e.g. to squeeze a day-long production trace into a
///   seconds-long virtual run while preserving its shape,
/// * **rate scale** — replicate (`> 1`) or thin (`< 1`) each point.
///   Fractional factors are resolved by a seeded coin flip per
///   point, so the scaled schedule is still a pure function of the
///   seed. At exactly `1.0` no randomness is consumed and the replay
///   reproduces the recorded sequence verbatim.
///
/// The points are behind an [`Arc`], so cloning a `TraceArrival`
/// (run configurations are cloned freely) never copies the schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceArrival {
    points: Arc<[TracePoint]>,
    span: SimDuration,
    loops: LoopMode,
    time_scale: f64,
    rate_scale: f64,
}

impl TraceArrival {
    /// Builds a trace from recorded points and the nominal span of
    /// one pass. Points are sorted by (offset, func); the span is
    /// widened if any point lies at or past it, so a pass always
    /// strictly contains its points.
    pub fn new(mut points: Vec<TracePoint>, span: SimDuration) -> TraceArrival {
        points.sort_unstable();
        let span = match points.last() {
            Some(last) => span.max(last.offset + SimDuration::from_nanos(1)),
            None => span.max(SimDuration::from_nanos(1)),
        };
        TraceArrival {
            points: points.into(),
            span,
            loops: LoopMode::Once,
            time_scale: 1.0,
            rate_scale: 1.0,
        }
    }

    /// Sets the loop mode.
    ///
    /// # Panics
    ///
    /// Panics on `Repeat(0)` — a replay makes at least one pass.
    #[must_use]
    pub fn looped(mut self, loops: LoopMode) -> TraceArrival {
        assert!(loops.passes() >= 1, "replay must make at least one pass");
        self.loops = loops;
        self
    }

    /// Sets the time-scale factor (`< 1` compresses, `> 1`
    /// stretches).
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive.
    #[must_use]
    pub fn with_time_scale(mut self, factor: f64) -> TraceArrival {
        assert!(
            factor.is_finite() && factor > 0.0,
            "time scale must be finite and positive"
        );
        self.time_scale = factor;
        self
    }

    /// Sets the rate-scale factor (`> 1` replicates points, `< 1`
    /// thins them, `0` empties the schedule).
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and non-negative.
    #[must_use]
    pub fn with_rate_scale(mut self, factor: f64) -> TraceArrival {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "rate scale must be finite and non-negative"
        );
        self.rate_scale = factor;
        self
    }

    /// The sorted points of one pass.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Number of points in one pass.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether one pass holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Nominal (unscaled) span of one pass.
    pub fn span(&self) -> SimDuration {
        self.span
    }

    /// Number of passes the configured loop mode makes.
    pub fn passes(&self) -> u32 {
        self.loops.passes()
    }

    /// The largest function index any point names.
    pub fn max_func(&self) -> Option<u32> {
        self.points.iter().map(|p| p.func).max()
    }

    /// Total replay duration: the time-scaled span times the number
    /// of passes. The natural run horizon for a full replay.
    pub fn total_duration(&self) -> SimDuration {
        self.scaled_span() * u64::from(self.passes())
    }

    fn scaled_span(&self) -> SimDuration {
        SimDuration::from_nanos(self.scale_ns(self.span.as_nanos()).max(1))
    }

    fn scale_ns(&self, ns: u64) -> u64 {
        if self.time_scale == 1.0 {
            ns // exact: replay offsets match the recording bit for bit
        } else {
            (ns as f64 * self.time_scale).round() as u64
        }
    }
}

impl ArrivalSchedule for TraceArrival {
    fn mean_rate_rps(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.len() as f64 * self.rate_scale / self.scaled_span().as_secs_f64()
    }

    fn draw(&self, seed: u64, horizon: SimDuration) -> Vec<Arrival> {
        let horizon_ns = horizon.as_nanos();
        let span_ns = self.scaled_span().as_nanos();
        let whole = self.rate_scale.trunc() as u64;
        let frac = self.rate_scale.fract();
        // Per-point replication coin flips; untouched when the rate
        // scale has no fractional part, so an unscaled replay is
        // seed-independent and byte-identical to the recording.
        let mut rng = SplitMix64::new(seed ^ 0x7E61_C3A9_5EED_F00D);
        let mut out = Vec::new();
        'passes: for pass in 0..u64::from(self.passes()) {
            let Some(base) = pass.checked_mul(span_ns).filter(|b| *b < horizon_ns) else {
                break;
            };
            for p in self.points.iter() {
                let at = base + self.scale_ns(p.offset.as_nanos());
                if at >= horizon_ns {
                    // Offsets are sorted and each pass starts past
                    // the previous one, so nothing later fits either.
                    break 'passes;
                }
                let mut copies = whole;
                if frac > 0.0 && rng.next_f64() < frac {
                    copies += 1;
                }
                let arrival = Arrival {
                    at: SimTime::ZERO + SimDuration::from_nanos(at),
                    func: Some(p.func),
                };
                for _ in 0..copies {
                    out.push(arrival);
                }
            }
        }
        out
    }
}

/// One burst layer of a [`ComposedArrivals`] schedule: extra Poisson
/// arrivals at `rate_rps` over `[start, start + duration)`,
/// optionally pinned to a single function.
///
/// With `func: None` the burst is a *flash crowd* — extra mixed
/// traffic the run's popularity mix spreads over every function.
/// With `func: Some(i)` it is a *hot-function storm* — the
/// DDoS-like shape where one function suddenly dominates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstOverlay {
    /// Offset of the burst's start from the run's start.
    pub start: SimDuration,
    /// How long the burst lasts.
    pub duration: SimDuration,
    /// Extra arrival rate during the burst, requests per second.
    pub rate_rps: f64,
    /// Function index every burst arrival targets, or `None` to let
    /// the run's function mix pick per arrival.
    pub func: Option<u32>,
}

/// Seed salt for the diurnal-layer slices of a composed schedule.
const DIURNAL_SALT: u64 = 0xD1A1_0C4E_5EED_0001;
/// Seed salt for the burst overlays of a composed schedule.
const BURST_SALT: u64 = 0xB0B5_7F1A_5EED_0002;
/// Per-index seed spreading (the SplitMix64 increment).
const SLICE_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A day-scale composition over any base schedule: the base arrivals
/// drawn verbatim, plus a piecewise-constant *diurnal* Poisson layer
/// (one rate multiplier per equal slice of the horizon) and any
/// number of [`BurstOverlay`]s.
///
/// The layers are additive, so composition works identically over a
/// synthetic process and a recorded trace replay — the base sequence
/// is preserved bit for bit and every layer draws from its own
/// salted seed. The merged schedule is a pure function of
/// `(self, seed, horizon)` like every other [`ArrivalSchedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct ComposedArrivals {
    base: Box<ArrivalSource>,
    /// Per-slice rate multipliers of the diurnal layer (empty: no
    /// diurnal layer). Slice `i` of the horizon gets extra Poisson
    /// arrivals at `curve_rate_rps * curve[i]`.
    curve: Vec<f64>,
    curve_rate_rps: f64,
    overlays: Vec<BurstOverlay>,
}

impl ComposedArrivals {
    /// Starts a composition over `base` with no extra layers.
    pub fn over(base: impl Into<ArrivalSource>) -> ComposedArrivals {
        ComposedArrivals {
            base: Box::new(base.into()),
            curve: Vec::new(),
            curve_rate_rps: 0.0,
            overlays: Vec::new(),
        }
    }

    /// A named 24-slice diurnal shape: night trough, morning ramp,
    /// midday peak, and a smaller evening peak — the canonical
    /// production day the Azure trace analyses report. Values are
    /// rate multipliers with peak 1.0.
    pub fn day_curve() -> Vec<f64> {
        vec![
            0.15, 0.10, 0.08, 0.08, 0.10, 0.18, // 00-06: night trough
            0.35, 0.60, 0.85, 1.00, 0.95, 0.90, // 06-12: ramp to peak
            0.85, 0.80, 0.75, 0.70, 0.72, 0.78, // 12-18: afternoon
            0.85, 0.80, 0.65, 0.45, 0.30, 0.20, // 18-24: evening decay
        ]
    }

    /// Adds the diurnal layer: slice `i` of the horizon (there are
    /// `curve.len()` equal slices) gets extra Poisson arrivals at
    /// `rate_rps * curve[i]`.
    ///
    /// # Panics
    ///
    /// Panics on an empty curve, a negative multiplier, or a
    /// non-finite or negative rate.
    #[must_use]
    pub fn with_diurnal(mut self, rate_rps: f64, curve: Vec<f64>) -> ComposedArrivals {
        assert!(
            !curve.is_empty(),
            "a diurnal curve needs at least one slice"
        );
        assert!(
            curve.iter().all(|m| m.is_finite() && *m >= 0.0),
            "diurnal multipliers must be finite and non-negative"
        );
        assert!(
            rate_rps.is_finite() && rate_rps >= 0.0,
            "diurnal rate must be finite and non-negative"
        );
        self.curve = curve;
        self.curve_rate_rps = rate_rps;
        self
    }

    /// Adds a flash-crowd burst: extra mixed traffic at `rate_rps`
    /// over `[start, start + duration)`.
    #[must_use]
    pub fn with_flash_crowd(
        self,
        start: SimDuration,
        duration: SimDuration,
        rate_rps: f64,
    ) -> ComposedArrivals {
        self.with_overlay(BurstOverlay {
            start,
            duration,
            rate_rps,
            func: None,
        })
    }

    /// Adds a hot-function storm: burst traffic pinned to `func`.
    #[must_use]
    pub fn with_hot_storm(
        self,
        start: SimDuration,
        duration: SimDuration,
        rate_rps: f64,
        func: u32,
    ) -> ComposedArrivals {
        self.with_overlay(BurstOverlay {
            start,
            duration,
            rate_rps,
            func: Some(func),
        })
    }

    /// Adds an arbitrary burst overlay.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or negative burst rate.
    #[must_use]
    pub fn with_overlay(mut self, overlay: BurstOverlay) -> ComposedArrivals {
        assert!(
            overlay.rate_rps.is_finite() && overlay.rate_rps >= 0.0,
            "burst rate must be finite and non-negative"
        );
        self.overlays.push(overlay);
        self
    }

    /// The schedule the composition layers on top of.
    pub fn base(&self) -> &ArrivalSource {
        &self.base
    }

    /// The burst overlays, in the order they were added.
    pub fn overlays(&self) -> &[BurstOverlay] {
        &self.overlays
    }

    /// The largest function index any burst overlay pins (`None`
    /// when every layer leaves the function to the run's mix). Run
    /// validation checks this against the workload count.
    pub fn max_pinned_func(&self) -> Option<u32> {
        self.overlays.iter().filter_map(|o| o.func).max()
    }

    /// Draws one additive Poisson layer over `[start, start + len)`.
    fn draw_layer(seed: u64, rate_rps: f64, start: SimDuration, len: SimDuration) -> Vec<SimTime> {
        if rate_rps <= 0.0 || len.is_zero() {
            return Vec::new();
        }
        ArrivalProcess::Poisson { rate_rps }
            .generator(seed)
            .take_until(SimTime::ZERO + len)
            .into_iter()
            .map(|t| t + start)
            .collect()
    }
}

impl ArrivalSchedule for ComposedArrivals {
    /// Long-run mean rate: the base's mean plus the diurnal layer's
    /// average. Burst overlays are transient (their windows are
    /// fixed offsets, not horizon fractions), so they are excluded
    /// from the long-run figure.
    fn mean_rate_rps(&self) -> f64 {
        let curve_mean = if self.curve.is_empty() {
            0.0
        } else {
            self.curve_rate_rps * self.curve.iter().sum::<f64>() / self.curve.len() as f64
        };
        self.base.mean_rate_rps() + curve_mean
    }

    fn draw(&self, seed: u64, horizon: SimDuration) -> Vec<Arrival> {
        let mut out = self.base.draw(seed, horizon);
        let slices = self.curve.len() as u64;
        for (i, &mult) in self.curve.iter().enumerate() {
            let slice_len = SimDuration::from_nanos(horizon.as_nanos() / slices.max(1));
            let start = SimDuration::from_nanos(slice_len.as_nanos() * i as u64);
            let slice_seed = seed ^ DIURNAL_SALT ^ (i as u64).wrapping_mul(SLICE_GAMMA);
            for at in Self::draw_layer(slice_seed, self.curve_rate_rps * mult, start, slice_len) {
                out.push(Arrival { at, func: None });
            }
        }
        for (j, overlay) in self.overlays.iter().enumerate() {
            if overlay.start >= horizon {
                continue;
            }
            let len = overlay.duration.min(horizon.saturating_sub(overlay.start));
            let burst_seed = seed ^ BURST_SALT ^ (j as u64).wrapping_mul(SLICE_GAMMA);
            for at in Self::draw_layer(burst_seed, overlay.rate_rps, overlay.start, len) {
                out.push(Arrival {
                    at,
                    func: overlay.func,
                });
            }
        }
        // Stable by time: layers interleave deterministically (base
        // first, then diurnal slices, then overlays, in order).
        out.sort_by_key(|a| a.at);
        out
    }
}

/// The arrival schedule of a run: a synthetic process, a recorded
/// trace, or a day-scale composition over either. Run configurations
/// store this, so recorded workloads plug in anywhere synthetic ones
/// work.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSource {
    /// A synthetic stochastic process.
    Process(ArrivalProcess),
    /// A recorded trace replay.
    Trace(TraceArrival),
    /// A diurnal/burst composition over another source.
    Composed(ComposedArrivals),
}

impl ArrivalSource {
    /// The recorded trace, if this source replays one (composed
    /// sources answer for their base).
    pub fn trace(&self) -> Option<&TraceArrival> {
        match self {
            ArrivalSource::Process(_) => None,
            ArrivalSource::Trace(t) => Some(t),
            ArrivalSource::Composed(c) => c.base().trace(),
        }
    }

    /// The composition, if this source is one.
    pub fn composed(&self) -> Option<&ComposedArrivals> {
        match self {
            ArrivalSource::Composed(c) => Some(c),
            _ => None,
        }
    }

    /// Long-run mean arrival rate in requests per second.
    pub fn mean_rate_rps(&self) -> f64 {
        ArrivalSchedule::mean_rate_rps(self)
    }

    /// All arrivals strictly before `horizon`, in order (see
    /// [`ArrivalSchedule::draw`]).
    pub fn draw(&self, seed: u64, horizon: SimDuration) -> Vec<Arrival> {
        ArrivalSchedule::draw(self, seed, horizon)
    }
}

impl ArrivalSchedule for ArrivalSource {
    fn mean_rate_rps(&self) -> f64 {
        match self {
            ArrivalSource::Process(p) => ArrivalSchedule::mean_rate_rps(p),
            ArrivalSource::Trace(t) => ArrivalSchedule::mean_rate_rps(t),
            ArrivalSource::Composed(c) => ArrivalSchedule::mean_rate_rps(c),
        }
    }

    fn draw(&self, seed: u64, horizon: SimDuration) -> Vec<Arrival> {
        match self {
            ArrivalSource::Process(p) => p.draw(seed, horizon),
            ArrivalSource::Trace(t) => t.draw(seed, horizon),
            ArrivalSource::Composed(c) => c.draw(seed, horizon),
        }
    }
}

impl From<ArrivalProcess> for ArrivalSource {
    fn from(p: ArrivalProcess) -> ArrivalSource {
        ArrivalSource::Process(p)
    }
}

impl From<TraceArrival> for ArrivalSource {
    fn from(t: TraceArrival) -> ArrivalSource {
        ArrivalSource::Trace(t)
    }
}

impl From<ComposedArrivals> for ArrivalSource {
    fn from(c: ComposedArrivals) -> ArrivalSource {
        ArrivalSource::Composed(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: SimDuration = SimDuration::from_secs(1);

    #[test]
    fn poisson_hits_its_mean_rate() {
        let p = ArrivalProcess::Poisson { rate_rps: 100.0 };
        let arrivals = p.generator(7).take_until(SimTime::ZERO + SEC * 50);
        let rate = arrivals.len() as f64 / 50.0;
        assert!((rate - 100.0).abs() < 5.0, "measured {rate} rps");
    }

    #[test]
    fn generators_are_deterministic() {
        for p in [
            ArrivalProcess::Poisson { rate_rps: 30.0 },
            ArrivalProcess::Mmpp {
                low_rps: 5.0,
                high_rps: 80.0,
                mean_dwell: SimDuration::from_millis(500),
            },
            ArrivalProcess::Periodic {
                period: SimDuration::from_millis(40),
                jitter_frac: 0.3,
            },
        ] {
            let a = p.generator(42).take_until(SimTime::ZERO + SEC * 10);
            let b = p.generator(42).take_until(SimTime::ZERO + SEC * 10);
            assert_eq!(a, b);
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "ordered arrivals");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = ArrivalProcess::Poisson { rate_rps: 50.0 };
        let a = p.generator(1).take_until(SimTime::ZERO + SEC * 2);
        let b = p.generator(2).take_until(SimTime::ZERO + SEC * 2);
        assert_ne!(a, b);
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Count arrivals per 100 ms window; the MMPP's window counts
        // must have a higher coefficient of variation than a Poisson
        // process of the same mean rate.
        let window = SimDuration::from_millis(100);
        let horizon = SimTime::ZERO + SEC * 60;
        let count_cv = |arrivals: &[SimTime]| {
            let n_windows = 600usize;
            let mut counts = vec![0u32; n_windows];
            for &t in arrivals {
                let w = (t.as_nanos() / window.as_nanos()) as usize;
                counts[w.min(n_windows - 1)] += 1;
            }
            let mean = counts.iter().map(|&c| c as f64).sum::<f64>() / n_windows as f64;
            let var = counts
                .iter()
                .map(|&c| (c as f64 - mean).powi(2))
                .sum::<f64>()
                / n_windows as f64;
            var.sqrt() / mean
        };
        let mmpp = ArrivalProcess::Mmpp {
            low_rps: 4.0,
            high_rps: 76.0,
            mean_dwell: SimDuration::from_millis(800),
        };
        let poisson = ArrivalProcess::Poisson {
            rate_rps: mmpp.mean_rate_rps(),
        };
        let cv_mmpp = count_cv(&mmpp.generator(3).take_until(horizon));
        let cv_poisson = count_cv(&poisson.generator(3).take_until(horizon));
        assert!(
            cv_mmpp > 1.5 * cv_poisson,
            "MMPP CV {cv_mmpp:.2} vs Poisson CV {cv_poisson:.2}"
        );
    }

    #[test]
    fn periodic_respects_period_and_jitter() {
        let period = SimDuration::from_millis(50);
        let p = ArrivalProcess::Periodic {
            period,
            jitter_frac: 0.2,
        };
        let arrivals = p.generator(9).take_until(SimTime::ZERO + SEC * 5);
        // ~100 ticks in 5 s.
        assert!((90..=101).contains(&arrivals.len()), "{}", arrivals.len());
        for (i, &t) in arrivals.iter().enumerate() {
            let tick = (i + 1) as u64;
            let base = period.as_nanos() * tick;
            assert!(t.as_nanos() >= base, "tick {tick} before its base time");
            assert!(
                t.as_nanos() < base + period.mul_f64(0.2).as_nanos() + 1,
                "tick {tick} past its jitter window"
            );
        }
    }

    fn tiny_trace() -> TraceArrival {
        TraceArrival::new(
            vec![
                TracePoint {
                    offset: SimDuration::from_millis(5),
                    func: 1,
                },
                TracePoint {
                    offset: SimDuration::from_millis(1),
                    func: 0,
                },
                TracePoint {
                    offset: SimDuration::from_millis(9),
                    func: 2,
                },
            ],
            SimDuration::from_millis(10),
        )
    }

    #[test]
    fn trace_points_are_sorted_and_span_contains_them() {
        let t = tiny_trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t.points()[0].func, 0);
        assert_eq!(t.points()[2].func, 2);
        assert_eq!(t.span(), SimDuration::from_millis(10));
        assert_eq!(t.max_func(), Some(2));
        // A point at the span edge widens the span past it.
        let edge = TraceArrival::new(
            vec![TracePoint {
                offset: SimDuration::from_millis(10),
                func: 0,
            }],
            SimDuration::from_millis(10),
        );
        assert!(edge.span() > SimDuration::from_millis(10));
    }

    #[test]
    fn trace_replay_is_verbatim_and_seed_independent() {
        let t = tiny_trace();
        let a = t.draw(1, SimDuration::from_millis(10));
        let b = t.draw(99, SimDuration::from_millis(10));
        assert_eq!(a, b, "unscaled replay must not consume randomness");
        assert_eq!(
            a.iter()
                .map(|r| (r.at.as_nanos(), r.func))
                .collect::<Vec<_>>(),
            vec![
                (1_000_000, Some(0)),
                (5_000_000, Some(1)),
                (9_000_000, Some(2)),
            ]
        );
    }

    #[test]
    fn trace_loop_modes_tile_the_span() {
        let t = tiny_trace().looped(LoopMode::Repeat(3));
        assert_eq!(t.passes(), 3);
        assert_eq!(t.total_duration(), SimDuration::from_millis(30));
        let arrivals = t.draw(7, t.total_duration());
        assert_eq!(arrivals.len(), 9);
        // Second pass is the first shifted by one span.
        assert_eq!(
            arrivals[3].at.as_nanos(),
            arrivals[0].at.as_nanos() + SimDuration::from_millis(10).as_nanos()
        );
        assert!(arrivals.windows(2).all(|w| w[0].at <= w[1].at));
        // A shorter horizon truncates the tail.
        let cut = t.draw(7, SimDuration::from_millis(15));
        assert_eq!(cut.len(), 4);
    }

    #[test]
    fn trace_time_scale_stretches_offsets() {
        let t = tiny_trace().with_time_scale(2.0);
        let arrivals = t.draw(3, t.total_duration());
        assert_eq!(arrivals[0].at.as_nanos(), 2_000_000);
        assert_eq!(t.total_duration(), SimDuration::from_millis(20));
        let compressed = tiny_trace().with_time_scale(0.5);
        assert_eq!(
            compressed.draw(3, compressed.total_duration())[2]
                .at
                .as_nanos(),
            4_500_000
        );
    }

    #[test]
    fn trace_rate_scale_replicates_and_thins_deterministically() {
        let t = tiny_trace().looped(LoopMode::Repeat(40));
        let doubled = t.clone().with_rate_scale(2.0);
        assert_eq!(
            doubled.draw(5, doubled.total_duration()).len(),
            2 * t.draw(5, t.total_duration()).len()
        );
        let halved = t.clone().with_rate_scale(0.5);
        let a = halved.draw(5, halved.total_duration());
        let b = halved.draw(5, halved.total_duration());
        assert_eq!(a, b, "fractional thinning must be deterministic");
        let n = a.len();
        assert!((30..=90).contains(&n), "half rate kept {n} of 120");
        assert!(halved.draw(6, halved.total_duration()).len() != n || n == 60);
        assert!(t
            .clone()
            .with_rate_scale(0.0)
            .draw(5, t.total_duration())
            .is_empty());
    }

    #[test]
    fn schedule_trait_covers_processes() {
        let p = ArrivalProcess::Poisson { rate_rps: 40.0 };
        let via_trait = ArrivalSchedule::draw(&p, 11, SEC * 5);
        let direct = p.generator(11).take_until(SimTime::ZERO + SEC * 5);
        assert_eq!(via_trait.len(), direct.len());
        assert!(via_trait.iter().all(|a| a.func.is_none()));
        assert_eq!(via_trait.iter().map(|a| a.at).collect::<Vec<_>>(), direct);
        assert_eq!(ArrivalSchedule::mean_rate_rps(&p), 40.0);
    }

    #[test]
    fn arrival_source_delegates() {
        let src: ArrivalSource = ArrivalProcess::Poisson { rate_rps: 25.0 }.into();
        assert_eq!(src.mean_rate_rps(), 25.0);
        assert!(src.trace().is_none());
        let trace: ArrivalSource = tiny_trace().into();
        assert!(trace.trace().is_some());
        assert_eq!(trace.draw(1, SimDuration::from_millis(10)).len(), 3);
        // 3 points in 10 ms = 300 rps.
        assert!((trace.mean_rate_rps() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn composed_schedule_is_deterministic_and_ordered() {
        let c = ComposedArrivals::over(ArrivalProcess::Poisson { rate_rps: 20.0 })
            .with_diurnal(40.0, ComposedArrivals::day_curve())
            .with_flash_crowd(SEC * 2, SEC, 300.0)
            .with_hot_storm(SEC * 4, SEC, 200.0, 1);
        let a = c.draw(42, SEC * 8);
        let b = c.draw(42, SEC * 8);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "sorted by time");
        assert_ne!(a, c.draw(43, SEC * 8), "seed changes the layers");
        assert_eq!(c.max_pinned_func(), Some(1));
    }

    #[test]
    fn composed_layers_are_additive_over_the_base() {
        let base = ArrivalProcess::Poisson { rate_rps: 10.0 };
        let plain: Vec<SimTime> = base.draw(7, SEC * 4).iter().map(|a| a.at).collect();
        let c = ComposedArrivals::over(base).with_flash_crowd(SEC, SEC, 150.0);
        let composed = c.draw(7, SEC * 4);
        // Every base arrival survives composition verbatim.
        let times: Vec<SimTime> = composed.iter().map(|a| a.at).collect();
        for t in &plain {
            assert!(times.contains(t), "base arrival at {t:?} dropped");
        }
        // The burst window carries visibly more traffic than an
        // equal-length window outside it.
        let in_window = |lo: SimDuration, hi: SimDuration| {
            composed
                .iter()
                .filter(|a| a.at >= SimTime::ZERO + lo && a.at < SimTime::ZERO + hi)
                .count()
        };
        assert!(
            in_window(SEC, SEC * 2) > 3 * in_window(SEC * 3, SEC * 4),
            "flash crowd must dominate its window"
        );
    }

    #[test]
    fn hot_storm_pins_its_function_and_flash_crowd_does_not() {
        let c = ComposedArrivals::over(ArrivalProcess::Poisson { rate_rps: 5.0 })
            .with_flash_crowd(SimDuration::ZERO, SEC, 100.0)
            .with_hot_storm(SimDuration::ZERO, SEC, 100.0, 3);
        let arrivals = c.draw(11, SEC);
        let pinned = arrivals.iter().filter(|a| a.func == Some(3)).count();
        let mixed = arrivals.iter().filter(|a| a.func.is_none()).count();
        assert!(pinned > 50, "storm arrivals pin func 3, got {pinned}");
        assert!(mixed > 50, "base + crowd stay mix-driven, got {mixed}");
        assert!(arrivals
            .iter()
            .all(|a| a.func.is_none() || a.func == Some(3)));
    }

    #[test]
    fn diurnal_curve_shapes_the_day() {
        let c = ComposedArrivals::over(ArrivalProcess::Poisson { rate_rps: 1.0 })
            .with_diurnal(600.0, ComposedArrivals::day_curve());
        let horizon = SEC * 24; // one "hour" per second
        let arrivals = c.draw(9, horizon);
        let hour = |h: u64| {
            arrivals
                .iter()
                .filter(|a| a.at >= SimTime::ZERO + SEC * h && a.at < SimTime::ZERO + SEC * (h + 1))
                .count()
        };
        // Midday peak (slice 9, mult 1.0) over the 03:00 trough
        // (slice 3, mult 0.08).
        assert!(
            hour(9) > 4 * hour(3),
            "peak {} vs trough {}",
            hour(9),
            hour(3)
        );
    }

    #[test]
    fn composition_over_a_trace_keeps_the_recording() {
        let c = ComposedArrivals::over(tiny_trace()).with_hot_storm(
            SimDuration::ZERO,
            SimDuration::from_millis(10),
            1000.0,
            0,
        );
        let src: ArrivalSource = c.into();
        assert!(
            src.trace().is_some(),
            "composed source exposes its base trace"
        );
        let arrivals = src.draw(5, SimDuration::from_millis(10));
        let recorded: Vec<_> = arrivals
            .iter()
            .filter(|a| a.func.is_some())
            .map(|a| (a.at.as_nanos(), a.func))
            .collect();
        assert!(recorded.contains(&(1_000_000, Some(0))));
        assert!(recorded.contains(&(5_000_000, Some(1))));
        assert!(recorded.contains(&(9_000_000, Some(2))));
        assert!(src.composed().is_some());
        // Mean rate folds base + diurnal average (none here).
        assert!(
            (ArrivalSchedule::mean_rate_rps(src.composed().unwrap().base()) - 300.0).abs() < 1e-9
        );
    }

    #[test]
    fn mean_rates_are_consistent() {
        assert_eq!(
            ArrivalProcess::Poisson { rate_rps: 8.0 }.mean_rate_rps(),
            8.0
        );
        let mmpp = ArrivalProcess::Mmpp {
            low_rps: 2.0,
            high_rps: 10.0,
            mean_dwell: SEC,
        };
        assert_eq!(mmpp.mean_rate_rps(), 6.0);
        let per = ArrivalProcess::Periodic {
            period: SimDuration::from_millis(250),
            jitter_frac: 0.0,
        };
        assert!((per.mean_rate_rps() - 4.0).abs() < 1e-12);
    }
}
