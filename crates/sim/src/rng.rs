//! A small, fast, deterministic pseudo-random number generator.
//!
//! The simulation substrate deliberately carries its own RNG
//! (SplitMix64, Steele et al., OOPSLA '14) instead of pulling `rand`
//! into every crate: the generator's exact output sequence is part of
//! the reproducibility contract, so it must not change underneath us
//! with a dependency upgrade.

/// SplitMix64 pseudo-random number generator.
///
/// Passes BigCrush when used as a 64-bit generator and is more than
/// adequate for driving simulated device latency jitter and workload
/// layout. Never use it for anything security-sensitive.
///
/// # Examples
///
/// ```
/// use snapbpf_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Identical seeds yield
    /// identical sequences.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo
    /// bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        // Lemire 2019: unbiased bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "next_range requires lo <= hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits -> [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// A value drawn from an approximately normal distribution with
    /// the given mean and standard deviation (Irwin–Hall sum of 12
    /// uniforms; plenty for latency jitter).
    pub fn next_gaussian(&mut self, mean: f64, stddev: f64) -> f64 {
        let sum: f64 = (0..12).map(|_| self.next_f64()).sum();
        mean + (sum - 6.0) * stddev
    }

    /// Forks a statistically independent child generator; the parent
    /// stream advances by one value.
    #[must_use]
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA5A5_A5A5_5A5A_5A5A)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

impl Default for SplitMix64 {
    /// Seeds with a fixed constant; equivalent to `SplitMix64::new(0)`.
    fn default() -> Self {
        SplitMix64::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_vector() {
        // Reference values from the canonical SplitMix64 with seed 0.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn bounded_values_in_range() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..10_000 {
            let v = rng.next_below(37);
            assert!(v < 37);
            let r = rng.next_range(10, 20);
            assert!((10..=20).contains(&r));
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn zero_bound_panics() {
        SplitMix64::new(1).next_below(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SplitMix64::new(5);
        assert!(!rng.next_bool(0.0));
        assert!(rng.next_bool(1.0));
        // Out-of-range p is clamped rather than panicking.
        assert!(rng.next_bool(7.5));
    }

    #[test]
    fn gaussian_is_roughly_centered() {
        let mut rng = SplitMix64::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.next_gaussian(5.0, 2.0)).sum::<f64>() / n as f64;
        assert!(
            (mean - 5.0).abs() < 0.1,
            "sample mean {mean} too far from 5.0"
        );
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut parent = SplitMix64::new(1);
        let mut child = parent.fork();
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(21);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements should not be identity");
    }

    #[test]
    fn full_range_does_not_loop_forever() {
        let mut rng = SplitMix64::new(2);
        let _ = rng.next_range(0, u64::MAX);
    }
}
