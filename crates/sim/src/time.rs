//! Virtual time for the simulation.
//!
//! All latencies in the reproduction are expressed in virtual
//! nanoseconds. Wall-clock time is never consulted on a simulation
//! path, which keeps every experiment bit-for-bit deterministic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, measured in nanoseconds since simulation
/// start.
///
/// `SimTime` is a newtype over `u64` so that instants cannot be
/// accidentally mixed with durations or raw counters.
///
/// # Examples
///
/// ```
/// use snapbpf_sim::{SimTime, SimDuration};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_micros(3);
/// assert_eq!(t1.as_nanos(), 3_000);
/// assert_eq!(t1 - t0, SimDuration::from_nanos(3_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, measured in nanoseconds.
///
/// # Examples
///
/// ```
/// use snapbpf_sim::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 2_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far"
    /// sentinel for idle resources.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of `self` and `other`.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of `self` and `other`.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Duration from `earlier` to `self`, saturating at zero if
    /// `earlier` is actually later.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the
    /// nearest nanosecond and saturating on overflow or negative
    /// input.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos.round() as u64)
        }
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Length in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Length in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of `self` and `other`.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The shorter of `self` and `other`.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a dimensionless factor, rounding to
    /// the nearest nanosecond and saturating on overflow.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Ratio of `self` to `other`; returns `f64::INFINITY` when
    /// `other` is zero and `self` is not, and `0.0` when both are
    /// zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            if self.0 == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    /// Duration between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "SimDuration subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn arithmetic_basics() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(40);
        assert_eq!((t + d).as_nanos(), 140);
        assert_eq!((t - d).as_nanos(), 60);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(50);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_nanos(), 40);
        assert_eq!(SimTime::MAX + SimDuration::from_nanos(1), SimTime::MAX);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!((d * 3).as_micros(), 30);
        assert_eq!((d / 2).as_micros(), 5);
        assert_eq!(d.mul_f64(2.5).as_micros(), 25);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(1.5e-9).as_nanos(), 2);
    }

    #[test]
    fn ratio_handles_zero() {
        let z = SimDuration::ZERO;
        let d = SimDuration::from_nanos(10);
        assert_eq!(z.ratio(z), 0.0);
        assert_eq!(d.ratio(z), f64::INFINITY);
        assert!((d.ratio(SimDuration::from_nanos(20)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let da = SimDuration::from_nanos(1);
        let db = SimDuration::from_nanos(2);
        assert_eq!(da.max(db), db);
        assert_eq!(da.min(db), da);
    }
}
