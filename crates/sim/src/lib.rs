//! # snapbpf-sim — deterministic simulation substrate
//!
//! The foundation every other crate in the SnapBPF reproduction sits
//! on: virtual time, a deterministic future-event queue, a seeded
//! pseudo-random number generator, and statistics collection.
//!
//! Nothing in this crate (or above it) ever consults the wall clock
//! or OS randomness on a simulation path, so a given experiment
//! configuration always produces bit-identical results.
//!
//! ## Examples
//!
//! A miniature simulation loop:
//!
//! ```
//! use snapbpf_sim::{Clock, SimDuration, Histogram};
//!
//! #[derive(Debug)]
//! enum Event { Tick(u32) }
//!
//! let mut clock = Clock::new();
//! let mut lat = Histogram::new();
//! for i in 0..4 {
//!     clock.schedule_after(SimDuration::from_micros(10 * (i as u64 + 1)), Event::Tick(i));
//! }
//! while let Some(ev) = clock.next() {
//!     let Event::Tick(_) = ev.event;
//!     lat.record(clock.now().as_nanos());
//! }
//! assert_eq!(lat.count(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod queue;
mod rng;
mod series;
mod stats;
mod time;
pub mod trace;

pub use arrival::{
    Arrival, ArrivalGen, ArrivalProcess, ArrivalSchedule, ArrivalSource, BurstOverlay,
    ComposedArrivals, LoopMode, TraceArrival, TracePoint,
};
pub use queue::{Clock, EventQueue, Scheduled};
pub use rng::SplitMix64;
pub use series::{SeriesBin, SeriesRegistry, SERIES_WINDOW_NS};
pub use snapbpf_json::Json;
pub use stats::{Counters, Histogram, Quantile, Summary};
pub use time::{SimDuration, SimTime};
pub use trace::{
    chrome_trace_json, sandbox_tid, MetricsRegistry, NoopSink, RecordingSink, TraceEvent,
    TracePhase, TraceSink, TraceValue, Tracer, TracerClass, TID_CONTROL, TID_DISK, TID_KERNEL,
};

/// Size of a page in bytes, fixed at 4 KiB exactly as on the paper's
/// x86-64 testbed.
pub const PAGE_SIZE: u64 = 4096;

/// Converts a byte count to a number of pages, rounding up.
///
/// # Examples
///
/// ```
/// assert_eq!(snapbpf_sim::bytes_to_pages(1), 1);
/// assert_eq!(snapbpf_sim::bytes_to_pages(4096), 1);
/// assert_eq!(snapbpf_sim::bytes_to_pages(4097), 2);
/// assert_eq!(snapbpf_sim::bytes_to_pages(0), 0);
/// ```
pub const fn bytes_to_pages(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

/// Converts a page count to bytes.
///
/// # Examples
///
/// ```
/// assert_eq!(snapbpf_sim::pages_to_bytes(2), 8192);
/// ```
pub const fn pages_to_bytes(pages: u64) -> u64 {
    pages * PAGE_SIZE
}

#[cfg(test)]
mod tests {
    #[test]
    fn page_conversions() {
        assert_eq!(super::bytes_to_pages(8191), 2);
        assert_eq!(super::pages_to_bytes(super::bytes_to_pages(4096)), 4096);
    }
}
