//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use snapbpf_sim::{Clock, EventQueue, Histogram, SimDuration, SimTime, SplitMix64, Summary};

proptest! {
    /// Events always pop in non-decreasing time order, FIFO on ties.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), (t, seq));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some(ev) = q.pop() {
            let (t, seq) = ev.event;
            prop_assert_eq!(ev.at.as_nanos(), t);
            if let Some((lt, lseq)) = last {
                prop_assert!(t > lt || (t == lt && seq > lseq),
                    "order violated: ({lt},{lseq}) then ({t},{seq})");
            }
            last = Some((t, seq));
        }
    }

    /// A clock never runs backwards, whatever the schedule.
    #[test]
    fn clock_is_monotone(delays in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut clock: Clock<usize> = Clock::new();
        for (i, &d) in delays.iter().enumerate() {
            clock.schedule_after(SimDuration::from_nanos(d), i);
        }
        let mut prev = SimTime::ZERO;
        while let Some(_ev) = clock.next() {
            prop_assert!(clock.now() >= prev);
            prev = clock.now();
        }
    }

    /// Bounded RNG output respects its bounds for arbitrary seeds.
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..64 {
            prop_assert!(rng.next_below(bound) < bound);
            let f = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    /// Identical seeds yield identical streams; different seeds
    /// (almost surely) diverge within a few outputs.
    #[test]
    fn rng_determinism(seed in any::<u64>()) {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(seed);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(seed);
            (0..16).map(|_| r.next_u64()).collect()
        };
        prop_assert_eq!(a, b);
    }

    /// Shuffling preserves the multiset of elements.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), mut v in prop::collection::vec(any::<u32>(), 0..100)) {
        let mut sorted_before = v.clone();
        sorted_before.sort_unstable();
        SplitMix64::new(seed).shuffle(&mut v);
        v.sort_unstable();
        prop_assert_eq!(v, sorted_before);
    }

    /// Histogram percentile queries are monotone in the percentile
    /// and bracketed by min/max.
    #[test]
    fn histogram_percentiles(values in prop::collection::vec(0u64..1_000_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut prev = 0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p).unwrap();
            prop_assert!(v >= prev, "p{p}: {v} < {prev}");
            prop_assert!(v >= h.min().unwrap());
            prop_assert!(v <= h.max().unwrap());
            prev = v;
        }
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    /// Merging summaries equals summarizing the concatenation.
    #[test]
    fn summary_merge_associativity(
        xs in prop::collection::vec(-1e6f64..1e6, 0..100),
        ys in prop::collection::vec(-1e6f64..1e6, 0..100),
    ) {
        let mut a = Summary::new();
        xs.iter().for_each(|&v| a.record(v));
        let mut b = Summary::new();
        ys.iter().for_each(|&v| b.record(v));
        let mut whole = Summary::new();
        xs.iter().chain(&ys).for_each(|&v| whole.record(v));

        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
            prop_assert!((a.variance() - whole.variance()).abs() < 1e-3 * (1.0 + whole.variance()));
        }
    }

    /// Duration arithmetic saturates instead of overflowing.
    #[test]
    fn duration_arithmetic_never_panics(a in any::<u64>(), b in any::<u64>(), k in any::<u64>()) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        let _ = da + db;
        let _ = da.saturating_sub(db);
        let _ = da * k;
        let _ = da.mul_f64(1.5);
        let _ = SimTime::from_nanos(a) + db;
        let _ = SimTime::from_nanos(a).saturating_since(SimTime::from_nanos(b));
    }
}
