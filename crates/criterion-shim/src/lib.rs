//! # criterion (offline shim)
//!
//! An in-tree stand-in for the [`criterion`] bench harness so
//! `cargo bench` works in fully offline environments. It implements
//! the API surface the workspace's benches use — `criterion_group!`,
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], `sample_size`, and
//! [`Bencher::iter`] — and reports simple wall-clock statistics
//! (mean / min / max per iteration) instead of criterion's full
//! statistical analysis.
//!
//! Like upstream criterion with `harness = false`, binaries run both
//! under `cargo bench` and directly; `--test` (passed by `cargo test
//! --benches`) runs each benchmark exactly once as a smoke test.
//!
//! [`criterion`]: https://docs.rs/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench context (one per `criterion_group!` function).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` / `cargo test --benches` pass
        // their extra args straight to the binary.
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--nocapture" => {}
                other if !other.starts_with('-') => filter = Some(other.to_owned()),
                _ => {}
            }
        }
        Criterion {
            sample_size: 10,
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let samples = self.sample_size;
        self.run_one(name, samples, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, samples: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples: if self.test_mode { 1 } else { samples },
            times: Vec::new(),
        };
        f(&mut b);
        if b.times.is_empty() {
            println!("  {name}: no measurements");
            return;
        }
        let total: Duration = b.times.iter().sum();
        let mean = total / b.times.len() as u32;
        let min = *b.times.iter().min().expect("non-empty");
        let max = *b.times.iter().max().expect("non-empty");
        println!(
            "  {name}: mean {mean:?} min {min:?} max {max:?} ({} samples)",
            b.times.len()
        );
    }
}

/// A named group sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let name = format!("{}/{id}", self.name);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&name, samples, f);
        self
    }

    /// Ends the group (upstream flushes reports here; the shim keeps
    /// the method for source compatibility).
    pub fn finish(self) {}
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, one sample per call, `samples` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up run, untimed.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.times.push(start.elapsed());
        }
    }
}

/// Declares a bench group function list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut ran = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.finish();
        }
        // warm-up + 2 samples (or 1 in --test mode).
        assert!(ran >= 2);
    }

    #[test]
    fn macros_compile() {
        fn bench(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        }
        criterion_group!(benches, bench);
        benches();
    }
}
