//! # snapbpf-testkit — shared test fixtures
//!
//! Every crate in the workspace needs the same handful of fixtures:
//! a host kernel over the paper's SSD with a freshly built snapshot,
//! a small deterministic workload suite, and seeded fleet / cluster
//! configurations sized so a test run finishes in milliseconds. They
//! used to be duplicated between `snapbpf`'s private `testutil` and
//! the fleet test modules; this crate is the single home, pulled in
//! as a dev-dependency by `snapbpf`, `snapbpf-fleet`, and the
//! umbrella integration tests (cargo permits the dev-dependency
//! cycle — the fixtures build against the published library API).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use snapbpf::{FunctionCtx, Strategy, StrategyKind};
use snapbpf_fleet::FleetConfig;
use snapbpf_kernel::{HostKernel, KernelConfig};
use snapbpf_sim::{SimDuration, SimTime};
use snapbpf_storage::{Disk, SsdModel};
use snapbpf_vmm::Snapshot;
use snapbpf_workloads::Workload;

/// Builds a host kernel over the paper's SSD and a snapshot for the
/// named workload at `scale` — the fixture every strategy unit test
/// starts from.
///
/// # Panics
///
/// Panics if `name` is not a suite workload or snapshot creation
/// fails (both are test-setup bugs, not conditions to handle).
pub fn test_env(name: &str, scale: f64) -> (HostKernel, FunctionCtx) {
    let mut host = HostKernel::new(
        Disk::new(Box::new(SsdModel::micron_5300())),
        KernelConfig::default(),
    );
    let workload = Workload::by_name(name)
        .unwrap_or_else(|| panic!("unknown workload {name}"))
        .scaled(scale);
    let (snapshot, _) = Snapshot::create(
        SimTime::ZERO,
        workload.name(),
        workload.snapshot_pages(),
        &mut host,
    )
    .expect("snapshot creation");
    (host, FunctionCtx { workload, snapshot })
}

/// A recorded, cache-cold environment for `kind`: host, function
/// context, strategy instance (record phase already run), and the
/// restore-request instant. The fixture the staged-restore and
/// strategy-equivalence integration tests start from.
///
/// NOTE: only usable from *integration* tests (`tests/` directories)
/// — inside `snapbpf`'s own unit tests, `FunctionCtx` here is a
/// different build of the crate and the types will not unify.
///
/// # Panics
///
/// Panics if `name` is not a suite workload or snapshot creation /
/// recording fails (test-setup bugs, not conditions to handle).
pub fn recorded_env(
    kind: StrategyKind,
    name: &str,
    scale: f64,
) -> (HostKernel, FunctionCtx, Box<dyn Strategy>, SimTime) {
    let mut host = HostKernel::new(
        Disk::new(Box::new(SsdModel::micron_5300())),
        KernelConfig::default(),
    );
    let workload = Workload::by_name(name)
        .unwrap_or_else(|| panic!("unknown workload {name}"))
        .scaled(scale);
    let (snapshot, t_snap) = Snapshot::create(
        SimTime::ZERO,
        workload.name(),
        workload.snapshot_pages(),
        &mut host,
    )
    .expect("snapshot creation");
    let func = FunctionCtx { workload, snapshot };
    let mut strategy = kind.build();
    let t_rec = strategy
        .record(t_snap, &mut host, &func)
        .expect("record phase");
    host.drop_all_caches().expect("cache drop");
    (host, func, strategy, t_rec)
}

/// The three-function mini-suite the fleet tests run against
/// (`json`, `html`, `pyaes` — small, mixed working-set shapes).
///
/// # Panics
///
/// Panics if the paper suite ever loses one of the three (a fixture
/// bug).
pub fn small_suite() -> Vec<Workload> {
    ["json", "html", "pyaes"]
        .iter()
        .map(|n| Workload::by_name(n).expect("suite function"))
        .collect()
}

/// A two-function pair (`json`, `image`) for property tests that
/// need the cheapest possible fleet runs.
///
/// # Panics
///
/// Panics if the paper suite ever loses one of the two (a fixture
/// bug).
pub fn workload_pair() -> Vec<Workload> {
    ["json", "image"]
        .iter()
        .map(|n| Workload::by_name(n).expect("suite function"))
        .collect()
}

/// A seeded three-function fleet configuration sized for tests:
/// scale 0.02 and a 500 ms arrival horizon over [`small_suite`].
pub fn small_fleet_cfg(kind: StrategyKind, rate_rps: f64) -> FleetConfig {
    let mut cfg = FleetConfig::new(kind, 3, rate_rps);
    cfg.scale = 0.02;
    cfg.duration = SimDuration::from_millis(500);
    cfg
}

/// [`small_fleet_cfg`] spread over `hosts` hosts (placement and
/// distribution stay at the config defaults — hash placement, local
/// snapshots — so tests opt into what they exercise).
pub fn small_cluster_cfg(kind: StrategyKind, hosts: usize, rate_rps: f64) -> FleetConfig {
    let mut cfg = small_fleet_cfg(kind, rate_rps);
    cfg.hosts = hosts;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let (host, func) = test_env("json", 0.05);
        assert!(func.snapshot.memory_pages() > 0);
        assert_eq!(host.accounting_discrepancy(), 0);
        assert_eq!(small_suite().len(), 3);
        assert_eq!(workload_pair().len(), 2);
        let cfg = small_fleet_cfg(StrategyKind::SnapBpf, 40.0);
        assert_eq!(cfg.mix.len(), 3);
        assert_eq!(cfg.hosts, 1);
        assert_eq!(small_cluster_cfg(StrategyKind::Reap, 3, 40.0).hosts, 3);
    }
}
