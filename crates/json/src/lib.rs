//! # snapbpf-json — a dependency-free JSON layer
//!
//! The reproduction runs in fully offline environments, so instead
//! of pulling `serde`/`serde_json` from a registry the repo carries
//! this small, exact JSON implementation: a [`Json`] value type, a
//! strict recursive-descent [parser](Json::parse), and a
//! deterministic pretty-[printer](Json::pretty) whose output is
//! stable across runs (object keys keep insertion order).
//!
//! It covers what the experiment tooling needs — figure data files,
//! snapshot metadata sidecars, fleet reports — and nothing more.
//!
//! ## Examples
//!
//! ```
//! use snapbpf_json::Json;
//!
//! let v = Json::object([
//!     ("id".into(), Json::from("fig3a")),
//!     ("values".into(), Json::array([1.0.into(), 2.5.into()])),
//! ]);
//! let text = v.pretty();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back, v);
//! assert_eq!(back["id"].as_str(), Some("fig3a"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Index;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved so output is
    /// deterministic.
    Object(Vec<(String, Json)>),
}

/// A JSON parse error with byte position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::String(s)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Number(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Number(v as f64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Number(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Number(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

static NULL: Json = Json::Null;

impl Index<&str> for Json {
    type Output = Json;

    /// Object field access; returns [`Json::Null`] for missing keys
    /// or non-objects (convenient for optional fields).
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Json {
    type Output = Json;

    /// Array element access; returns [`Json::Null`] out of bounds.
    fn index(&self, i: usize) -> &Json {
        match self {
            Json::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl Json {
    /// Builds an array value.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// Builds an object value (insertion order preserved).
    pub fn object(fields: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Object(fields.into_iter().collect())
    }

    /// The value of `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative
    /// integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parses a JSON document (strict: exactly one value, no
    /// trailing garbage).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Serializes with two-space indentation and a trailing newline
    /// — the format the experiment tooling writes to `results/`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes compactly (no whitespace).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            _ => self.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; emit null like serde_json's lossy mode
        // would reject — we pick the permissive option because figure
        // values are always finite in practice.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        // Integral values print without a fractional part so reports
        // stay readable ("42" not "42.0").
        out.push_str(&format!("{}", n as i64));
    } else {
        // Shortest roundtrip representation of f64.
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced pos
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character. The input is
                    // a &str so boundaries are guaranteed valid.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the `uXXXX` part of a unicode escape (the leading `\`
    /// and `u` position is `self.pos`), including surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        self.pos += 1; // consume 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a low surrogate must follow.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.expect(b'u')?;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(cp).ok_or_else(|| self.err("invalid code point"));
            }
            return Err(self.err("lone high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-12", "3.5", "1e3", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.compact()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_roundtrip() {
        let v = Json::object([
            ("name".into(), Json::from("bert")),
            ("pages".into(), Json::from(131072u64)),
            (
                "series".into(),
                Json::array([
                    Json::object([
                        ("label".into(), Json::from("REAP")),
                        ("values".into(), Json::array([1.0.into(), 2.25.into()])),
                    ]),
                    Json::Null,
                ]),
            ),
            ("ok".into(), Json::Bool(true)),
        ]);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
        assert_eq!(Json::parse(&v.compact()).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let v = Json::String("a\"b\\c\nd\te\u{1}§🦀".into());
        assert_eq!(Json::parse(&v.compact()).unwrap(), v);
        assert_eq!(
            Json::parse("\"\\u00a7 \\ud83e\\udd80\"").unwrap(),
            Json::String("§ 🦀".into())
        );
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": [1, 2], "b": "x", "c": true}"#).unwrap();
        assert_eq!(v["a"][0].as_f64(), Some(1.0));
        assert_eq!(v["a"][1].as_u64(), Some(2));
        assert_eq!(v["b"].as_str(), Some("x"));
        assert_eq!(v["c"].as_bool(), Some(true));
        assert_eq!(v["missing"], Json::Null);
        assert_eq!(v["a"][9], Json::Null);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn errors_carry_position() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "\"\\q\"", "1 2", "01a"] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
        let e = Json::parse("[1, @]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn integral_numbers_print_clean() {
        assert_eq!(Json::Number(42.0).compact(), "42");
        assert_eq!(Json::Number(-1.5).compact(), "-1.5");
        assert_eq!(Json::Number(f64::NAN).compact(), "null");
    }

    #[test]
    fn object_key_order_is_stable() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(v.compact(), r#"{"z":1,"a":2}"#);
    }
}
