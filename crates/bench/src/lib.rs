//! # snapbpf-bench — the figure-regeneration harness
//!
//! Shared plumbing for the `figures` binary and the Criterion
//! benches: standard configurations and result output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::io;
use std::path::Path;

use snapbpf::figures::FigureConfig;
use snapbpf::DeviceKind;
use snapbpf::FigureData;
use snapbpf_workloads::Workload;

/// The configuration benches run at: the full 14-function suite at a
/// reduced (but shape-preserving) scale with 10 concurrent
/// instances, exactly as the paper's concurrency experiments.
pub fn bench_config() -> FigureConfig {
    FigureConfig {
        scale: 0.15,
        instances: 10,
        workloads: Workload::suite(),
        device: DeviceKind::Sata5300,
    }
}

/// A minimal configuration for smoke tests.
pub fn smoke_config() -> FigureConfig {
    FigureConfig::quick(0.03)
}

/// Writes a figure's JSON next to its rendered table under `dir`.
///
/// # Errors
///
/// I/O errors propagate.
pub fn write_figure(dir: &Path, fig: &FigureData) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(
        dir.join(format!("{}.json", fig.id)),
        fig.to_json().map_err(io::Error::other)?,
    )?;
    fs::write(dir.join(format!("{}.txt", fig.id)), fig.render())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_usable() {
        assert_eq!(bench_config().workloads.len(), 14);
        assert_eq!(bench_config().instances, 10);
        assert!(smoke_config().scale < 0.1);
    }

    #[test]
    fn write_figure_creates_files() {
        let dir = std::env::temp_dir().join("snapbpf-bench-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut fig = FigureData::new("t", "test", "s", vec!["a".into()]);
        fig.push_series("x", vec![1.0]);
        write_figure(&dir, &fig).unwrap();
        assert!(dir.join("t.json").exists());
        assert!(dir.join("t.txt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
