//! Regenerates every table and figure of the SnapBPF paper.
//!
//! ```text
//! cargo run --release -p snapbpf-bench --bin figures -- [--scale S] [--instances N] [--out DIR] [--only ID]
//! ```
//!
//! Prints each figure as an aligned table (absolute values plus the
//! paper's normalized presentation) and writes JSON + text files
//! under `--out` (default `results/`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use snapbpf::figures::{
    ablation_coalesce, ablation_cow, ablation_device, ablation_grouping, ext_colocation,
    ext_concurrency_sweep, ext_cost_analysis, ext_input_variants, ext_memory_pressure,
    ext_record_cost, ext_warm_start, fig3a, fig3b, fig3c, fig4, overheads, table1, FigureConfig,
};
use snapbpf::{DeviceKind, FigureData};
use snapbpf_bench::write_figure;
use snapbpf_fleet::figures::{
    fleet_breakdown, fleet_keepalive, fleet_pipeline, fleet_shard, fleet_sweep, fleet_trace,
    FleetFigureConfig,
};
use snapbpf_workloads::Workload;

/// Every figure the runner knows, in presentation order — `--only`
/// is validated against this list.
const KNOWN_IDS: [&str; 23] = [
    "table1",
    "fig3a",
    "fig3b",
    "fig3c",
    "fig4",
    "overheads",
    "ablation-coalesce",
    "ablation-device",
    "ablation-cow",
    "ablation-grouping",
    "ext-variants",
    "ext-costs",
    "ext-record-cost",
    "ext-warm-start",
    "ext-concurrency",
    "ext-colocation",
    "fleet-sweep",
    "fleet-breakdown",
    "fleet-keepalive",
    "fleet-pipeline",
    "fleet-trace",
    "fleet-shard",
    "ext-memory-pressure",
];

struct Args {
    scale: f64,
    instances: usize,
    out: PathBuf,
    only: Option<String>,
    device: DeviceKind,
    trace_out: Option<PathBuf>,
    hosts: Option<usize>,
    verifier_log: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: 1.0,
        instances: 10,
        out: PathBuf::from("results"),
        only: None,
        device: DeviceKind::Sata5300,
        trace_out: None,
        hosts: None,
        verifier_log: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--scale" => {
                args.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
                if !(args.scale > 0.0 && args.scale <= 1.0) {
                    return Err("--scale must be in (0, 1]".into());
                }
            }
            "--instances" => {
                args.instances = value("--instances")?
                    .parse()
                    .map_err(|e| format!("bad --instances: {e}"))?;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--verifier-log" => args.verifier_log = true,
            "--only" => args.only = Some(value("--only")?),
            "--trace-out" => args.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            // The cluster size for fleet-shard. 0 is accepted here so
            // the cluster's own validation surfaces its clean config
            // error instead of the CLI inventing a second one.
            "--hosts" => {
                args.hosts = Some(
                    value("--hosts")?
                        .parse()
                        .map_err(|e| format!("bad --hosts: {e}"))?,
                )
            }
            "--device" => {
                let name = value("--device")?;
                args.device = DeviceKind::parse(&name)
                    .ok_or_else(|| format!("bad --device {name} (sata-ssd, nvme, hdd)"))?;
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: figures [--scale S] [--instances N] [--out DIR] [--only ID] \
                     [--device sata-ssd|nvme|hdd] [--trace-out FILE] [--hosts N] \
                     [--verifier-log]\n\
                     IDs: {}",
                    KNOWN_IDS.join(" ")
                ))
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if let Some(only) = &args.only {
        if !KNOWN_IDS.contains(&only.as_str()) {
            return Err(format!(
                "unknown figure `{only}` for --only; available: {}",
                KNOWN_IDS.join(" ")
            ));
        }
    }
    if let Some(trace_out) = &args.trace_out {
        let parent = match trace_out.parent() {
            Some(p) if p.as_os_str().is_empty() => Path::new("."),
            Some(p) => p,
            None => {
                return Err(format!(
                    "--trace-out {}: not a file path",
                    trace_out.display()
                ))
            }
        };
        if !parent.is_dir() {
            return Err(format!(
                "--trace-out {}: parent directory {} does not exist",
                trace_out.display(),
                parent.display()
            ));
        }
    }
    Ok(args)
}

fn wants(only: &Option<String>, id: &str) -> bool {
    only.as_deref().is_none_or(|o| o == id)
}

fn emit(out: &Path, fig: &FigureData) {
    println!("{}", fig.render());
    if let Err(e) = write_figure(out, fig) {
        eprintln!("warning: could not write {}: {e}", fig.id);
    }
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = FigureConfig {
        scale: args.scale,
        instances: args.instances,
        workloads: Workload::suite(),
        device: args.device,
    };
    println!(
        "SnapBPF reproduction — scale {} x, {} concurrent instances, {}\n",
        args.scale,
        args.instances,
        args.device.label()
    );

    if args.verifier_log {
        let report = snapbpf::verifier_log_report()?;
        println!("{report}");
        std::fs::create_dir_all(&args.out)?;
        let path = args.out.join("verifier-log.txt");
        std::fs::write(&path, &report)?;
        println!("verifier log written to {}\n", path.display());
    }
    if wants(&args.only, "table1") {
        let t = table1();
        println!("{t}");
        std::fs::create_dir_all(&args.out)?;
        std::fs::write(args.out.join("table1.txt"), &t)?;
    }
    if wants(&args.only, "fig3a") {
        let fig = fig3a(&cfg)?;
        emit(&args.out, &fig);
        emit(&args.out, &{
            let mut n = fig.normalized_to("REAP");
            n.id = "fig3a-normalized".into();
            n
        });
    }
    if wants(&args.only, "fig3b") {
        let fig = fig3b(&cfg)?;
        emit(&args.out, &fig);
        emit(&args.out, &{
            let mut n = fig.normalized_to("Linux-NoRA");
            n.id = "fig3b-normalized".into();
            n
        });
        if let (Some(reap), Some(snap)) = (fig.series_values("REAP"), fig.series_values("SnapBPF"))
        {
            let best = reap
                .iter()
                .zip(snap)
                .map(|(r, s)| r / s)
                .fold(f64::MIN, f64::max);
            println!("max REAP/SnapBPF latency ratio: {best:.1}x (paper: up to 8x on bert)\n");
        }
    }
    if wants(&args.only, "fig3c") {
        let fig = fig3c(&cfg)?;
        emit(&args.out, &fig);
        if let (Some(reap), Some(snap)) = (fig.series_values("REAP"), fig.series_values("SnapBPF"))
        {
            let best = reap
                .iter()
                .zip(snap)
                .map(|(r, s)| r / s)
                .fold(f64::MIN, f64::max);
            println!("max REAP/SnapBPF memory ratio: {best:.1}x (paper: up to 6x on bfs/bert)\n");
        }
    }
    if wants(&args.only, "fig4") {
        emit(&args.out, &fig4(&cfg)?);
    }
    if wants(&args.only, "overheads") {
        let fig = overheads(&cfg)?;
        emit(&args.out, &fig);
        let ms = fig.series_values("offset-load-ms").unwrap_or(&[]);
        let mean = ms.iter().sum::<f64>() / ms.len().max(1) as f64;
        println!("mean offsets-load latency: {mean:.2} ms (paper: ~1-2 ms)\n");
    }
    if wants(&args.only, "ablation-coalesce") {
        let w = Workload::by_name("chameleon").expect("suite function");
        emit(
            &args.out,
            &ablation_coalesce(&w, args.scale, &[0, 8, 32, 128, 512])?,
        );
    }
    if wants(&args.only, "ablation-device") {
        let w = Workload::by_name("bert").expect("suite function");
        emit(&args.out, &ablation_device(&w, args.scale)?);
    }
    if wants(&args.only, "ablation-cow") {
        emit(&args.out, &ablation_cow(&cfg)?);
    }
    if wants(&args.only, "ablation-grouping") {
        emit(&args.out, &ablation_grouping(&cfg)?);
    }
    if wants(&args.only, "ext-variants") {
        // Input variation is most interesting on the large-WS
        // functions; run the FaaSMem trio.
        let trio = FigureConfig {
            workloads: ["html", "bfs", "bert"]
                .iter()
                .map(|n| Workload::by_name(n).expect("suite function"))
                .collect(),
            ..cfg.clone()
        };
        emit(&args.out, &ext_input_variants(&trio)?);
    }
    if wants(&args.only, "ext-costs") {
        emit(&args.out, &ext_cost_analysis(&cfg)?);
    }
    if wants(&args.only, "ext-record-cost") {
        emit(&args.out, &ext_record_cost(&cfg)?);
    }
    if wants(&args.only, "ext-warm-start") {
        emit(&args.out, &ext_warm_start(&cfg)?);
    }
    if wants(&args.only, "ext-concurrency") {
        let w = Workload::by_name("bert").expect("suite function");
        emit(
            &args.out,
            &ext_concurrency_sweep(&w, args.scale, &[1, 2, 5, 10, 20])?,
        );
    }
    if wants(&args.only, "ext-colocation") {
        emit(&args.out, &ext_colocation(&cfg)?);
    }
    let fleet_cfg = {
        let mut f = FleetFigureConfig::paper(args.scale);
        f.device = args.device;
        if let Some(hosts) = args.hosts {
            f.shard.hosts = hosts;
        }
        f
    };
    if wants(&args.only, "fleet-sweep") {
        let fig = fleet_sweep(&fleet_cfg)?;
        emit(&args.out, &fig);
        if let (Some(reap), Some(snap)) = (
            fig.meta_value("sustained-rps-REAP"),
            fig.meta_value("sustained-rps-SnapBPF"),
        ) {
            println!("sustained rate before p99 knee: REAP {reap} rps, SnapBPF {snap} rps\n");
        }
    }
    if wants(&args.only, "fleet-breakdown") {
        emit(&args.out, &fleet_breakdown(&fleet_cfg)?);
    }
    if wants(&args.only, "fleet-keepalive") {
        emit(&args.out, &fleet_keepalive(&fleet_cfg)?);
    }
    if wants(&args.only, "fleet-pipeline") {
        emit(&args.out, &fleet_pipeline(&fleet_cfg)?);
    }
    if wants(&args.only, "fleet-trace") {
        let (fig, trace) = fleet_trace(&fleet_cfg)?;
        emit(&args.out, &fig);
        std::fs::create_dir_all(&args.out)?;
        let path = args
            .trace_out
            .clone()
            .unwrap_or_else(|| args.out.join("fleet-trace-events.json"));
        std::fs::write(&path, trace.pretty())?;
        println!(
            "trace written to {} — open it at https://ui.perfetto.dev (Open trace file)\n",
            path.display()
        );
    }
    if wants(&args.only, "fleet-shard") {
        let fig = fleet_shard(&fleet_cfg)?;
        emit(&args.out, &fig);
        for device in &fleet_cfg.shard.devices {
            if let (Some(ll), Some(loc)) = (
                fig.meta_value(&format!("lead-least-loaded-{}", device.label())),
                fig.meta_value(&format!("lead-locality-{}", device.label())),
            ) {
                println!(
                    "SnapBPF lead over REAP on {}: {ll:.2}x under least-loaded, \
                     {loc:.2}x under locality placement",
                    device.label()
                );
            }
        }
        println!();
    }
    if wants(&args.only, "ext-memory-pressure") {
        let w = Workload::by_name("bert").expect("suite function");
        // Cap: 2x one working set — fits the shared cache, not 10
        // private copies.
        let cap_pages = ((w.scaled(args.scale).spec().ws_pages() * 2) >> 10).max(2) << 10;
        emit(
            &args.out,
            &ext_memory_pressure(&w, args.scale, args.instances, cap_pages)?,
        );
    }
    println!("results written to {}", args.out.display());
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
