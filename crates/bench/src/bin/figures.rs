//! Regenerates every table and figure of the SnapBPF paper.
//!
//! ```text
//! cargo run --release -p snapbpf-bench --bin figures -- [--scale S] [--instances N] [--out DIR] [--only ID]
//! ```
//!
//! Prints each figure as an aligned table (absolute values plus the
//! paper's normalized presentation) and writes JSON + text files
//! under `--out` (default `results/`).
//!
//! The binary also hosts the trace workflow as a subcommand group:
//!
//! ```text
//! figures trace record  --out FILE [--strategy K] [--rate R] [--funcs N]
//!                       [--duration-ms MS] [--scale S] [--seed S] [--weights W1,W2,..]
//! figures trace analyze --in FILE [--json] [--out FILE]
//! figures trace replay  --in FILE [--strategy K] [--loops N] [--time-scale T]
//!                       [--rate-scale R] [--scale S] [--seed S] [--verify]
//! ```
//!
//! `record` captures a fleet run's arrival schedule into a profile
//! file, `analyze` summarizes one, and `replay` feeds it back through
//! any strategy (`--verify` runs the replay twice and fails unless
//! both runs agree byte-for-byte).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use snapbpf::figures::{
    ablation_coalesce, ablation_cow, ablation_device, ablation_grouping, ext_colocation,
    ext_concurrency_sweep, ext_cost_analysis, ext_input_variants, ext_memory_pressure,
    ext_record_cost, ext_warm_start, fig3a, fig3b, fig3c, fig4, overheads, table1, FigureConfig,
};
use snapbpf::{DeviceKind, FigureData, StrategyKind};
use snapbpf_bench::write_figure;
use snapbpf_fleet::figures::{
    fleet_breakdown, fleet_keepalive, fleet_pipeline, fleet_scenario, fleet_shard, fleet_sweep,
    fleet_trace, FleetFigureConfig, SCENARIO_STRATEGIES,
};
use snapbpf_fleet::{FleetConfig, PlacementKind, Runner, Scenario};
use snapbpf_sim::{LoopMode, SimDuration};
use snapbpf_trace::{
    fleet_azure, fleet_telemetry, record_fleet, AnalyzeReport, AzureFigureConfig, Profile, F4_KINDS,
};
use snapbpf_workloads::{FunctionMix, Workload};

/// Every figure the runner knows, in presentation order — `--only`
/// is validated against this list.
const KNOWN_IDS: [&str; 33] = [
    "table1",
    "fig3a",
    "fig3b",
    "fig3c",
    "fig4",
    "overheads",
    "ablation-coalesce",
    "ablation-device",
    "ablation-cow",
    "ablation-grouping",
    "ext-variants",
    "ext-costs",
    "ext-record-cost",
    "ext-warm-start",
    "ext-concurrency",
    "ext-colocation",
    "fleet-sweep",
    "fleet-breakdown",
    "fleet-keepalive",
    "fleet-pipeline",
    "fleet-trace",
    "fleet-shard",
    "fleet-azure",
    "fleet-telemetry",
    "fleet-scenarios",
    "fleet-scenario-crash",
    "fleet-scenario-drain",
    "fleet-scenario-flash-crowd",
    "fleet-scenario-hot-storm",
    "fleet-scenario-noisy-neighbor",
    "ext-memory-pressure",
    "lint-report",
    "opt-report",
];

struct Args {
    scale: f64,
    instances: usize,
    out: PathBuf,
    only: Option<String>,
    device: DeviceKind,
    trace_out: Option<PathBuf>,
    telemetry_out: Option<PathBuf>,
    hosts: Option<usize>,
    threads: usize,
    verifier_log: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: 1.0,
        instances: 10,
        out: PathBuf::from("results"),
        only: None,
        device: DeviceKind::Sata5300,
        trace_out: None,
        telemetry_out: None,
        hosts: None,
        threads: 1,
        verifier_log: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--scale" => {
                args.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
                if !(args.scale > 0.0 && args.scale <= 1.0) {
                    return Err("--scale must be in (0, 1]".into());
                }
            }
            "--instances" => {
                args.instances = value("--instances")?
                    .parse()
                    .map_err(|e| format!("bad --instances: {e}"))?;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--verifier-log" => args.verifier_log = true,
            "--only" => args.only = Some(value("--only")?),
            "--trace-out" => args.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--telemetry-out" => {
                args.telemetry_out = Some(PathBuf::from(value("--telemetry-out")?))
            }
            // The cluster size for fleet-shard. 0 is accepted here so
            // the cluster's own validation surfaces its clean config
            // error instead of the CLI inventing a second one.
            "--hosts" => {
                args.hosts = Some(
                    value("--hosts")?
                        .parse()
                        .map_err(|e| format!("bad --hosts: {e}"))?,
                )
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--device" => {
                let name = value("--device")?;
                args.device = DeviceKind::parse(&name)
                    .ok_or_else(|| format!("bad --device {name} (sata-ssd, nvme, hdd)"))?;
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: figures [--scale S] [--instances N] [--out DIR] [--only ID] \
                     [--device sata-ssd|nvme|hdd] [--trace-out FILE] [--telemetry-out FILE] \
                     [--hosts N] [--threads N] [--verifier-log]\n\
                     IDs: {}\n\
                     or: figures trace <record|analyze|replay> (see `figures trace --help`)",
                    KNOWN_IDS.join(" ")
                ))
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if let Some(only) = &args.only {
        if !KNOWN_IDS.contains(&only.as_str()) {
            return Err(format!(
                "unknown figure `{only}` for --only; available: {}",
                KNOWN_IDS.join(" ")
            ));
        }
    }
    for (flag, path) in [
        ("--trace-out", &args.trace_out),
        ("--telemetry-out", &args.telemetry_out),
    ] {
        let Some(path) = path else { continue };
        let parent = match path.parent() {
            Some(p) if p.as_os_str().is_empty() => Path::new("."),
            Some(p) => p,
            None => return Err(format!("{flag} {}: not a file path", path.display())),
        };
        if !parent.is_dir() {
            return Err(format!(
                "{flag} {}: parent directory {} does not exist",
                path.display(),
                parent.display()
            ));
        }
    }
    Ok(args)
}

fn wants(only: &Option<String>, id: &str) -> bool {
    only.as_deref().is_none_or(|o| o == id)
}

fn emit(out: &Path, fig: &FigureData) {
    println!("{}", fig.render());
    if let Err(e) = write_figure(out, fig) {
        eprintln!("warning: could not write {}: {e}", fig.id);
    }
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = FigureConfig {
        scale: args.scale,
        instances: args.instances,
        workloads: Workload::suite(),
        device: args.device,
    };
    println!(
        "SnapBPF reproduction — scale {} x, {} concurrent instances, {}\n",
        args.scale,
        args.instances,
        args.device.label()
    );

    if args.verifier_log {
        let report = snapbpf::verifier_log_report()?;
        println!("{report}");
        std::fs::create_dir_all(&args.out)?;
        let path = args.out.join("verifier-log.txt");
        std::fs::write(&path, &report)?;
        println!("verifier log written to {}\n", path.display());
    }
    if wants(&args.only, "lint-report") {
        let report = snapbpf::lint_report()?;
        println!("{report}");
        std::fs::create_dir_all(&args.out)?;
        std::fs::write(args.out.join("lint-report.txt"), &report)?;
    }
    if wants(&args.only, "opt-report") {
        let report = snapbpf::opt_report()?;
        println!("{report}");
        std::fs::create_dir_all(&args.out)?;
        std::fs::write(args.out.join("opt-report.txt"), &report)?;
    }
    if wants(&args.only, "table1") {
        let t = table1();
        println!("{t}");
        std::fs::create_dir_all(&args.out)?;
        std::fs::write(args.out.join("table1.txt"), &t)?;
    }
    if wants(&args.only, "fig3a") {
        let fig = fig3a(&cfg)?;
        emit(&args.out, &fig);
        emit(&args.out, &{
            let mut n = fig.normalized_to("REAP");
            n.id = "fig3a-normalized".into();
            n
        });
    }
    if wants(&args.only, "fig3b") {
        let fig = fig3b(&cfg)?;
        emit(&args.out, &fig);
        emit(&args.out, &{
            let mut n = fig.normalized_to("Linux-NoRA");
            n.id = "fig3b-normalized".into();
            n
        });
        if let (Some(reap), Some(snap)) = (fig.series_values("REAP"), fig.series_values("SnapBPF"))
        {
            let best = reap
                .iter()
                .zip(snap)
                .map(|(r, s)| r / s)
                .fold(f64::MIN, f64::max);
            println!("max REAP/SnapBPF latency ratio: {best:.1}x (paper: up to 8x on bert)\n");
        }
    }
    if wants(&args.only, "fig3c") {
        let fig = fig3c(&cfg)?;
        emit(&args.out, &fig);
        if let (Some(reap), Some(snap)) = (fig.series_values("REAP"), fig.series_values("SnapBPF"))
        {
            let best = reap
                .iter()
                .zip(snap)
                .map(|(r, s)| r / s)
                .fold(f64::MIN, f64::max);
            println!("max REAP/SnapBPF memory ratio: {best:.1}x (paper: up to 6x on bfs/bert)\n");
        }
    }
    if wants(&args.only, "fig4") {
        emit(&args.out, &fig4(&cfg)?);
    }
    if wants(&args.only, "overheads") {
        let fig = overheads(&cfg)?;
        emit(&args.out, &fig);
        let ms = fig.series_values("offset-load-ms").unwrap_or(&[]);
        let mean = ms.iter().sum::<f64>() / ms.len().max(1) as f64;
        println!("mean offsets-load latency: {mean:.2} ms (paper: ~1-2 ms)\n");
    }
    if wants(&args.only, "ablation-coalesce") {
        let w = Workload::by_name("chameleon").expect("suite function");
        emit(
            &args.out,
            &ablation_coalesce(&w, args.scale, &[0, 8, 32, 128, 512])?,
        );
    }
    if wants(&args.only, "ablation-device") {
        let w = Workload::by_name("bert").expect("suite function");
        emit(&args.out, &ablation_device(&w, args.scale)?);
    }
    if wants(&args.only, "ablation-cow") {
        emit(&args.out, &ablation_cow(&cfg)?);
    }
    if wants(&args.only, "ablation-grouping") {
        emit(&args.out, &ablation_grouping(&cfg)?);
    }
    if wants(&args.only, "ext-variants") {
        // Input variation is most interesting on the large-WS
        // functions; run the FaaSMem trio.
        let trio = FigureConfig {
            workloads: ["html", "bfs", "bert"]
                .iter()
                .map(|n| Workload::by_name(n).expect("suite function"))
                .collect(),
            ..cfg.clone()
        };
        emit(&args.out, &ext_input_variants(&trio)?);
    }
    if wants(&args.only, "ext-costs") {
        emit(&args.out, &ext_cost_analysis(&cfg)?);
    }
    if wants(&args.only, "ext-record-cost") {
        emit(&args.out, &ext_record_cost(&cfg)?);
    }
    if wants(&args.only, "ext-warm-start") {
        emit(&args.out, &ext_warm_start(&cfg)?);
    }
    if wants(&args.only, "ext-concurrency") {
        let w = Workload::by_name("bert").expect("suite function");
        emit(
            &args.out,
            &ext_concurrency_sweep(&w, args.scale, &[1, 2, 5, 10, 20])?,
        );
    }
    if wants(&args.only, "ext-colocation") {
        emit(&args.out, &ext_colocation(&cfg)?);
    }
    let fleet_cfg = {
        let mut f = FleetFigureConfig::paper(args.scale);
        f.device = args.device;
        if let Some(hosts) = args.hosts {
            f.shard.hosts = hosts;
        }
        f.shard.threads = args.threads;
        f
    };
    if wants(&args.only, "fleet-sweep") {
        let fig = fleet_sweep(&fleet_cfg)?;
        emit(&args.out, &fig);
        if let (Some(reap), Some(snap)) = (
            fig.meta_value("sustained-rps-REAP"),
            fig.meta_value("sustained-rps-SnapBPF"),
        ) {
            println!("sustained rate before p99 knee: REAP {reap} rps, SnapBPF {snap} rps\n");
        }
    }
    if wants(&args.only, "fleet-breakdown") {
        emit(&args.out, &fleet_breakdown(&fleet_cfg)?);
    }
    if wants(&args.only, "fleet-keepalive") {
        emit(&args.out, &fleet_keepalive(&fleet_cfg)?);
    }
    if wants(&args.only, "fleet-pipeline") {
        emit(&args.out, &fleet_pipeline(&fleet_cfg)?);
    }
    if wants(&args.only, "fleet-trace") {
        let (fig, trace) = fleet_trace(&fleet_cfg)?;
        emit(&args.out, &fig);
        std::fs::create_dir_all(&args.out)?;
        let path = args
            .trace_out
            .clone()
            .unwrap_or_else(|| args.out.join("fleet-trace-events.json"));
        std::fs::write(&path, trace.pretty())?;
        println!(
            "trace written to {} — open it at https://ui.perfetto.dev (Open trace file)\n",
            path.display()
        );
    }
    if wants(&args.only, "fleet-shard") {
        let fig = fleet_shard(&fleet_cfg)?;
        emit(&args.out, &fig);
        for device in &fleet_cfg.shard.devices {
            if let (Some(ll), Some(loc)) = (
                fig.meta_value(&format!("lead-least-loaded-{}", device.label())),
                fig.meta_value(&format!("lead-locality-{}", device.label())),
            ) {
                println!(
                    "SnapBPF lead over REAP on {}: {ll:.2}x under least-loaded, \
                     {loc:.2}x under locality placement",
                    device.label()
                );
            }
        }
        println!();
    }
    if wants(&args.only, "fleet-azure") {
        // The Azure replay carries its own workload scale (the paper
        // run uses 0.05); `--scale` multiplies it so smoke runs can
        // shrink further.
        let mut az = AzureFigureConfig::paper();
        az.scale = (az.scale * args.scale).min(1.0);
        let fig = fleet_azure(&az)?;
        emit(&args.out, &fig);
        for device in &az.devices {
            if let Some(gain) = fig.meta_value(&format!("gain-{}", device.label())) {
                println!(
                    "SnapBPF cold-start p99 gain over Linux-NoRA on {}: {gain:.2}x",
                    device.label()
                );
            }
        }
        println!();
    }
    if wants(&args.only, "fleet-telemetry") {
        let mut az = AzureFigureConfig::paper();
        az.scale = (az.scale * args.scale).min(1.0);
        let fig = fleet_telemetry(&az)?;
        emit(&args.out, &fig);
        if let Some(path) = &args.telemetry_out {
            std::fs::write(path, fig.to_json()?)?;
            println!("windowed telemetry series written to {}", path.display());
        }
        for kind in F4_KINDS {
            if let Some(drops) = fig.meta_value(&format!("ring-drops-{}", kind.label())) {
                println!("{} telemetry ring drops: {drops}", kind.label());
            }
        }
        println!();
    }
    // The F5 scenario battery: `--only fleet-scenarios` runs all
    // five, `--only fleet-scenario-<name>` runs one.
    for scenario in Scenario::ALL {
        let id = scenario.figure_id();
        if !(wants(&args.only, id) || args.only.as_deref() == Some("fleet-scenarios")) {
            continue;
        }
        let fig = fleet_scenario(scenario, &fleet_cfg)?;
        emit(&args.out, &fig);
        if let (Some(ks), Some(ps)) = (
            fig.meta_value("survivor-strategy"),
            fig.meta_value("survivor-placement"),
        ) {
            println!(
                "{}: survivor {} under {} placement (completed ratio {:.3}, e2e p99 {:.4} s)\n",
                scenario.label(),
                SCENARIO_STRATEGIES[ks as usize].label(),
                PlacementKind::ALL[ps as usize].label(),
                fig.meta_value("survivor-completed-ratio").unwrap_or(0.0),
                fig.meta_value("survivor-e2e-p99-s").unwrap_or(0.0),
            );
        }
    }
    if wants(&args.only, "ext-memory-pressure") {
        let w = Workload::by_name("bert").expect("suite function");
        // Cap: 2x one working set — fits the shared cache, not 10
        // private copies.
        let cap_pages = ((w.scaled(args.scale).spec().ws_pages() * 2) >> 10).max(2) << 10;
        emit(
            &args.out,
            &ext_memory_pressure(&w, args.scale, args.instances, cap_pages)?,
        );
    }
    println!("results written to {}", args.out.display());
    Ok(())
}

const TRACE_USAGE: &str = "usage: figures trace <record|analyze|replay> ...\n\
    record  --out FILE [--strategy K] [--rate R] [--funcs N] [--duration-ms MS]\n\
            [--scale S] [--seed S] [--weights W1,W2,..]\n\
    analyze --in FILE [--json] [--out FILE]\n\
    replay  --in FILE [--strategy K] [--loops N] [--time-scale T] [--rate-scale R]\n\
            [--scale S] [--seed S] [--verify]";

fn parse_strategy(name: &str) -> Result<StrategyKind, String> {
    StrategyKind::parse(name).ok_or_else(|| {
        format!(
            "bad --strategy {name}; known: {}",
            StrategyKind::ALL
                .iter()
                .map(|k| k.label())
                .collect::<Vec<_>>()
                .join(" ")
        )
    })
}

/// `figures trace record` — capture a fleet run into a profile file.
fn trace_record(argv: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut out: Option<PathBuf> = None;
    let mut strategy = StrategyKind::SnapBpf;
    let mut rate = 60.0f64;
    let mut funcs = 4usize;
    let mut duration_ms = 2_000u64;
    let mut scale = 0.05f64;
    let mut seed = 42u64;
    let mut weights: Option<Vec<f64>> = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--strategy" => strategy = parse_strategy(&value("--strategy")?)?,
            "--rate" => rate = value("--rate")?.parse()?,
            "--funcs" => funcs = value("--funcs")?.parse()?,
            "--duration-ms" => duration_ms = value("--duration-ms")?.parse()?,
            "--scale" => scale = value("--scale")?.parse()?,
            "--seed" => seed = value("--seed")?.parse()?,
            "--weights" => {
                weights = Some(
                    value("--weights")?
                        .split(',')
                        .map(|w| w.trim().parse::<f64>())
                        .collect::<Result<_, _>>()?,
                )
            }
            other => return Err(format!("unknown flag {other}\n{TRACE_USAGE}").into()),
        }
    }
    let out = out.ok_or("trace record needs --out FILE")?;

    let suite = Workload::suite();
    if funcs == 0 || funcs > suite.len() {
        return Err(format!("--funcs must be in 1..={}", suite.len()).into());
    }
    let workloads: Vec<Workload> = suite.into_iter().take(funcs).collect();
    let mut cfg = FleetConfig::new(strategy, workloads.len(), rate)
        .at_scale(scale)
        .with_seed(seed);
    cfg.duration = SimDuration::from_millis(duration_ms);
    if let Some(ws) = weights {
        if ws.len() != workloads.len() {
            return Err(format!(
                "--weights lists {} entries for {} functions",
                ws.len(),
                workloads.len()
            )
            .into());
        }
        // MixError surfaces as a StrategyError::Config, same as any
        // other bad fleet configuration.
        cfg.mix = FunctionMix::from_weights(&ws).map_err(snapbpf::StrategyError::from)?;
    }

    let (result, profile) = record_fleet(&cfg, &workloads)?;
    std::fs::write(&out, profile.to_bytes())?;
    println!(
        "recorded {} arrivals over {} functions ({} {}, {:.0} rps, {} ms) -> {}",
        profile.len(),
        profile.funcs().len(),
        strategy.label(),
        cfg.device.label(),
        rate,
        duration_ms,
        out.display()
    );
    println!(
        "cold-start p99 {:.4} s, warm hits {}/{} completions",
        result.aggregate.restore_percentile_secs(99.0),
        result.aggregate.warm_starts,
        result.aggregate.completions
    );
    Ok(())
}

/// `figures trace analyze` — mix statistics of a profile file.
fn trace_analyze(argv: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut input: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut json = false;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--in" => input = Some(PathBuf::from(value("--in")?)),
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--json" => json = true,
            other => return Err(format!("unknown flag {other}\n{TRACE_USAGE}").into()),
        }
    }
    let input = input.ok_or("trace analyze needs --in FILE")?;
    let profile = Profile::from_bytes(&std::fs::read(&input)?)?;
    let report = AnalyzeReport::from_profile(&profile);
    if json {
        println!("{}", report.to_json().pretty());
    } else {
        print!("{}", report.render());
    }
    if let Some(out) = out {
        std::fs::write(&out, report.to_json().pretty())?;
        println!("report written to {}", out.display());
    }
    Ok(())
}

/// `figures trace replay` — feed a profile back through a strategy.
fn trace_replay(argv: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut input: Option<PathBuf> = None;
    let mut strategy = StrategyKind::SnapBpf;
    let mut loops = 1u32;
    let mut time_scale = 1.0f64;
    let mut rate_scale = 1.0f64;
    let mut scale = 0.05f64;
    let mut seed = 42u64;
    let mut verify = false;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--in" => input = Some(PathBuf::from(value("--in")?)),
            "--strategy" => strategy = parse_strategy(&value("--strategy")?)?,
            "--loops" => loops = value("--loops")?.parse()?,
            "--time-scale" => time_scale = value("--time-scale")?.parse()?,
            "--rate-scale" => rate_scale = value("--rate-scale")?.parse()?,
            "--scale" => scale = value("--scale")?.parse()?,
            "--seed" => seed = value("--seed")?.parse()?,
            "--verify" => verify = true,
            other => return Err(format!("unknown flag {other}\n{TRACE_USAGE}").into()),
        }
    }
    let input = input.ok_or("trace replay needs --in FILE")?;
    let positive = |v: f64| v.is_finite() && v > 0.0;
    if loops == 0 || !positive(time_scale) || !positive(rate_scale) {
        return Err("--loops, --time-scale and --rate-scale must be positive".into());
    }

    let profile = Profile::from_bytes(&std::fs::read(&input)?)?;
    let mut arrivals = profile.arrivals();
    if loops > 1 {
        arrivals = arrivals.looped(LoopMode::Repeat(loops));
    }
    if time_scale != 1.0 {
        arrivals = arrivals.with_time_scale(time_scale);
    }
    if rate_scale != 1.0 {
        arrivals = arrivals.with_rate_scale(rate_scale);
    }
    let workloads = profile.resolve_workloads();
    let mut cfg = FleetConfig::new(strategy, workloads.len(), 1.0)
        .at_scale(scale)
        .with_seed(seed)
        .replaying(arrivals);
    cfg.max_concurrency = 16;
    cfg.queue_depth = 256;

    let result = if verify {
        // Two independent replays must agree byte-for-byte on both
        // the re-recorded schedule and the measured results.
        let (a, pa) = record_fleet(&cfg, &workloads)?;
        let (b, pb) = record_fleet(&cfg, &workloads)?;
        if pa.to_bytes() != pb.to_bytes() || a != b {
            return Err("replay is not deterministic: two runs disagree".into());
        }
        println!("verify: two replays agree byte-for-byte");
        a
    } else {
        Runner::new(&cfg)
            .workloads(&workloads)
            .run()?
            .into_fleet()
            .expect("replays are single-host")
    };
    println!(
        "replayed {} ({} functions) through {}: {} arrivals, {} completions, \
         cold-start p99 {:.4} s, e2e p99 {:.4} s, warm hits {}",
        input.display(),
        workloads.len(),
        strategy.label(),
        result.aggregate.arrivals,
        result.aggregate.completions,
        result.aggregate.restore_percentile_secs(99.0),
        result.aggregate.e2e_percentile_secs(99.0),
        result.aggregate.warm_starts
    );
    Ok(())
}

fn trace_main(argv: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    match argv.first().map(String::as_str) {
        Some("record") => trace_record(&argv[1..]),
        Some("analyze") => trace_analyze(&argv[1..]),
        Some("replay") => trace_replay(&argv[1..]),
        Some("--help") | Some("-h") | None => Err(TRACE_USAGE.into()),
        Some(other) => Err(format!("unknown trace subcommand {other}\n{TRACE_USAGE}").into()),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("trace") {
        return match trace_main(&argv[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
