//! Optimizer + lint gate over the shipped programs and the on-disk
//! corpus (CI `verifier-corpus` smoke check).
//!
//! ```text
//! cargo run --release -p snapbpf-bench --bin opt_check
//! ```
//!
//! Four gates, any failure exits non-zero with a diagnostic:
//!
//! 1. **Lint**: no shipped program may carry a `deny`-severity
//!    diagnostic.
//! 2. **Static shrink + re-verify**: the full pass pipeline must
//!    re-verify on every shipped program and cut the static
//!    instruction count of both prefetch builders by at least 5%.
//! 3. **Dynamic equivalence**: the looped prefetch program and its
//!    telemetry variant, run through the interpreter against the
//!    same group list, must issue the identical kfunc call sequence,
//!    identical telemetry ring bytes and stat slots, and the same
//!    return value — while executing at least 10% fewer
//!    instructions.
//! 4. **Corpus sweep**: every verifiable program under
//!    `crates/ebpf/tests/corpus/` must optimize, re-verify, and run
//!    interpreter-identically (the rejection corpus is skipped — it
//!    is covered by `verifier_corpus`).

use std::path::PathBuf;
use std::process::ExitCode;

use snapbpf::{build_prefetch_program, build_prefetch_program_telemetry, groups_map_image};
use snapbpf_ebpf::{
    lint_program, parse_program, Interpreter, KfuncHost, KfuncSig, MapDef, MapSet, NoKfuncs,
    PassManager, Program, Verifier,
};
use snapbpf_storage::{Disk, SsdModel};

const KFUNCS: &[KfuncSig] = &[KfuncSig {
    name: "snapbpf_prefetch",
    args: 3,
}];

/// Records every kfunc call (index plus the signature-covered args)
/// and returns 0, standing in for the host kernel's prefetch path.
struct RecordingKfuncs {
    calls: Vec<(u32, Vec<u64>)>,
}

impl KfuncHost for RecordingKfuncs {
    fn call_kfunc(&mut self, index: u32, args: [u64; 5]) -> Result<u64, String> {
        let arity = KFUNCS
            .get(index as usize)
            .map(|s| s.args as usize)
            .unwrap_or(args.len());
        self.calls.push((index, args[..arity].to_vec()));
        Ok(0)
    }
}

/// One interpreter run's observables.
struct RunResult {
    return_value: u64,
    insns: u64,
    calls: Vec<(u32, Vec<u64>)>,
    maps: MapSet,
}

fn run_one(program: &Program, maps: &MapSet, ctx: &[u64]) -> Result<RunResult, String> {
    let verified = Verifier::new(maps, KFUNCS)
        .verify(program)
        .map_err(|e| format!("{}: rejected: {e}", program.name()))?;
    let mut maps = maps.clone();
    let mut kfuncs = RecordingKfuncs { calls: Vec::new() };
    let outcome = Interpreter::new()
        .run(&verified, ctx, &mut maps, &mut kfuncs)
        .map_err(|e| format!("{}: run failed: {e}", program.name()))?;
    Ok(RunResult {
        return_value: outcome.return_value,
        insns: outcome.insns_executed,
        calls: kfuncs.calls,
        maps,
    })
}

/// Optimizes `program`, re-verifies, runs both images, and checks
/// every observable. Returns `(orig_insns, opt_insns)`.
fn check_equivalence(program: &Program, maps: &MapSet, ctx: &[u64]) -> Result<(u64, u64), String> {
    let (optimized, stats) = PassManager::new().optimize(program, maps, KFUNCS);
    if stats.insns_after > stats.insns_before {
        return Err(format!("{}: optimizer grew the program", program.name()));
    }
    let orig = run_one(program, maps, ctx)?;
    let opt = run_one(&optimized, maps, ctx)
        .map_err(|e| format!("optimized image must re-verify and run: {e}"))?;
    let name = program.name();
    if orig.return_value != opt.return_value {
        return Err(format!(
            "{name}: return value diverged ({} vs {})",
            orig.return_value, opt.return_value
        ));
    }
    if orig.calls != opt.calls {
        return Err(format!(
            "{name}: kfunc call sequences diverged:\n  orig: {:?}\n  opt:  {:?}",
            orig.calls, opt.calls
        ));
    }
    if opt.insns > orig.insns {
        return Err(format!(
            "{name}: optimized image executed more instructions ({} > {})",
            opt.insns, orig.insns
        ));
    }
    let mut orig_maps = orig.maps;
    let mut opt_maps = opt.maps;
    for raw in 0..orig_maps.len() as u32 {
        let id = snapbpf_ebpf::MapId::from_raw(raw);
        let def = orig_maps.def(id).expect("map exists");
        match def.kind {
            snapbpf_ebpf::MapKind::RingBuf => loop {
                let a = orig_maps.ring_pop(id).expect("ring pop");
                let b = opt_maps.ring_pop(id).expect("ring pop");
                if a != b {
                    return Err(format!("{name}: telemetry ring bytes diverged on {id}"));
                }
                if a.is_none() {
                    break;
                }
            },
            snapbpf_ebpf::MapKind::PerCpuArray => {
                for index in 0..def.max_entries {
                    let a = orig_maps.percpu_load_merged_u64(id, index);
                    let b = opt_maps.percpu_load_merged_u64(id, index);
                    if a != b {
                        return Err(format!("{name}: {id} slot {index} diverged"));
                    }
                }
            }
            _ => {
                for index in 0..def.max_entries {
                    let a = orig_maps.array_load_u64(id, index);
                    let b = opt_maps.array_load_u64(id, index);
                    if a != b {
                        return Err(format!("{name}: {id} slot {index} diverged"));
                    }
                }
            }
        }
    }
    Ok((orig.insns, opt.insns))
}

/// Gate 3: the two loop-carrying prefetch builders, end to end.
fn check_builders() -> Result<String, String> {
    let mut disk = Disk::new(Box::new(SsdModel::micron_5300()));
    let snap = disk
        .create_file("snap", 8192)
        .map_err(|e| format!("create_file: {e}"))?;
    let groups = [(1000u64, 16u64), (200, 8), (4000, 4)]
        .map(|(start, len)| snapbpf::WsGroup {
            start,
            len,
            earliest_ns: 0,
        })
        .to_vec();

    let mut summary = Vec::new();
    for telemetry in [false, true] {
        let mut maps = MapSet::new();
        let map = maps
            .create(snapbpf::groups_map_def(groups.len() as u32))
            .map_err(|e| format!("create groups map: {e}"))?;
        for (slot, value) in groups_map_image(&groups).iter().enumerate() {
            maps.array_store_u64(map, slot as u32, *value)
                .map_err(|e| format!("load groups map: {e}"))?;
        }
        let program = if telemetry {
            let ring = maps
                .create(snapbpf_ebpf::telemetry_ring_def())
                .map_err(|e| format!("create ring: {e}"))?;
            let stats = maps
                .create(snapbpf_ebpf::telemetry_stats_def())
                .map_err(|e| format!("create stats: {e}"))?;
            build_prefetch_program_telemetry(snap, map, groups.len() as u32, ring, stats)
        } else {
            build_prefetch_program(snap, map, groups.len() as u32)
        };
        let ctx = [snap.as_u32() as u64, 0];
        let (orig, opt) = check_equivalence(&program, &maps, &ctx)?;
        if (opt as f64) > (orig as f64) * 0.90 {
            return Err(format!(
                "{}: expected >= 10% dynamic instruction reduction, got {orig} -> {opt}",
                program.name()
            ));
        }
        summary.push(format!("{} {orig}->{opt}", program.name()));
    }
    Ok(summary.join(", "))
}

/// Gates 1 + 2: lint and static-shrink reports over every shipped
/// program (capture and cascade included).
fn check_reports() -> Result<String, String> {
    let lint = snapbpf::lint_report().map_err(|e| format!("lint_report: {e}"))?;
    for line in lint.lines() {
        if line.split_whitespace().nth(1) == Some("deny") {
            return Err(format!("shipped program carries a deny lint: {line}"));
        }
    }
    let opt = snapbpf::opt_report().map_err(|e| format!("opt_report: {e}"))?;
    let mut shrunk = Vec::new();
    for block in opt.split("optimizing program ").skip(1) {
        let name = block.lines().next().unwrap_or("?").to_string();
        if !block.contains("re-verification OK") {
            return Err(format!("{name}: optimized image did not re-verify"));
        }
        let stats_line = block
            .lines()
            .find(|l| l.trim_start().starts_with("insns "))
            .ok_or_else(|| format!("{name}: report has no stats line"))?;
        let mut nums = stats_line
            .split_whitespace()
            .filter_map(|w| w.parse::<u64>().ok());
        let (before, after) = (nums.next().unwrap_or(0), nums.next().unwrap_or(0));
        if before == 0 {
            return Err(format!("{name}: unparseable stats line: {stats_line}"));
        }
        if name.contains("prefetch_loop") || name.contains("prefetch_tel") {
            if (after as f64) > (before as f64) * 0.95 {
                return Err(format!(
                    "{name}: expected >= 5% static instruction reduction, got {before} -> {after}"
                ));
            }
            shrunk.push(format!("{name} {before}->{after}"));
        }
    }
    if shrunk.len() != 2 {
        return Err(format!(
            "expected both prefetch builders in the opt report, found {}",
            shrunk.len()
        ));
    }
    Ok(shrunk.join(", "))
}

/// Gate 4: every verifiable corpus program optimizes, re-verifies,
/// and runs identically.
fn check_corpus() -> Result<String, String> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../ebpf/tests/corpus");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.extension()? == "asm").then(|| path.file_stem()?.to_str().map(String::from))?
        })
        .collect();
    names.sort();
    let mut maps = MapSet::new();
    maps.create(MapDef::array(8, 8))
        .map_err(|e| format!("create map#0: {e}"))?; // `map#0` in the corpus
    maps.create(MapDef::ringbuf(256))
        .map_err(|e| format!("create map#1: {e}"))?; // `map#1`
    let (mut checked, mut rejected) = (0u32, 0u32);
    for name in &names {
        let path = dir.join(format!("{name}.asm"));
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let program = parse_program(name, &text).map_err(|e| format!("{name}: {e}"))?;
        if Verifier::new(&maps, KFUNCS).verify(&program).is_err() {
            // The rejection corpus; covered by `verifier_corpus`.
            rejected += 1;
            continue;
        }
        // Lint must never panic on corpus programs.
        let _ = lint_program(&program, &maps, KFUNCS);
        let ctx = [0u64, 0];
        // Corpus programs call no kfuncs; run with the strict host.
        let (optimized, _) = PassManager::new().optimize(&program, &maps, KFUNCS);
        let verified = Verifier::new(&maps, KFUNCS)
            .verify(&optimized)
            .map_err(|e| format!("{name}: optimized image must re-verify: {e}"))?;
        let orig = run_one(&program, &maps, &ctx)?;
        let mut opt_maps = maps.clone();
        let opt = Interpreter::new()
            .run(&verified, &ctx, &mut opt_maps, &mut NoKfuncs)
            .map_err(|e| format!("{name}: optimized run failed: {e}"))?;
        if orig.return_value != opt.return_value {
            return Err(format!("{name}: return value diverged"));
        }
        if opt.insns_executed > orig.insns {
            return Err(format!(
                "{name}: optimized image executed more instructions"
            ));
        }
        checked += 1;
    }
    if checked == 0 {
        return Err("corpus sweep checked no verifiable programs".to_string());
    }
    Ok(format!(
        "{checked} corpus programs equivalence-checked, {rejected} rejection-corpus skips"
    ))
}

fn check() -> Result<String, String> {
    let reports = check_reports()?;
    let builders = check_builders()?;
    let corpus = check_corpus()?;
    Ok(format!(
        "opt_check: ok — static {reports}; dynamic {builders}; {corpus}"
    ))
}

fn main() -> ExitCode {
    match check() {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("opt_check: {msg}");
            ExitCode::FAILURE
        }
    }
}
