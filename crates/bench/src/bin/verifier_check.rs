//! Verifies every shipped eBPF program with the verifier log enabled
//! (CI `verifier-corpus` smoke check).
//!
//! ```text
//! cargo run --release -p snapbpf-bench --bin verifier_check
//! ```
//!
//! Runs the capture program, the looped prefetch program, its
//! telemetry-instrumented variant, and the re-trigger cascade
//! baseline through the host kernel's load path
//! with log capture on, then sanity-checks the rendered logs: one
//! per program, each ending in a stats footer with a non-zero
//! `insns_processed`. The rejection corpus itself runs as
//! `cargo test -p snapbpf-ebpf --test verifier_corpus`; this binary
//! covers the accept side. Exits non-zero with a diagnostic on the
//! first problem.

use std::process::ExitCode;

fn check() -> Result<String, String> {
    let report =
        snapbpf::verifier_log_report().map_err(|e| format!("shipped program rejected: {e}"))?;
    let logs: Vec<&str> = report
        .split("verifying program ")
        .filter(|s| !s.trim().is_empty())
        .collect();
    if logs.len() != 4 {
        return Err(format!(
            "expected 4 program logs (capture, looped prefetch, telemetry prefetch, cascade), found {}",
            logs.len()
        ));
    }
    for log in &logs {
        let name = log.lines().next().unwrap_or("?").trim_matches('`');
        let stats = log
            .lines()
            .find(|l| l.starts_with("verification stats:"))
            .ok_or_else(|| format!("program {name}: log has no stats footer"))?;
        if stats.contains("insns_processed=0 ") {
            return Err(format!(
                "program {name}: verifier processed no instructions"
            ));
        }
    }
    Ok(format!(
        "verifier_check: ok — {} programs verified with log enabled ({} log lines)",
        logs.len(),
        report.lines().count()
    ))
}

fn main() -> ExitCode {
    match check() {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("verifier_check: {msg}");
            ExitCode::FAILURE
        }
    }
}
