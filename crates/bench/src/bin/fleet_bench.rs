//! Wall-clock throughput benchmark for the fleet simulator.
//!
//! ```text
//! cargo run --release -p snapbpf-bench --bin fleet_bench            # print
//! cargo run --release -p snapbpf-bench --bin fleet_bench -- --write BENCH_fleet.json
//! cargo run --release -p snapbpf-bench --bin fleet_bench -- --check BENCH_fleet.json
//! ```
//!
//! Two timed configurations, both SnapBPF under Poisson traffic over
//! the eight-function front of the suite:
//!
//! * a single-host fleet run (`inv_per_s`), and
//! * an eight-host cluster run driven twice through the epoch/barrier
//!   engine (DESIGN.md §11) — once serially
//!   (`cluster_serial_inv_per_s`, threads = 1) and once on all
//!   available cores (`cluster_parallel_inv_per_s`, threads = 0);
//!   the baseline records the effective worker count as `threads`.
//!
//! The best rep of each is reported. `--write` stores the result as a
//! committed baseline; `--check` re-measures and fails if any
//! throughput fell more than 25 % below its baseline — the
//! regression gate CI runs on every push. The gate never *requires* a
//! parallel speedup (CI cores vary); it only catches regressions
//! against the machine-matched baseline.
//!
//! Only the wall clock around whole runs is measured; nothing inside
//! the simulator ever reads host time, so the benchmark cannot
//! perturb the (virtual-time) results it times.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use snapbpf::StrategyKind;
use snapbpf_fleet::{FleetConfig, PlacementKind, Runner};
use snapbpf_json::Json;
use snapbpf_sim::SimDuration;
use snapbpf_workloads::Workload;

/// Timed repetitions (after one untimed warmup); the best rep is
/// reported, which is the standard way to suppress scheduler noise
/// on shared CI runners.
const REPS: usize = 5;

/// Cluster reps: each run covers eight hosts, so fewer reps already
/// average plenty of work.
const CLUSTER_REPS: usize = 3;

/// Allowed slowdown vs. the baseline before `--check` fails.
const MAX_REGRESSION: f64 = 0.25;

/// The fixed single-host workload the benchmark times: eight
/// functions, SnapBPF strategy, a rate high enough that the run is
/// dominated by steady state rather than setup.
fn bench_cfg() -> (FleetConfig, Vec<Workload>) {
    let workloads: Vec<Workload> = Workload::suite().into_iter().take(8).collect();
    let mut cfg = FleetConfig::new(StrategyKind::SnapBpf, workloads.len(), 400.0)
        .at_scale(0.05)
        .with_seed(42);
    cfg.duration = SimDuration::from_secs(10);
    cfg.max_concurrency = 32;
    cfg.queue_depth = 512;
    (cfg, workloads)
}

/// The cluster configuration: the same suite front spread over eight
/// hosts under locality placement at a proportionally scaled rate.
fn cluster_cfg() -> (FleetConfig, Vec<Workload>) {
    let workloads: Vec<Workload> = Workload::suite().into_iter().take(8).collect();
    let mut cfg = FleetConfig::new(StrategyKind::SnapBpf, workloads.len(), 3200.0)
        .at_scale(0.05)
        .with_seed(42)
        .sharded(8, PlacementKind::Locality);
    cfg.duration = SimDuration::from_secs(2);
    cfg.max_concurrency = 32;
    cfg.queue_depth = 512;
    (cfg, workloads)
}

struct Measurement {
    invocations: u64,
    best_wall_s: f64,
    inv_per_s: f64,
    cluster_invocations: u64,
    /// Effective worker count of the parallel cluster measurement.
    threads: usize,
    cluster_serial_inv_per_s: f64,
    cluster_parallel_inv_per_s: f64,
}

/// Times `REPS` single-host runs and returns (arrivals, best wall
/// seconds).
fn time_fleet() -> Result<(u64, f64), Box<dyn std::error::Error>> {
    let (cfg, workloads) = bench_cfg();
    let run = || -> Result<u64, Box<dyn std::error::Error>> {
        let r = Runner::new(&cfg)
            .workloads(&workloads)
            .run()?
            .into_fleet()
            .expect("bench_cfg is single-host");
        Ok(r.aggregate.arrivals)
    };
    // Warmup: populate allocator and page-cache state once, untimed.
    let invocations = run()?;
    let mut best_wall_s = f64::INFINITY;
    for rep in 0..REPS {
        let t = Instant::now();
        let arrivals = run()?;
        let wall = t.elapsed().as_secs_f64();
        if arrivals != invocations {
            return Err("benchmark runs disagree on arrival count".into());
        }
        println!(
            "fleet rep {}/{}: {} invocations in {:.3} s ({:.0} inv/s)",
            rep + 1,
            REPS,
            invocations,
            wall,
            invocations as f64 / wall
        );
        best_wall_s = best_wall_s.min(wall);
    }
    Ok((invocations, best_wall_s))
}

/// Times `CLUSTER_REPS` cluster runs at the given worker-thread
/// count and returns (arrivals, best wall seconds).
fn time_cluster(threads: usize, label: &str) -> Result<(u64, f64), Box<dyn std::error::Error>> {
    let (cfg, workloads) = cluster_cfg();
    let run = || -> Result<u64, Box<dyn std::error::Error>> {
        let r = Runner::new(&cfg)
            .workloads(&workloads)
            .threads(threads)
            .run()?
            .into_cluster()
            .expect("cluster_cfg is multi-host");
        Ok(r.aggregate.arrivals)
    };
    let invocations = run()?;
    let mut best_wall_s = f64::INFINITY;
    for rep in 0..CLUSTER_REPS {
        let t = Instant::now();
        let arrivals = run()?;
        let wall = t.elapsed().as_secs_f64();
        if arrivals != invocations {
            return Err("benchmark runs disagree on arrival count".into());
        }
        println!(
            "cluster({label}) rep {}/{}: {} invocations in {:.3} s ({:.0} inv/s)",
            rep + 1,
            CLUSTER_REPS,
            invocations,
            wall,
            invocations as f64 / wall
        );
        best_wall_s = best_wall_s.min(wall);
    }
    Ok((invocations, best_wall_s))
}

fn measure() -> Result<Measurement, Box<dyn std::error::Error>> {
    let (invocations, best_wall_s) = time_fleet()?;
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let (cluster_invocations, serial_wall) = time_cluster(1, "serial")?;
    let (parallel_invocations, parallel_wall) = time_cluster(0, "parallel")?;
    if parallel_invocations != cluster_invocations {
        return Err("serial and parallel cluster runs disagree on arrival count".into());
    }
    Ok(Measurement {
        invocations,
        best_wall_s,
        inv_per_s: invocations as f64 / best_wall_s,
        cluster_invocations,
        threads: threads.min(8),
        cluster_serial_inv_per_s: cluster_invocations as f64 / serial_wall,
        cluster_parallel_inv_per_s: cluster_invocations as f64 / parallel_wall,
    })
}

fn to_json(m: &Measurement) -> Json {
    let (cfg, workloads) = bench_cfg();
    Json::object([
        ("bench".to_owned(), Json::from("fleet")),
        ("strategy".to_owned(), Json::from(cfg.strategy.label())),
        ("functions".to_owned(), Json::from(workloads.len() as u64)),
        ("rate_rps".to_owned(), Json::from(400.0)),
        (
            "virtual_duration_s".to_owned(),
            Json::from(cfg.duration.as_secs_f64()),
        ),
        ("reps".to_owned(), Json::from(REPS as u64)),
        ("invocations".to_owned(), Json::from(m.invocations)),
        (
            "best_wall_s".to_owned(),
            Json::from((m.best_wall_s * 1e6).round() / 1e6),
        ),
        ("inv_per_s".to_owned(), Json::from(m.inv_per_s.round())),
        ("cluster_hosts".to_owned(), Json::from(8u64)),
        (
            "cluster_invocations".to_owned(),
            Json::from(m.cluster_invocations),
        ),
        ("threads".to_owned(), Json::from(m.threads as u64)),
        (
            "cluster_serial_inv_per_s".to_owned(),
            Json::from(m.cluster_serial_inv_per_s.round()),
        ),
        (
            "cluster_parallel_inv_per_s".to_owned(),
            Json::from(m.cluster_parallel_inv_per_s.round()),
        ),
    ])
}

/// Gates one measured rate against its baseline counterpart.
fn gate(baseline: &Json, key: &str, measured: f64) -> Result<(), Box<dyn std::error::Error>> {
    let base_rate = baseline
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("baseline is missing {key}"))?;
    let floor = base_rate * (1.0 - MAX_REGRESSION);
    println!(
        "{key}: baseline {base_rate:.0} inv/s (floor {floor:.0}), measured {measured:.0} inv/s"
    );
    if measured < floor {
        return Err(format!(
            "{key} regressed more than {:.0} %: {measured:.0} inv/s vs baseline {base_rate:.0} inv/s",
            MAX_REGRESSION * 100.0,
        )
        .into());
    }
    Ok(())
}

fn check(baseline_path: &PathBuf, m: &Measurement) -> Result<(), Box<dyn std::error::Error>> {
    let baseline = Json::parse(&std::fs::read_to_string(baseline_path)?)?;
    gate(&baseline, "inv_per_s", m.inv_per_s)?;
    gate(
        &baseline,
        "cluster_serial_inv_per_s",
        m.cluster_serial_inv_per_s,
    )?;
    gate(
        &baseline,
        "cluster_parallel_inv_per_s",
        m.cluster_parallel_inv_per_s,
    )?;
    println!(
        "all throughputs within {:.0} % of baseline: ok",
        MAX_REGRESSION * 100.0
    );
    Ok(())
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut write: Option<PathBuf> = None;
    let mut check_path: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--write" => write = Some(PathBuf::from(value("--write")?)),
            "--check" => check_path = Some(PathBuf::from(value("--check")?)),
            "--help" | "-h" => {
                return Err("usage: fleet_bench [--write PATH | --check PATH]".into())
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }

    let m = measure()?;
    println!(
        "best fleet: {} invocations in {:.3} s = {:.0} invocations simulated per second",
        m.invocations, m.best_wall_s, m.inv_per_s
    );
    println!(
        "best cluster (8 hosts): serial {:.0} inv/s, parallel {:.0} inv/s ({} threads)",
        m.cluster_serial_inv_per_s, m.cluster_parallel_inv_per_s, m.threads
    );
    if let Some(path) = write {
        let mut text = to_json(&m).pretty();
        text.push('\n');
        std::fs::write(&path, text)?;
        println!("baseline written to {}", path.display());
    }
    if let Some(path) = check_path {
        check(&path, &m)?;
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
