//! Wall-clock throughput benchmark for the fleet simulator.
//!
//! ```text
//! cargo run --release -p snapbpf-bench --bin fleet_bench            # print
//! cargo run --release -p snapbpf-bench --bin fleet_bench -- --write BENCH_fleet.json
//! cargo run --release -p snapbpf-bench --bin fleet_bench -- --check BENCH_fleet.json
//! ```
//!
//! Runs a fixed SnapBPF fleet configuration (the full eight-function
//! front of the suite under Poisson traffic) a few times and reports
//! the best invocations-simulated-per-wall-second. `--write` stores
//! the result as a committed baseline; `--check` re-measures and
//! fails if throughput fell more than 25 % below the baseline —
//! the regression gate CI runs on every push.
//!
//! Only the wall clock around whole runs is measured; nothing inside
//! the simulator ever reads host time, so the benchmark cannot
//! perturb the (virtual-time) results it times.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use snapbpf::StrategyKind;
use snapbpf_fleet::{run_fleet, FleetConfig};
use snapbpf_json::Json;
use snapbpf_sim::SimDuration;
use snapbpf_workloads::Workload;

/// Timed repetitions (after one untimed warmup); the best rep is
/// reported, which is the standard way to suppress scheduler noise
/// on shared CI runners.
const REPS: usize = 5;

/// Allowed slowdown vs. the baseline before `--check` fails.
const MAX_REGRESSION: f64 = 0.25;

/// The fixed workload the benchmark times: eight functions, SnapBPF
/// strategy, a rate high enough that the run is dominated by steady
/// state rather than setup.
fn bench_cfg() -> (FleetConfig, Vec<Workload>) {
    let workloads: Vec<Workload> = Workload::suite().into_iter().take(8).collect();
    let mut cfg = FleetConfig::new(StrategyKind::SnapBpf, workloads.len(), 400.0)
        .at_scale(0.05)
        .with_seed(42);
    cfg.duration = SimDuration::from_secs(10);
    cfg.max_concurrency = 32;
    cfg.queue_depth = 512;
    (cfg, workloads)
}

struct Measurement {
    invocations: u64,
    best_wall_s: f64,
    inv_per_s: f64,
}

fn measure() -> Result<Measurement, Box<dyn std::error::Error>> {
    let (cfg, workloads) = bench_cfg();
    // Warmup: populate allocator and page-cache state once, untimed.
    let warm = run_fleet(&cfg, &workloads)?;
    let invocations = warm.aggregate.arrivals;

    let mut best_wall_s = f64::INFINITY;
    for rep in 0..REPS {
        let t = Instant::now();
        let r = run_fleet(&cfg, &workloads)?;
        let wall = t.elapsed().as_secs_f64();
        if r.aggregate.arrivals != invocations {
            return Err("benchmark runs disagree on arrival count".into());
        }
        println!(
            "rep {}/{}: {} invocations in {:.3} s ({:.0} inv/s)",
            rep + 1,
            REPS,
            invocations,
            wall,
            invocations as f64 / wall
        );
        best_wall_s = best_wall_s.min(wall);
    }
    Ok(Measurement {
        invocations,
        best_wall_s,
        inv_per_s: invocations as f64 / best_wall_s,
    })
}

fn to_json(m: &Measurement) -> Json {
    let (cfg, workloads) = bench_cfg();
    Json::object([
        ("bench".to_owned(), Json::from("fleet")),
        ("strategy".to_owned(), Json::from(cfg.strategy.label())),
        ("functions".to_owned(), Json::from(workloads.len() as u64)),
        ("rate_rps".to_owned(), Json::from(400.0)),
        (
            "virtual_duration_s".to_owned(),
            Json::from(cfg.duration.as_secs_f64()),
        ),
        ("reps".to_owned(), Json::from(REPS as u64)),
        ("invocations".to_owned(), Json::from(m.invocations)),
        (
            "best_wall_s".to_owned(),
            Json::from((m.best_wall_s * 1e6).round() / 1e6),
        ),
        ("inv_per_s".to_owned(), Json::from(m.inv_per_s.round())),
    ])
}

fn check(baseline_path: &PathBuf, m: &Measurement) -> Result<(), Box<dyn std::error::Error>> {
    let baseline = Json::parse(&std::fs::read_to_string(baseline_path)?)?;
    let base_rate = baseline
        .get("inv_per_s")
        .and_then(Json::as_f64)
        .ok_or("baseline is missing inv_per_s")?;
    let floor = base_rate * (1.0 - MAX_REGRESSION);
    println!(
        "baseline {:.0} inv/s (floor {:.0}), measured {:.0} inv/s",
        base_rate, floor, m.inv_per_s
    );
    if m.inv_per_s < floor {
        return Err(format!(
            "fleet throughput regressed more than {:.0} %: {:.0} inv/s vs baseline {:.0} inv/s",
            MAX_REGRESSION * 100.0,
            m.inv_per_s,
            base_rate
        )
        .into());
    }
    println!(
        "throughput within {:.0} % of baseline: ok",
        MAX_REGRESSION * 100.0
    );
    Ok(())
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut write: Option<PathBuf> = None;
    let mut check_path: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--write" => write = Some(PathBuf::from(value("--write")?)),
            "--check" => check_path = Some(PathBuf::from(value("--check")?)),
            "--help" | "-h" => {
                return Err("usage: fleet_bench [--write PATH | --check PATH]".into())
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }

    let m = measure()?;
    println!(
        "best: {} invocations in {:.3} s = {:.0} invocations simulated per second",
        m.invocations, m.best_wall_s, m.inv_per_s
    );
    if let Some(path) = write {
        let mut text = to_json(&m).pretty();
        text.push('\n');
        std::fs::write(&path, text)?;
        println!("baseline written to {}", path.display());
    }
    if let Some(path) = check_path {
        check(&path, &m)?;
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
