//! Validates a Chrome trace-event JSON file emitted by the
//! `fleet-trace` figure (CI smoke check).
//!
//! ```text
//! cargo run --release -p snapbpf-bench --bin trace_check -- <trace.json>
//! ```
//!
//! Re-parses the file with the in-tree JSON parser and asserts the
//! trace is non-empty and well-formed: a `traceEvents` array whose
//! events all carry the Chrome-required fields (`name`, `ph`, `pid`,
//! `tid`), with complete (`X`) events also carrying `ts` and `dur`.
//! Exits non-zero with a diagnostic on the first problem.

use std::process::ExitCode;

use snapbpf_json::Json;

fn check(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .ok_or_else(|| format!("{path}: missing traceEvents key"))?
        .as_array()
        .ok_or_else(|| format!("{path}: traceEvents is not an array"))?;
    if events.is_empty() {
        return Err(format!("{path}: traceEvents is empty"));
    }
    let mut spans = 0usize;
    let mut instants = 0usize;
    let mut metadata = 0usize;
    for (i, e) in events.iter().enumerate() {
        let field = |k: &str| {
            e.get(k)
                .ok_or_else(|| format!("{path}: event {i} missing `{k}`"))
        };
        field("name")?
            .as_str()
            .ok_or_else(|| format!("{path}: event {i} name is not a string"))?;
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("{path}: event {i} ph is not a string"))?;
        field("pid")?
            .as_u64()
            .ok_or_else(|| format!("{path}: event {i} pid is not an integer"))?;
        field("tid")?
            .as_u64()
            .ok_or_else(|| format!("{path}: event {i} tid is not an integer"))?;
        match ph {
            "X" => {
                field("ts")?;
                field("dur")?;
                spans += 1;
            }
            "i" => {
                field("ts")?;
                instants += 1;
            }
            "M" => metadata += 1,
            other => return Err(format!("{path}: event {i} has unknown phase `{other}`")),
        }
    }
    if spans + instants == 0 {
        return Err(format!("{path}: trace has metadata only, no real events"));
    }
    if doc.get("metrics").is_none() {
        return Err(format!("{path}: missing metrics snapshot"));
    }
    Ok(format!(
        "{path}: ok — {} events ({spans} spans, {instants} instants, {metadata} metadata)",
        events.len()
    ))
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/fleet-trace-events.json".into());
    match check(&path) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("trace_check: {msg}");
            ExitCode::FAILURE
        }
    }
}
