//! In-kernel telemetry smoke check (CI).
//!
//! ```text
//! cargo run --release -p snapbpf-bench --bin telemetry_check
//! ```
//!
//! Runs one traced SnapBPF fleet and asserts the end-to-end telemetry
//! pipeline held together: the eBPF prefetch programs reported
//! through their ring / per-CPU stats maps, the kernel drained them
//! into non-empty windowed per-function series, the scheduler-level
//! series agree with the latency metrics, and — at the default ring
//! sizing — not a single record was dropped. Exits non-zero with a
//! diagnostic on the first problem.

use std::process::ExitCode;

use snapbpf::StrategyKind;
use snapbpf_fleet::{FleetConfig, Runner};
use snapbpf_sim::SimDuration;
use snapbpf_workloads::Workload;

fn check() -> Result<String, String> {
    let workloads: Vec<Workload> = Workload::suite().into_iter().take(4).collect();
    let mut cfg = FleetConfig::new(StrategyKind::SnapBpf, workloads.len(), 60.0);
    cfg.scale = 0.05;
    cfg.duration = SimDuration::from_secs(3);
    let result = Runner::new(&cfg)
        .workloads(&workloads)
        .run()
        .map_err(|e| format!("fleet run failed: {e}"))?
        .into_fleet()
        .expect("hosts == 1");

    if result.aggregate.completions == 0 {
        return Err("fleet run completed nothing; telemetry cannot be checked".into());
    }
    if result.series.is_empty() {
        return Err("windowed series registry is empty after a traced fleet run".into());
    }

    // The kernel→user channel carried data: the prefetch programs
    // bumped their per-CPU stats and emitted ring records, and the
    // drain folded them into counters and per-function series.
    let issued = result.metrics.counter("ebpf.telemetry.issued");
    let pages = result.metrics.counter("ebpf.telemetry.pages");
    let completions = result.metrics.counter("ebpf.telemetry.completions");
    if issued == 0 || pages == 0 || completions == 0 {
        return Err(format!(
            "in-kernel telemetry is silent: issued {issued}, pages {pages}, \
             completions {completions}"
        ));
    }
    let kernel_series = result
        .series
        .iter()
        .filter(|(metric, _, _)| metric.starts_with("ebpf."))
        .count();
    if kernel_series == 0 {
        return Err("no ebpf.* windowed series despite non-zero telemetry counters".into());
    }

    // Overflow accounting: the default ring sizing must absorb every
    // record, and nothing may fail to decode.
    for counter in ["ebpf.ring.drops", "ebpf.telemetry.decode_errors"] {
        let n = result.metrics.counter(counter);
        if n != 0 {
            return Err(format!(
                "{counter} = {n}; expected 0 at the default ring size"
            ));
        }
    }

    // Scheduler-level series reconcile with the latency metrics: one
    // warm-hit sample per completion, one cold sample per cold start.
    let (mut hit_samples, mut cold_samples) = (0u64, 0u64);
    for (metric, _, bins) in result.series.iter() {
        let total: u64 = bins.values().map(|b| b.count()).sum();
        match metric {
            "fleet.warm_hit" => hit_samples += total,
            "fleet.cold_start_ns" => cold_samples += total,
            _ => {}
        }
    }
    if hit_samples != result.aggregate.completions {
        return Err(format!(
            "warm-hit series has {hit_samples} samples for {} completions",
            result.aggregate.completions
        ));
    }
    if cold_samples != result.aggregate.cold_starts {
        return Err(format!(
            "cold-start series has {cold_samples} samples for {} cold starts",
            result.aggregate.cold_starts
        ));
    }

    Ok(format!(
        "telemetry ok — {} completions, {issued} prefetches / {pages} pages reported \
         in-kernel, {} series ({kernel_series} ebpf.*), 0 ring drops",
        result.aggregate.completions,
        result.series.len(),
    ))
}

fn main() -> ExitCode {
    match check() {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("telemetry_check: {msg}");
            ExitCode::FAILURE
        }
    }
}
