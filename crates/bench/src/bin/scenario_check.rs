//! Scenario-battery smoke check (CI).
//!
//! ```text
//! cargo run --release -p snapbpf-bench --bin scenario_check
//! ```
//!
//! Runs every named F5 scenario (host crash, drain, flash crowd,
//! hot-function storm, noisy neighbor) at reduced scale and asserts
//! the battery's invariants end to end: every figure reports the
//! invocation-conservation identity intact, the crash actually
//! converts kills into retries, the drain loses nothing, the
//! noisy-neighbor run reports both tenants' restore latency, and
//! SnapBPF survives every shape at least as well as REAP. Exits
//! non-zero with a diagnostic on the first problem.

use std::process::ExitCode;

use snapbpf_fleet::figures::{fleet_scenario, FleetFigureConfig, SCENARIO_STRATEGIES};
use snapbpf_fleet::{PlacementKind, Scenario};

fn check() -> Result<String, String> {
    let cfg = FleetFigureConfig::quick(0.02);
    let snapbpf = SCENARIO_STRATEGIES
        .iter()
        .position(|k| k.label() == "SnapBPF")
        .expect("SnapBPF is in the scenario battery");
    let mut lines = Vec::new();
    for scenario in Scenario::ALL {
        let fig = fleet_scenario(scenario, &cfg)
            .map_err(|e| format!("{}: figure generation failed: {e}", scenario.label()))?;
        if fig.meta_value("conserved") != Some(1.0) {
            return Err(format!(
                "{}: invocation conservation violated",
                scenario.label()
            ));
        }
        let series = |label: &str| {
            fig.series_values(label)
                .map(<[f64]>::to_vec)
                .ok_or_else(|| format!("{}: missing series {label}", scenario.label()))
        };
        match scenario {
            Scenario::HostCrash => {
                // Retry is on, and the crash lands mid-surge: every
                // strategy × placement cell must retry something.
                for kind in SCENARIO_STRATEGIES {
                    let retried = series(&format!("{}-retried", kind.label()))?;
                    if retried.iter().any(|r| *r <= 0.0) {
                        return Err(format!(
                            "{}: crash retried nothing under some placement ({}: {retried:?})",
                            scenario.label(),
                            kind.label()
                        ));
                    }
                }
            }
            Scenario::Drain => {
                // A drain lets in-flight work finish; nothing fails.
                for kind in SCENARIO_STRATEGIES {
                    let failed = series(&format!("{}-failed", kind.label()))?;
                    if failed.iter().any(|f| *f != 0.0) {
                        return Err(format!(
                            "{}: drain failed invocations ({}: {failed:?})",
                            scenario.label(),
                            kind.label()
                        ));
                    }
                }
            }
            Scenario::NoisyNeighbor => {
                for kind in SCENARIO_STRATEGIES {
                    for tenant in ["victim", "aggressor"] {
                        let p99s = series(&format!("{}-{tenant}-restore-p99-s", kind.label()))?;
                        if p99s.iter().any(|v| *v <= 0.0) {
                            return Err(format!(
                                "{}: {tenant} tenant reports no restore latency \
                                 ({}: {p99s:?})",
                                scenario.label(),
                                kind.label()
                            ));
                        }
                    }
                }
            }
            Scenario::FlashCrowd | Scenario::HotStorm => {}
        }
        // Survivor ordering: the surviving strategy of every shape is
        // SnapBPF — faster restores mean fewer queue overflows under
        // bursts and a faster rebuild after faults.
        let ks = fig
            .meta_value("survivor-strategy")
            .ok_or_else(|| format!("{}: missing survivor-strategy meta", scenario.label()))?
            as usize;
        if ks != snapbpf {
            return Err(format!(
                "{}: survivor is {}, expected SnapBPF",
                scenario.label(),
                SCENARIO_STRATEGIES[ks].label()
            ));
        }
        let ps = fig
            .meta_value("survivor-placement")
            .ok_or_else(|| format!("{}: missing survivor-placement meta", scenario.label()))?
            as usize;
        lines.push(format!(
            "{}: SnapBPF/{} survives (ratio {:.3}, p99 {:.4}s)",
            scenario.label(),
            PlacementKind::ALL[ps].label(),
            fig.meta_value("survivor-completed-ratio").unwrap_or(0.0),
            fig.meta_value("survivor-e2e-p99-s").unwrap_or(0.0),
        ));
    }
    Ok(format!("scenario battery ok — {}", lines.join("; ")))
}

fn main() -> ExitCode {
    match check() {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("scenario_check: {msg}");
            ExitCode::FAILURE
        }
    }
}
