//! The DESIGN.md ablations: A1 FaaSnap coalescing, A2 device
//! sensitivity, A3 KVM CoW patch, A4 grouping/sorting.
//!
//! Regenerates each ablation's rows, then times one representative
//! configuration per ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use snapbpf::figures::{ablation_coalesce, ablation_cow, ablation_device, ablation_grouping};
use snapbpf::{run_one, DeviceKind, RunConfig, StrategyKind};
use snapbpf_bench::bench_config;
use snapbpf_workloads::Workload;
use std::hint::black_box;

fn regenerate_rows() {
    let cfg = bench_config();
    let chameleon = Workload::by_name("chameleon").expect("suite function");
    let bert = Workload::by_name("bert").expect("suite function");
    match ablation_coalesce(&chameleon, cfg.scale, &[0, 8, 32, 128, 512]) {
        Ok(fig) => println!("{}", fig.render()),
        Err(e) => eprintln!("ablation-coalesce failed: {e}"),
    }
    match ablation_device(&bert, cfg.scale) {
        Ok(fig) => println!("{}", fig.render()),
        Err(e) => eprintln!("ablation-device failed: {e}"),
    }
    match ablation_cow(&cfg) {
        Ok(fig) => println!("{}", fig.render()),
        Err(e) => eprintln!("ablation-cow failed: {e}"),
    }
    match ablation_grouping(&cfg) {
        Ok(fig) => println!("{}", fig.render()),
        Err(e) => eprintln!("ablation-grouping failed: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    regenerate_rows();

    let bert = Workload::by_name("bert").expect("suite function");
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("device/hdd/snapbpf", |b| {
        let cfg = RunConfig::single(0.05).on(DeviceKind::Hdd7200);
        b.iter(|| run_one(StrategyKind::SnapBpf, black_box(&bert), &cfg).expect("run"))
    });
    g.bench_function("cow/buggy/4x", |b| {
        let cfg = RunConfig::concurrent(0.05, 4);
        b.iter(|| run_one(StrategyKind::SnapBpfBuggyCow, black_box(&bert), &cfg).expect("run"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
