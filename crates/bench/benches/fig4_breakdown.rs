//! Figure 4: the PV-PTE-marking vs eBPF-prefetch breakdown.
//!
//! Regenerates the normalized rows, then times the two mechanism
//! variants on the workloads where each dominates.

use criterion::{criterion_group, criterion_main, Criterion};
use snapbpf::figures::fig4;
use snapbpf::{run_one, RunConfig, StrategyKind};
use snapbpf_bench::bench_config;
use snapbpf_workloads::Workload;
use std::hint::black_box;

fn regenerate_rows() {
    match fig4(&bench_config()) {
        Ok(fig) => println!("{}", fig.render()),
        Err(e) => eprintln!("fig4 failed: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    regenerate_rows();

    let image = Workload::by_name("image").expect("suite function");
    let rnn = Workload::by_name("rnn").expect("suite function");
    let cfg = RunConfig::single(0.05);
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("image/pv-only", |b| {
        b.iter(|| run_one(StrategyKind::SnapBpfPvOnly, black_box(&image), &cfg).expect("run"))
    });
    g.bench_function("image/full", |b| {
        b.iter(|| run_one(StrategyKind::SnapBpf, black_box(&image), &cfg).expect("run"))
    });
    g.bench_function("rnn/pv-only", |b| {
        b.iter(|| run_one(StrategyKind::SnapBpfPvOnly, black_box(&rnn), &cfg).expect("run"))
    });
    g.bench_function("rnn/full", |b| {
        b.iter(|| run_one(StrategyKind::SnapBpf, black_box(&rnn), &cfg).expect("run"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
