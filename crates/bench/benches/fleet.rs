//! F1x fleet experiments: regenerate the fleet figures at bench
//! scale and time one representative fleet run per strategy.

use criterion::{criterion_group, criterion_main, Criterion};
use snapbpf::StrategyKind;
use snapbpf_fleet::figures::{fleet_breakdown, fleet_keepalive, fleet_sweep, FleetFigureConfig};
use snapbpf_fleet::{FleetConfig, Runner};
use snapbpf_sim::SimDuration;
use snapbpf_workloads::Workload;
use std::hint::black_box;

fn regenerate_rows() {
    let cfg = FleetFigureConfig::quick(0.05);
    match fleet_sweep(&cfg) {
        Ok(fig) => println!("{}", fig.render()),
        Err(e) => eprintln!("fleet-sweep failed: {e}"),
    }
    match fleet_breakdown(&cfg) {
        Ok(fig) => println!("{}", fig.render()),
        Err(e) => eprintln!("fleet-breakdown failed: {e}"),
    }
    match fleet_keepalive(&cfg) {
        Ok(fig) => println!("{}", fig.render()),
        Err(e) => eprintln!("fleet-keepalive failed: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    regenerate_rows();

    let workloads: Vec<Workload> = Workload::suite().into_iter().take(6).collect();
    let mut g = c.benchmark_group("fleet");
    g.sample_size(10);
    for kind in [StrategyKind::Reap, StrategyKind::SnapBpf] {
        let mut cfg = FleetConfig::new(kind, workloads.len(), 60.0);
        cfg.scale = 0.05;
        cfg.duration = SimDuration::from_millis(500);
        g.bench_function(&format!("run/{}/60rps", kind.label()), |b| {
            b.iter(|| {
                Runner::new(black_box(&cfg))
                    .workloads(&workloads)
                    .run()
                    .expect("fleet run")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
