//! Figure 3c: system-wide memory with 10 concurrent sandboxes.
//!
//! Regenerates the figure's rows, then times the memory-accounting
//! path for the dedup-critical workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use snapbpf::figures::fig3c;
use snapbpf::{run_one, RunConfig, StrategyKind};
use snapbpf_bench::bench_config;
use snapbpf_workloads::Workload;
use std::hint::black_box;

fn regenerate_rows() {
    match fig3c(&bench_config()) {
        Ok(fig) => {
            println!("{}", fig.render());
            if let (Some(reap), Some(snap)) =
                (fig.series_values("REAP"), fig.series_values("SnapBPF"))
            {
                let best = reap
                    .iter()
                    .zip(snap)
                    .map(|(r, s)| r / s)
                    .fold(f64::MIN, f64::max);
                println!("max REAP/SnapBPF memory ratio: {best:.1}x (paper: up to 6x)\n");
            }
        }
        Err(e) => eprintln!("fig3c failed: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    regenerate_rows();

    let bfs = Workload::by_name("bfs").expect("suite function");
    let cfg = RunConfig::concurrent(0.05, 10);
    let mut g = c.benchmark_group("fig3c");
    g.sample_size(10);
    g.bench_function("bfs/snapbpf-10x", |b| {
        b.iter(|| run_one(StrategyKind::SnapBpf, black_box(&bfs), &cfg).expect("run"))
    });
    g.bench_function("bfs/reap-10x", |b| {
        b.iter(|| run_one(StrategyKind::Reap, black_box(&bfs), &cfg).expect("run"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
