//! Figures 3a and 3b: end-to-end invocation latency, single and
//! concurrent.
//!
//! Running this bench first regenerates both figures' rows (printed
//! to stdout), then times representative single runs under
//! Criterion so regressions in the simulation stack are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use snapbpf::figures::{fig3a, fig3b};
use snapbpf::{run_one, RunConfig, StrategyKind};
use snapbpf_bench::bench_config;
use snapbpf_workloads::Workload;
use std::hint::black_box;

fn regenerate_rows() {
    let cfg = bench_config();
    match fig3a(&cfg) {
        Ok(fig) => {
            println!("{}", fig.render());
            println!("{}", fig.normalized_to("REAP").render());
        }
        Err(e) => eprintln!("fig3a failed: {e}"),
    }
    match fig3b(&cfg) {
        Ok(fig) => {
            println!("{}", fig.render());
            println!("{}", fig.normalized_to("Linux-NoRA").render());
        }
        Err(e) => eprintln!("fig3b failed: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    regenerate_rows();

    let json = Workload::by_name("json").expect("suite function");
    let bert = Workload::by_name("bert").expect("suite function");
    let single = RunConfig::single(0.05);
    let concurrent = RunConfig::concurrent(0.05, 10);

    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("fig3a/json/snapbpf", |b| {
        b.iter(|| run_one(StrategyKind::SnapBpf, black_box(&json), &single).expect("run"))
    });
    g.bench_function("fig3a/json/reap", |b| {
        b.iter(|| run_one(StrategyKind::Reap, black_box(&json), &single).expect("run"))
    });
    g.bench_function("fig3b/bert/snapbpf-10x", |b| {
        b.iter(|| run_one(StrategyKind::SnapBpf, black_box(&bert), &concurrent).expect("run"))
    });
    g.bench_function("fig3b/bert/reap-10x", |b| {
        b.iter(|| run_one(StrategyKind::Reap, black_box(&bert), &concurrent).expect("run"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
