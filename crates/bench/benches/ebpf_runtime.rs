//! Micro-benchmarks of the eBPF runtime itself: verifier throughput
//! and interpreter instructions-per-second on the actual SnapBPF
//! capture/prefetch programs, plus text/bytecode codec speed.
//!
//! These guard the simulation's own performance: the capture program
//! runs once per page-cache insertion, so a slow interpreter would
//! make the full-suite figure regeneration crawl.

use criterion::{criterion_group, criterion_main, Criterion};
use snapbpf::{build_capture_program, build_prefetch_program, groups_map_def, wset_map_def};
use snapbpf_ebpf::{
    decode_program, encode_program, parse_program, Interpreter, KfuncSig, MapSet, NoKfuncs,
    Verifier,
};
use snapbpf_storage::{Disk, SsdModel};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Mint a real FileId and build the production programs.
    let mut disk = Disk::new(Box::new(SsdModel::micron_5300()));
    let snap = disk.create_file("snap", 1024).unwrap();
    let mut maps = MapSet::new();
    let wset = maps.create(wset_map_def(4096)).unwrap();
    let groups = maps.create(groups_map_def(256)).unwrap();
    let capture = build_capture_program(snap, wset, 4096);
    let prefetch = build_prefetch_program(snap, groups, 256);
    let sigs = [KfuncSig {
        name: "snapbpf_prefetch",
        args: 3,
    }];

    let mut g = c.benchmark_group("ebpf");
    g.bench_function("verify/capture", |b| {
        b.iter(|| {
            Verifier::new(&maps, &sigs)
                .verify(black_box(&capture))
                .expect("verifies")
        })
    });
    g.bench_function("verify/prefetch", |b| {
        b.iter(|| {
            Verifier::new(&maps, &sigs)
                .verify(black_box(&prefetch))
                .expect("verifies")
        })
    });

    let verified_capture = Verifier::new(&maps, &sigs).verify(&capture).unwrap();
    g.bench_function("run/capture-hit", |b| {
        let mut interp = Interpreter::new();
        let ctx = [snap.as_u32() as u64, 42, 0];
        b.iter(|| {
            interp
                .run(black_box(&verified_capture), &ctx, &mut maps, &mut NoKfuncs)
                .expect("runs")
        })
    });
    g.bench_function("run/capture-filtered", |b| {
        let mut interp = Interpreter::new();
        let ctx = [9999u64, 42, 0]; // other file: early exit path
        b.iter(|| {
            interp
                .run(black_box(&verified_capture), &ctx, &mut maps, &mut NoKfuncs)
                .expect("runs")
        })
    });

    g.bench_function("codec/encode+decode", |b| {
        b.iter(|| {
            let bytes = encode_program(black_box(&prefetch));
            decode_program(&bytes).expect("decodes")
        })
    });
    g.bench_function("codec/text-roundtrip", |b| {
        let text = prefetch.to_string();
        b.iter(|| parse_program("p", black_box(&text)).expect("parses"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
