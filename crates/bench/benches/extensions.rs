//! The paper's deferred future work, implemented as extensions
//! (DESIGN.md E1–E3): input variation vs deduplication,
//! computational cost analysis, and memory-pressure behaviour.

use criterion::{criterion_group, criterion_main, Criterion};
use snapbpf::figures::{ext_cost_analysis, ext_input_variants, ext_memory_pressure, FigureConfig};
use snapbpf::{run_one, RunConfig, StrategyKind};
use snapbpf_bench::bench_config;
use snapbpf_workloads::Workload;
use std::hint::black_box;

fn regenerate_rows() {
    let base = bench_config();
    let trio = FigureConfig {
        workloads: ["html", "bfs", "bert"]
            .iter()
            .map(|n| Workload::by_name(n).expect("suite function"))
            .collect(),
        ..base.clone()
    };
    match ext_input_variants(&trio) {
        Ok(fig) => println!("{}", fig.render()),
        Err(e) => eprintln!("ext-variants failed: {e}"),
    }
    match ext_cost_analysis(&base) {
        Ok(fig) => println!("{}", fig.render()),
        Err(e) => eprintln!("ext-costs failed: {e}"),
    }
    let bert = Workload::by_name("bert").expect("suite function");
    let cap_pages = ((bert.scaled(base.scale).spec().ws_pages() * 2) >> 10).max(2) << 10;
    match ext_memory_pressure(&bert, base.scale, base.instances, cap_pages) {
        Ok(fig) => println!("{}", fig.render()),
        Err(e) => eprintln!("ext-memory-pressure failed: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    regenerate_rows();

    let bert = Workload::by_name("bert").expect("suite function");
    let cfg = RunConfig::concurrent(0.05, 6).with_varying_inputs();
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    g.bench_function("variants/bert/snapbpf-6x", |b| {
        b.iter(|| run_one(StrategyKind::SnapBpf, black_box(&bert), &cfg).expect("run"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
