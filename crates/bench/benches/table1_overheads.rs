//! Table 1 (mechanism comparison) and the §4 "SnapBPF Overheads"
//! analysis (offsets-map loading).
//!
//! Prints both, then times the overhead-critical kernel paths: the
//! offsets-map load and the eBPF capture/prefetch program execution.

use criterion::{criterion_group, criterion_main, Criterion};
use snapbpf::figures::{overheads, table1};
use snapbpf::{run_one, RunConfig, StrategyKind};
use snapbpf_bench::bench_config;
use snapbpf_workloads::Workload;
use std::hint::black_box;

fn regenerate_rows() {
    println!("{}", table1());
    match overheads(&bench_config()) {
        Ok(fig) => {
            println!("{}", fig.render());
            let ms = fig.series_values("offset-load-ms").unwrap_or(&[]);
            let mean = ms.iter().sum::<f64>() / ms.len().max(1) as f64;
            println!("mean offsets-load latency: {mean:.2} ms (paper: ~1-2 ms)\n");
        }
        Err(e) => eprintln!("overheads failed: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    regenerate_rows();

    let cnn = Workload::by_name("cnn").expect("suite function");
    let cfg = RunConfig::single(0.05);
    let mut g = c.benchmark_group("overheads");
    g.sample_size(10);
    g.bench_function("cnn/snapbpf-record+restore", |b| {
        b.iter(|| run_one(StrategyKind::SnapBpf, black_box(&cnn), &cfg).expect("run"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
