//! Property-based tests for trace generation: structural invariants
//! must hold for arbitrary profiles, scales, and variants.

use proptest::prelude::*;
use snapbpf_sim::SimDuration;
use snapbpf_workloads::{FunctionSpec, InvocationTrace, Step, Workload};

fn arb_spec() -> impl Strategy<Value = FunctionSpec> {
    (
        8u64..256,    // snapshot MiB
        0.1f64..0.3,  // ws fraction of snapshot
        1u32..400,    // clusters
        0.0f64..0.2,  // ephemeral fraction of snapshot
        0.1f64..50.0, // compute ms
        0.0f64..0.9,  // write fraction
    )
        .prop_map(|(snap, wsf, clusters, ephf, compute, wf)| FunctionSpec {
            name: "arb",
            snapshot_mib: snap,
            ws_mib: (snap as f64 * wsf).max(0.01),
            ws_clusters: clusters,
            ephemeral_mib: snap as f64 * ephf * 0.24, // fits the heap quarter
            compute_ms: compute,
            write_frac: wf,
        })
}

proptest! {
    /// Every trace satisfies the structural invariants the strategies
    /// rely on, for arbitrary profiles and variants.
    #[test]
    fn trace_invariants(spec in arb_spec(), variant in 0u32..4) {
        let t = InvocationTrace::generate(&spec, variant);
        let snapshot_pages = spec.snapshot_pages();
        let heap_start = snapshot_pages * 3 / 4;

        // WS pages are sorted, unique, and inside the WS region.
        let ws = t.ws_page_list();
        prop_assert!(ws.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(ws.iter().all(|&p| p < heap_start));

        // Ephemeral pages live in the heap and are disjoint from WS.
        for &p in t.ephemeral_page_list() {
            prop_assert!(p >= heap_start && p < snapshot_pages);
        }

        // Clusters are disjoint, in file order, and cover exactly
        // the WS pages.
        let mut covered = 0u64;
        let mut prev_end = 0;
        for c in t.clusters() {
            prop_assert!(c.start >= prev_end);
            prev_end = c.start + c.len;
            covered += c.len;
        }
        prop_assert_eq!(covered as usize, ws.len());

        // The steps touch each WS page and each ephemeral page
        // exactly once.
        let mut accesses = Vec::new();
        let mut allocs = Vec::new();
        for s in t.steps() {
            match s {
                Step::Access { gpfn, .. } => accesses.push(*gpfn),
                Step::Alloc { gpfn } => allocs.push(*gpfn),
                Step::Compute(_) => {}
            }
        }
        let mut sorted = accesses.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), accesses.len(), "each WS page touched once");
        prop_assert_eq!(&sorted[..], ws);
        prop_assert_eq!(&allocs[..], t.ephemeral_page_list());

        // Compute slices sum to at most the spec's compute time.
        let sum: SimDuration = t
            .steps()
            .iter()
            .filter_map(|s| match s {
                Step::Compute(d) => Some(*d),
                _ => None,
            })
            .sum();
        prop_assert!(sum <= t.total_compute());
    }

    /// Generation is a pure function of (spec, variant).
    #[test]
    fn generation_deterministic(spec in arb_spec(), variant in 0u32..4) {
        prop_assert_eq!(
            InvocationTrace::generate(&spec, variant),
            InvocationTrace::generate(&spec, variant)
        );
    }

    /// Scaling preserves invariants for the whole suite.
    #[test]
    fn suite_scales_cleanly(scale in 0.02f64..1.0, idx in 0usize..14) {
        let w = Workload::suite()[idx].scaled(scale);
        let t = w.trace();
        prop_assert!(!t.ws_page_list().is_empty());
        prop_assert!(t.ws_page_list().len() as u64 <= w.spec().ws_pages());
        let region = w.snapshot_pages() * 3 / 4;
        prop_assert!(t.ws_page_list().iter().all(|&p| p < region));
    }
}
