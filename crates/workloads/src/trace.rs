//! Invocation trace generation.
//!
//! A trace is the memory-level behaviour of one function invocation:
//! an ordered sequence of guest-page accesses (the working set, laid
//! out in contiguous clusters across the snapshot), fresh-allocation
//! events (the guest heap the PV PTE mechanism targets), and compute
//! phases between them.
//!
//! Traces are deterministic in `(function name, variant)`: invoking
//! with "identical inputs", as the paper's evaluation does, replays
//! the identical trace, so the recorded working set matches the
//! invocation-phase working set exactly.

use snapbpf_sim::{SimDuration, SplitMix64};

use crate::spec::FunctionSpec;

/// One step of an invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Compute for the given duration (no memory stall).
    Compute(SimDuration),
    /// Touch a guest page that is part of the snapshot state.
    Access {
        /// Guest page frame number (= snapshot file page).
        gpfn: u64,
        /// Whether the access writes.
        write: bool,
    },
    /// The guest allocator hands out a fresh page (first touch of
    /// ephemeral memory). Always a write. With PV PTE marking the
    /// guest maps it mirror-marked; without it, this is an ordinary
    /// write fault that drags dead bytes in from the snapshot.
    Alloc {
        /// Guest page frame number.
        gpfn: u64,
    },
}

/// A contiguous run of working-set pages, with its access rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WsCluster {
    /// First guest page of the cluster.
    pub start: u64,
    /// Length in pages.
    pub len: u64,
    /// Position in access order (0 = touched first).
    pub access_rank: u32,
}

/// The generated trace of one invocation.
///
/// Traces are immutable after generation and shared by reference
/// counting: every dispatch of a function clones its trace into the
/// invocation cursor, so `Clone` must be an `Arc` bump, not a copy
/// of the (potentially tens-of-thousands-of-steps) step vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvocationTrace {
    body: std::sync::Arc<TraceBody>,
}

#[derive(Debug, PartialEq, Eq)]
struct TraceBody {
    steps: Vec<Step>,
    clusters: Vec<WsCluster>,
    ws_pages: Vec<u64>,
    ephemeral_pages: Vec<u64>,
    total_compute: SimDuration,
}

impl InvocationTrace {
    /// Generates the trace for `spec`, variant `variant` (variant 0
    /// is the canonical input; other variants shift a fraction of
    /// the working set, for the paper's future-work direction of
    /// varying inputs).
    pub fn generate(spec: &FunctionSpec, variant: u32) -> InvocationTrace {
        let snapshot_pages = spec.snapshot_pages();
        let ws_pages = spec.ws_pages().min(snapshot_pages / 2);

        // Guest memory layout:
        //   [0, 1/2)    — initialized state touched by *every* input
        //                 (runtime, libraries, model weights),
        //   [1/2, 3/4)  — input-dependent state (caches, per-request
        //                 indices): which pages are touched varies
        //                 with the invocation's input (the paper's
        //                 future-work dimension),
        //   [3/4, 1)    — the guest heap (ephemeral allocations).
        let stable_region_end = snapshot_pages / 2;
        let ws_region = snapshot_pages * 3 / 4;
        let heap_start = ws_region;

        // 3/4 of the working set is input-independent; the rest
        // depends on the input variant.
        let var_ws = (ws_pages / 4).min(ws_region - stable_region_end);
        let stable_ws = ws_pages - var_ws;
        let n_clusters = (spec.ws_clusters as u64).clamp(1, ws_pages) as usize;
        let var_clusters = ((n_clusters / 4).max(1)).min(var_ws.max(1) as usize);
        let stable_clusters = (n_clusters - var_clusters.min(n_clusters - 1)).max(1);

        let mut stable_rng = SplitMix64::new(seed_for(spec.name, 0));
        let mut clusters = place_clusters(
            &mut stable_rng,
            stable_ws,
            stable_clusters,
            0,
            stable_region_end,
        );
        let mut variant_rng =
            SplitMix64::new(seed_for(spec.name, variant) ^ variant_stream_marker());
        if var_ws > 0 {
            clusters.extend(place_clusters(
                &mut variant_rng,
                var_ws,
                var_clusters,
                stable_region_end,
                ws_region,
            ));
        }
        let n_clusters = clusters.len();

        // --- Access order: a deterministic, input-dependent shuffle
        // of the clusters, so file order and access order differ
        // (the reason SnapBPF sorts groups by earliest access). ---
        let mut rng = SplitMix64::new(seed_for(spec.name, variant) ^ 0x000D_DE55);
        let mut order: Vec<usize> = (0..n_clusters).collect();
        rng.shuffle(&mut order);
        for (rank, &ci) in order.iter().enumerate() {
            clusters[ci].access_rank = rank as u32;
        }

        // --- Ephemeral allocations: sequential heap pages, split
        // into batches spread through the invocation. ---
        let eph_count = spec.ephemeral_pages().min(snapshot_pages - heap_start);
        let ephemeral_pages: Vec<u64> = (0..eph_count).map(|i| heap_start + i).collect();

        // --- Compute: split across cluster boundaries. ---
        let total_compute = SimDuration::from_secs_f64(spec.compute_ms / 1e3);
        let slices = (n_clusters + 1) as u64;
        let compute_slice = total_compute / slices;

        // --- Assemble the step sequence. ---
        let mut steps = Vec::new();
        let mut eph_iter = ephemeral_pages.iter().copied();
        let eph_per_cluster = (eph_count as usize).div_ceil(n_clusters.max(1));
        for (rank, &ci) in order.iter().enumerate() {
            steps.push(Step::Compute(compute_slice));
            let c = clusters[ci];
            for p in c.start..c.start + c.len {
                let write = rng.next_bool(spec.write_frac);
                steps.push(Step::Access { gpfn: p, write });
            }
            // A slice of allocations after each cluster (functions
            // allocate as they go, not all at once) — skewed to the
            // early-middle of the invocation like real allocators.
            if rank < n_clusters {
                for _ in 0..eph_per_cluster {
                    if let Some(gpfn) = eph_iter.next() {
                        steps.push(Step::Alloc { gpfn });
                    }
                }
            }
        }
        for gpfn in eph_iter {
            steps.push(Step::Alloc { gpfn });
        }
        steps.push(Step::Compute(compute_slice));

        let mut ws_pages_list: Vec<u64> = clusters
            .iter()
            .flat_map(|c| c.start..c.start + c.len)
            .collect();
        ws_pages_list.sort_unstable();
        ws_pages_list.dedup();

        InvocationTrace {
            body: std::sync::Arc::new(TraceBody {
                steps,
                clusters,
                ws_pages: ws_pages_list,
                ephemeral_pages,
                total_compute,
            }),
        }
    }

    /// The ordered steps.
    pub fn steps(&self) -> &[Step] {
        &self.body.steps
    }

    /// Working-set clusters in file order (access order is in
    /// [`WsCluster::access_rank`]).
    pub fn clusters(&self) -> &[WsCluster] {
        &self.body.clusters
    }

    /// Sorted, deduplicated snapshot pages the invocation reads
    /// (excluding ephemeral allocations).
    pub fn ws_page_list(&self) -> &[u64] {
        &self.body.ws_pages
    }

    /// Guest pages allocated during the invocation.
    pub fn ephemeral_page_list(&self) -> &[u64] {
        &self.body.ephemeral_pages
    }

    /// Total compute time across the trace.
    pub fn total_compute(&self) -> SimDuration {
        self.body.total_compute
    }

    /// Number of memory steps (accesses + allocations).
    pub fn memory_steps(&self) -> usize {
        self.body
            .steps
            .iter()
            .filter(|s| !matches!(s, Step::Compute(_)))
            .count()
    }
}

/// Places `n_clusters` clusters totalling `ws_pages` pages inside
/// `[region_start, region_end)`: jittered lengths, heavy-tailed gaps
/// (many small gaps, a few huge ones — matching real working sets
/// where related objects sit near each other, and giving FaaSnap's
/// coalescing something to merge). Clusters come out in file order,
/// pairwise disjoint.
fn place_clusters(
    rng: &mut SplitMix64,
    ws_pages: u64,
    n_clusters: usize,
    region_start: u64,
    region_end: u64,
) -> Vec<WsCluster> {
    let region = region_end.saturating_sub(region_start);
    let ws_pages = ws_pages.min(region);
    if ws_pages == 0 {
        return Vec::new();
    }
    let n_clusters = n_clusters.clamp(1, ws_pages as usize);

    // Lengths: average ws/n, jittered ±50%.
    let avg = (ws_pages / n_clusters as u64).max(1);
    let mut lens = Vec::with_capacity(n_clusters);
    let mut remaining = ws_pages;
    for i in 0..n_clusters {
        let left = n_clusters - i;
        let len = if left == 1 {
            remaining
        } else {
            let lo = (avg / 2).max(1);
            let hi = (avg * 3 / 2).max(lo + 1);
            rng.next_range(lo, hi).min(remaining - (left as u64 - 1))
        };
        lens.push(len.max(1));
        remaining -= len.max(1).min(remaining);
    }

    // Placement: heavy-tailed gaps.
    let used: u64 = lens.iter().sum();
    let slack = region.saturating_sub(used);
    let mut gap_weights: Vec<f64> = (0..=n_clusters)
        .map(|_| rng.next_f64().powi(6) + 0.0005)
        .collect();
    let weight_sum: f64 = gap_weights.iter().sum();
    for w in &mut gap_weights {
        *w /= weight_sum;
    }
    let mut clusters = Vec::with_capacity(n_clusters);
    let mut cursor = region_start;
    for (i, &len) in lens.iter().enumerate() {
        cursor += (gap_weights[i] * slack as f64) as u64;
        clusters.push(WsCluster {
            start: cursor.min(region_end.saturating_sub(len)),
            len,
            access_rank: 0,
        });
        cursor = clusters.last().expect("just pushed").start + len;
    }
    clusters
}

/// Seed mix for the variant-cluster stream (kept distinct from the
/// shuffle stream).
const fn variant_stream_marker() -> u64 {
    0x7A11_BEEF
}

fn seed_for(name: &str, variant: u32) -> u64 {
    // FNV-1a over the name, mixed with the variant.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ ((variant as u64) << 32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FAASMEM, FUNCTIONBENCH};

    fn small() -> FunctionSpec {
        FUNCTIONBENCH[0].scaled(0.1) // json at 10%
    }

    #[test]
    fn deterministic_for_same_inputs() {
        let spec = small();
        let a = InvocationTrace::generate(&spec, 0);
        let b = InvocationTrace::generate(&spec, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn variants_differ() {
        let spec = small();
        let a = InvocationTrace::generate(&spec, 0);
        let b = InvocationTrace::generate(&spec, 1);
        assert_ne!(a.ws_page_list(), b.ws_page_list());
    }

    #[test]
    fn ws_size_matches_spec() {
        for spec in FUNCTIONBENCH.iter().chain(FAASMEM) {
            let spec = spec.scaled(0.05);
            let t = InvocationTrace::generate(&spec, 0);
            let got = t.ws_page_list().len() as u64;
            let want = spec.ws_pages().min(spec.snapshot_pages() / 2);
            // Placement may merge adjacent clusters; sizes must agree
            // within a small tolerance.
            assert!(
                got >= want * 9 / 10 && got <= want,
                "{}: ws {got} vs spec {want}",
                spec.name
            );
        }
    }

    #[test]
    fn clusters_are_in_bounds_and_ordered() {
        let spec = small();
        let t = InvocationTrace::generate(&spec, 0);
        let region = spec.snapshot_pages() * 3 / 4;
        let mut prev_end = 0;
        for c in t.clusters() {
            assert!(c.start >= prev_end, "clusters must not overlap");
            assert!(c.start + c.len <= region, "cluster leaks into heap region");
            prev_end = c.start + c.len;
        }
        // Ranks form a permutation.
        let mut ranks: Vec<u32> = t.clusters().iter().map(|c| c.access_rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..t.clusters().len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn access_order_differs_from_file_order() {
        // With dozens of clusters the shuffle virtually never leaves
        // them fully sorted; if it did, sorting by access time in
        // SnapBPF would be pointless.
        let spec = FUNCTIONBENCH[5].scaled(0.2); // image, 18 clusters
        let t = InvocationTrace::generate(&spec, 0);
        let ranks: Vec<u32> = t.clusters().iter().map(|c| c.access_rank).collect();
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        assert_ne!(ranks, sorted);
    }

    #[test]
    fn ephemeral_pages_live_in_heap_region() {
        let spec = FUNCTIONBENCH[5].scaled(0.1); // image: allocation-heavy
        let t = InvocationTrace::generate(&spec, 0);
        let heap_start = spec.snapshot_pages() * 3 / 4;
        assert!(!t.ephemeral_page_list().is_empty());
        for &p in t.ephemeral_page_list() {
            assert!(p >= heap_start);
            assert!(p < spec.snapshot_pages());
        }
        // Disjoint from the working set.
        for &p in t.ephemeral_page_list() {
            assert!(t.ws_page_list().binary_search(&p).is_err());
        }
    }

    #[test]
    fn steps_cover_ws_and_ephemeral_exactly_once() {
        let spec = small();
        let t = InvocationTrace::generate(&spec, 0);
        let mut accessed = Vec::new();
        let mut allocated = Vec::new();
        for s in t.steps() {
            match s {
                Step::Access { gpfn, .. } => accessed.push(*gpfn),
                Step::Alloc { gpfn } => allocated.push(*gpfn),
                Step::Compute(_) => {}
            }
        }
        accessed.sort_unstable();
        accessed.dedup();
        assert_eq!(accessed, t.ws_page_list());
        assert_eq!(allocated, t.ephemeral_page_list());
        assert_eq!(t.memory_steps(), accessed.len() + allocated.len());
    }

    #[test]
    fn compute_total_matches_spec() {
        let spec = small();
        let t = InvocationTrace::generate(&spec, 0);
        let sum: SimDuration = t
            .steps()
            .iter()
            .filter_map(|s| match s {
                Step::Compute(d) => Some(*d),
                _ => None,
            })
            .sum();
        let want = SimDuration::from_secs_f64(spec.compute_ms / 1e3);
        // Integer slicing may lose at most one slice worth of time.
        assert!(sum <= want);
        assert!(sum >= want.mul_f64(0.9), "sum {sum} vs want {want}");
        assert_eq!(t.total_compute(), want);
    }

    #[test]
    fn writes_respect_write_fraction() {
        let mut spec = FAASMEM[1].scaled(0.2); // bfs
        spec.write_frac = 0.25;
        let t = InvocationTrace::generate(&spec, 0);
        let (mut writes, mut reads) = (0u64, 0u64);
        for s in t.steps() {
            if let Step::Access { write, .. } = s {
                if *write {
                    writes += 1;
                } else {
                    reads += 1;
                }
            }
        }
        let frac = writes as f64 / (writes + reads) as f64;
        assert!((frac - 0.25).abs() < 0.05, "write fraction was {frac}");
    }

    #[test]
    fn full_size_bert_trace_is_generable() {
        let spec = FAASMEM[2];
        let t = InvocationTrace::generate(&spec, 0);
        assert!(t.ws_page_list().len() as u64 >= spec.ws_pages() * 9 / 10);
        assert_eq!(t.ephemeral_page_list().len() as u64, spec.ephemeral_pages());
    }
}
