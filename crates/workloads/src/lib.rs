//! # snapbpf-workloads — serverless function models
//!
//! Deterministic models of the functions the paper evaluates:
//! FunctionBench-style workloads plus the three FaaSMem real-world
//! workloads (html_serving, graph_bfs, bert). Each [`Workload`]
//! combines a memory-behaviour profile ([`FunctionSpec`]) with a
//! trace generator ([`InvocationTrace`]) producing the ordered page
//! accesses, ephemeral allocations, and compute phases of one
//! invocation.
//!
//! ## Examples
//!
//! ```
//! use snapbpf_workloads::Workload;
//!
//! let bert = Workload::by_name("bert").expect("bert is in the suite");
//! let trace = bert.trace();
//! assert!(trace.ws_page_list().len() > 60_000); // ~260 MiB working set
//!
//! // The full paper suite, in figure order:
//! let suite = Workload::suite();
//! assert_eq!(suite.len(), 14);
//! assert_eq!(suite[0].name(), "json");
//! assert_eq!(suite[13].name(), "bert");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mix;
mod spec;
mod trace;

pub use mix::{FunctionMix, MixError};
pub use spec::{FunctionSpec, FAASMEM, FUNCTIONBENCH};
pub use trace::{InvocationTrace, Step, WsCluster};

/// A function workload: a profile plus its canonical trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    spec: FunctionSpec,
}

impl Workload {
    /// Wraps an explicit profile.
    pub fn new(spec: FunctionSpec) -> Self {
        Workload { spec }
    }

    /// The full evaluation suite in the paper's figure order:
    /// FunctionBench functions first, then the FaaSMem workloads.
    pub fn suite() -> Vec<Workload> {
        FUNCTIONBENCH
            .iter()
            .chain(FAASMEM)
            .map(|&spec| Workload { spec })
            .collect()
    }

    /// Looks a workload up by figure label.
    pub fn by_name(name: &str) -> Option<Workload> {
        Workload::suite().into_iter().find(|w| w.name() == name)
    }

    /// The function's name.
    pub fn name(&self) -> &'static str {
        self.spec.name
    }

    /// The memory-behaviour profile.
    pub fn spec(&self) -> &FunctionSpec {
        &self.spec
    }

    /// Snapshot size in pages.
    pub fn snapshot_pages(&self) -> u64 {
        self.spec.snapshot_pages()
    }

    /// The canonical invocation trace (variant 0 — "identical
    /// inputs" as in the paper's methodology).
    pub fn trace(&self) -> InvocationTrace {
        InvocationTrace::generate(&self.spec, 0)
    }

    /// The trace for a specific input variant.
    pub fn trace_variant(&self, variant: u32) -> InvocationTrace {
        InvocationTrace::generate(&self.spec, variant)
    }

    /// A size-scaled copy (for fast tests). See
    /// [`FunctionSpec::scaled`].
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Workload {
        Workload {
            spec: self.spec.scaled(factor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_order_matches_figures() {
        let names: Vec<&str> = Workload::suite().iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec![
                "json",
                "pyaes",
                "chameleon",
                "matmul",
                "linpack",
                "image",
                "video",
                "compression",
                "ml_train",
                "cnn",
                "rnn",
                "html",
                "bfs",
                "bert"
            ]
        );
    }

    #[test]
    fn by_name_roundtrip() {
        for w in Workload::suite() {
            assert_eq!(Workload::by_name(w.name()).unwrap().name(), w.name());
        }
        assert!(Workload::by_name("nope").is_none());
    }

    #[test]
    fn trace_matches_spec_scale() {
        let w = Workload::by_name("html").unwrap();
        let t = w.trace();
        assert!(t.ws_page_list().len() as u64 <= w.spec().ws_pages());
        assert_eq!(w.trace(), t, "trace generation is deterministic");
    }
}
