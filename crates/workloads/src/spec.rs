//! Function profiles.
//!
//! The paper evaluates "functions representative of common FaaS
//! workloads from the FunctionBench suite, as well as three
//! real-world workloads from FaaSMem (html_serving, graph_bfs,
//! bert)" (§4). What the evaluation depends on is not the functions'
//! code but four memory-behaviour dimensions, which these profiles
//! encode:
//!
//! * **snapshot size** — the microVM memory file,
//! * **working-set size & locality** — how much of the snapshot an
//!   invocation touches and in how many contiguous clusters,
//! * **ephemeral allocation volume** — guest memory allocated during
//!   the invocation and freed after; the PV-PTE-marking target
//!   (large for `image`, tiny for `rnn`/`bert`, §4 Figure 4),
//! * **compute time** — CPU between memory phases.
//!
//! Magnitudes follow the characterizations published with REAP,
//! FaaSnap, and FaaSMem: working sets of tens to hundreds of MiB,
//! snapshots of 128–512 MiB, model-serving functions dominated by
//! initialized state.

/// Memory-behaviour profile of one serverless function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FunctionSpec {
    /// Function name (figure x-axis label).
    pub name: &'static str,
    /// Guest memory / snapshot file size, MiB.
    pub snapshot_mib: u64,
    /// Working set touched by one invocation, MiB.
    pub ws_mib: f64,
    /// Number of contiguous clusters the working set splits into
    /// (lower = more sequential).
    pub ws_clusters: u32,
    /// Ephemeral guest allocations during the invocation, MiB.
    pub ephemeral_mib: f64,
    /// Pure compute time of one invocation, milliseconds.
    pub compute_ms: f64,
    /// Fraction of working-set accesses that are writes.
    pub write_frac: f64,
}

impl FunctionSpec {
    /// Snapshot size in pages.
    pub const fn snapshot_pages(&self) -> u64 {
        self.snapshot_mib * 256 // 1 MiB = 256 x 4 KiB pages
    }

    /// Working-set size in pages (rounded down, at least 1).
    pub fn ws_pages(&self) -> u64 {
        ((self.ws_mib * 256.0) as u64).max(1)
    }

    /// Ephemeral allocation volume in pages.
    pub fn ephemeral_pages(&self) -> u64 {
        (self.ephemeral_mib * 256.0) as u64
    }

    /// A copy with every dimension — sizes *and* compute time —
    /// scaled by `factor`, used to keep debug-profile tests fast.
    /// Scaling compute along with data keeps the latency *ratios*
    /// between strategies approximately scale-invariant, so reduced
    /// runs preserve the paper's shapes.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> FunctionSpec {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1]"
        );
        FunctionSpec {
            snapshot_mib: ((self.snapshot_mib as f64 * factor) as u64).max(1),
            ws_mib: (self.ws_mib * factor).max(4096.0 / (1 << 20) as f64),
            ws_clusters: ((self.ws_clusters as f64 * factor).ceil() as u32).max(1),
            ephemeral_mib: self.ephemeral_mib * factor,
            compute_ms: self.compute_ms * factor,
            ..*self
        }
    }
}

/// The FunctionBench-derived profiles, in the order the paper's
/// figures list them.
pub const FUNCTIONBENCH: &[FunctionSpec] = &[
    FunctionSpec {
        name: "json",
        snapshot_mib: 128,
        ws_mib: 12.0,
        ws_clusters: 480,
        ephemeral_mib: 4.0,
        compute_ms: 8.0,
        write_frac: 0.20,
    },
    FunctionSpec {
        name: "pyaes",
        snapshot_mib: 128,
        ws_mib: 10.0,
        ws_clusters: 400,
        ephemeral_mib: 6.0,
        compute_ms: 15.0,
        write_frac: 0.20,
    },
    FunctionSpec {
        name: "chameleon",
        snapshot_mib: 128,
        ws_mib: 18.0,
        ws_clusters: 640,
        ephemeral_mib: 10.0,
        compute_ms: 12.0,
        write_frac: 0.25,
    },
    FunctionSpec {
        name: "matmul",
        snapshot_mib: 256,
        ws_mib: 24.0,
        ws_clusters: 320,
        ephemeral_mib: 48.0,
        compute_ms: 30.0,
        write_frac: 0.30,
    },
    FunctionSpec {
        name: "linpack",
        snapshot_mib: 256,
        ws_mib: 20.0,
        ws_clusters: 320,
        ephemeral_mib: 32.0,
        compute_ms: 25.0,
        write_frac: 0.30,
    },
    FunctionSpec {
        name: "image",
        snapshot_mib: 256,
        ws_mib: 35.0,
        ws_clusters: 720,
        ephemeral_mib: 96.0,
        compute_ms: 20.0,
        write_frac: 0.30,
    },
    FunctionSpec {
        name: "video",
        snapshot_mib: 512,
        ws_mib: 45.0,
        ws_clusters: 800,
        ephemeral_mib: 128.0,
        compute_ms: 40.0,
        write_frac: 0.30,
    },
    FunctionSpec {
        name: "compression",
        snapshot_mib: 256,
        ws_mib: 25.0,
        ws_clusters: 480,
        ephemeral_mib: 64.0,
        compute_ms: 18.0,
        write_frac: 0.35,
    },
    FunctionSpec {
        name: "ml_train",
        snapshot_mib: 256,
        ws_mib: 60.0,
        ws_clusters: 960,
        ephemeral_mib: 40.0,
        compute_ms: 50.0,
        write_frac: 0.30,
    },
    FunctionSpec {
        name: "cnn",
        snapshot_mib: 512,
        ws_mib: 90.0,
        ws_clusters: 1200,
        ephemeral_mib: 24.0,
        compute_ms: 35.0,
        write_frac: 0.08,
    },
    FunctionSpec {
        name: "rnn",
        snapshot_mib: 512,
        ws_mib: 110.0,
        ws_clusters: 1280,
        ephemeral_mib: 12.0,
        compute_ms: 30.0,
        write_frac: 0.06,
    },
];

/// The three FaaSMem real-world workloads the paper names:
/// html_serving, graph_bfs, bert.
pub const FAASMEM: &[FunctionSpec] = &[
    FunctionSpec {
        name: "html",
        snapshot_mib: 128,
        ws_mib: 8.0,
        ws_clusters: 320,
        ephemeral_mib: 3.0,
        compute_ms: 5.0,
        write_frac: 0.15,
    },
    FunctionSpec {
        name: "bfs",
        snapshot_mib: 512,
        ws_mib: 180.0,
        ws_clusters: 1600,
        ephemeral_mib: 8.0,
        compute_ms: 45.0,
        write_frac: 0.06,
    },
    FunctionSpec {
        name: "bert",
        snapshot_mib: 512,
        ws_mib: 260.0,
        ws_clusters: 1760,
        ephemeral_mib: 12.0,
        compute_ms: 60.0,
        write_frac: 0.04,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_fourteen_functions() {
        assert_eq!(FUNCTIONBENCH.len() + FAASMEM.len(), 14);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = FUNCTIONBENCH
            .iter()
            .chain(FAASMEM)
            .map(|s| s.name)
            .collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn working_sets_fit_in_snapshots() {
        for s in FUNCTIONBENCH.iter().chain(FAASMEM) {
            assert!(
                s.ws_pages() + s.ephemeral_pages() < s.snapshot_pages(),
                "{}: ws + ephemeral must fit in the snapshot",
                s.name
            );
            assert!(s.ws_clusters > 0, "{}", s.name);
            assert!((0.0..=1.0).contains(&s.write_frac), "{}", s.name);
        }
    }

    #[test]
    fn page_conversions() {
        let s = &FUNCTIONBENCH[0];
        assert_eq!(s.snapshot_pages(), 128 * 256);
        assert_eq!(s.ws_pages(), (12.0f64 * 256.0) as u64);
    }

    #[test]
    fn paper_shape_preconditions() {
        // Figure 4: image is allocation-heavy; rnn/bert are not.
        let image = FUNCTIONBENCH.iter().find(|s| s.name == "image").unwrap();
        let rnn = FUNCTIONBENCH.iter().find(|s| s.name == "rnn").unwrap();
        let bert = FAASMEM.iter().find(|s| s.name == "bert").unwrap();
        assert!(image.ephemeral_mib > 2.0 * image.ws_mib);
        assert!(rnn.ephemeral_mib < 0.2 * rnn.ws_mib);
        assert!(bert.ephemeral_mib < 0.1 * bert.ws_mib);
        // Figures 3b/3c call out bert and bfs as the large-WS cases.
        assert!(bert.ws_mib > 200.0);
        assert!(bfs_ws() > 150.0);
    }

    fn bfs_ws() -> f64 {
        FAASMEM.iter().find(|s| s.name == "bfs").unwrap().ws_mib
    }

    #[test]
    fn scaling_shrinks_sizes() {
        let s = FAASMEM[2]; // bert
        let t = s.scaled(0.1);
        assert!(t.snapshot_mib <= s.snapshot_mib / 9);
        assert!(t.ws_mib < s.ws_mib);
        assert!(t.ws_clusters <= s.ws_clusters);
        assert!((t.compute_ms - s.compute_ms * 0.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn bad_scale_rejected() {
        let _ = FUNCTIONBENCH[0].scaled(0.0);
    }
}
