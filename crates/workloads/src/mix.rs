//! Function popularity mixes for fleet experiments.
//!
//! A fleet run needs to decide, for every arrival, *which* function
//! is being invoked. Production FaaS traces (the Azure Functions
//! trace being the canonical public one) show a heavily skewed
//! popularity distribution: a handful of functions receive the vast
//! majority of invocations while a long tail is called rarely —
//! which is exactly the regime where keep-alive pools stop helping
//! and cold-start latency dominates the tail.
//!
//! [`FunctionMix`] captures that as a normalized weight per function
//! and deterministically maps a random draw to a function index.

use std::fmt;

use snapbpf_sim::SplitMix64;

/// A rejected [`FunctionMix`] weight: the offending index and value.
///
/// Raised by [`FunctionMix::from_weights`] for non-positive or
/// non-finite entries — the same clean-configuration-error
/// philosophy the empty-mix handling follows, so callers building
/// mixes from user input (CLI weights, loaded profiles) report a
/// diagnosable error instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixError {
    /// Index of the rejected weight.
    pub index: usize,
    /// The rejected value.
    pub value: f64,
}

impl fmt::Display for MixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mix weight {} at index {} is invalid; weights must be positive and finite",
            self.value, self.index
        )
    }
}

impl std::error::Error for MixError {}

/// A normalized popularity distribution over the functions of a
/// fleet (weights sum to 1, indexed like the workload slice the mix
/// was built for).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionMix {
    weights: Vec<f64>,
    /// Cumulative distribution, for O(log n) sampling.
    cdf: Vec<f64>,
}

impl FunctionMix {
    /// Builds a mix from raw (unnormalized) positive weights. An
    /// empty slice yields an empty mix — constructible so run entry
    /// points can reject it with a clean configuration error instead
    /// of a constructor panic, but [`FunctionMix::pick`] cannot draw
    /// from it. A non-positive or non-finite weight is reported as a
    /// [`MixError`] naming the offending entry.
    pub fn from_weights(weights: &[f64]) -> Result<FunctionMix, MixError> {
        if let Some((index, &value)) = weights
            .iter()
            .enumerate()
            .find(|(_, w)| !w.is_finite() || **w <= 0.0)
        {
            return Err(MixError { index, value });
        }
        let total: f64 = weights.iter().sum();
        let weights: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w;
                acc
            })
            .collect();
        Ok(FunctionMix { weights, cdf })
    }

    /// Every function equally popular.
    pub fn uniform(n: usize) -> FunctionMix {
        FunctionMix::from_weights(&vec![1.0; n]).expect("unit weights are valid")
    }

    /// An Azure-Functions-style long-tailed mix: weight of the
    /// `r`-th most popular function is proportional to `1 / r^1.5`
    /// (a Zipf-like decay — the trace's hallmark that a few
    /// functions dominate invocation volume while most are rare).
    /// Function index 0 is the most popular.
    pub fn azure_like(n: usize) -> FunctionMix {
        let weights: Vec<f64> = (1..=n).map(|rank| 1.0 / (rank as f64).powf(1.5)).collect();
        FunctionMix::from_weights(&weights).expect("Zipf weights are valid")
    }

    /// Number of functions in the mix.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the mix is empty (no fleet or cluster run accepts an
    /// empty mix; they report a configuration error).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The normalized weights, in function order.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Splits a fleet-wide arrival rate into per-function rates.
    pub fn rate_split(&self, total_rps: f64) -> Vec<f64> {
        self.weights.iter().map(|w| w * total_rps).collect()
    }

    /// Draws a function index for one arrival.
    ///
    /// # Panics
    ///
    /// Panics on an empty mix (there is no function to draw).
    pub fn pick(&self, rng: &mut SplitMix64) -> usize {
        assert!(!self.is_empty(), "cannot pick from an empty mix");
        let u = rng.next_f64();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => i.min(self.weights.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_normalize() {
        let m = FunctionMix::from_weights(&[3.0, 1.0]).unwrap();
        assert!((m.weights()[0] - 0.75).abs() < 1e-12);
        assert!((m.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn azure_mix_is_skewed() {
        let m = FunctionMix::azure_like(14);
        // The most popular function takes a disproportionate share
        // and the distribution is monotonically decreasing.
        assert!(m.weights()[0] > 0.3, "head weight {}", m.weights()[0]);
        assert!(m.weights().windows(2).all(|w| w[0] > w[1]));
        // ... but the tail is still reachable.
        assert!(m.weights()[13] > 0.001);
    }

    #[test]
    fn uniform_mix_is_flat() {
        let m = FunctionMix::uniform(7);
        for w in m.weights() {
            assert!((w - 1.0 / 7.0).abs() < 1e-12);
        }
    }

    #[test]
    fn picks_follow_weights_deterministically() {
        let m = FunctionMix::from_weights(&[8.0, 1.0, 1.0]).unwrap();
        let draw = |seed| {
            let mut rng = SplitMix64::new(seed);
            let mut counts = [0u32; 3];
            for _ in 0..10_000 {
                counts[m.pick(&mut rng)] += 1;
            }
            counts
        };
        let counts = draw(11);
        assert_eq!(counts, draw(11), "sampling must be deterministic");
        assert!(counts[0] > 7_000, "head got {}", counts[0]);
        assert!(counts[1] > 500 && counts[2] > 500);
        assert_eq!(counts.iter().sum::<u32>(), 10_000);
    }

    #[test]
    fn rate_split_preserves_total() {
        let m = FunctionMix::azure_like(5);
        let rates = m.rate_split(200.0);
        assert!((rates.iter().sum::<f64>() - 200.0).abs() < 1e-9);
        assert!(rates[0] > rates[4]);
    }

    #[test]
    fn bad_weights_rejected_with_location() {
        let err = FunctionMix::from_weights(&[1.0, 0.0]).unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.value, 0.0);
        assert!(err.to_string().contains("index 1"));
        assert!(FunctionMix::from_weights(&[-2.0]).is_err());
        assert!(FunctionMix::from_weights(&[1.0, f64::NAN]).is_err());
        assert!(FunctionMix::from_weights(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn empty_mix_is_constructible_but_unpickable() {
        let m = FunctionMix::from_weights(&[]).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert!(FunctionMix::azure_like(0).is_empty());
        assert!(FunctionMix::uniform(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty mix")]
    fn empty_mix_pick_panics() {
        let m = FunctionMix::from_weights(&[]).unwrap();
        let mut rng = SplitMix64::new(1);
        let _ = m.pick(&mut rng);
    }
}
