//! # proptest (offline shim)
//!
//! A small, in-tree stand-in for the [`proptest`] crate so the
//! workspace's property tests build and run in fully offline
//! environments (no registry access). It implements the API surface
//! the tests actually use — `proptest!`, `prop_assert*`,
//! `prop_oneof!`, `Just`, `any`, numeric-range and tuple strategies,
//! `prop_map`, and `prop::collection::{vec, btree_set}` — with
//! deterministic seeded generation.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the exact generated
//!   inputs (they are always `Debug`) but does not minimize them.
//! * **Fixed seeding.** Cases derive from a fixed seed and the case
//!   index, so failures reproduce bit-identically on every run —
//!   matching the repository's determinism contract (DESIGN.md §5).
//! * Default case count is 64 (set per-test with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` or
//!   globally with the `PROPTEST_CASES` environment variable).
//!
//! [`proptest`]: https://docs.rs/proptest

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Test-runner plumbing: errors and the RNG handed to strategies.
pub mod test_runner {
    use std::fmt;

    /// Why a single generated case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// A failed property with an explanation.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.msg)
        }
    }

    /// Deterministic RNG handed to strategies (SplitMix64 — same
    /// generator family as the simulation substrate, reimplemented
    /// here so the shim stays dependency-free).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value below `bound` (`bound` must be nonzero).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift rejection-free mapping is fine here; the
            // slight modulo bias of the tail is irrelevant for tests.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Config { cases }
        }
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

/// A value generator. The sole requirement is deterministic output
/// given the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, retrying until `f` accepts one
    /// (up to an attempt cap, then the last candidate is returned).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Chains a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut last = self.inner.generate(rng);
        for _ in 0..1000 {
            if (self.f)(&last) {
                break;
            }
            last = self.inner.generate(rng);
        }
        last
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (built by
/// `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: fmt::Debug> Union<V> {
    /// Builds a union from its arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = if span > u64::MAX as u128 {
                    // Only reachable for 128-bit-wide u64/i64 spans:
                    // combine two draws.
                    ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span
                } else {
                    rng.below(span as u64) as u128
                };
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

/// Upstream treats string literals as regexes to generate matching
/// strings. The shim does not carry a regex engine; a literal
/// generates arbitrary strings (length 0..64, mixing ASCII,
/// whitespace, and multi-byte code points), which over-approximates
/// the `"\PC*"`-style "any text" patterns the workspace uses on
/// totality tests.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(64) as usize;
        (0..len)
            .map(|_| match rng.below(8) {
                0 => char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or(' '),
                1 => ['\n', '\t', ' '][rng.below(3) as usize],
                2 => char::from_u32(0xA1 + rng.below(0x100) as u32).unwrap_or('¡'),
                3 => char::from_u32(0x4E00 + rng.below(0x100) as u32).unwrap_or('一'),
                _ => char::from_u32(b'a' as u32 + rng.below(26) as u32).unwrap_or('a'),
            })
            .collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident / $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, well-spread doubles (property tests here never
        // need NaN/Inf).
        (rng.next_u64() as i64 as f64) * (1.0 + rng.unit_f64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Strategy combinators namespace (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::collections::BTreeSet;
        use std::fmt;
        use std::ops::Range;

        /// Length specification for collection strategies.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl SizeRange {
            fn pick(&self, rng: &mut TestRng) -> usize {
                self.lo + rng.below((self.hi - self.lo) as u64) as usize
            }
        }

        /// Generates `Vec`s of values from `element`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A `Vec` strategy with lengths drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Generates `BTreeSet`s of values from `element`.
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord + fmt::Debug,
        {
            type Value = BTreeSet<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let want = self.size.pick(rng);
                let mut set = BTreeSet::new();
                // Retry cap so small domains cannot loop forever; a
                // slightly small set is fine for property tests.
                for _ in 0..want.saturating_mul(8).max(16) {
                    if set.len() >= want {
                        break;
                    }
                    set.insert(self.element.generate(rng));
                }
                set
            }
        }

        /// A `BTreeSet` strategy with target sizes drawn from `size`.
        pub fn btree_set<S: Strategy>(
            element: S,
            size: impl Into<SizeRange>,
        ) -> BTreeSetStrategy<S> {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside `proptest!`, reporting the generated
/// inputs on failure instead of panicking mid-case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Defines property tests. Each `#[test] fn name(pat in strategy,
/// ...) { body }` item becomes a normal test that runs the body over
/// generated inputs; `prop_assert*` failures report the inputs.
///
/// (The `#[test]` attribute is captured together with doc comments
/// in the meta repetition and re-emitted verbatim.)
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@items ($config) $($rest)*);
    };
    (@items ($config:expr)) => {};
    (
        @items ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // Fixed per-test seed: the test's name hashed at runtime
            // is stable across runs and processes (FNV-1a).
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in stringify!($name).bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::new(
                    seed.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                let values = ($($crate::Strategy::generate(&$strategy, &mut rng),)+);
                let repr = format!("{:?}", values);
                let result = (||
                    -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    let ($($pat,)+) = values;
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        config.cases,
                        e,
                        repr
                    );
                }
            }
        }
        $crate::proptest!(@items ($config) $($rest)*);
    };
    // No leading config attribute: run with the default config.
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(
            @items (<$crate::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (-5i16..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn oneof_uses_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::test_runner::TestRng::new(11);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn generation_is_deterministic() {
        let s = prop::collection::vec(any::<u64>(), 0..20);
        let a: Vec<Vec<u64>> = (0..10)
            .map(|i| s.generate(&mut crate::test_runner::TestRng::new(i)))
            .collect();
        let b: Vec<Vec<u64>> = (0..10)
            .map(|i| s.generate(&mut crate::test_runner::TestRng::new(i)))
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The macro wires patterns, strategies, and asserts.
        #[test]
        fn macro_end_to_end(mut v in prop::collection::vec(0u32..100, 0..50), k in any::<bool>()) {
            if k {
                v.push(1);
            }
            prop_assert!(v.len() <= 50);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), v.len() + 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..10) {
            prop_assert!(x < 10);
        }
    }
}
