//! Property-based tests for the eBPF runtime: the core soundness
//! contract — *everything the verifier accepts runs to completion
//! without tripping a defensive check* — plus ALU semantics.

use proptest::prelude::*;
use snapbpf_ebpf::{
    AccessSize, AluOp, HelperId, Interpreter, JmpCond, MapDef, MapSet, NoKfuncs, Program,
    ProgramBuilder, Reg, RunError, Verifier,
};

/// A generator of arbitrary (frequently invalid) instructions via
/// the builder, used to fuzz the verifier for panics.
#[derive(Debug, Clone)]
enum ArbInsn {
    Alu(u8, u8, i8, bool),
    Load(u8, u8, i16, u8),
    Store(u8, i16, u8, u8),
    StoreImm(u8, i16, i64, u8),
    LoadImm(u8, i64),
    LoadCtx(u8, u8),
    LoadMap(u8),
    JumpIf(u8, u8, i64, u8),
    Call(u8),
    Exit,
}

fn arb_insn() -> impl Strategy<Value = ArbInsn> {
    prop_oneof![
        (0u8..11, 0u8..12, any::<i8>(), any::<bool>())
            .prop_map(|(a, b, c, d)| ArbInsn::Alu(a, b, c, d)),
        (0u8..11, 0u8..11, -600i16..600, 0u8..4).prop_map(|(a, b, c, d)| ArbInsn::Load(a, b, c, d)),
        (0u8..11, -600i16..600, 0u8..11, 0u8..4)
            .prop_map(|(a, b, c, d)| ArbInsn::Store(a, b, c, d)),
        (0u8..11, -600i16..600, any::<i64>(), 0u8..4)
            .prop_map(|(a, b, c, d)| ArbInsn::StoreImm(a, b, c, d)),
        (0u8..11, any::<i64>()).prop_map(|(a, b)| ArbInsn::LoadImm(a, b)),
        (0u8..11, 0u8..8).prop_map(|(a, b)| ArbInsn::LoadCtx(a, b)),
        (0u8..11).prop_map(ArbInsn::LoadMap),
        (0u8..11, 0u8..11, any::<i64>(), 0u8..11)
            .prop_map(|(a, b, c, d)| ArbInsn::JumpIf(a, b, c, d)),
        (0u8..7).prop_map(ArbInsn::Call),
        Just(ArbInsn::Exit),
    ]
}

fn size_of(i: u8) -> AccessSize {
    match i % 4 {
        0 => AccessSize::B1,
        1 => AccessSize::B2,
        2 => AccessSize::B4,
        _ => AccessSize::B8,
    }
}

fn helper_of(i: u8) -> HelperId {
    match i % 7 {
        0 => HelperId::MapLookup,
        1 => HelperId::MapUpdate,
        2 => HelperId::MapDelete,
        3 => HelperId::KtimeGetNs,
        4 => HelperId::GetSmpProcessorId,
        5 => HelperId::TracePrintk,
        _ => HelperId::RingbufOutput,
    }
}

fn build_arbitrary(insns: &[ArbInsn], maps: &MapSet, map_id: snapbpf_ebpf::MapId) -> Program {
    let _ = maps;
    let mut b = ProgramBuilder::new("fuzz");
    let mut labels = Vec::new();
    for _insn in insns {
        // Bind a label before each instruction so jumps have targets.
        let l = b.label();
        b.bind(l).expect("fresh label");
        labels.push(l);
    }
    let end = b.label();
    for insn in insns {
        match insn.clone() {
            ArbInsn::Alu(dst, src, imm, wide) => {
                let op = [
                    AluOp::Add,
                    AluOp::Sub,
                    AluOp::Mul,
                    AluOp::Div,
                    AluOp::Mod,
                    AluOp::Or,
                    AluOp::And,
                    AluOp::Xor,
                    AluOp::Lsh,
                    AluOp::Rsh,
                    AluOp::Arsh,
                    AluOp::Mov,
                ][(src % 12) as usize];
                let dst = Reg::new(dst % 11);
                if wide {
                    b.alu(op, dst, imm as i64);
                } else {
                    b.alu32(op, dst, imm as i64);
                }
            }
            ArbInsn::Load(dst, base, off, sz) => {
                b.load(Reg::new(dst % 11), Reg::new(base % 11), off, size_of(sz));
            }
            ArbInsn::Store(base, off, src, sz) => {
                b.store(Reg::new(base % 11), off, Reg::new(src % 11), size_of(sz));
            }
            ArbInsn::StoreImm(base, off, imm, sz) => {
                b.store_imm(Reg::new(base % 11), off, imm, size_of(sz));
            }
            ArbInsn::LoadImm(dst, imm) => {
                b.load_imm64(Reg::new(dst % 11), imm);
            }
            ArbInsn::LoadCtx(dst, idx) => {
                b.load_ctx(Reg::new(dst % 11), idx);
            }
            ArbInsn::LoadMap(dst) => {
                b.load_map(Reg::new(dst % 11), map_id);
            }
            ArbInsn::JumpIf(dst, src, imm, cond) => {
                let cond = [
                    JmpCond::Eq,
                    JmpCond::Ne,
                    JmpCond::Gt,
                    JmpCond::Ge,
                    JmpCond::Lt,
                    JmpCond::Le,
                    JmpCond::SGt,
                    JmpCond::SGe,
                    JmpCond::SLt,
                    JmpCond::SLe,
                    JmpCond::Set,
                ][(cond % 11) as usize];
                let _ = src;
                b.jump_if(cond, Reg::new(dst % 11), imm, end);
            }
            ArbInsn::Call(h) => {
                b.call(helper_of(h));
            }
            ArbInsn::Exit => {
                b.exit();
            }
        }
    }
    b.bind(end).expect("end label");
    b.mov(Reg::R0, 0).exit();
    b.build().expect("assembles")
}

proptest! {
    /// THE soundness contract: if the verifier accepts a program —
    /// however it was generated — the interpreter executes it
    /// without internal errors or budget exhaustion.
    #[test]
    fn verified_programs_run_safely(
        insns in prop::collection::vec(arb_insn(), 0..40),
        ctx in prop::collection::vec(any::<u64>(), 0..6),
    ) {
        let mut maps = MapSet::new();
        let map_id = maps.create(MapDef::array(8, 8)).unwrap();
        let program = build_arbitrary(&insns, &maps, map_id);
        // Verification must never panic; acceptance is optional.
        if let Ok(verified) = Verifier::new(&maps, &[]).verify(&program) {
            let result = Interpreter::new().run(&verified, &ctx, &mut maps, &mut NoKfuncs);
            match result {
                Ok(outcome) => prop_assert!(outcome.insns_executed > 0),
                Err(RunError::Map(_)) => {} // runtime map capacity: legal
                Err(other) => prop_assert!(false, "verified program failed: {other}"),
            }
        }
    }

    /// ALU semantics agree with a reference implementation.
    #[test]
    fn alu64_matches_reference(a in any::<i64>(), b in any::<i64>(), op_i in 0usize..11) {
        let ops = [
            AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Div, AluOp::Mod,
            AluOp::Or, AluOp::And, AluOp::Xor, AluOp::Lsh, AluOp::Rsh, AluOp::Arsh,
        ];
        let op = ops[op_i];
        let mut maps = MapSet::new();
        let mut builder = ProgramBuilder::new("alu");
        builder
            .load_imm64(Reg::R0, a)
            .load_imm64(Reg::R1, b)
            .alu(op, Reg::R0, Reg::R1)
            .exit();
        let p = Verifier::new(&maps, &[]).verify(&builder.build().unwrap()).unwrap();
        let got = Interpreter::new().run(&p, &[], &mut maps, &mut NoKfuncs).unwrap().return_value;
        let (ua, ub) = (a as u64, b as u64);
        let want = match op {
            AluOp::Add => ua.wrapping_add(ub),
            AluOp::Sub => ua.wrapping_sub(ub),
            AluOp::Mul => ua.wrapping_mul(ub),
            AluOp::Div => ua.checked_div(ub).unwrap_or(0),
            AluOp::Mod => ua.checked_rem(ub).unwrap_or(0),
            AluOp::Or => ua | ub,
            AluOp::And => ua & ub,
            AluOp::Xor => ua ^ ub,
            AluOp::Lsh => ua.wrapping_shl((ub & 63) as u32),
            AluOp::Rsh => ua.wrapping_shr((ub & 63) as u32),
            AluOp::Arsh => ((ua as i64) >> (ub & 63)) as u64,
            AluOp::Mov => ub,
        };
        prop_assert_eq!(got, want);
    }

    /// Stack stores round-trip through every access size at every
    /// aligned offset.
    #[test]
    fn stack_roundtrip(value in any::<i64>(), slot in 1u8..64) {
        let off = -(slot as i16) * 8;
        let mut maps = MapSet::new();
        let mut b = ProgramBuilder::new("stack");
        b.load_imm64(Reg::R1, value)
            .store(Reg::R10, off, Reg::R1, AccessSize::B8)
            .load(Reg::R0, Reg::R10, off, AccessSize::B8)
            .exit();
        let p = Verifier::new(&maps, &[]).verify(&b.build().unwrap()).unwrap();
        let got = Interpreter::new().run(&p, &[], &mut maps, &mut NoKfuncs).unwrap().return_value;
        prop_assert_eq!(got, value as u64);
    }

    /// Bytecode encode/decode is the identity on arbitrary
    /// builder-generated programs.
    #[test]
    fn bytecode_roundtrip(insns in prop::collection::vec(arb_insn(), 0..60)) {
        let mut maps = MapSet::new();
        let map_id = maps.create(MapDef::array(8, 8)).unwrap();
        let program = build_arbitrary(&insns, &maps, map_id);
        let decoded =
            snapbpf_ebpf::decode_program(&snapbpf_ebpf::encode_program(&program)).unwrap();
        prop_assert_eq!(decoded, program);
    }

    /// The text disassembly parses back to the identical program.
    #[test]
    fn text_roundtrip(insns in prop::collection::vec(arb_insn(), 0..60)) {
        let mut maps = MapSet::new();
        let map_id = maps.create(MapDef::array(8, 8)).unwrap();
        let program = build_arbitrary(&insns, &maps, map_id);
        let parsed = snapbpf_ebpf::parse_program("x", &program.to_string()).unwrap();
        prop_assert_eq!(parsed, program);
    }

    /// Loop-shaped programs — an arbitrary body wrapped in a counted
    /// back-edge — survive both the text and bytecode round-trips:
    /// the negative jump offsets the disassembly prints for loop
    /// back-edges stay parseable now that the verifier admits them.
    #[test]
    fn loop_programs_roundtrip(
        insns in prop::collection::vec(arb_insn(), 0..20),
        trips in 1i64..64,
    ) {
        let mut maps = MapSet::new();
        let map_id = maps.create(MapDef::array(8, 8)).unwrap();
        let body = build_arbitrary(&insns, &maps, map_id);
        let mut b = ProgramBuilder::new("loop");
        let top = b.label();
        b.mov(Reg::R6, 0).bind(top).unwrap();
        for insn in body.insns() {
            b.push(*insn);
        }
        b.add(Reg::R6, 1)
            .jump_if(JmpCond::Lt, Reg::R6, trips, top)
            .mov(Reg::R0, 0)
            .exit();
        let program = b.build().unwrap();
        let parsed = snapbpf_ebpf::parse_program("x", &program.to_string()).unwrap();
        prop_assert_eq!(&parsed, &program);
        let decoded =
            snapbpf_ebpf::decode_program(&snapbpf_ebpf::encode_program(&program)).unwrap();
        prop_assert_eq!(&decoded, &program);
    }

    /// The text parser never panics on arbitrary input.
    #[test]
    fn parser_total(text in "\\PC*") {
        let _ = snapbpf_ebpf::parse_program("x", &text);
    }

    /// The decoder never panics on arbitrary input.
    #[test]
    fn decoder_total(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = snapbpf_ebpf::decode_program(&bytes);
        let mut v = Vec::from(*snapbpf_ebpf::MAGIC);
        v.extend_from_slice(&[snapbpf_ebpf::VERSION, 0, 0, 0]);
        v.extend_from_slice(&bytes);
        let _ = snapbpf_ebpf::decode_program(&v);
    }

    /// Programs referencing a per-CPU array map def survive the text
    /// round-trip exactly like array-backed ones (the `lddw rX,
    /// map#N` form is kind-agnostic, but the parse must still
    /// resolve against a map set holding a `PerCpuArray`).
    #[test]
    fn text_roundtrip_with_percpu_map(insns in prop::collection::vec(arb_insn(), 0..60)) {
        let mut maps = MapSet::new();
        let map_id = maps.create(MapDef::percpu_array(8, 8)).unwrap();
        let program = build_arbitrary(&insns, &maps, map_id);
        let parsed = snapbpf_ebpf::parse_program("x", &program.to_string()).unwrap();
        prop_assert_eq!(&parsed, &program);
        let decoded =
            snapbpf_ebpf::decode_program(&snapbpf_ebpf::encode_program(&program)).unwrap();
        prop_assert_eq!(&decoded, &program);
    }

    /// Per-CPU map writes round-trip: a program increments its CPU's
    /// slot; userspace reads the lane-merged sum across all CPUs.
    #[test]
    fn percpu_map_roundtrip(
        index in 0u32..8,
        value in any::<u32>(),
        cpu in 0u32..snapbpf_ebpf::NCPUS,
    ) {
        let mut maps = MapSet::new();
        let m = maps.create(MapDef::percpu_array(8, 8)).unwrap();
        let mut b = ProgramBuilder::new("percpu-store");
        let out = b.label();
        b.store_imm(Reg::R10, -4, index as i64, AccessSize::B4)
            .load_map(Reg::R1, m)
            .mov(Reg::R2, Reg::R10)
            .add(Reg::R2, -4)
            .call(HelperId::MapLookup)
            .jump_if(JmpCond::Eq, Reg::R0, 0i64, out)
            .load_imm64(Reg::R1, value as i64)
            .store(Reg::R0, 0, Reg::R1, AccessSize::B8)
            .bind(out)
            .unwrap()
            .mov(Reg::R0, 0)
            .exit();
        let p = Verifier::new(&maps, &[]).verify(&b.build().unwrap()).unwrap();
        let mut interp = Interpreter::new();
        interp.set_current_cpu(cpu);
        interp.run(&p, &[], &mut maps, &mut NoKfuncs).unwrap();
        prop_assert_eq!(maps.percpu_load_merged_u64(m, index).unwrap(), value as u64);
    }

    /// Map round trips through program-side update + userspace read.
    #[test]
    fn map_roundtrip(index in 0u32..16, value in any::<u64>()) {
        let mut maps = MapSet::new();
        let m = maps.create(MapDef::array(8, 16)).unwrap();
        let mut b = ProgramBuilder::new("store");
        let out = b.label();
        b.store_imm(Reg::R10, -4, index as i64, AccessSize::B4)
            .load_map(Reg::R1, m)
            .mov(Reg::R2, Reg::R10)
            .add(Reg::R2, -4)
            .call(HelperId::MapLookup)
            .jump_if(JmpCond::Eq, Reg::R0, 0i64, out)
            .load_imm64(Reg::R1, value as i64)
            .store(Reg::R0, 0, Reg::R1, AccessSize::B8)
            .bind(out)
            .unwrap()
            .mov(Reg::R0, 0)
            .exit();
        let p = Verifier::new(&maps, &[]).verify(&b.build().unwrap()).unwrap();
        Interpreter::new().run(&p, &[], &mut maps, &mut NoKfuncs).unwrap();
        prop_assert_eq!(maps.array_load_u64(m, index).unwrap(), value);
    }
}
