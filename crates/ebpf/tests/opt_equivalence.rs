//! Equivalence property tests for the optimizer: for any program the
//! verifier accepts, the optimized image must (a) re-pass
//! verification and (b) be observationally identical to the original
//! — same return value, same final map contents, and never more
//! executed instructions.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use snapbpf_ebpf::{
    AccessSize, AluOp, HelperId, Interpreter, JmpCond, MapDef, MapSet, NoKfuncs, PassManager,
    Program, ProgramBuilder, Reg, RunError, Verifier,
};

/// A generator of arbitrary (frequently invalid) instructions via
/// the builder; only the verifier-accepted subset reaches the
/// equivalence check.
#[derive(Debug, Clone)]
enum ArbInsn {
    Alu(u8, u8, i8, bool),
    Load(u8, u8, i16, u8),
    Store(u8, i16, u8, u8),
    StoreImm(u8, i16, i64, u8),
    LoadImm(u8, i64),
    LoadCtx(u8, u8),
    LoadMap(u8),
    JumpIf(u8, u8, i64, u8),
    Call(u8),
    Exit,
}

fn arb_insn() -> impl Strategy<Value = ArbInsn> {
    prop_oneof![
        (0u8..11, 0u8..12, any::<i8>(), any::<bool>())
            .prop_map(|(a, b, c, d)| ArbInsn::Alu(a, b, c, d)),
        (0u8..11, 0u8..11, -600i16..600, 0u8..4).prop_map(|(a, b, c, d)| ArbInsn::Load(a, b, c, d)),
        (0u8..11, -600i16..600, 0u8..11, 0u8..4)
            .prop_map(|(a, b, c, d)| ArbInsn::Store(a, b, c, d)),
        (0u8..11, -600i16..600, any::<i64>(), 0u8..4)
            .prop_map(|(a, b, c, d)| ArbInsn::StoreImm(a, b, c, d)),
        (0u8..11, any::<i64>()).prop_map(|(a, b)| ArbInsn::LoadImm(a, b)),
        (0u8..11, 0u8..8).prop_map(|(a, b)| ArbInsn::LoadCtx(a, b)),
        (0u8..11).prop_map(ArbInsn::LoadMap),
        (0u8..11, 0u8..11, any::<i64>(), 0u8..11)
            .prop_map(|(a, b, c, d)| ArbInsn::JumpIf(a, b, c, d)),
        (0u8..7).prop_map(ArbInsn::Call),
        Just(ArbInsn::Exit),
    ]
}

fn size_of(i: u8) -> AccessSize {
    match i % 4 {
        0 => AccessSize::B1,
        1 => AccessSize::B2,
        2 => AccessSize::B4,
        _ => AccessSize::B8,
    }
}

fn helper_of(i: u8) -> HelperId {
    match i % 7 {
        0 => HelperId::MapLookup,
        1 => HelperId::MapUpdate,
        2 => HelperId::MapDelete,
        3 => HelperId::KtimeGetNs,
        4 => HelperId::GetSmpProcessorId,
        5 => HelperId::TracePrintk,
        _ => HelperId::RingbufOutput,
    }
}

fn build_arbitrary(insns: &[ArbInsn], map_id: snapbpf_ebpf::MapId) -> Program {
    let mut b = ProgramBuilder::new("fuzz");
    let end = b.label();
    for insn in insns {
        match insn.clone() {
            ArbInsn::Alu(dst, src, imm, wide) => {
                let op = [
                    AluOp::Add,
                    AluOp::Sub,
                    AluOp::Mul,
                    AluOp::Div,
                    AluOp::Mod,
                    AluOp::Or,
                    AluOp::And,
                    AluOp::Xor,
                    AluOp::Lsh,
                    AluOp::Rsh,
                    AluOp::Arsh,
                    AluOp::Mov,
                ][(src % 12) as usize];
                let dst = Reg::new(dst % 11);
                if wide {
                    b.alu(op, dst, imm as i64);
                } else {
                    b.alu32(op, dst, imm as i64);
                }
            }
            ArbInsn::Load(dst, base, off, sz) => {
                b.load(Reg::new(dst % 11), Reg::new(base % 11), off, size_of(sz));
            }
            ArbInsn::Store(base, off, src, sz) => {
                b.store(Reg::new(base % 11), off, Reg::new(src % 11), size_of(sz));
            }
            ArbInsn::StoreImm(base, off, imm, sz) => {
                b.store_imm(Reg::new(base % 11), off, imm, size_of(sz));
            }
            ArbInsn::LoadImm(dst, imm) => {
                b.load_imm64(Reg::new(dst % 11), imm);
            }
            ArbInsn::LoadCtx(dst, idx) => {
                b.load_ctx(Reg::new(dst % 11), idx);
            }
            ArbInsn::LoadMap(dst) => {
                b.load_map(Reg::new(dst % 11), map_id);
            }
            ArbInsn::JumpIf(dst, src, imm, cond) => {
                let cond = [
                    JmpCond::Eq,
                    JmpCond::Ne,
                    JmpCond::Gt,
                    JmpCond::Ge,
                    JmpCond::Lt,
                    JmpCond::Le,
                    JmpCond::SGt,
                    JmpCond::SGe,
                    JmpCond::SLt,
                    JmpCond::SLe,
                    JmpCond::Set,
                ][(cond % 11) as usize];
                let _ = src;
                b.jump_if(cond, Reg::new(dst % 11), imm, end);
            }
            ArbInsn::Call(h) => {
                b.call(helper_of(h));
            }
            ArbInsn::Exit => {
                b.exit();
            }
        }
    }
    b.bind(end).expect("end label");
    b.mov(Reg::R0, 0).exit();
    b.build().expect("assembles")
}

/// Runs `program` through the full equivalence gauntlet when the
/// verifier accepts it: optimize, re-verify, execute both images on
/// cloned map sets, and compare every observable.
fn check_equivalence(program: &Program, maps: &MapSet, ctx: &[u64]) -> Result<(), TestCaseError> {
    let Ok(verified) = Verifier::new(maps, &[]).verify(program) else {
        return Ok(());
    };
    let (optimized, stats) = PassManager::new().optimize(program, maps, &[]);
    prop_assert!(
        stats.insns_after <= stats.insns_before,
        "optimizer grew the program: {stats}"
    );
    let reverified = Verifier::new(maps, &[]).verify(&optimized);
    prop_assert!(
        reverified.is_ok(),
        "optimized image must re-pass verification: {:?}\noriginal:\n{program}\noptimized:\n{optimized}",
        reverified.err()
    );
    let reverified = reverified.unwrap();

    let mut maps_orig = maps.clone();
    let mut maps_opt = maps.clone();
    let run_orig = Interpreter::new().run(&verified, ctx, &mut maps_orig, &mut NoKfuncs);
    let run_opt = Interpreter::new().run(&reverified, ctx, &mut maps_opt, &mut NoKfuncs);
    match (run_orig, run_opt) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(
                a.return_value,
                b.return_value,
                "return value diverged\noriginal:\n{}\noptimized:\n{}",
                program,
                optimized
            );
            prop_assert!(
                b.insns_executed <= a.insns_executed,
                "optimized image executed more instructions ({} > {})",
                b.insns_executed,
                a.insns_executed
            );
        }
        (Err(RunError::Map(a)), Err(RunError::Map(b))) => {
            prop_assert_eq!(a, b, "map errors diverged");
        }
        (a, b) => {
            prop_assert!(
                false,
                "run outcomes diverged: original {a:?} vs optimized \
                 {b:?}\noriginal:\n{program}\noptimized:\n{optimized}"
            );
        }
    }
    // Final map contents must match slot for slot.
    for id in 0..maps.len() {
        let id = snapbpf_ebpf::MapId::from_raw(id as u32);
        let def = maps.def(id).unwrap();
        for index in 0..def.max_entries {
            let a = maps_orig.array_load_u64(id, index);
            let b = maps_opt.array_load_u64(id, index);
            prop_assert_eq!(a, b, "map slot {} diverged", index);
        }
    }
    Ok(())
}

proptest! {
    /// Random verified straight-ish programs: the optimized image is
    /// interpreter-identical and never slower.
    #[test]
    fn optimized_programs_are_equivalent(
        insns in prop::collection::vec(arb_insn(), 0..40),
        ctx in prop::collection::vec(any::<u64>(), 0..6),
    ) {
        let mut maps = MapSet::new();
        let map_id = maps.create(MapDef::array(8, 8)).unwrap();
        let program = build_arbitrary(&insns, map_id);
        check_equivalence(&program, &maps, &ctx)?;
    }

    /// Loop-shaped programs — an arbitrary body wrapped in a counted
    /// back-edge — exercise the loop passes (LICM, IVSR, rotation)
    /// through the same equivalence gauntlet.
    #[test]
    fn optimized_loops_are_equivalent(
        insns in prop::collection::vec(arb_insn(), 0..20),
        trips in 1i64..64,
        ctx in prop::collection::vec(any::<u64>(), 0..6),
    ) {
        let mut maps = MapSet::new();
        let map_id = maps.create(MapDef::array(8, 8)).unwrap();
        let body = build_arbitrary(&insns, map_id);
        let mut b = ProgramBuilder::new("loop");
        let top = b.label();
        b.mov(Reg::R6, 0).bind(top).unwrap();
        for insn in body.insns() {
            b.push(*insn);
        }
        b.add(Reg::R6, 1)
            .jump_if(JmpCond::Lt, Reg::R6, trips, top)
            .mov(Reg::R0, 0)
            .exit();
        let program = b.build().unwrap();
        check_equivalence(&program, &maps, &ctx)?;
    }
}
