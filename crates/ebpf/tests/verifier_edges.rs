//! Adversarial verifier tests: raw instructions injected through
//! `ProgramBuilder::push` (bypassing the builder's label hygiene)
//! must never get past verification, and pathological-but-legal
//! programs must.

use snapbpf_ebpf::{
    AccessSize, AluOp, HelperId, Insn, Interpreter, JmpCond, MapDef, MapSet, NoKfuncs, Operand,
    ProgramBuilder, Reg, Verifier, VerifyErrorKind,
};

fn verify(build: impl FnOnce(&mut ProgramBuilder), maps: &MapSet) -> Result<(), VerifyErrorKind> {
    let mut b = ProgramBuilder::new("edge");
    build(&mut b);
    Verifier::new(maps, &[])
        .verify(&b.build().expect("assembles"))
        .map(|_| ())
        .map_err(|e| e.kind)
}

#[test]
fn raw_jump_out_of_program_rejected() {
    let maps = MapSet::new();
    let err = verify(
        |b| {
            b.push(Insn::Jump { off: 1000 }).mov(Reg::R0, 0).exit();
        },
        &maps,
    )
    .unwrap_err();
    assert_eq!(err, VerifyErrorKind::JumpOutOfProgram);

    let err = verify(
        |b| {
            b.mov(Reg::R0, 0).push(Insn::Jump { off: -5 }).exit();
        },
        &maps,
    )
    .unwrap_err();
    assert_eq!(err, VerifyErrorKind::JumpOutOfProgram);
}

#[test]
fn raw_conditional_back_edge_makes_no_progress_rejected() {
    // `jeq r0, 0, -2` with r0 == 0 always loops back to the same
    // abstract state: a provably non-terminating loop.
    let maps = MapSet::new();
    let err = verify(
        |b| {
            b.mov(Reg::R0, 0)
                .push(Insn::JumpIf {
                    cond: JmpCond::Eq,
                    dst: Reg::R0,
                    src: Operand::Imm(0),
                    off: -2,
                })
                .exit();
        },
        &maps,
    )
    .unwrap_err();
    assert!(matches!(err, VerifyErrorKind::InfiniteLoop { .. }));
}

#[test]
fn self_jump_rejected() {
    let maps = MapSet::new();
    let err = verify(
        |b| {
            b.push(Insn::Jump { off: -1 }).mov(Reg::R0, 0).exit();
        },
        &maps,
    )
    .unwrap_err();
    assert!(matches!(err, VerifyErrorKind::InfiniteLoop { .. }));
}

#[test]
fn raw_bounded_loop_verifies_and_runs() {
    // A genuine counted loop through raw back-edges: sum 1..=10.
    let maps = MapSet::new();
    let mut b = ProgramBuilder::new("count");
    b.mov(Reg::R0, 0)
        .mov(Reg::R6, 0)
        // loop header: if r6 >= 10 goto +3 (exit)
        .push(Insn::JumpIf {
            cond: JmpCond::Ge,
            dst: Reg::R6,
            src: Operand::Imm(10),
            off: 3,
        })
        .add(Reg::R6, 1)
        .alu(snapbpf_ebpf::AluOp::Add, Reg::R0, Reg::R6)
        .push(Insn::Jump { off: -4 })
        .exit();
    let p = Verifier::new(&maps, &[])
        .verify(&b.build().unwrap())
        .unwrap();
    let mut maps = maps;
    let out = Interpreter::new()
        .run(&p, &[], &mut maps, &mut NoKfuncs)
        .unwrap();
    assert_eq!(out.return_value, 55);
}

#[test]
fn neg_of_pointer_rejected() {
    let maps = MapSet::new();
    let err = verify(
        |b| {
            b.mov(Reg::R1, Reg::R10)
                .push(Insn::Neg { dst: Reg::R1 })
                .mov(Reg::R0, 0)
                .exit();
        },
        &maps,
    )
    .unwrap_err();
    assert!(matches!(err, VerifyErrorKind::BadPointerArithmetic(_)));
}

#[test]
fn mov32_of_pointer_rejected() {
    let maps = MapSet::new();
    let err = verify(
        |b| {
            b.alu32(AluOp::Mov, Reg::R1, Reg::R10)
                .mov(Reg::R0, 0)
                .exit();
        },
        &maps,
    )
    .unwrap_err();
    assert!(matches!(err, VerifyErrorKind::BadPointerArithmetic(_)));
}

#[test]
fn pointer_times_scalar_rejected() {
    let maps = MapSet::new();
    let err = verify(
        |b| {
            b.mov(Reg::R1, Reg::R10)
                .mul(Reg::R1, 2)
                .mov(Reg::R0, 0)
                .exit();
        },
        &maps,
    )
    .unwrap_err();
    assert!(matches!(err, VerifyErrorKind::BadPointerArithmetic(_)));
}

#[test]
fn stack_pointer_with_unknown_offset_rejected() {
    // r1 = fp + ctx[0]: the offset is not a verifier-known constant.
    let maps = MapSet::new();
    let err = verify(
        |b| {
            b.load_ctx(Reg::R2, 0)
                .mov(Reg::R1, Reg::R10)
                .add(Reg::R1, Reg::R2)
                .mov(Reg::R0, 0)
                .exit();
        },
        &maps,
    )
    .unwrap_err();
    assert!(matches!(err, VerifyErrorKind::BadPointerArithmetic(_)));
}

#[test]
fn map_ref_cannot_be_dereferenced() {
    let mut maps = MapSet::new();
    let m = maps.create(MapDef::array(8, 4)).unwrap();
    let err = verify(
        |b| {
            b.load_map(Reg::R1, m)
                .load(Reg::R0, Reg::R1, 0, AccessSize::B8)
                .exit();
        },
        &maps,
    )
    .unwrap_err();
    assert!(matches!(err, VerifyErrorKind::BadPointer(_)));
}

#[test]
fn map_value_negative_offset_rejected() {
    let mut maps = MapSet::new();
    let m = maps.create(MapDef::array(8, 4)).unwrap();
    let err = verify(
        |b| {
            let out = b.label();
            b.store_imm(Reg::R10, -4, 0, AccessSize::B4)
                .load_map(Reg::R1, m)
                .mov(Reg::R2, Reg::R10)
                .add(Reg::R2, -4)
                .call(HelperId::MapLookup)
                .jump_if(JmpCond::Eq, Reg::R0, 0i64, out)
                .load(Reg::R0, Reg::R0, -8, AccessSize::B8)
                .bind(out)
                .unwrap()
                .mov(Reg::R0, 0)
                .exit();
        },
        &maps,
    )
    .unwrap_err();
    assert!(matches!(err, VerifyErrorKind::MapValueOutOfBounds { .. }));
}

#[test]
fn map_value_pointer_survives_arithmetic_within_bounds() {
    let mut maps = MapSet::new();
    let m = maps.create(MapDef::array(16, 4)).unwrap(); // 16-byte values
    let result = verify(
        |b| {
            let out = b.label();
            b.store_imm(Reg::R10, -4, 0, AccessSize::B4)
                .load_map(Reg::R1, m)
                .mov(Reg::R2, Reg::R10)
                .add(Reg::R2, -4)
                .call(HelperId::MapLookup)
                .jump_if(JmpCond::Eq, Reg::R0, 0i64, out)
                .add(Reg::R0, 8) // second u64 of the value
                .load(Reg::R6, Reg::R0, 0, AccessSize::B8)
                .bind(out)
                .unwrap()
                .mov(Reg::R0, 0)
                .exit();
        },
        &maps,
    );
    assert!(result.is_ok());
}

#[test]
fn ringbuf_with_unknown_size_rejected() {
    let mut maps = MapSet::new();
    let r = maps.create(MapDef::ringbuf(512)).unwrap();
    let err = verify(
        |b| {
            b.store_imm(Reg::R10, -8, 1, AccessSize::B8)
                .load_map(Reg::R1, r)
                .mov(Reg::R2, Reg::R10)
                .add(Reg::R2, -8)
                .load_ctx(Reg::R3, 0) // size unknown to the verifier
                .mov(Reg::R4, 0)
                .call(HelperId::RingbufOutput)
                .exit();
        },
        &maps,
    )
    .unwrap_err();
    assert_eq!(err, VerifyErrorKind::UnknownRingSize);
}

#[test]
fn deep_branch_ladder_verifies_within_complexity_budget() {
    // 64 independent two-way branches would be 2^64 paths if the
    // verifier blindly enumerated register-value combinations; with
    // unknown-scalar widening the state count stays linear-ish.
    let maps = MapSet::new();
    let mut b = ProgramBuilder::new("ladder");
    b.mov(Reg::R0, 0);
    for i in 0..64 {
        let skip = b.label();
        b.load_ctx(Reg::R1, (i % 6) as u8)
            .jump_if(JmpCond::Gt, Reg::R1, 7i64, skip)
            .add(Reg::R0, 1)
            .bind(skip)
            .unwrap();
    }
    b.exit();
    let verified = Verifier::new(&maps, &[])
        .verify(&b.build().unwrap())
        .unwrap();
    assert!(verified.states_explored() < snapbpf_ebpf::COMPLEXITY_LIMIT);

    // And the result actually runs.
    let mut maps = maps;
    let out = Interpreter::new()
        .run(&verified, &[3; 6], &mut maps, &mut NoKfuncs)
        .unwrap();
    assert_eq!(out.return_value, 64);
}

#[test]
fn jset_condition_works_end_to_end() {
    let maps = MapSet::new();
    let mut b = ProgramBuilder::new("jset");
    let hit = b.label();
    b.load_ctx(Reg::R1, 0)
        .jump_if(JmpCond::Set, Reg::R1, 0b100i64, hit)
        .mov(Reg::R0, 0)
        .exit()
        .bind(hit)
        .unwrap()
        .mov(Reg::R0, 1)
        .exit();
    let p = Verifier::new(&maps, &[])
        .verify(&b.build().unwrap())
        .unwrap();
    let mut maps = maps;
    let mut interp = Interpreter::new();
    assert_eq!(
        interp
            .run(&p, &[0b110], &mut maps, &mut NoKfuncs)
            .unwrap()
            .return_value,
        1
    );
    assert_eq!(
        interp
            .run(&p, &[0b011], &mut maps, &mut NoKfuncs)
            .unwrap()
            .return_value,
        0
    );
}

#[test]
fn exhaustive_alu_on_stack_slots() {
    // Sweep every ALU op through a store/load cycle to catch
    // width/sign bugs.
    let maps = MapSet::new();
    for op in [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Mod,
        AluOp::Or,
        AluOp::And,
        AluOp::Xor,
        AluOp::Lsh,
        AluOp::Rsh,
        AluOp::Arsh,
    ] {
        let mut b = ProgramBuilder::new("sweep");
        b.load_imm64(Reg::R1, -1234)
            .alu(op, Reg::R1, 7i64)
            .store(Reg::R10, -16, Reg::R1, AccessSize::B8)
            .load(Reg::R0, Reg::R10, -16, AccessSize::B8)
            .exit();
        let p = Verifier::new(&maps, &[])
            .verify(&b.build().unwrap())
            .unwrap();
        let mut m = MapSet::new();
        let out = Interpreter::new()
            .run(&p, &[], &mut m, &mut NoKfuncs)
            .unwrap();
        // Cross-check against direct register arithmetic.
        let mut b2 = ProgramBuilder::new("direct");
        b2.load_imm64(Reg::R0, -1234).alu(op, Reg::R0, 7i64).exit();
        let p2 = Verifier::new(&maps, &[])
            .verify(&b2.build().unwrap())
            .unwrap();
        let direct = Interpreter::new()
            .run(&p2, &[], &mut m, &mut NoKfuncs)
            .unwrap();
        assert_eq!(out.return_value, direct.return_value, "{op:?}");
    }
}
