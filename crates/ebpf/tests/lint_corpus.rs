//! The lint corpus: verifiable-but-suspicious programs, stored as
//! reviewable assembly under `tests/corpus/`, that each trigger one
//! lint — with the rendered report pinned byte for byte under
//! `tests/golden/`, alongside a clean program that must stay quiet.
//!
//! To bless new reports after an intentional lint change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p snapbpf-ebpf --test lint_corpus
//! ```

use std::path::PathBuf;

use snapbpf_ebpf::{lint_program, parse_program, MapDef, MapSet, Severity, Verifier};

fn assert_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\n(bless with UPDATE_GOLDEN=1 cargo test -p snapbpf-ebpf \
             --test lint_corpus)",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; if the change is intentional, bless it with \
         UPDATE_GOLDEN=1 cargo test -p snapbpf-ebpf --test lint_corpus"
    );
}

/// `(program, code that must fire, worst severity)`; `None` means the
/// program must produce no diagnostics at all.
const CORPUS: &[(&str, Option<(&str, Severity)>)] = &[
    ("lint_unused_map_fd", Some(("SB001", Severity::Warn))),
    ("lint_always_taken_branch", Some(("SB002", Severity::Note))),
    ("lint_dead_store", Some(("SB003", Severity::Note))),
    ("lint_unchecked_ringbuf", Some(("SB004", Severity::Warn))),
    ("lint_unclamped_loop_bound", Some(("SB005", Severity::Deny))),
    ("lint_clean", None),
];

#[test]
fn corpus_programs_verify_and_lint_with_golden_reports() {
    let mut maps = MapSet::new();
    maps.create(MapDef::array(8, 8)).unwrap(); // `map#0` in the corpus
    maps.create(MapDef::ringbuf(256)).unwrap(); // `map#1`
    for (name, expect) in CORPUS {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/corpus")
            .join(format!("{name}.asm"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let program =
            parse_program(name, &text).unwrap_or_else(|e| panic!("{name} must parse: {e}"));
        // Every lint-corpus program is verifiable — the lints cover
        // the "safe but probably not what you meant" space.
        Verifier::new(&maps, &[])
            .verify(&program)
            .unwrap_or_else(|e| panic!("{name} must verify: {e}"));
        let report = lint_program(&program, &maps, &[]);
        match expect {
            Some((code, severity)) => {
                let hit = report
                    .diagnostics
                    .iter()
                    .find(|d| d.code == *code)
                    .unwrap_or_else(|| panic!("{name} must trigger {code}:\n{report}"));
                assert_eq!(hit.severity, *severity, "{name}: wrong severity");
                assert_eq!(
                    report.has_deny(),
                    *severity == Severity::Deny,
                    "{name}: deny flag mismatch"
                );
            }
            None => {
                assert!(
                    report.diagnostics.is_empty(),
                    "{name} must stay clean:\n{report}"
                );
            }
        }
        assert_golden(&format!("{name}.txt"), &report.render());
    }
}
