; program dead_code
; The instructions after the unconditional exit can never execute:
; static dead code is a load-time rejection.
mov64 r0, 0
exit
mov64 r1, 1
exit
