; program unchecked_map_value
; Dereferences the bpf_map_lookup_elem result without the mandatory
; null check: r0 is still possibly null at the load.
stu32 [r10-4], 0
lddw r1, map#0
mov64 r2, r10
add64 r2, -4
call bpf_map_lookup_elem
ldxu64 r0, [r0+0]
exit
