; program lint_unchecked_ringbuf
; The ringbuf_output result in r0 is overwritten without ever being
; checked — under load the push fails with -ENOSPC and the drop goes
; unnoticed. SB004.
stu64 [r10-8], 42
lddw r1, map#1
mov64 r2, r10
add64 r2, -8
mov64 r3, 8
mov64 r4, 0
call bpf_ringbuf_output
mov64 r0, 0
exit
