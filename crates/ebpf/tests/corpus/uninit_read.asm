; program uninit_read
; Reads r3, which no instruction ever wrote: the verifier must
; reject with UninitRegister before anything executes.
mov64 r0, r3
exit
