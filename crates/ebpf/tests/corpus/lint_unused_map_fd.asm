; program lint_unused_map_fd
; The map reference loaded into r1 is never consumed — a leftover
; from a deleted lookup. Verifies fine; SB001 warns.
lddw r1, map#0
mov64 r0, 0
exit
