; program lint_always_taken_branch
; r0 is the constant 4, so the `jlt r0, 10` guard can only be taken:
; the fall-through assignment is effectively commented out. SB002.
mov64 r0, 4
jlt r0, 10, +1
mov64 r0, 1
exit
