; program lint_dead_store
; The stack slot written at [r10-8] is never read again. SB003.
stu64 [r10-8], 7
mov64 r0, 0
exit
