; program lint_clean
; A lookup with a proper null check, a clamped bound, and no dead
; stores or unused map references: every lint stays quiet.
stu32 [r10-4], 0
lddw r1, map#0
mov64 r2, r10
add64 r2, -4
call bpf_map_lookup_elem
mov64 r3, 0
jeq r0, 0, +3
ldxu64 r3, [r0+0]
jle r3, 63, +1
mov64 r3, 63
mov64 r0, r3
exit
