; program complexity_blowup
; 20 independent two-way branches, each adding a distinct power of
; two to r6: every path reaches the tail with a different exact r6,
; so the state count doubles per rung (2^20 > COMPLEXITY_LIMIT).
mov64 r6, 0
ldctx r1, arg0
jeq r1, 0, +1
add64 r6, 1
ldctx r1, arg1
jeq r1, 0, +1
add64 r6, 2
ldctx r1, arg2
jeq r1, 0, +1
add64 r6, 4
ldctx r1, arg3
jeq r1, 0, +1
add64 r6, 8
ldctx r1, arg4
jeq r1, 0, +1
add64 r6, 16
ldctx r1, arg5
jeq r1, 0, +1
add64 r6, 32
ldctx r1, arg0
jeq r1, 0, +1
add64 r6, 64
ldctx r1, arg1
jeq r1, 0, +1
add64 r6, 128
ldctx r1, arg2
jeq r1, 0, +1
add64 r6, 256
ldctx r1, arg3
jeq r1, 0, +1
add64 r6, 512
ldctx r1, arg4
jeq r1, 0, +1
add64 r6, 1024
ldctx r1, arg5
jeq r1, 0, +1
add64 r6, 2048
ldctx r1, arg0
jeq r1, 0, +1
add64 r6, 4096
ldctx r1, arg1
jeq r1, 0, +1
add64 r6, 8192
ldctx r1, arg2
jeq r1, 0, +1
add64 r6, 16384
ldctx r1, arg3
jeq r1, 0, +1
add64 r6, 32768
ldctx r1, arg4
jeq r1, 0, +1
add64 r6, 65536
ldctx r1, arg5
jeq r1, 0, +1
add64 r6, 131072
ldctx r1, arg0
jeq r1, 0, +1
add64 r6, 262144
ldctx r1, arg1
jeq r1, 0, +1
add64 r6, 524288
mov64 r0, r6
exit
