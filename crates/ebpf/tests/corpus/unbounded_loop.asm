; program unbounded_loop
; r0 == 0 forever, so the back-edge revisits an identical abstract
; state: a provably non-terminating loop.
mov64 r0, 0
jeq r0, 0, -2
exit
