; program oob_stack
; Stores 8 bytes at fp-520, past the 512-byte stack frame.
stu64 [r10-520], 1
mov64 r0, 0
exit
