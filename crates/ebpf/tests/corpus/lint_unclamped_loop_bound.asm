; program lint_unclamped_loop_bound
; The loop's trip count is capped by the constant clamp at the first
; exit branch, so the verifier accepts it — but the latch compares
; against a bound read straight from map memory with no clamp of its
; own: one bad map write and the loop's intent is gone. SB005.
stu32 [r10-4], 0
lddw r1, map#0
mov64 r2, r10
add64 r2, -4
call bpf_map_lookup_elem
jeq r0, 0, +5
ldxu64 r3, [r0+0]
mov64 r4, 0
add64 r4, 1
jgt r4, 63, +1
jlt r4, r3, -3
mov64 r0, 0
exit
