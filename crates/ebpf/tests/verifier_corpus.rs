//! The verifier rejection corpus: deliberately-bad programs, stored
//! as reviewable assembly under `tests/corpus/`, that the verifier
//! must reject — with the rendered verifier-log diagnostic pinned
//! byte for byte under `tests/golden/`.
//!
//! To bless new diagnostics after an intentional verifier change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p snapbpf-ebpf --test verifier_corpus
//! ```

use std::path::PathBuf;

use snapbpf_ebpf::{parse_program, MapDef, MapSet, Verifier, VerifyErrorKind};

fn assert_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\n(bless with UPDATE_GOLDEN=1 cargo test -p snapbpf-ebpf \
             --test verifier_corpus)",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; if the change is intentional, bless it with \
         UPDATE_GOLDEN=1 cargo test -p snapbpf-ebpf --test verifier_corpus"
    );
}

/// Which rejection a corpus program must produce.
fn expected_kind(name: &str, kind: &VerifyErrorKind) -> bool {
    match name {
        "uninit_read" => matches!(kind, VerifyErrorKind::UninitRegister(_)),
        "oob_stack" => matches!(kind, VerifyErrorKind::BadStackAccess { off: -520 }),
        "unchecked_map_value" => matches!(kind, VerifyErrorKind::PossiblyNull(_)),
        "unbounded_loop" => matches!(kind, VerifyErrorKind::InfiniteLoop { .. }),
        "complexity_blowup" => matches!(kind, VerifyErrorKind::TooComplex),
        "dead_code" => matches!(kind, VerifyErrorKind::DeadCode),
        other => panic!("no expectation registered for corpus program {other}"),
    }
}

/// `complexity_blowup` floods the line-limited log with prune-free
/// exploration; pinning all 4096 retained lines would bloat the
/// golden without adding diagnostic value, so its golden keeps only
/// the tail (truncation marker, rejection, stats).
const TAIL_ONLY: &[&str] = &["complexity_blowup"];

const CORPUS: &[&str] = &[
    "uninit_read",
    "oob_stack",
    "unchecked_map_value",
    "unbounded_loop",
    "complexity_blowup",
    "dead_code",
];

#[test]
fn corpus_programs_are_rejected_with_golden_diagnostics() {
    let mut maps = MapSet::new();
    maps.create(MapDef::array(8, 8)).unwrap(); // `map#0` in the corpus
    for name in CORPUS {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/corpus")
            .join(format!("{name}.asm"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let program =
            parse_program(name, &text).unwrap_or_else(|e| panic!("{name} must parse: {e}"));
        let (result, log) = Verifier::new(&maps, &[]).verify_logged(&program);
        let err = result.expect_err("corpus program must be rejected");
        assert!(
            expected_kind(name, &err.kind),
            "{name}: wrong rejection {:?}",
            err.kind
        );
        assert!(
            err.register_snapshot().is_some() || matches!(err.kind, VerifyErrorKind::DeadCode),
            "{name}: rejection should carry a register snapshot"
        );
        let rendered = log.render();
        let diagnostic = if TAIL_ONLY.contains(name) {
            let tail: Vec<&str> = rendered.lines().rev().take(4).collect();
            tail.into_iter().rev().collect::<Vec<_>>().join("\n") + "\n"
        } else {
            rendered
        };
        assert_golden(&format!("{name}.log"), &diagnostic);
    }
}
