//! The static verifier.
//!
//! Before a program may be attached, it is verified the way the Linux
//! verifier checks real eBPF: abstract interpretation over typed
//! registers. The model enforces:
//!
//! * every register is initialized before use; `r10` is read-only,
//! * all stack accesses are in-bounds, aligned, and read only
//!   initialized bytes,
//! * map-value pointers are null-checked before dereference and stay
//!   within the value's bounds,
//! * helper calls match their signatures (map refs, key/value
//!   pointers into initialized stack memory),
//! * no back-edges (the pre-5.3 "no loops" rule — SnapBPF's programs
//!   are written in the re-trigger style this implies),
//! * every path ends in `exit` with `r0` initialized,
//! * path exploration is bounded by a complexity limit.
//!
//! Verification returns a [`VerifiedProgram`] token; the interpreter
//! only accepts verified programs.

use std::collections::HashMap;
use std::fmt;

use crate::insn::{
    AccessSize, AluOp, HelperId, Insn, JmpCond, Operand, Reg, MAX_CTX_WORDS, STACK_SIZE,
};
use crate::map::{MapId, MapKind, MapSet};
use crate::program::Program;

/// Maximum number of `(pc, state)` pairs explored before the
/// verifier gives up, mirroring the kernel's complexity limit.
pub const COMPLEXITY_LIMIT: usize = 100_000;

/// Signature of a kfunc as known to the verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KfuncSig {
    /// Name, for diagnostics.
    pub name: &'static str,
    /// Number of scalar arguments (`r1`..`r{args}`).
    pub args: u8,
}

/// Abstract type of a register during verification.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RegType {
    Uninit,
    /// A scalar; `Some(v)` when the exact value is known.
    Scalar(Option<i64>),
    /// The frame pointer (`r10`).
    FramePtr,
    /// `r10 + off` for a known constant `off`.
    StackPtr(i32),
    /// A reference to a map (from [`Insn::LoadMapRef`]).
    MapRef(MapId),
    /// Result of `bpf_map_lookup_elem`: value pointer or null.
    MapValueOrNull(MapId),
    /// A null-checked map-value pointer at byte offset `off`.
    MapValue(MapId, i32),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct AbsState {
    regs: [RegType; 11],
    /// One bit per stack byte: initialized?
    stack_init: [u64; STACK_SIZE / 64],
}

impl AbsState {
    fn entry() -> Self {
        let mut regs = std::array::from_fn(|_| RegType::Uninit);
        regs[10] = RegType::FramePtr;
        // r1 holds the context pointer in real eBPF; our LoadCtx
        // pseudo-instruction replaces ctx pointer arithmetic, so r1
        // starts uninitialized here.
        AbsState {
            regs,
            stack_init: [0; STACK_SIZE / 64],
        }
    }

    fn stack_mark_init(&mut self, start: usize, len: usize) {
        for b in start..start + len {
            self.stack_init[b / 64] |= 1 << (b % 64);
        }
    }

    fn stack_is_init(&self, start: usize, len: usize) -> bool {
        (start..start + len).all(|b| self.stack_init[b / 64] & (1 << (b % 64)) != 0)
    }
}

/// Verification failure, with the offending instruction index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Instruction index, when attributable.
    pub at: Option<usize>,
    /// What went wrong.
    pub kind: VerifyErrorKind,
}

/// The kinds of verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyErrorKind {
    /// The program has no instructions.
    EmptyProgram,
    /// Reading a register that was never written.
    UninitRegister(Reg),
    /// Writing `r10`.
    FramePointerWrite,
    /// Execution can fall off the end of the program.
    FallOffEnd,
    /// A jump leaves the program.
    JumpOutOfProgram,
    /// A backward jump (loop) was found.
    BackEdge {
        /// Jump source.
        from: usize,
        /// Jump target.
        to: usize,
    },
    /// Stack access outside `[-512, 0)` or misaligned.
    BadStackAccess {
        /// Byte offset relative to the frame pointer.
        off: i64,
    },
    /// Reading uninitialized stack bytes.
    UninitStackRead {
        /// Byte offset relative to the frame pointer.
        off: i64,
    },
    /// Dereferencing something that is not a valid pointer.
    BadPointer(Reg),
    /// Dereferencing a possibly-null map value without a null check.
    PossiblyNull(Reg),
    /// A map-value access outside the value's bounds.
    MapValueOutOfBounds {
        /// The map.
        map: MapId,
        /// Attempted byte offset.
        off: i64,
        /// The value size.
        value_size: u32,
    },
    /// Helper argument type mismatch.
    BadHelperArg {
        /// The helper.
        helper: HelperId,
        /// Which argument register.
        arg: Reg,
        /// Human-readable expectation.
        expected: &'static str,
    },
    /// Kfunc index not present in the registry.
    UnknownKfunc(u32),
    /// Kfunc argument not an initialized scalar.
    BadKfuncArg {
        /// Kfunc registry index.
        kfunc: u32,
        /// Which argument register.
        arg: Reg,
    },
    /// Arithmetic that the verifier cannot prove safe (e.g. pointer
    /// arithmetic with an unknown offset, or non-add/sub on a
    /// pointer).
    BadPointerArithmetic(Reg),
    /// Spilling a pointer to the stack (not supported by this
    /// verifier).
    PointerSpill(Reg),
    /// `exit` with `r0` uninitialized or non-scalar.
    BadReturnValue,
    /// Comparing pointers (other than the null check pattern).
    PointerComparison,
    /// A map id referenced by the program does not exist in the map
    /// set.
    UnknownMap(MapId),
    /// Context word index out of range.
    BadCtxIndex(u8),
    /// Too many states explored.
    TooComplex,
    /// Ring-buffer output size is not a verifier-known constant.
    UnknownRingSize,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.at {
            Some(at) => write!(f, "at insn {at}: {}", self.kind),
            None => write!(f, "{}", self.kind),
        }
    }
}

impl fmt::Display for VerifyErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use VerifyErrorKind::*;
        match self {
            EmptyProgram => write!(f, "empty program"),
            UninitRegister(r) => write!(f, "read of uninitialized register {r}"),
            FramePointerWrite => write!(f, "write to frame pointer r10"),
            FallOffEnd => write!(f, "execution can fall off the end"),
            JumpOutOfProgram => write!(f, "jump target outside program"),
            BackEdge { from, to } => write!(f, "back-edge from {from} to {to} (loops forbidden)"),
            BadStackAccess { off } => write!(f, "invalid stack access at fp{off:+}"),
            UninitStackRead { off } => write!(f, "read of uninitialized stack at fp{off:+}"),
            BadPointer(r) => write!(f, "{r} is not a valid pointer"),
            PossiblyNull(r) => write!(f, "{r} may be null; null-check required"),
            MapValueOutOfBounds {
                map,
                off,
                value_size,
            } => {
                write!(f, "{map} value access at {off} outside {value_size} bytes")
            }
            BadHelperArg {
                helper,
                arg,
                expected,
            } => {
                write!(f, "{helper}: {arg} must be {expected}")
            }
            UnknownKfunc(i) => write!(f, "unknown kfunc #{i}"),
            BadKfuncArg { kfunc, arg } => {
                write!(f, "kfunc #{kfunc}: {arg} must be an initialized scalar")
            }
            BadPointerArithmetic(r) => write!(f, "unprovable pointer arithmetic on {r}"),
            PointerSpill(r) => write!(f, "cannot spill pointer {r} to stack"),
            BadReturnValue => write!(f, "exit with r0 not an initialized scalar"),
            PointerComparison => write!(f, "pointer comparison not allowed"),
            UnknownMap(m) => write!(f, "program references unknown {m}"),
            BadCtxIndex(i) => write!(f, "context index {i} out of range"),
            TooComplex => write!(f, "program too complex to verify"),
            UnknownRingSize => write!(f, "ringbuf output size must be a known constant"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// A program that passed verification, ready to run or attach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifiedProgram {
    program: Program,
    /// Instruction-count statistics from verification.
    states_explored: usize,
}

impl VerifiedProgram {
    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// How many `(pc, state)` pairs verification explored.
    pub fn states_explored(&self) -> usize {
        self.states_explored
    }
}

/// The verifier. Holds the map set (for bounds/signature data) and
/// the kfunc signatures.
#[derive(Debug)]
pub struct Verifier<'a> {
    maps: &'a MapSet,
    kfuncs: &'a [KfuncSig],
}

impl<'a> Verifier<'a> {
    /// Creates a verifier against a map set and kfunc registry.
    pub fn new(maps: &'a MapSet, kfuncs: &'a [KfuncSig]) -> Self {
        Verifier { maps, kfuncs }
    }

    /// Verifies `program`.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] found on any path.
    pub fn verify(&self, program: &Program) -> Result<VerifiedProgram, VerifyError> {
        if program.is_empty() {
            return Err(VerifyError {
                at: None,
                kind: VerifyErrorKind::EmptyProgram,
            });
        }

        let insns = program.insns();
        let mut visited: HashMap<usize, Vec<AbsState>> = HashMap::new();
        let mut stack = vec![(0usize, AbsState::entry())];
        let mut explored = 0usize;

        while let Some((pc, state)) = stack.pop() {
            // Prune exact revisits.
            let seen = visited.entry(pc).or_default();
            if seen.iter().any(|s| s == &state) {
                continue;
            }
            seen.push(state.clone());

            explored += 1;
            if explored > COMPLEXITY_LIMIT {
                return Err(VerifyError {
                    at: Some(pc),
                    kind: VerifyErrorKind::TooComplex,
                });
            }

            if pc >= insns.len() {
                return Err(VerifyError {
                    at: Some(pc.saturating_sub(1)),
                    kind: VerifyErrorKind::FallOffEnd,
                });
            }

            for (next_pc, next_state) in self.step(pc, insns[pc], state, insns.len())? {
                stack.push((next_pc, next_state));
            }
        }

        Ok(VerifiedProgram {
            program: program.clone(),
            states_explored: explored,
        })
    }

    /// Executes one instruction abstractly, returning successor
    /// states (empty for `exit`).
    fn step(
        &self,
        pc: usize,
        insn: Insn,
        mut st: AbsState,
        prog_len: usize,
    ) -> Result<Vec<(usize, AbsState)>, VerifyError> {
        let err = |kind| VerifyError { at: Some(pc), kind };
        let jump_target = |off: i32| -> Result<usize, VerifyError> {
            let target = pc as i64 + 1 + off as i64;
            if target < 0 || target as usize >= prog_len {
                return Err(err(VerifyErrorKind::JumpOutOfProgram));
            }
            let target = target as usize;
            if target <= pc {
                return Err(err(VerifyErrorKind::BackEdge {
                    from: pc,
                    to: target,
                }));
            }
            Ok(target)
        };

        match insn {
            Insn::Alu64 { op, dst, src } | Insn::Alu32 { op, dst, src } => {
                if dst.is_frame_pointer() {
                    return Err(err(VerifyErrorKind::FramePointerWrite));
                }
                let wide = matches!(insn, Insn::Alu64 { .. });
                let src_ty = match src {
                    Operand::Imm(v) => RegType::Scalar(Some(v)),
                    Operand::Reg(r) => {
                        let t = st.regs[r.index()].clone();
                        if t == RegType::Uninit {
                            return Err(err(VerifyErrorKind::UninitRegister(r)));
                        }
                        t
                    }
                };
                let dst_ty = st.regs[dst.index()].clone();
                let new_ty = if op == AluOp::Mov {
                    // Moves propagate types (including pointers).
                    if wide {
                        src_ty
                    } else {
                        // 32-bit move truncates: pointers become
                        // scalars of unknown value.
                        match src_ty {
                            RegType::Scalar(Some(v)) => {
                                RegType::Scalar(Some((v as u64 as u32) as i64))
                            }
                            RegType::Scalar(None) => RegType::Scalar(None),
                            _ => return Err(err(VerifyErrorKind::BadPointerArithmetic(dst))),
                        }
                    }
                } else {
                    if dst_ty == RegType::Uninit {
                        return Err(err(VerifyErrorKind::UninitRegister(dst)));
                    }
                    match (&dst_ty, &src_ty) {
                        // Scalar op scalar.
                        (RegType::Scalar(dv), RegType::Scalar(sv)) => {
                            let known = match (dv, sv, wide) {
                                (Some(a), Some(b), true) => eval_alu64(op, *a, *b),
                                (Some(a), Some(b), false) => eval_alu32(op, *a, *b),
                                _ => None,
                            };
                            RegType::Scalar(known)
                        }
                        // Pointer +/- known constant.
                        (RegType::FramePtr, RegType::Scalar(Some(k)))
                            if wide && (op == AluOp::Add || op == AluOp::Sub) =>
                        {
                            let delta = if op == AluOp::Add { *k } else { -*k };
                            RegType::StackPtr(
                                i32::try_from(delta)
                                    .map_err(|_| err(VerifyErrorKind::BadPointerArithmetic(dst)))?,
                            )
                        }
                        (RegType::StackPtr(off), RegType::Scalar(Some(k)))
                            if wide && (op == AluOp::Add || op == AluOp::Sub) =>
                        {
                            let delta = if op == AluOp::Add { *k } else { -*k };
                            let new_off = *off as i64 + delta;
                            RegType::StackPtr(
                                i32::try_from(new_off)
                                    .map_err(|_| err(VerifyErrorKind::BadPointerArithmetic(dst)))?,
                            )
                        }
                        (RegType::MapValue(m, off), RegType::Scalar(Some(k)))
                            if wide && (op == AluOp::Add || op == AluOp::Sub) =>
                        {
                            let delta = if op == AluOp::Add { *k } else { -*k };
                            let new_off = *off as i64 + delta;
                            RegType::MapValue(
                                *m,
                                i32::try_from(new_off)
                                    .map_err(|_| err(VerifyErrorKind::BadPointerArithmetic(dst)))?,
                            )
                        }
                        _ => return Err(err(VerifyErrorKind::BadPointerArithmetic(dst))),
                    }
                };
                st.regs[dst.index()] = new_ty;
                Ok(vec![(pc + 1, st)])
            }
            Insn::Neg { dst } => {
                if dst.is_frame_pointer() {
                    return Err(err(VerifyErrorKind::FramePointerWrite));
                }
                match st.regs[dst.index()] {
                    RegType::Scalar(v) => {
                        st.regs[dst.index()] = RegType::Scalar(v.map(i64::wrapping_neg));
                        Ok(vec![(pc + 1, st)])
                    }
                    RegType::Uninit => Err(err(VerifyErrorKind::UninitRegister(dst))),
                    _ => Err(err(VerifyErrorKind::BadPointerArithmetic(dst))),
                }
            }
            Insn::LoadImm64 { dst, imm } => {
                if dst.is_frame_pointer() {
                    return Err(err(VerifyErrorKind::FramePointerWrite));
                }
                st.regs[dst.index()] = RegType::Scalar(Some(imm));
                Ok(vec![(pc + 1, st)])
            }
            Insn::LoadMapRef { dst, map } => {
                if dst.is_frame_pointer() {
                    return Err(err(VerifyErrorKind::FramePointerWrite));
                }
                if self.maps.def(map).is_err() {
                    return Err(err(VerifyErrorKind::UnknownMap(map)));
                }
                st.regs[dst.index()] = RegType::MapRef(map);
                Ok(vec![(pc + 1, st)])
            }
            Insn::LoadCtx { dst, index } => {
                if dst.is_frame_pointer() {
                    return Err(err(VerifyErrorKind::FramePointerWrite));
                }
                if index >= MAX_CTX_WORDS {
                    return Err(err(VerifyErrorKind::BadCtxIndex(index)));
                }
                st.regs[dst.index()] = RegType::Scalar(None);
                Ok(vec![(pc + 1, st)])
            }
            Insn::Load {
                dst,
                base,
                off,
                size,
            } => {
                if dst.is_frame_pointer() {
                    return Err(err(VerifyErrorKind::FramePointerWrite));
                }
                self.check_mem(&st, pc, base, off, size, false)?;
                // Reads of initialized stack must be checked.
                if let Some(start) = stack_byte_index(&st.regs[base.index()], off) {
                    if !st.stack_is_init(start, size.bytes()) {
                        return Err(err(VerifyErrorKind::UninitStackRead {
                            off: rel_off(&st.regs[base.index()], off),
                        }));
                    }
                }
                st.regs[dst.index()] = RegType::Scalar(None);
                Ok(vec![(pc + 1, st)])
            }
            Insn::Store {
                base,
                off,
                src,
                size,
            } => {
                match st.regs[src.index()] {
                    RegType::Scalar(_) => {}
                    RegType::Uninit => return Err(err(VerifyErrorKind::UninitRegister(src))),
                    _ => return Err(err(VerifyErrorKind::PointerSpill(src))),
                }
                self.check_mem(&st, pc, base, off, size, true)?;
                if let Some(start) = stack_byte_index(&st.regs[base.index()], off) {
                    st.stack_mark_init(start, size.bytes());
                }
                Ok(vec![(pc + 1, st)])
            }
            Insn::StoreImm {
                base, off, size, ..
            } => {
                self.check_mem(&st, pc, base, off, size, true)?;
                if let Some(start) = stack_byte_index(&st.regs[base.index()], off) {
                    st.stack_mark_init(start, size.bytes());
                }
                Ok(vec![(pc + 1, st)])
            }
            Insn::Jump { off } => {
                let target = jump_target(off)?;
                Ok(vec![(target, st)])
            }
            Insn::JumpIf {
                cond,
                dst,
                src,
                off,
            } => {
                let target = jump_target(off)?;
                let dst_ty = st.regs[dst.index()].clone();
                if dst_ty == RegType::Uninit {
                    return Err(err(VerifyErrorKind::UninitRegister(dst)));
                }
                if let Operand::Reg(r) = src {
                    let t = &st.regs[r.index()];
                    if *t == RegType::Uninit {
                        return Err(err(VerifyErrorKind::UninitRegister(r)));
                    }
                    if !matches!(t, RegType::Scalar(_)) {
                        return Err(err(VerifyErrorKind::PointerComparison));
                    }
                }

                // Null-check refinement: `if rX ==/!= 0` on a
                // maybe-null map value.
                if let RegType::MapValueOrNull(map) = dst_ty {
                    let zero_imm = matches!(src, Operand::Imm(0));
                    if zero_imm && (cond == JmpCond::Eq || cond == JmpCond::Ne) {
                        let mut null_state = st.clone();
                        null_state.regs[dst.index()] = RegType::Scalar(Some(0));
                        let mut valid_state = st;
                        valid_state.regs[dst.index()] = RegType::MapValue(map, 0);
                        return Ok(if cond == JmpCond::Eq {
                            vec![(target, null_state), (pc + 1, valid_state)]
                        } else {
                            vec![(target, valid_state), (pc + 1, null_state)]
                        });
                    }
                    return Err(err(VerifyErrorKind::PossiblyNull(dst)));
                }
                if !matches!(dst_ty, RegType::Scalar(_)) {
                    return Err(err(VerifyErrorKind::PointerComparison));
                }
                Ok(vec![(target, st.clone()), (pc + 1, st)])
            }
            Insn::Call { helper } => {
                self.check_helper(&mut st, pc, helper)?;
                Ok(vec![(pc + 1, st)])
            }
            Insn::CallKfunc { kfunc } => {
                let sig = self
                    .kfuncs
                    .get(kfunc as usize)
                    .ok_or_else(|| err(VerifyErrorKind::UnknownKfunc(kfunc)))?;
                for i in 1..=sig.args {
                    let r = Reg::new(i);
                    if !matches!(st.regs[r.index()], RegType::Scalar(_)) {
                        return Err(err(VerifyErrorKind::BadKfuncArg { kfunc, arg: r }));
                    }
                }
                clobber_caller_saved(&mut st);
                st.regs[0] = RegType::Scalar(None);
                Ok(vec![(pc + 1, st)])
            }
            Insn::Exit => {
                if !matches!(st.regs[0], RegType::Scalar(_)) {
                    return Err(err(VerifyErrorKind::BadReturnValue));
                }
                Ok(vec![])
            }
        }
    }

    /// Validates a memory access through `base + off` of `size`.
    fn check_mem(
        &self,
        st: &AbsState,
        pc: usize,
        base: Reg,
        off: i16,
        size: AccessSize,
        _write: bool,
    ) -> Result<(), VerifyError> {
        let err = |kind| VerifyError { at: Some(pc), kind };
        match &st.regs[base.index()] {
            RegType::FramePtr | RegType::StackPtr(_) => {
                let rel = rel_off(&st.regs[base.index()], off);
                let ok = rel >= -(STACK_SIZE as i64)
                    && rel + size.bytes() as i64 <= 0
                    && rel % size.bytes() as i64 == 0;
                if !ok {
                    return Err(err(VerifyErrorKind::BadStackAccess { off: rel }));
                }
                Ok(())
            }
            RegType::MapValue(map, ptr_off) => {
                let def = self
                    .maps
                    .def(*map)
                    .map_err(|_| err(VerifyErrorKind::UnknownMap(*map)))?;
                let total = *ptr_off as i64 + off as i64;
                let ok = total >= 0
                    && total + size.bytes() as i64 <= def.value_size as i64
                    && total % size.bytes() as i64 == 0;
                if !ok {
                    return Err(err(VerifyErrorKind::MapValueOutOfBounds {
                        map: *map,
                        off: total,
                        value_size: def.value_size,
                    }));
                }
                Ok(())
            }
            RegType::MapValueOrNull(_) => Err(err(VerifyErrorKind::PossiblyNull(base))),
            RegType::Uninit => Err(err(VerifyErrorKind::UninitRegister(base))),
            _ => Err(err(VerifyErrorKind::BadPointer(base))),
        }
    }

    fn check_helper(
        &self,
        st: &mut AbsState,
        pc: usize,
        helper: HelperId,
    ) -> Result<(), VerifyError> {
        let err = |kind| VerifyError { at: Some(pc), kind };
        let bad = |arg: Reg, expected: &'static str| VerifyError {
            at: Some(pc),
            kind: VerifyErrorKind::BadHelperArg {
                helper,
                arg,
                expected,
            },
        };

        /// Requires `r` to be a stack pointer to `len` initialized
        /// bytes.
        fn stack_buf(
            st: &AbsState,
            r: Reg,
            len: u32,
            mk: impl Fn(Reg, &'static str) -> VerifyError,
        ) -> Result<(), VerifyError> {
            match &st.regs[r.index()] {
                RegType::StackPtr(off) => {
                    let rel = *off as i64;
                    if rel < -(STACK_SIZE as i64) || rel + len as i64 > 0 {
                        return Err(mk(r, "in-bounds stack pointer"));
                    }
                    let start = (STACK_SIZE as i64 + rel) as usize;
                    if !st.stack_is_init(start, len as usize) {
                        return Err(mk(r, "pointer to initialized stack bytes"));
                    }
                    Ok(())
                }
                _ => Err(mk(r, "stack pointer")),
            }
        }

        let ret = match helper {
            HelperId::MapLookup => {
                let map = match st.regs[Reg::R1.index()] {
                    RegType::MapRef(m) => m,
                    _ => return Err(bad(Reg::R1, "map reference")),
                };
                let def = self
                    .maps
                    .def(map)
                    .map_err(|_| err(VerifyErrorKind::UnknownMap(map)))?;
                if def.kind == MapKind::RingBuf {
                    return Err(bad(Reg::R1, "array or hash map"));
                }
                stack_buf(st, Reg::R2, def.key_size, bad)?;
                RegType::MapValueOrNull(map)
            }
            HelperId::MapUpdate => {
                let map = match st.regs[Reg::R1.index()] {
                    RegType::MapRef(m) => m,
                    _ => return Err(bad(Reg::R1, "map reference")),
                };
                let def = self
                    .maps
                    .def(map)
                    .map_err(|_| err(VerifyErrorKind::UnknownMap(map)))?;
                if def.kind == MapKind::RingBuf {
                    return Err(bad(Reg::R1, "array or hash map"));
                }
                stack_buf(st, Reg::R2, def.key_size, bad)?;
                stack_buf(st, Reg::R3, def.value_size, bad)?;
                if !matches!(st.regs[Reg::R4.index()], RegType::Scalar(_)) {
                    return Err(bad(Reg::R4, "scalar flags"));
                }
                RegType::Scalar(None)
            }
            HelperId::MapDelete => {
                let map = match st.regs[Reg::R1.index()] {
                    RegType::MapRef(m) => m,
                    _ => return Err(bad(Reg::R1, "map reference")),
                };
                let def = self
                    .maps
                    .def(map)
                    .map_err(|_| err(VerifyErrorKind::UnknownMap(map)))?;
                if def.kind != MapKind::Hash {
                    return Err(bad(Reg::R1, "hash map"));
                }
                stack_buf(st, Reg::R2, def.key_size, bad)?;
                RegType::Scalar(None)
            }
            HelperId::KtimeGetNs | HelperId::GetSmpProcessorId => RegType::Scalar(None),
            HelperId::TracePrintk => {
                if !matches!(st.regs[Reg::R1.index()], RegType::Scalar(_)) {
                    return Err(bad(Reg::R1, "scalar format id"));
                }
                RegType::Scalar(None)
            }
            HelperId::RingbufOutput => {
                let map = match st.regs[Reg::R1.index()] {
                    RegType::MapRef(m) => m,
                    _ => return Err(bad(Reg::R1, "ring buffer map")),
                };
                let def = self
                    .maps
                    .def(map)
                    .map_err(|_| err(VerifyErrorKind::UnknownMap(map)))?;
                if def.kind != MapKind::RingBuf {
                    return Err(bad(Reg::R1, "ring buffer map"));
                }
                let size = match st.regs[Reg::R3.index()] {
                    RegType::Scalar(Some(s)) if s > 0 && s <= STACK_SIZE as i64 => s as u32,
                    RegType::Scalar(_) => return Err(err(VerifyErrorKind::UnknownRingSize)),
                    _ => return Err(bad(Reg::R3, "scalar size")),
                };
                stack_buf(st, Reg::R2, size, bad)?;
                if !matches!(st.regs[Reg::R4.index()], RegType::Scalar(_)) {
                    return Err(bad(Reg::R4, "scalar flags"));
                }
                RegType::Scalar(None)
            }
        };
        clobber_caller_saved(st);
        st.regs[0] = ret;
        Ok(())
    }
}

/// Caller-saved registers become uninitialized after a call.
fn clobber_caller_saved(st: &mut AbsState) {
    for i in 1..=5 {
        st.regs[i] = RegType::Uninit;
    }
}

/// Byte offset of an access relative to the frame pointer, for
/// stack-based registers.
fn rel_off(base: &RegType, off: i16) -> i64 {
    match base {
        RegType::FramePtr => off as i64,
        RegType::StackPtr(p) => *p as i64 + off as i64,
        _ => off as i64,
    }
}

/// Index into the stack byte array for a stack access, or `None` for
/// non-stack bases.
fn stack_byte_index(base: &RegType, off: i16) -> Option<usize> {
    match base {
        RegType::FramePtr | RegType::StackPtr(_) => {
            let rel = rel_off(base, off);
            Some((STACK_SIZE as i64 + rel) as usize)
        }
        _ => None,
    }
}

fn eval_alu64(op: AluOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => (a as u64).checked_div(b as u64).unwrap_or(0) as i64,
        AluOp::Mod => (a as u64).checked_rem(b as u64).map_or(0, |v| v as i64),
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Xor => a ^ b,
        AluOp::Lsh => ((a as u64) << ((b as u64) & 63)) as i64,
        AluOp::Rsh => ((a as u64) >> ((b as u64) & 63)) as i64,
        AluOp::Arsh => a >> ((b as u64) & 63),
        AluOp::Mov => b,
    })
}

fn eval_alu32(op: AluOp, a: i64, b: i64) -> Option<i64> {
    let a32 = a as u32;
    let b32 = b as u32;
    let v: u32 = match op {
        AluOp::Add => a32.wrapping_add(b32),
        AluOp::Sub => a32.wrapping_sub(b32),
        AluOp::Mul => a32.wrapping_mul(b32),
        AluOp::Div => a32.checked_div(b32).unwrap_or(0),
        AluOp::Mod => a32.checked_rem(b32).unwrap_or(0),
        AluOp::Or => a32 | b32,
        AluOp::And => a32 & b32,
        AluOp::Xor => a32 ^ b32,
        AluOp::Lsh => a32.wrapping_shl(b32 & 31),
        AluOp::Rsh => a32.wrapping_shr(b32 & 31),
        AluOp::Arsh => ((a32 as i32) >> (b32 & 31)) as u32,
        AluOp::Mov => b32,
    };
    Some(v as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::MapDef;
    use crate::program::ProgramBuilder;

    fn maps_with_array() -> (MapSet, MapId) {
        let mut maps = MapSet::new();
        let m = maps.create(MapDef::array(8, 16)).unwrap();
        (maps, m)
    }

    fn verify(p: &Program, maps: &MapSet) -> Result<VerifiedProgram, VerifyError> {
        Verifier::new(maps, &[]).verify(p)
    }

    #[test]
    fn minimal_valid_program() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("ok");
        b.mov(Reg::R0, 0).exit();
        assert!(verify(&b.build().unwrap(), &maps).is_ok());
    }

    #[test]
    fn empty_program_rejected() {
        let maps = MapSet::new();
        let p = ProgramBuilder::new("empty").build().unwrap();
        assert_eq!(
            verify(&p, &maps).unwrap_err().kind,
            VerifyErrorKind::EmptyProgram
        );
    }

    #[test]
    fn uninitialized_register_read_rejected() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        b.mov(Reg::R0, Reg::R3).exit();
        assert_eq!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::UninitRegister(Reg::R3)
        );
    }

    #[test]
    fn exit_without_r0_rejected() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        b.exit();
        assert_eq!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::BadReturnValue
        );
    }

    #[test]
    fn fall_off_end_rejected() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        b.mov(Reg::R0, 0); // no exit
        assert_eq!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::FallOffEnd
        );
    }

    #[test]
    fn frame_pointer_write_rejected() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        b.mov(Reg::R10, 0).mov(Reg::R0, 0).exit();
        assert_eq!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::FramePointerWrite
        );
    }

    #[test]
    fn back_edge_rejected() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("loop");
        let top = b.label();
        b.mov(Reg::R0, 0);
        b.bind(top).unwrap();
        b.add(Reg::R0, 1).jump(top);
        assert!(matches!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::BackEdge { .. }
        ));
    }

    #[test]
    fn stack_roundtrip_verifies() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("stack");
        b.mov(Reg::R1, 7)
            .store(Reg::R10, -8, Reg::R1, AccessSize::B8)
            .load(Reg::R0, Reg::R10, -8, AccessSize::B8)
            .exit();
        assert!(verify(&b.build().unwrap(), &maps).is_ok());
    }

    #[test]
    fn uninitialized_stack_read_rejected() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        b.load(Reg::R0, Reg::R10, -8, AccessSize::B8).exit();
        assert!(matches!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::UninitStackRead { .. }
        ));
    }

    #[test]
    fn out_of_bounds_stack_rejected() {
        let maps = MapSet::new();
        for off in [-520i16, 0, 8] {
            let mut b = ProgramBuilder::new("bad");
            b.store_imm(Reg::R10, off, 1, AccessSize::B8)
                .mov(Reg::R0, 0)
                .exit();
            assert!(
                matches!(
                    verify(&b.build().unwrap(), &maps).unwrap_err().kind,
                    VerifyErrorKind::BadStackAccess { .. }
                ),
                "offset {off} should be rejected"
            );
        }
    }

    #[test]
    fn misaligned_stack_rejected() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        b.store_imm(Reg::R10, -7, 1, AccessSize::B8)
            .mov(Reg::R0, 0)
            .exit();
        assert!(matches!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::BadStackAccess { .. }
        ));
    }

    #[test]
    fn computed_stack_pointer_verifies() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("ptr");
        b.mov(Reg::R1, Reg::R10)
            .add(Reg::R1, -16)
            .store_imm(Reg::R1, 0, 5, AccessSize::B8)
            .load(Reg::R0, Reg::R1, 0, AccessSize::B8)
            .exit();
        assert!(verify(&b.build().unwrap(), &maps).is_ok());
    }

    #[test]
    fn map_lookup_requires_null_check() {
        let (maps, m) = maps_with_array();
        let mut b = ProgramBuilder::new("bad");
        b.store_imm(Reg::R10, -4, 0, AccessSize::B4)
            .load_map(Reg::R1, m)
            .mov(Reg::R2, Reg::R10)
            .add(Reg::R2, -4)
            .call(HelperId::MapLookup)
            // Missing null check:
            .load(Reg::R0, Reg::R0, 0, AccessSize::B8)
            .exit();
        assert!(matches!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::PossiblyNull(_)
        ));
    }

    #[test]
    fn map_lookup_with_null_check_verifies() {
        let (maps, m) = maps_with_array();
        let mut b = ProgramBuilder::new("good");
        let out = b.label();
        b.store_imm(Reg::R10, -4, 0, AccessSize::B4)
            .load_map(Reg::R1, m)
            .mov(Reg::R2, Reg::R10)
            .add(Reg::R2, -4)
            .call(HelperId::MapLookup)
            .mov(Reg::R6, Reg::R0)
            .jump_if(JmpCond::Eq, Reg::R6, 0i64, out)
            .load(Reg::R6, Reg::R6, 0, AccessSize::B8)
            .bind(out)
            .unwrap()
            .mov(Reg::R0, 0)
            .exit();
        let v = verify(&b.build().unwrap(), &maps).unwrap();
        assert!(v.states_explored() > 0);
    }

    #[test]
    fn map_value_bounds_enforced() {
        let (maps, m) = maps_with_array(); // value_size 8
        let mut b = ProgramBuilder::new("bad");
        let out = b.label();
        b.store_imm(Reg::R10, -4, 0, AccessSize::B4)
            .load_map(Reg::R1, m)
            .mov(Reg::R2, Reg::R10)
            .add(Reg::R2, -4)
            .call(HelperId::MapLookup)
            .jump_if(JmpCond::Eq, Reg::R0, 0i64, out)
            .load(Reg::R0, Reg::R0, 8, AccessSize::B8) // off 8 out of bounds
            .bind(out)
            .unwrap()
            .mov(Reg::R0, 0)
            .exit();
        assert!(matches!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::MapValueOutOfBounds { .. }
        ));
    }

    #[test]
    fn helper_signature_enforced() {
        let (maps, _m) = maps_with_array();
        let mut b = ProgramBuilder::new("bad");
        b.mov(Reg::R1, 0) // scalar, not a map ref
            .mov(Reg::R2, Reg::R10)
            .call(HelperId::MapLookup)
            .mov(Reg::R0, 0)
            .exit();
        assert!(matches!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::BadHelperArg { .. }
        ));
    }

    #[test]
    fn uninitialized_key_buffer_rejected() {
        let (maps, m) = maps_with_array();
        let mut b = ProgramBuilder::new("bad");
        b.load_map(Reg::R1, m)
            .mov(Reg::R2, Reg::R10)
            .add(Reg::R2, -4)
            .call(HelperId::MapLookup) // key bytes never written
            .mov(Reg::R0, 0)
            .exit();
        assert!(matches!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::BadHelperArg { .. }
        ));
    }

    #[test]
    fn helper_clobbers_argument_registers() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        b.mov(Reg::R3, 9)
            .call(HelperId::KtimeGetNs)
            .mov(Reg::R0, Reg::R3) // r3 clobbered by the call
            .exit();
        assert_eq!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::UninitRegister(Reg::R3)
        );
    }

    #[test]
    fn callee_saved_registers_survive_calls() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("good");
        b.mov(Reg::R6, 9)
            .call(HelperId::KtimeGetNs)
            .mov(Reg::R0, Reg::R6)
            .exit();
        assert!(verify(&b.build().unwrap(), &maps).is_ok());
    }

    #[test]
    fn pointer_spill_rejected() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        b.mov(Reg::R1, Reg::R10)
            .store(Reg::R10, -8, Reg::R1, AccessSize::B8)
            .mov(Reg::R0, 0)
            .exit();
        assert!(matches!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::PointerSpill(_)
        ));
    }

    #[test]
    fn pointer_comparison_rejected() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        let out = b.label();
        b.mov(Reg::R1, Reg::R10)
            .jump_if(JmpCond::Eq, Reg::R1, 0i64, out)
            .bind(out)
            .unwrap()
            .mov(Reg::R0, 0)
            .exit();
        assert!(matches!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::PointerComparison
        ));
    }

    #[test]
    fn kfunc_signature_checked() {
        let maps = MapSet::new();
        let kfuncs = [KfuncSig {
            name: "snapbpf_prefetch",
            args: 3,
        }];
        // Valid: three scalar args.
        let mut b = ProgramBuilder::new("good");
        b.mov(Reg::R1, 1)
            .mov(Reg::R2, 2)
            .mov(Reg::R3, 3)
            .call_kfunc(0)
            .exit();
        assert!(Verifier::new(&maps, &kfuncs)
            .verify(&b.build().unwrap())
            .is_ok());

        // Invalid: r3 uninitialized.
        let mut b = ProgramBuilder::new("bad");
        b.mov(Reg::R1, 1).mov(Reg::R2, 2).call_kfunc(0).exit();
        assert!(matches!(
            Verifier::new(&maps, &kfuncs)
                .verify(&b.build().unwrap())
                .unwrap_err()
                .kind,
            VerifyErrorKind::BadKfuncArg { .. }
        ));

        // Invalid: unknown kfunc index.
        let mut b = ProgramBuilder::new("bad2");
        b.call_kfunc(7).exit();
        assert_eq!(
            Verifier::new(&maps, &kfuncs)
                .verify(&b.build().unwrap())
                .unwrap_err()
                .kind,
            VerifyErrorKind::UnknownKfunc(7)
        );
    }

    #[test]
    fn unknown_map_rejected() {
        let (maps, m) = maps_with_array();
        // Build a program against a map id from a *different* set.
        let mut other = MapSet::new();
        let m2 = other.create(MapDef::array(8, 16)).unwrap();
        let m3 = other.create(MapDef::array(8, 16)).unwrap();
        assert_eq!(m.as_u32(), m2.as_u32()); // same index, fine
        let mut b = ProgramBuilder::new("bad");
        b.load_map(Reg::R1, m3).mov(Reg::R0, 0).exit();
        assert_eq!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::UnknownMap(m3)
        );
    }

    #[test]
    fn ctx_index_bounds() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        b.load_ctx(Reg::R0, MAX_CTX_WORDS).exit();
        assert_eq!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::BadCtxIndex(MAX_CTX_WORDS)
        );
    }

    #[test]
    fn branchy_program_verifies_both_paths() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("branchy");
        let a = b.label();
        let done = b.label();
        b.load_ctx(Reg::R1, 0)
            .jump_if(JmpCond::Gt, Reg::R1, 10i64, a)
            .mov(Reg::R0, 1)
            .jump(done)
            .bind(a)
            .unwrap()
            .mov(Reg::R0, 2)
            .bind(done)
            .unwrap()
            .exit();
        assert!(verify(&b.build().unwrap(), &maps).is_ok());
    }

    #[test]
    fn one_path_missing_r0_rejected() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        let a = b.label();
        let done = b.label();
        b.load_ctx(Reg::R1, 0)
            .jump_if(JmpCond::Gt, Reg::R1, 10i64, a)
            .mov(Reg::R0, 1) // only the fall-through sets r0
            .jump(done)
            .bind(a)
            .unwrap()
            .bind(done)
            .unwrap()
            .exit();
        assert_eq!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::BadReturnValue
        );
    }
}
