//! The static verifier.
//!
//! Before a program may be attached, it is verified the way the Linux
//! verifier checks real eBPF: abstract interpretation over typed
//! registers. Since the 5.3-class upgrade the analysis is
//! *range-based*: every scalar carries signed and unsigned interval
//! bounds (`smin/smax/umin/umax`) that ALU ops transform and
//! conditional jumps refine per branch direction, so a map-value or
//! stack access indexed by a bounds-checked register verifies without
//! a verifier-known constant. The model enforces:
//!
//! * every register is initialized before use; `r10` is read-only,
//! * all stack accesses are in-bounds, aligned, and read only
//!   initialized bytes,
//! * map-value pointers are null-checked before dereference and stay
//!   within the value's bounds for every offset in their range,
//! * helper calls match their signatures (map refs, key/value
//!   pointers into initialized stack memory),
//! * back-edges are allowed: bounded loops verify via state pruning
//!   (a loop-header state subsumed by an already-explored one is
//!   pruned; repeated identical states are rejected as
//!   non-terminating), with [`COMPLEXITY_LIMIT`] as the backstop,
//! * every path ends in `exit` with `r0` initialized, and no
//!   instruction is statically unreachable,
//! * path exploration is bounded by a complexity limit.
//!
//! Verification returns a [`VerifiedProgram`] token; the interpreter
//! only accepts verified programs. [`Verifier::verify_logged`]
//! additionally produces a structured [`VerifierLog`] with per-insn
//! state transitions, rejection reasons, and summary
//! [`VerifierStats`].

use std::collections::HashSet;
use std::fmt;

use crate::insn::{
    AccessSize, AluOp, HelperId, Insn, JmpCond, Operand, Reg, MAX_CTX_WORDS, STACK_SIZE,
};
use crate::map::{MapId, MapKind, MapSet};
use crate::opt::cfg::static_reachable;
use crate::program::Program;

/// Maximum number of `(pc, state)` pairs explored before the
/// verifier gives up, mirroring the kernel's
/// `BPF_COMPLEXITY_LIMIT_INSNS` (1 M since 5.2 — the budget that
/// makes verifying bounded loops by unrolling practical).
pub const COMPLEXITY_LIMIT: usize = 1_000_000;

/// Cap on the per-instruction list of subsumption-prune candidates.
const WIDE_CAND_LIMIT: usize = 64;

/// Cap on verifier-log lines; beyond this the log is truncated.
const LOG_LINE_LIMIT: usize = 4096;

/// Signature of a kfunc as known to the verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KfuncSig {
    /// Name, for diagnostics.
    pub name: &'static str,
    /// Number of scalar arguments (`r1`..`r{args}`).
    pub args: u8,
}

/// Interval bounds on a scalar register, tracked in both the signed
/// and unsigned domains (the value is a single 64-bit quantity; both
/// views constrain it simultaneously).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ScalarRange {
    pub(crate) smin: i64,
    pub(crate) smax: i64,
    pub(crate) umin: u64,
    pub(crate) umax: u64,
}

impl ScalarRange {
    pub(crate) fn exact(v: i64) -> Self {
        ScalarRange {
            smin: v,
            smax: v,
            umin: v as u64,
            umax: v as u64,
        }
    }

    pub(crate) fn unknown() -> Self {
        ScalarRange {
            smin: i64::MIN,
            smax: i64::MAX,
            umin: 0,
            umax: u64::MAX,
        }
    }

    /// The exact value, when both domains agree on a single point.
    pub(crate) fn const_value(&self) -> Option<i64> {
        if self.smin == self.smax && self.umin == self.umax && self.smin as u64 == self.umin {
            Some(self.smin)
        } else {
            None
        }
    }

    pub(crate) fn is_valid(&self) -> bool {
        self.smin <= self.smax && self.umin <= self.umax
    }

    /// Cross-deduces bounds between the signed and unsigned views:
    /// a known-non-negative signed range pins the unsigned one and
    /// vice versa.
    pub(crate) fn deduce(mut self) -> Self {
        if self.smin >= 0 {
            self.umin = self.umin.max(self.smin as u64);
            self.umax = self.umax.min(self.smax as u64);
        }
        if self.umax <= i64::MAX as u64 {
            self.smin = self.smin.max(self.umin as i64);
            self.smax = self.smax.min(self.umax as i64);
        }
        self
    }

    /// Whether every value admitted by `other` is admitted by `self`.
    pub(crate) fn subsumes(&self, other: &Self) -> bool {
        self.smin <= other.smin
            && self.smax >= other.smax
            && self.umin <= other.umin
            && self.umax >= other.umax
    }
}

/// A (possibly variable) pointer offset, as an inclusive byte range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct VarOff {
    pub(crate) min: i32,
    pub(crate) max: i32,
}

impl VarOff {
    pub(crate) fn exact(v: i32) -> Self {
        VarOff { min: v, max: v }
    }

    pub(crate) fn is_exact(&self) -> bool {
        self.min == self.max
    }

    pub(crate) fn subsumes(&self, other: &Self) -> bool {
        self.min <= other.min && self.max >= other.max
    }
}

/// Abstract type of a register during verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum RegType {
    Uninit,
    /// A scalar with interval bounds.
    Scalar(ScalarRange),
    /// The frame pointer (`r10`).
    FramePtr,
    /// `r10 + off` for a bounded offset range.
    StackPtr(VarOff),
    /// A reference to a map (from [`Insn::LoadMapRef`]).
    MapRef(MapId),
    /// Result of `bpf_map_lookup_elem`: value pointer or null.
    MapValueOrNull(MapId),
    /// A null-checked map-value pointer at a bounded byte offset.
    MapValue(MapId, VarOff),
}

impl RegType {
    pub(crate) fn scalar_exact(v: i64) -> Self {
        RegType::Scalar(ScalarRange::exact(v))
    }

    pub(crate) fn scalar_unknown() -> Self {
        RegType::Scalar(ScalarRange::unknown())
    }

    /// Whether this abstract value covers every concrete value
    /// `other` covers (`Uninit` covers everything: a program safe
    /// with the register unwritten never reads it).
    pub(crate) fn subsumes(&self, other: &RegType) -> bool {
        match (self, other) {
            (RegType::Uninit, _) => true,
            (RegType::Scalar(a), RegType::Scalar(b)) => a.subsumes(b),
            (RegType::StackPtr(a), RegType::StackPtr(b)) => a.subsumes(b),
            (RegType::MapValue(m, a), RegType::MapValue(n, b)) => m == n && a.subsumes(b),
            _ => self == other,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct AbsState {
    pub(crate) regs: [RegType; 11],
    /// One bit per stack byte: initialized?
    pub(crate) stack_init: [u64; STACK_SIZE / 64],
}

impl AbsState {
    pub(crate) fn entry() -> Self {
        let mut regs = [RegType::Uninit; 11];
        regs[10] = RegType::FramePtr;
        // r1 holds the context pointer in real eBPF; our LoadCtx
        // pseudo-instruction replaces ctx pointer arithmetic, so r1
        // starts uninitialized here.
        AbsState {
            regs,
            stack_init: [0; STACK_SIZE / 64],
        }
    }

    pub(crate) fn stack_mark_init(&mut self, start: usize, len: usize) {
        for b in start..start + len {
            self.stack_init[b / 64] |= 1 << (b % 64);
        }
    }

    pub(crate) fn stack_is_init(&self, start: usize, len: usize) -> bool {
        (start..start + len).all(|b| self.stack_init[b / 64] & (1 << (b % 64)) != 0)
    }

    /// State subsumption: every register covers the other state's,
    /// and this state assumes *no more* initialized stack bytes.
    fn subsumes(&self, other: &AbsState) -> bool {
        self.regs
            .iter()
            .zip(&other.regs)
            .all(|(a, b)| a.subsumes(b))
            && self
                .stack_init
                .iter()
                .zip(&other.stack_init)
                .all(|(a, b)| a & !b == 0)
    }

    /// Whether pruning against this state can ever beat exact
    /// equality (i.e. it strictly covers more than one point).
    fn widenable(&self) -> bool {
        self.regs.iter().any(|r| match r {
            RegType::Uninit => true,
            RegType::Scalar(s) => s.const_value().is_none(),
            RegType::StackPtr(v) | RegType::MapValue(_, v) => !v.is_exact(),
            _ => false,
        })
    }
}

/// Verification failure, with the offending instruction index and
/// (when available) a snapshot of the abstract register state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Instruction index, when attributable.
    pub at: Option<usize>,
    /// What went wrong.
    pub kind: VerifyErrorKind,
    /// Rendered register state at the point of failure.
    regs: Option<String>,
}

impl VerifyError {
    fn new(at: Option<usize>, kind: VerifyErrorKind) -> Self {
        VerifyError {
            at,
            kind,
            regs: None,
        }
    }

    fn with_regs(mut self, st: &AbsState) -> Self {
        if self.regs.is_none() {
            self.regs = Some(format_regs(st));
        }
        self
    }

    /// The abstract register state at the failing instruction, as
    /// rendered in the verifier log (`None` when no state applies,
    /// e.g. for an empty program).
    pub fn register_snapshot(&self) -> Option<&str> {
        self.regs.as_deref()
    }
}

/// The kinds of verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyErrorKind {
    /// The program has no instructions.
    EmptyProgram,
    /// Reading a register that was never written.
    UninitRegister(Reg),
    /// Writing `r10`.
    FramePointerWrite,
    /// Execution can fall off the end of the program.
    FallOffEnd,
    /// A jump leaves the program.
    JumpOutOfProgram,
    /// An edge closes a cycle by revisiting an abstract state still
    /// being explored on the current path: the loop makes no provable
    /// progress and cannot be bounded.
    InfiniteLoop {
        /// Source of the cycle-closing edge.
        from: usize,
        /// Instruction revisited with an identical state.
        to: usize,
    },
    /// An instruction no execution path can ever reach.
    DeadCode,
    /// Stack access outside `[-512, 0)` or misaligned.
    BadStackAccess {
        /// Byte offset relative to the frame pointer.
        off: i64,
    },
    /// Reading uninitialized stack bytes.
    UninitStackRead {
        /// Byte offset relative to the frame pointer.
        off: i64,
    },
    /// Dereferencing something that is not a valid pointer.
    BadPointer(Reg),
    /// Dereferencing a possibly-null map value without a null check.
    PossiblyNull(Reg),
    /// A map-value access outside the value's bounds.
    MapValueOutOfBounds {
        /// The map.
        map: MapId,
        /// Attempted byte offset.
        off: i64,
        /// The value size.
        value_size: u32,
    },
    /// Helper argument type mismatch.
    BadHelperArg {
        /// The helper.
        helper: HelperId,
        /// Which argument register.
        arg: Reg,
        /// Human-readable expectation.
        expected: &'static str,
    },
    /// Kfunc index not present in the registry.
    UnknownKfunc(u32),
    /// Kfunc argument not an initialized scalar.
    BadKfuncArg {
        /// Kfunc registry index.
        kfunc: u32,
        /// Which argument register.
        arg: Reg,
    },
    /// Arithmetic that the verifier cannot prove safe (e.g. pointer
    /// arithmetic with an unbounded offset, or non-add/sub on a
    /// pointer).
    BadPointerArithmetic(Reg),
    /// Spilling a pointer to the stack (not supported by this
    /// verifier).
    PointerSpill(Reg),
    /// `exit` with `r0` uninitialized or non-scalar.
    BadReturnValue,
    /// Comparing pointers (other than the null check pattern).
    PointerComparison,
    /// A map id referenced by the program does not exist in the map
    /// set.
    UnknownMap(MapId),
    /// Context word index out of range.
    BadCtxIndex(u8),
    /// Too many states explored.
    TooComplex,
    /// Ring-buffer output size is not a verifier-known constant.
    UnknownRingSize,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.at {
            Some(at) => write!(f, "at insn {at}: {}", self.kind)?,
            None => write!(f, "{}", self.kind)?,
        }
        if let Some(regs) = &self.regs {
            write!(f, "\n  regs: {regs}")?;
        }
        Ok(())
    }
}

impl fmt::Display for VerifyErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use VerifyErrorKind::*;
        match self {
            EmptyProgram => write!(f, "empty program"),
            UninitRegister(r) => write!(f, "read of uninitialized register {r}"),
            FramePointerWrite => write!(f, "write to frame pointer r10"),
            FallOffEnd => write!(f, "execution can fall off the end"),
            JumpOutOfProgram => write!(f, "jump target outside program"),
            InfiniteLoop { from, to } => write!(
                f,
                "infinite loop: edge from {from} to {to} revisits an identical state"
            ),
            DeadCode => write!(f, "unreachable instruction (dead code)"),
            BadStackAccess { off } => write!(f, "invalid stack access at fp{off:+}"),
            UninitStackRead { off } => write!(f, "read of uninitialized stack at fp{off:+}"),
            BadPointer(r) => write!(f, "{r} is not a valid pointer"),
            PossiblyNull(r) => write!(f, "{r} may be null; null-check required"),
            MapValueOutOfBounds {
                map,
                off,
                value_size,
            } => {
                write!(f, "{map} value access at {off} outside {value_size} bytes")
            }
            BadHelperArg {
                helper,
                arg,
                expected,
            } => {
                write!(f, "{helper}: {arg} must be {expected}")
            }
            UnknownKfunc(i) => write!(f, "unknown kfunc #{i}"),
            BadKfuncArg { kfunc, arg } => {
                write!(f, "kfunc #{kfunc}: {arg} must be an initialized scalar")
            }
            BadPointerArithmetic(r) => write!(f, "unprovable pointer arithmetic on {r}"),
            PointerSpill(r) => write!(f, "cannot spill pointer {r} to stack"),
            BadReturnValue => write!(f, "exit with r0 not an initialized scalar"),
            PointerComparison => write!(f, "pointer comparison not allowed"),
            UnknownMap(m) => write!(f, "program references unknown {m}"),
            BadCtxIndex(i) => write!(f, "context index {i} out of range"),
            TooComplex => write!(f, "program too complex to verify"),
            UnknownRingSize => write!(f, "ringbuf output size must be a known constant"),
        }
    }
}

impl std::error::Error for VerifyErrorKind {}

impl std::error::Error for VerifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.kind)
    }
}

/// Summary statistics from one verification run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifierStats {
    /// Total instructions processed (counting revisits with new
    /// abstract states).
    pub insns_processed: u64,
    /// `(pc, state)` pairs explored (same count as
    /// `insns_processed`; kept for the complexity-limit contract).
    pub states_explored: usize,
    /// States skipped because an equal or subsuming state was
    /// already fully explored at the same instruction.
    pub states_pruned: u64,
    /// Deepest conditional-branch nesting reached on any path.
    pub peak_branch_depth: usize,
    /// Statically-reachable instructions that no explored path
    /// visited (branch pruning proved them dynamically dead).
    pub dead_insns: u64,
}

/// A structured, human-readable log of one verification run:
/// per-instruction state transitions, prune decisions, the
/// rejection reason (if any), and summary [`VerifierStats`].
#[derive(Debug, Clone, Default)]
pub struct VerifierLog {
    enabled: bool,
    truncated: bool,
    lines: Vec<String>,
    stats: VerifierStats,
}

impl VerifierLog {
    fn note(&mut self, line: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        if self.lines.len() >= LOG_LINE_LIMIT {
            self.truncated = true;
            return;
        }
        self.lines.push(line());
    }

    /// Like [`Self::note`] but exempt from the line limit: the
    /// rejection reason must survive even when per-insn tracing
    /// already filled the log.
    fn note_critical(&mut self, line: impl FnOnce() -> String) {
        if self.enabled {
            self.lines.push(line());
        }
    }

    /// The log lines, in exploration order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// The summary statistics.
    pub fn stats(&self) -> &VerifierStats {
        &self.stats
    }

    /// Renders the full log: every line plus a stats footer.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        if self.truncated {
            out.push_str("... (log truncated)\n");
        }
        let s = &self.stats;
        out.push_str(&format!(
            "verification stats: insns_processed={} states_explored={} states_pruned={} \
             peak_branch_depth={} dead_insns={}\n",
            s.insns_processed,
            s.states_explored,
            s.states_pruned,
            s.peak_branch_depth,
            s.dead_insns
        ));
        out
    }
}

impl fmt::Display for VerifierLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A program that passed verification, ready to run or attach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifiedProgram {
    program: Program,
    stats: VerifierStats,
    log: Option<String>,
}

impl VerifiedProgram {
    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// How many `(pc, state)` pairs verification explored.
    pub fn states_explored(&self) -> usize {
        self.stats.states_explored
    }

    /// Summary statistics from the verification run.
    pub fn stats(&self) -> &VerifierStats {
        &self.stats
    }

    /// The rendered verifier log, when verification ran with logging
    /// enabled ([`Verifier::verify_logged`]).
    pub fn log(&self) -> Option<&str> {
        self.log.as_deref()
    }
}

/// Per-instruction memory of *fully explored* states: exact states
/// for O(1) revisit pruning plus wider-than-a-point states for
/// subsumption pruning. States still on the walk path are tracked
/// separately — pruning against an unfinished state would let a
/// loop justify itself circularly.
#[derive(Default)]
struct SeenAt {
    all: HashSet<AbsState>,
    wide: Vec<AbsState>,
}

/// One node on the depth-first walk path: the state being explored
/// at `pc` plus its not-yet-visited successors.
struct Frame {
    pc: usize,
    state: AbsState,
    depth: usize,
    branched: bool,
    succs: Vec<(usize, AbsState)>,
}

/// Memo of successful verifications keyed by *program shape*: the
/// canonical instruction text with every map reference replaced by
/// the referenced map's definition (kind / key / value / capacity),
/// plus the kfunc signature table. Two programs with the same key
/// are verifier-equivalent — the abstract interpreter consults a map
/// id only to fetch its [`MapDef`](crate::MapDef) — so re-verifying one of them is
/// pure waste. This mirrors production reality: a kernel verifies a
/// program image once at load, not once per sandbox restore, and
/// SnapBPF reloads an *identical* prefetch program (modulo fresh map
/// ids) on every cold start.
///
/// Keys are exact strings, not hashes of them, so a collision can
/// never smuggle an unverified program past the verifier.
#[derive(Debug, Default)]
pub struct VerifyCache {
    ok: HashSet<String>,
    hits: u64,
}

impl VerifyCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct program shapes verified so far.
    pub fn len(&self) -> usize {
        self.ok.len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.ok.is_empty()
    }

    /// Verifications skipped because the shape was already proven.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

/// The verifier. Holds the map set (for bounds/signature data) and
/// the kfunc signatures.
#[derive(Debug)]
pub struct Verifier<'a> {
    maps: &'a MapSet,
    kfuncs: &'a [KfuncSig],
}

impl<'a> Verifier<'a> {
    /// Creates a verifier against a map set and kfunc registry.
    pub fn new(maps: &'a MapSet, kfuncs: &'a [KfuncSig]) -> Self {
        Verifier { maps, kfuncs }
    }

    /// Verifies `program`.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] found on any path.
    pub fn verify(&self, program: &Program) -> Result<VerifiedProgram, VerifyError> {
        self.verify_impl(program, false).0
    }

    /// Verifies `program`, consulting (and feeding) `cache`: when an
    /// identically-shaped program already verified against maps with
    /// these definitions, the walk is skipped entirely and the
    /// returned token carries empty [`VerifierStats`] (no work was
    /// done). Failures are never cached.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] found on any path.
    pub fn verify_cached(
        &self,
        program: &Program,
        cache: &mut VerifyCache,
    ) -> Result<VerifiedProgram, VerifyError> {
        let Some(key) = self.shape_key(program) else {
            // A map reference that does not resolve: take the full
            // path so the walk reports the proper error.
            return self.verify(program);
        };
        if cache.ok.contains(&key) {
            cache.hits += 1;
            return Ok(VerifiedProgram {
                program: program.clone(),
                stats: VerifierStats::default(),
                log: None,
            });
        }
        let verified = self.verify(program)?;
        cache.ok.insert(key);
        Ok(verified)
    }

    /// The cache key for `program`: every instruction rendered in
    /// canonical asm text except map references, which render as the
    /// referenced map's definition instead of its id. `None` when a
    /// referenced map does not exist in this map set.
    fn shape_key(&self, program: &Program) -> Option<String> {
        use fmt::Write as _;
        let mut key = String::with_capacity(program.insns().len() * 24);
        for sig in self.kfuncs {
            let _ = writeln!(key, "kfunc {} args={}", sig.name, sig.args);
        }
        for insn in program.insns() {
            match insn {
                Insn::LoadMapRef { dst, map } => {
                    let def = self.maps.def(*map).ok()?;
                    let _ = writeln!(
                        key,
                        "lddw {dst}, map<{:?} k={} v={} n={}>",
                        def.kind, def.key_size, def.value_size, def.max_entries
                    );
                }
                other => {
                    let _ = writeln!(key, "{other}");
                }
            }
        }
        Some(key)
    }

    /// Verifies `program` with the verifier log enabled; the log is
    /// returned alongside the result (and also retained on the
    /// [`VerifiedProgram`] on success).
    pub fn verify_logged(
        &self,
        program: &Program,
    ) -> (Result<VerifiedProgram, VerifyError>, VerifierLog) {
        self.verify_impl(program, true)
    }

    fn verify_impl(
        &self,
        program: &Program,
        want_log: bool,
    ) -> (Result<VerifiedProgram, VerifyError>, VerifierLog) {
        let mut log = VerifierLog {
            enabled: want_log,
            ..VerifierLog::default()
        };
        log.note(|| format!("verifying program `{}`", program.name()));

        if program.is_empty() {
            let e = VerifyError::new(None, VerifyErrorKind::EmptyProgram);
            log.note_critical(|| format!("rejected: {e}"));
            return (Err(e), log);
        }

        let insns = program.insns();
        let reachable = static_reachable(insns);
        let mut completed: Vec<SeenAt> = (0..insns.len()).map(|_| SeenAt::default()).collect();
        let mut path_set: HashSet<(usize, AbsState)> = HashSet::new();
        let mut visited = vec![false; insns.len()];
        let mut stats = VerifierStats::default();

        let reject = |e: VerifyError, stats: VerifierStats, mut log: VerifierLog| {
            log.note_critical(|| format!("rejected: {e}"));
            log.stats = stats;
            (Err(e), log)
        };

        // Depth-first walk with an explicit path. A state is pruned
        // only against states whose whole subtree already verified;
        // re-entering a (pc, state) still on the current path is a
        // cycle with no abstract progress — an unprovable loop.
        let mut path: Vec<Frame> = Vec::new();
        let mut next: Option<(usize, AbsState, Option<usize>, usize)> =
            Some((0, AbsState::entry(), None, 0));

        'walk: loop {
            if let Some((pc, state, parent, depth)) = next.take() {
                stats.peak_branch_depth = stats.peak_branch_depth.max(depth);

                if pc >= insns.len() {
                    let e =
                        VerifyError::new(Some(pc.saturating_sub(1)), VerifyErrorKind::FallOffEnd)
                            .with_regs(&state);
                    return reject(e, stats, log);
                }

                if completed[pc].all.contains(&state) {
                    stats.states_pruned += 1;
                    log.note(|| format!("{pc}: pruned (state already explored)"));
                } else if completed[pc].wide.iter().any(|w| w.subsumes(&state)) {
                    stats.states_pruned += 1;
                    log.note(|| format!("{pc}: pruned (subsumed by wider explored state)"));
                } else if path_set.contains(&(pc, state)) {
                    let from = parent.unwrap_or(pc);
                    let e = VerifyError::new(
                        Some(from),
                        VerifyErrorKind::InfiniteLoop { from, to: pc },
                    )
                    .with_regs(&state);
                    return reject(e, stats, log);
                } else {
                    stats.insns_processed += 1;
                    stats.states_explored += 1;
                    if stats.states_explored > COMPLEXITY_LIMIT {
                        let e = VerifyError::new(Some(pc), VerifyErrorKind::TooComplex)
                            .with_regs(&state);
                        return reject(e, stats, log);
                    }
                    visited[pc] = true;
                    log.note(|| format!("{pc}: {} ; {}", insns[pc], format_regs(&state)));

                    let succs = match self.step(pc, insns[pc], state, insns.len()) {
                        Ok(s) => s,
                        Err(e) => return reject(e.with_regs(&state), stats, log),
                    };
                    let branched = succs.len() > 1;
                    path_set.insert((pc, state));
                    path.push(Frame {
                        pc,
                        state,
                        depth,
                        branched,
                        succs,
                    });
                }
            }

            // Advance to the next unvisited successor, retiring
            // fully explored frames into the prune sets as we pop.
            next = loop {
                let Some(top) = path.last_mut() else {
                    break 'walk;
                };
                if let Some((npc, nst)) = top.succs.pop() {
                    break Some((
                        npc,
                        nst,
                        Some(top.pc),
                        top.depth + usize::from(top.branched),
                    ));
                }
                let done = path.pop().expect("path non-empty");
                path_set.remove(&(done.pc, done.state));
                if done.state.widenable() && completed[done.pc].wide.len() < WIDE_CAND_LIMIT {
                    completed[done.pc].wide.push(done.state);
                }
                completed[done.pc].all.insert(done.state);
            };
        }

        // Static dead code is a rejection; dynamically-pruned (but
        // statically reachable) instructions are only a statistic.
        for pc in 0..insns.len() {
            if !reachable[pc] {
                let e = VerifyError::new(Some(pc), VerifyErrorKind::DeadCode);
                return reject(e, stats, log);
            }
            if !visited[pc] {
                stats.dead_insns += 1;
                log.note(|| format!("{pc}: never reached (branch pruning)"));
            }
        }

        log.note_critical(|| {
            format!(
                "verification OK: {} insns, {} states",
                insns.len(),
                stats.states_explored
            )
        });
        log.stats = stats.clone();
        let rendered = want_log.then(|| log.render());
        (
            Ok(VerifiedProgram {
                program: program.clone(),
                stats,
                log: rendered,
            }),
            log,
        )
    }

    /// Executes one instruction abstractly, returning successor
    /// states (empty for `exit`).
    fn step(
        &self,
        pc: usize,
        insn: Insn,
        mut st: AbsState,
        prog_len: usize,
    ) -> Result<Vec<(usize, AbsState)>, VerifyError> {
        let err = |kind| VerifyError::new(Some(pc), kind);
        let jump_target = |off: i32| -> Result<usize, VerifyError> {
            let target = pc as i64 + 1 + off as i64;
            if target < 0 || target as usize >= prog_len {
                return Err(err(VerifyErrorKind::JumpOutOfProgram));
            }
            Ok(target as usize)
        };

        match insn {
            Insn::Alu64 { op, dst, src } | Insn::Alu32 { op, dst, src } => {
                if dst.is_frame_pointer() {
                    return Err(err(VerifyErrorKind::FramePointerWrite));
                }
                let wide = matches!(insn, Insn::Alu64 { .. });
                let src_ty = match src {
                    Operand::Imm(v) => RegType::scalar_exact(v),
                    Operand::Reg(r) => {
                        let t = st.regs[r.index()];
                        if t == RegType::Uninit {
                            return Err(err(VerifyErrorKind::UninitRegister(r)));
                        }
                        t
                    }
                };
                let dst_ty = st.regs[dst.index()];
                let new_ty = if op == AluOp::Mov {
                    // Moves propagate types (including pointers).
                    if wide {
                        src_ty
                    } else {
                        // 32-bit move truncates: pointers may not be
                        // truncated.
                        match src_ty {
                            RegType::Scalar(s) => match s.const_value() {
                                Some(v) => RegType::scalar_exact((v as u64 as u32) as i64),
                                None => RegType::Scalar(range_u32()),
                            },
                            _ => return Err(err(VerifyErrorKind::BadPointerArithmetic(dst))),
                        }
                    }
                } else {
                    if dst_ty == RegType::Uninit {
                        return Err(err(VerifyErrorKind::UninitRegister(dst)));
                    }
                    match (dst_ty, src_ty) {
                        // Scalar op scalar.
                        (RegType::Scalar(a), RegType::Scalar(b)) => {
                            RegType::Scalar(alu_range(op, wide, a, b))
                        }
                        // Pointer +/- bounded scalar.
                        (RegType::FramePtr, RegType::Scalar(k))
                            if wide && (op == AluOp::Add || op == AluOp::Sub) =>
                        {
                            let voff = voff_add(VarOff::exact(0), k, op == AluOp::Sub)
                                .ok_or_else(|| err(VerifyErrorKind::BadPointerArithmetic(dst)))?;
                            RegType::StackPtr(voff)
                        }
                        (RegType::StackPtr(off), RegType::Scalar(k))
                            if wide && (op == AluOp::Add || op == AluOp::Sub) =>
                        {
                            let voff = voff_add(off, k, op == AluOp::Sub)
                                .ok_or_else(|| err(VerifyErrorKind::BadPointerArithmetic(dst)))?;
                            RegType::StackPtr(voff)
                        }
                        (RegType::MapValue(m, off), RegType::Scalar(k))
                            if wide && (op == AluOp::Add || op == AluOp::Sub) =>
                        {
                            let voff = voff_add(off, k, op == AluOp::Sub)
                                .ok_or_else(|| err(VerifyErrorKind::BadPointerArithmetic(dst)))?;
                            RegType::MapValue(m, voff)
                        }
                        _ => return Err(err(VerifyErrorKind::BadPointerArithmetic(dst))),
                    }
                };
                st.regs[dst.index()] = new_ty;
                Ok(vec![(pc + 1, st)])
            }
            Insn::Neg { dst } => {
                if dst.is_frame_pointer() {
                    return Err(err(VerifyErrorKind::FramePointerWrite));
                }
                match st.regs[dst.index()] {
                    RegType::Scalar(s) => {
                        st.regs[dst.index()] = RegType::Scalar(neg_range(s));
                        Ok(vec![(pc + 1, st)])
                    }
                    RegType::Uninit => Err(err(VerifyErrorKind::UninitRegister(dst))),
                    _ => Err(err(VerifyErrorKind::BadPointerArithmetic(dst))),
                }
            }
            Insn::LoadImm64 { dst, imm } => {
                if dst.is_frame_pointer() {
                    return Err(err(VerifyErrorKind::FramePointerWrite));
                }
                st.regs[dst.index()] = RegType::scalar_exact(imm);
                Ok(vec![(pc + 1, st)])
            }
            Insn::LoadMapRef { dst, map } => {
                if dst.is_frame_pointer() {
                    return Err(err(VerifyErrorKind::FramePointerWrite));
                }
                if self.maps.def(map).is_err() {
                    return Err(err(VerifyErrorKind::UnknownMap(map)));
                }
                st.regs[dst.index()] = RegType::MapRef(map);
                Ok(vec![(pc + 1, st)])
            }
            Insn::LoadCtx { dst, index } => {
                if dst.is_frame_pointer() {
                    return Err(err(VerifyErrorKind::FramePointerWrite));
                }
                if index >= MAX_CTX_WORDS {
                    return Err(err(VerifyErrorKind::BadCtxIndex(index)));
                }
                st.regs[dst.index()] = RegType::scalar_unknown();
                Ok(vec![(pc + 1, st)])
            }
            Insn::Load {
                dst,
                base,
                off,
                size,
            } => {
                if dst.is_frame_pointer() {
                    return Err(err(VerifyErrorKind::FramePointerWrite));
                }
                self.check_mem(&st, pc, base, off, size)?;
                // Reads of initialized stack must be checked over the
                // whole offset range.
                if let Some((lo, hi)) = stack_byte_span(&st.regs[base.index()], off) {
                    if !st.stack_is_init(lo, hi - lo + size.bytes()) {
                        return Err(err(VerifyErrorKind::UninitStackRead {
                            off: rel_bounds(&st.regs[base.index()], off).0,
                        }));
                    }
                }
                st.regs[dst.index()] = RegType::scalar_unknown();
                Ok(vec![(pc + 1, st)])
            }
            Insn::Store {
                base,
                off,
                src,
                size,
            } => {
                match st.regs[src.index()] {
                    RegType::Scalar(_) => {}
                    RegType::Uninit => return Err(err(VerifyErrorKind::UninitRegister(src))),
                    _ => return Err(err(VerifyErrorKind::PointerSpill(src))),
                }
                self.check_mem(&st, pc, base, off, size)?;
                if let Some((lo, hi)) = stack_byte_span(&st.regs[base.index()], off) {
                    // Only an exactly-known slot becomes initialized;
                    // a variable-offset store hits *some* slot.
                    if lo == hi {
                        st.stack_mark_init(lo, size.bytes());
                    }
                }
                Ok(vec![(pc + 1, st)])
            }
            Insn::StoreImm {
                base, off, size, ..
            } => {
                self.check_mem(&st, pc, base, off, size)?;
                if let Some((lo, hi)) = stack_byte_span(&st.regs[base.index()], off) {
                    if lo == hi {
                        st.stack_mark_init(lo, size.bytes());
                    }
                }
                Ok(vec![(pc + 1, st)])
            }
            Insn::Jump { off } => {
                let target = jump_target(off)?;
                Ok(vec![(target, st)])
            }
            Insn::JumpIf {
                cond,
                dst,
                src,
                off,
            } => {
                let target = jump_target(off)?;
                let dst_ty = st.regs[dst.index()];
                if dst_ty == RegType::Uninit {
                    return Err(err(VerifyErrorKind::UninitRegister(dst)));
                }
                let src_range = match src {
                    Operand::Imm(v) => ScalarRange::exact(v),
                    Operand::Reg(r) => match st.regs[r.index()] {
                        RegType::Uninit => return Err(err(VerifyErrorKind::UninitRegister(r))),
                        RegType::Scalar(s) => s,
                        _ => return Err(err(VerifyErrorKind::PointerComparison)),
                    },
                };

                // Null-check refinement: `if rX ==/!= 0` on a
                // maybe-null map value.
                if let RegType::MapValueOrNull(map) = dst_ty {
                    let zero_imm = matches!(src, Operand::Imm(0));
                    if zero_imm && (cond == JmpCond::Eq || cond == JmpCond::Ne) {
                        let mut null_state = st;
                        null_state.regs[dst.index()] = RegType::scalar_exact(0);
                        let mut valid_state = st;
                        valid_state.regs[dst.index()] = RegType::MapValue(map, VarOff::exact(0));
                        return Ok(if cond == JmpCond::Eq {
                            vec![(target, null_state), (pc + 1, valid_state)]
                        } else {
                            vec![(target, valid_state), (pc + 1, null_state)]
                        });
                    }
                    return Err(err(VerifyErrorKind::PossiblyNull(dst)));
                }
                let dst_range = match dst_ty {
                    RegType::Scalar(s) => s,
                    _ => return Err(err(VerifyErrorKind::PointerComparison)),
                };

                // Branch pruning: each direction gets ranges refined
                // by the condition; a provably-infeasible direction
                // is simply not explored.
                let mut succs = Vec::with_capacity(2);
                if let Some((d, s)) = refine_branch(cond, true, dst_range, src_range) {
                    let mut t = st;
                    t.regs[dst.index()] = RegType::Scalar(d);
                    if let Operand::Reg(r) = src {
                        t.regs[r.index()] = RegType::Scalar(s);
                    }
                    succs.push((target, t));
                }
                if let Some((d, s)) = refine_branch(cond, false, dst_range, src_range) {
                    let mut t = st;
                    t.regs[dst.index()] = RegType::Scalar(d);
                    if let Operand::Reg(r) = src {
                        t.regs[r.index()] = RegType::Scalar(s);
                    }
                    succs.push((pc + 1, t));
                }
                Ok(succs)
            }
            Insn::Call { helper } => {
                self.check_helper(&mut st, pc, helper)?;
                Ok(vec![(pc + 1, st)])
            }
            Insn::CallKfunc { kfunc } => {
                let sig = self
                    .kfuncs
                    .get(kfunc as usize)
                    .ok_or_else(|| err(VerifyErrorKind::UnknownKfunc(kfunc)))?;
                for i in 1..=sig.args {
                    let r = Reg::new(i);
                    if !matches!(st.regs[r.index()], RegType::Scalar(_)) {
                        return Err(err(VerifyErrorKind::BadKfuncArg { kfunc, arg: r }));
                    }
                }
                clobber_caller_saved(&mut st);
                st.regs[0] = RegType::scalar_unknown();
                Ok(vec![(pc + 1, st)])
            }
            Insn::Exit => {
                if !matches!(st.regs[0], RegType::Scalar(_)) {
                    return Err(err(VerifyErrorKind::BadReturnValue));
                }
                Ok(vec![])
            }
        }
    }

    /// Validates a memory access through `base + off` of `size`,
    /// over the base pointer's whole offset range.
    fn check_mem(
        &self,
        st: &AbsState,
        pc: usize,
        base: Reg,
        off: i16,
        size: AccessSize,
    ) -> Result<(), VerifyError> {
        let err = |kind| VerifyError::new(Some(pc), kind);
        let sz = size.bytes() as i64;
        match &st.regs[base.index()] {
            RegType::FramePtr | RegType::StackPtr(_) => {
                let (lo, hi) = rel_bounds(&st.regs[base.index()], off);
                let ok = lo >= -(STACK_SIZE as i64) && hi + sz <= 0 && lo % sz == 0 && hi % sz == 0;
                if !ok {
                    let bad = if lo < -(STACK_SIZE as i64) || lo % sz != 0 {
                        lo
                    } else {
                        hi
                    };
                    return Err(err(VerifyErrorKind::BadStackAccess { off: bad }));
                }
                Ok(())
            }
            RegType::MapValue(map, voff) => {
                let def = self
                    .maps
                    .def(*map)
                    .map_err(|_| err(VerifyErrorKind::UnknownMap(*map)))?;
                let lo = voff.min as i64 + off as i64;
                let hi = voff.max as i64 + off as i64;
                let ok =
                    lo >= 0 && hi + sz <= def.value_size as i64 && lo % sz == 0 && hi % sz == 0;
                if !ok {
                    let bad = if lo < 0 || lo % sz != 0 { lo } else { hi };
                    return Err(err(VerifyErrorKind::MapValueOutOfBounds {
                        map: *map,
                        off: bad,
                        value_size: def.value_size,
                    }));
                }
                Ok(())
            }
            RegType::MapValueOrNull(_) => Err(err(VerifyErrorKind::PossiblyNull(base))),
            RegType::Uninit => Err(err(VerifyErrorKind::UninitRegister(base))),
            _ => Err(err(VerifyErrorKind::BadPointer(base))),
        }
    }

    fn check_helper(
        &self,
        st: &mut AbsState,
        pc: usize,
        helper: HelperId,
    ) -> Result<(), VerifyError> {
        let err = |kind| VerifyError::new(Some(pc), kind);
        let bad = |arg: Reg, expected: &'static str| {
            VerifyError::new(
                Some(pc),
                VerifyErrorKind::BadHelperArg {
                    helper,
                    arg,
                    expected,
                },
            )
        };

        /// Requires `r` to be a stack pointer to `len` initialized
        /// bytes for every offset in its range.
        fn stack_buf(
            st: &AbsState,
            r: Reg,
            len: u32,
            mk: impl Fn(Reg, &'static str) -> VerifyError,
        ) -> Result<(), VerifyError> {
            match &st.regs[r.index()] {
                RegType::StackPtr(voff) => {
                    let lo = voff.min as i64;
                    let hi = voff.max as i64;
                    if lo < -(STACK_SIZE as i64) || hi + len as i64 > 0 {
                        return Err(mk(r, "in-bounds stack pointer"));
                    }
                    let start = (STACK_SIZE as i64 + lo) as usize;
                    let span = (hi - lo) as usize + len as usize;
                    if !st.stack_is_init(start, span) {
                        return Err(mk(r, "pointer to initialized stack bytes"));
                    }
                    Ok(())
                }
                _ => Err(mk(r, "stack pointer")),
            }
        }

        let ret = match helper {
            HelperId::MapLookup => {
                let map = match st.regs[Reg::R1.index()] {
                    RegType::MapRef(m) => m,
                    _ => return Err(bad(Reg::R1, "map reference")),
                };
                let def = self
                    .maps
                    .def(map)
                    .map_err(|_| err(VerifyErrorKind::UnknownMap(map)))?;
                if def.kind == MapKind::RingBuf {
                    return Err(bad(Reg::R1, "array, per-cpu array, or hash map"));
                }
                stack_buf(st, Reg::R2, def.key_size, bad)?;
                RegType::MapValueOrNull(map)
            }
            HelperId::MapUpdate => {
                let map = match st.regs[Reg::R1.index()] {
                    RegType::MapRef(m) => m,
                    _ => return Err(bad(Reg::R1, "map reference")),
                };
                let def = self
                    .maps
                    .def(map)
                    .map_err(|_| err(VerifyErrorKind::UnknownMap(map)))?;
                if def.kind == MapKind::RingBuf || def.kind == MapKind::PerCpuArray {
                    // Programs mutate per-CPU slots through
                    // lookup + store; a whole-map update is a
                    // userspace-only operation.
                    return Err(bad(Reg::R1, "array or hash map"));
                }
                stack_buf(st, Reg::R2, def.key_size, bad)?;
                stack_buf(st, Reg::R3, def.value_size, bad)?;
                if !matches!(st.regs[Reg::R4.index()], RegType::Scalar(_)) {
                    return Err(bad(Reg::R4, "scalar flags"));
                }
                RegType::scalar_unknown()
            }
            HelperId::MapDelete => {
                let map = match st.regs[Reg::R1.index()] {
                    RegType::MapRef(m) => m,
                    _ => return Err(bad(Reg::R1, "map reference")),
                };
                let def = self
                    .maps
                    .def(map)
                    .map_err(|_| err(VerifyErrorKind::UnknownMap(map)))?;
                if def.kind != MapKind::Hash {
                    return Err(bad(Reg::R1, "hash map"));
                }
                stack_buf(st, Reg::R2, def.key_size, bad)?;
                RegType::scalar_unknown()
            }
            HelperId::KtimeGetNs | HelperId::GetSmpProcessorId => RegType::scalar_unknown(),
            HelperId::TracePrintk => {
                if !matches!(st.regs[Reg::R1.index()], RegType::Scalar(_)) {
                    return Err(bad(Reg::R1, "scalar format id"));
                }
                RegType::scalar_unknown()
            }
            HelperId::RingbufOutput => {
                let map = match st.regs[Reg::R1.index()] {
                    RegType::MapRef(m) => m,
                    _ => return Err(bad(Reg::R1, "ring buffer map")),
                };
                let def = self
                    .maps
                    .def(map)
                    .map_err(|_| err(VerifyErrorKind::UnknownMap(map)))?;
                if def.kind != MapKind::RingBuf {
                    return Err(bad(Reg::R1, "ring buffer map"));
                }
                let size = match st.regs[Reg::R3.index()] {
                    RegType::Scalar(s) => match s.const_value() {
                        Some(v) if v > 0 && v <= STACK_SIZE as i64 => v as u32,
                        _ => return Err(err(VerifyErrorKind::UnknownRingSize)),
                    },
                    _ => return Err(bad(Reg::R3, "scalar size")),
                };
                stack_buf(st, Reg::R2, size, bad)?;
                if !matches!(st.regs[Reg::R4.index()], RegType::Scalar(_)) {
                    return Err(bad(Reg::R4, "scalar flags"));
                }
                RegType::scalar_unknown()
            }
        };
        clobber_caller_saved(st);
        st.regs[0] = ret;
        Ok(())
    }
}

/// Caller-saved registers become uninitialized after a call.
pub(crate) fn clobber_caller_saved(st: &mut AbsState) {
    for i in 1..=5 {
        st.regs[i] = RegType::Uninit;
    }
}

/// Inclusive min/max byte offset of an access relative to the frame
/// pointer, for stack-based registers.
fn rel_bounds(base: &RegType, off: i16) -> (i64, i64) {
    match base {
        RegType::FramePtr => (off as i64, off as i64),
        RegType::StackPtr(v) => (v.min as i64 + off as i64, v.max as i64 + off as i64),
        _ => (off as i64, off as i64),
    }
}

/// Inclusive min/max index into the stack byte array for a stack
/// access, or `None` for non-stack bases. Only meaningful after
/// `check_mem` has validated the access.
fn stack_byte_span(base: &RegType, off: i16) -> Option<(usize, usize)> {
    match base {
        RegType::FramePtr | RegType::StackPtr(_) => {
            let (lo, hi) = rel_bounds(base, off);
            Some((
                (STACK_SIZE as i64 + lo) as usize,
                (STACK_SIZE as i64 + hi) as usize,
            ))
        }
        _ => None,
    }
}

/// The full zero-extended 32-bit result range.
pub(crate) fn range_u32() -> ScalarRange {
    ScalarRange {
        smin: 0,
        smax: u32::MAX as i64,
        umin: 0,
        umax: u32::MAX as u64,
    }
}

/// Adds (or subtracts) a bounded scalar to a pointer offset range;
/// `None` when any resulting offset leaves `i32` (unprovable
/// pointer arithmetic).
fn voff_add(base: VarOff, k: ScalarRange, sub: bool) -> Option<VarOff> {
    let (dmin, dmax) = if sub {
        (k.smax.checked_neg()?, k.smin.checked_neg()?)
    } else {
        (k.smin, k.smax)
    };
    let lo = (base.min as i64).checked_add(dmin)?;
    let hi = (base.max as i64).checked_add(dmax)?;
    Some(VarOff {
        min: i32::try_from(lo).ok()?,
        max: i32::try_from(hi).ok()?,
    })
}

pub(crate) fn neg_range(r: ScalarRange) -> ScalarRange {
    match (r.smax.checked_neg(), r.smin.checked_neg()) {
        (Some(lo), Some(hi)) => ScalarRange {
            smin: lo,
            smax: hi,
            umin: 0,
            umax: u64::MAX,
        }
        .deduce(),
        _ => ScalarRange::unknown(),
    }
}

/// The range transfer function for ALU ops. Constant operands fold
/// exactly (via the interpreter-mirroring `eval_alu*`); otherwise
/// each op derives the tightest cheap interval and cross-deduces.
pub(crate) fn alu_range(op: AluOp, wide: bool, a: ScalarRange, b: ScalarRange) -> ScalarRange {
    if let (Some(x), Some(y)) = (a.const_value(), b.const_value()) {
        let v = if wide {
            eval_alu64(op, x, y)
        } else {
            eval_alu32(op, x, y)
        };
        if let Some(v) = v {
            return ScalarRange::exact(v);
        }
    }
    if !wide {
        // 32-bit results are zero-extended: always within u32.
        return range_u32();
    }
    let full = ScalarRange::unknown();
    let r = match op {
        AluOp::Add => {
            let (smin, smax) = match (a.smin.checked_add(b.smin), a.smax.checked_add(b.smax)) {
                (Some(lo), Some(hi)) => (lo, hi),
                _ => (i64::MIN, i64::MAX),
            };
            let (umin, umax) = match (a.umin.checked_add(b.umin), a.umax.checked_add(b.umax)) {
                (Some(lo), Some(hi)) => (lo, hi),
                _ => (0, u64::MAX),
            };
            ScalarRange {
                smin,
                smax,
                umin,
                umax,
            }
        }
        AluOp::Sub => {
            let (smin, smax) = match (a.smin.checked_sub(b.smax), a.smax.checked_sub(b.smin)) {
                (Some(lo), Some(hi)) => (lo, hi),
                _ => (i64::MIN, i64::MAX),
            };
            let (umin, umax) = if a.umin >= b.umax {
                (a.umin - b.umax, a.umax.saturating_sub(b.umin))
            } else {
                (0, u64::MAX)
            };
            ScalarRange {
                smin,
                smax,
                umin,
                umax,
            }
        }
        AluOp::Mul => match a.umax.checked_mul(b.umax) {
            Some(hi) => ScalarRange {
                smin: i64::MIN,
                smax: i64::MAX,
                umin: a.umin.saturating_mul(b.umin),
                umax: hi,
            },
            None => full,
        },
        AluOp::Div => {
            if let Some(c) = b.const_value() {
                let cu = c as u64;
                match (a.umin.checked_div(cu), a.umax.checked_div(cu)) {
                    (Some(lo), Some(hi)) => ScalarRange {
                        smin: i64::MIN,
                        smax: i64::MAX,
                        umin: lo,
                        umax: hi,
                    },
                    // Division by zero yields 0 by definition.
                    _ => ScalarRange::exact(0),
                }
            } else {
                // An unsigned quotient never exceeds the dividend.
                ScalarRange {
                    smin: i64::MIN,
                    smax: i64::MAX,
                    umin: 0,
                    umax: a.umax,
                }
            }
        }
        AluOp::Mod => ScalarRange {
            smin: i64::MIN,
            smax: i64::MAX,
            umin: 0,
            umax: a.umax.min(b.umax.saturating_sub(1)),
        },
        AluOp::And => ScalarRange {
            smin: i64::MIN,
            smax: i64::MAX,
            umin: 0,
            umax: a.umax.min(b.umax),
        },
        AluOp::Or => {
            let hi = a.umax.max(b.umax);
            let umax = hi
                .checked_add(1)
                .and_then(u64::checked_next_power_of_two)
                .map_or(u64::MAX, |p| p - 1);
            ScalarRange {
                smin: i64::MIN,
                smax: i64::MAX,
                umin: a.umin.max(b.umin),
                umax,
            }
        }
        AluOp::Xor => {
            let hi = a.umax.max(b.umax);
            let umax = hi
                .checked_add(1)
                .and_then(u64::checked_next_power_of_two)
                .map_or(u64::MAX, |p| p - 1);
            ScalarRange {
                smin: i64::MIN,
                smax: i64::MAX,
                umin: 0,
                umax,
            }
        }
        AluOp::Lsh => {
            if let Some(c) = b.const_value() {
                let sh = (c as u64 & 63) as u32;
                if a.umax.leading_zeros() >= sh {
                    ScalarRange {
                        smin: i64::MIN,
                        smax: i64::MAX,
                        umin: a.umin << sh,
                        umax: a.umax << sh,
                    }
                } else {
                    full
                }
            } else {
                full
            }
        }
        AluOp::Rsh => {
            if let Some(c) = b.const_value() {
                let sh = (c as u64 & 63) as u32;
                ScalarRange {
                    smin: i64::MIN,
                    smax: i64::MAX,
                    umin: a.umin >> sh,
                    umax: a.umax >> sh,
                }
            } else {
                // A logical right shift can only shrink the value.
                ScalarRange {
                    smin: i64::MIN,
                    smax: i64::MAX,
                    umin: 0,
                    umax: a.umax,
                }
            }
        }
        AluOp::Arsh => {
            if let Some(c) = b.const_value() {
                let sh = (c as u64 & 63) as u32;
                ScalarRange {
                    smin: a.smin >> sh,
                    smax: a.smax >> sh,
                    umin: 0,
                    umax: u64::MAX,
                }
            } else {
                full
            }
        }
        AluOp::Mov => b,
    };
    let r = r.deduce();
    if r.is_valid() {
        r
    } else {
        full
    }
}

pub(crate) fn intersect(a: ScalarRange, b: ScalarRange) -> ScalarRange {
    ScalarRange {
        smin: a.smin.max(b.smin),
        smax: a.smax.min(b.smax),
        umin: a.umin.max(b.umin),
        umax: a.umax.min(b.umax),
    }
}

/// Refines `a < b` (unsigned); `None` when provably infeasible.
fn refine_ult(a: &mut ScalarRange, b: &mut ScalarRange) -> Option<()> {
    a.umax = a.umax.min(b.umax.checked_sub(1)?);
    b.umin = b.umin.max(a.umin.checked_add(1)?);
    Some(())
}

/// Refines `a <= b` (unsigned).
fn refine_ule(a: &mut ScalarRange, b: &mut ScalarRange) {
    a.umax = a.umax.min(b.umax);
    b.umin = b.umin.max(a.umin);
}

/// Refines `a < b` (signed); `None` when provably infeasible.
fn refine_slt(a: &mut ScalarRange, b: &mut ScalarRange) -> Option<()> {
    a.smax = a.smax.min(b.smax.checked_sub(1)?);
    b.smin = b.smin.max(a.smin.checked_add(1)?);
    Some(())
}

/// Refines `a <= b` (signed).
fn refine_sle(a: &mut ScalarRange, b: &mut ScalarRange) {
    a.smax = a.smax.min(b.smax);
    b.smin = b.smin.max(a.smin);
}

/// Excludes the single value `c` from `r` when it sits on a bound;
/// `None` when `r` is exactly `{c}` (the branch is infeasible).
fn exclude(r: &mut ScalarRange, c: i64) -> Option<()> {
    if r.const_value() == Some(c) {
        return None;
    }
    let cu = c as u64;
    if r.umin == cu {
        r.umin = r.umin.checked_add(1)?;
    } else if r.umax == cu {
        r.umax = r.umax.checked_sub(1)?;
    }
    if r.smin == c {
        r.smin = r.smin.checked_add(1)?;
    } else if r.smax == c {
        r.smax = r.smax.checked_sub(1)?;
    }
    Some(())
}

/// Branch-condition refinement: the ranges `dst`/`src` take in the
/// `taken` (or fall-through) direction of `cond`, or `None` when
/// that direction is provably infeasible.
pub(crate) fn refine_branch(
    cond: JmpCond,
    taken: bool,
    d0: ScalarRange,
    s0: ScalarRange,
) -> Option<(ScalarRange, ScalarRange)> {
    use JmpCond::*;
    let mut d = d0;
    let mut s = s0;
    match (cond, taken) {
        (Eq, true) | (Ne, false) => {
            d = intersect(d, s);
            s = d;
        }
        (Eq, false) | (Ne, true) => {
            if let Some(c) = s0.const_value() {
                exclude(&mut d, c)?;
            } else if let Some(c) = d0.const_value() {
                exclude(&mut s, c)?;
            }
        }
        (Lt, true) | (Ge, false) => refine_ult(&mut d, &mut s)?,
        (Ge, true) | (Lt, false) => refine_ule(&mut s, &mut d),
        (Le, true) | (Gt, false) => refine_ule(&mut d, &mut s),
        (Gt, true) | (Le, false) => refine_ult(&mut s, &mut d)?,
        (SLt, true) | (SGe, false) => refine_slt(&mut d, &mut s)?,
        (SGe, true) | (SLt, false) => refine_sle(&mut s, &mut d),
        (SLe, true) | (SGt, false) => refine_sle(&mut d, &mut s),
        (SGt, true) | (SLe, false) => refine_slt(&mut s, &mut d)?,
        (Set, true) => d.umin = d.umin.max(1),
        (Set, false) => {}
    }
    let d = d.deduce();
    let s = s.deduce();
    if d.is_valid() && s.is_valid() {
        Some((d, s))
    } else {
        None
    }
}

/// Renders the non-uninit registers of a state, log/diagnostic style.
fn format_regs(st: &AbsState) -> String {
    let mut parts = Vec::new();
    for (i, r) in st.regs.iter().enumerate() {
        if matches!(r, RegType::Uninit) {
            continue;
        }
        parts.push(format!("r{i}={}", format_regtype(r)));
    }
    parts.join(" ")
}

fn format_regtype(r: &RegType) -> String {
    match r {
        RegType::Uninit => "uninit".into(),
        RegType::Scalar(s) => {
            if let Some(v) = s.const_value() {
                return format!("{v}");
            }
            let mut bounds = Vec::new();
            if s.smin != i64::MIN || s.smax != i64::MAX {
                bounds.push(format!("s{}..={}", s.smin, s.smax));
            }
            if s.umin != 0 || s.umax != u64::MAX {
                bounds.push(format!("u{}..={}", s.umin, s.umax));
            }
            if bounds.is_empty() {
                "scalar".into()
            } else {
                format!("scalar({})", bounds.join(","))
            }
        }
        RegType::FramePtr => "fp".into(),
        RegType::StackPtr(v) if v.is_exact() => format!("fp{:+}", v.min),
        RegType::StackPtr(v) => format!("fp[{:+}..{:+}]", v.min, v.max),
        RegType::MapRef(m) => format!("{m}"),
        RegType::MapValueOrNull(m) => format!("{m}_value_or_null"),
        RegType::MapValue(m, v) if v.is_exact() => format!("{m}_value+{}", v.min),
        RegType::MapValue(m, v) => format!("{m}_value+[{}..{}]", v.min, v.max),
    }
}

pub(crate) fn eval_alu64(op: AluOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => (a as u64).checked_div(b as u64).unwrap_or(0) as i64,
        AluOp::Mod => (a as u64).checked_rem(b as u64).map_or(0, |v| v as i64),
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Xor => a ^ b,
        AluOp::Lsh => ((a as u64) << ((b as u64) & 63)) as i64,
        AluOp::Rsh => ((a as u64) >> ((b as u64) & 63)) as i64,
        AluOp::Arsh => a >> ((b as u64) & 63),
        AluOp::Mov => b,
    })
}

pub(crate) fn eval_alu32(op: AluOp, a: i64, b: i64) -> Option<i64> {
    let a32 = a as u32;
    let b32 = b as u32;
    let v: u32 = match op {
        AluOp::Add => a32.wrapping_add(b32),
        AluOp::Sub => a32.wrapping_sub(b32),
        AluOp::Mul => a32.wrapping_mul(b32),
        AluOp::Div => a32.checked_div(b32).unwrap_or(0),
        AluOp::Mod => a32.checked_rem(b32).unwrap_or(0),
        AluOp::Or => a32 | b32,
        AluOp::And => a32 & b32,
        AluOp::Xor => a32 ^ b32,
        AluOp::Lsh => a32.wrapping_shl(b32 & 31),
        AluOp::Rsh => a32.wrapping_shr(b32 & 31),
        AluOp::Arsh => ((a32 as i32) >> (b32 & 31)) as u32,
        AluOp::Mov => b32,
    };
    Some(v as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::MapDef;
    use crate::program::ProgramBuilder;

    fn maps_with_array() -> (MapSet, MapId) {
        let mut maps = MapSet::new();
        let m = maps.create(MapDef::array(8, 16)).unwrap();
        (maps, m)
    }

    fn verify(p: &Program, maps: &MapSet) -> Result<VerifiedProgram, VerifyError> {
        Verifier::new(maps, &[]).verify(p)
    }

    #[test]
    fn minimal_valid_program() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("ok");
        b.mov(Reg::R0, 0).exit();
        assert!(verify(&b.build().unwrap(), &maps).is_ok());
    }

    #[test]
    fn empty_program_rejected() {
        let maps = MapSet::new();
        let p = ProgramBuilder::new("empty").build().unwrap();
        assert_eq!(
            verify(&p, &maps).unwrap_err().kind,
            VerifyErrorKind::EmptyProgram
        );
    }

    #[test]
    fn uninitialized_register_read_rejected() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        b.mov(Reg::R0, Reg::R3).exit();
        assert_eq!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::UninitRegister(Reg::R3)
        );
    }

    #[test]
    fn exit_without_r0_rejected() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        b.exit();
        assert_eq!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::BadReturnValue
        );
    }

    #[test]
    fn fall_off_end_rejected() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        b.mov(Reg::R0, 0); // no exit
        assert_eq!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::FallOffEnd
        );
    }

    #[test]
    fn frame_pointer_write_rejected() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        b.mov(Reg::R10, 0).mov(Reg::R0, 0).exit();
        assert_eq!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::FramePointerWrite
        );
    }

    #[test]
    fn non_progressing_loop_rejected() {
        // The loop body recreates the exact same abstract state every
        // iteration — a provably non-terminating cycle.
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("loop");
        let top = b.label();
        b.mov(Reg::R0, 0);
        b.bind(top).unwrap();
        b.mov(Reg::R0, 0).jump(top);
        assert!(matches!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::InfiniteLoop { .. }
        ));
    }

    #[test]
    fn runaway_counter_loop_exceeds_complexity_budget() {
        // Increment-forever makes abstract progress every iteration
        // (the counter's range keeps moving), so — like the kernel —
        // the walk burns through the state budget instead of
        // detecting a repeated state.
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("runaway");
        let top = b.label();
        b.mov(Reg::R0, 0);
        b.bind(top).unwrap();
        b.add(Reg::R0, 1).jump(top);
        assert_eq!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::TooComplex
        );
    }

    #[test]
    fn bounded_loop_verifies() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bounded");
        let top = b.label();
        let done = b.label();
        b.mov(Reg::R0, 0).mov(Reg::R6, 0);
        b.bind(top).unwrap();
        b.jump_if(JmpCond::Ge, Reg::R6, 5i64, done)
            .add(Reg::R0, 2)
            .add(Reg::R6, 1)
            .jump(top)
            .bind(done)
            .unwrap()
            .exit();
        let v = verify(&b.build().unwrap(), &maps).unwrap();
        assert!(v.states_explored() > 0);
    }

    #[test]
    fn loop_cost_scales_with_trip_count() {
        // Like the kernel, bounded loops are walked iteration by
        // iteration: a 1000-trip loop costs O(1000) states and
        // verifies well inside the complexity budget.
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("trip1000");
        let top = b.label();
        let done = b.label();
        b.mov(Reg::R0, 0).mov(Reg::R6, 0);
        b.bind(top).unwrap();
        b.jump_if(JmpCond::Ge, Reg::R6, 1000i64, done)
            .add(Reg::R6, 1)
            .jump(top)
            .bind(done)
            .unwrap()
            .exit();
        let v = verify(&b.build().unwrap(), &maps).unwrap();
        assert!(
            v.states_explored() > 1000 && v.states_explored() < 5000,
            "expected O(trip count) states, got {}",
            v.states_explored()
        );
    }

    #[test]
    fn huge_trip_count_loop_exceeds_complexity_budget() {
        // A trip count big enough to blow the state budget is
        // rejected as too complex — the backstop that keeps
        // verification itself bounded.
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("trip500k");
        let top = b.label();
        let done = b.label();
        b.mov(Reg::R0, 0).mov(Reg::R6, 0);
        b.bind(top).unwrap();
        b.jump_if(JmpCond::Ge, Reg::R6, 500_000i64, done)
            .add(Reg::R6, 1)
            .jump(top)
            .bind(done)
            .unwrap()
            .exit();
        assert_eq!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::TooComplex
        );
    }

    #[test]
    fn loop_over_unknown_but_bounded_count_verifies() {
        // The SnapBPF prefetch shape: trip count loaded at runtime,
        // clamped by a conditional, then used as the loop bound.
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("clamped");
        let top = b.label();
        let done = b.label();
        let out = b.label();
        b.load_ctx(Reg::R6, 0)
            .jump_if(JmpCond::Gt, Reg::R6, 32i64, out)
            .mov(Reg::R7, 0);
        b.bind(top).unwrap();
        b.jump_if(JmpCond::Ge, Reg::R7, Reg::R6, done)
            .add(Reg::R7, 1)
            .jump(top)
            .bind(done)
            .unwrap()
            .mov(Reg::R0, 0)
            .exit()
            .bind(out)
            .unwrap()
            .mov(Reg::R0, 1)
            .exit();
        assert!(verify(&b.build().unwrap(), &maps).is_ok());
    }

    #[test]
    fn stack_roundtrip_verifies() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("stack");
        b.mov(Reg::R1, 7)
            .store(Reg::R10, -8, Reg::R1, AccessSize::B8)
            .load(Reg::R0, Reg::R10, -8, AccessSize::B8)
            .exit();
        assert!(verify(&b.build().unwrap(), &maps).is_ok());
    }

    #[test]
    fn uninitialized_stack_read_rejected() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        b.load(Reg::R0, Reg::R10, -8, AccessSize::B8).exit();
        assert!(matches!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::UninitStackRead { .. }
        ));
    }

    #[test]
    fn out_of_bounds_stack_rejected() {
        let maps = MapSet::new();
        for off in [-520i16, 0, 8] {
            let mut b = ProgramBuilder::new("bad");
            b.store_imm(Reg::R10, off, 1, AccessSize::B8)
                .mov(Reg::R0, 0)
                .exit();
            assert!(
                matches!(
                    verify(&b.build().unwrap(), &maps).unwrap_err().kind,
                    VerifyErrorKind::BadStackAccess { .. }
                ),
                "offset {off} should be rejected"
            );
        }
    }

    #[test]
    fn misaligned_stack_rejected() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        b.store_imm(Reg::R10, -7, 1, AccessSize::B8)
            .mov(Reg::R0, 0)
            .exit();
        assert!(matches!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::BadStackAccess { .. }
        ));
    }

    #[test]
    fn computed_stack_pointer_verifies() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("ptr");
        b.mov(Reg::R1, Reg::R10)
            .add(Reg::R1, -16)
            .store_imm(Reg::R1, 0, 5, AccessSize::B8)
            .load(Reg::R0, Reg::R1, 0, AccessSize::B8)
            .exit();
        assert!(verify(&b.build().unwrap(), &maps).is_ok());
    }

    #[test]
    fn variable_stack_offset_verifies_when_bounds_checked() {
        // fp - 16 + (ctx & 8): offset range [-16, -8], 8-aligned at
        // both ends, writes stay in-bounds — no constant needed.
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("varoff");
        b.load_ctx(Reg::R2, 0)
            .alu(AluOp::And, Reg::R2, 8i64)
            .mov(Reg::R1, Reg::R10)
            .add(Reg::R1, -16)
            .add(Reg::R1, Reg::R2)
            .store_imm(Reg::R1, 0, 7, AccessSize::B8)
            .mov(Reg::R0, 0)
            .exit();
        assert!(verify(&b.build().unwrap(), &maps).is_ok());
    }

    #[test]
    fn variable_stack_offset_out_of_bounds_rejected() {
        // fp - 16 + (ctx & 24): the upper end (+8) escapes the frame.
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("varoff-bad");
        b.load_ctx(Reg::R2, 0)
            .alu(AluOp::And, Reg::R2, 24i64)
            .mov(Reg::R1, Reg::R10)
            .add(Reg::R1, -16)
            .add(Reg::R1, Reg::R2)
            .store_imm(Reg::R1, 0, 7, AccessSize::B8)
            .mov(Reg::R0, 0)
            .exit();
        assert!(matches!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::BadStackAccess { .. }
        ));
    }

    #[test]
    fn map_lookup_requires_null_check() {
        let (maps, m) = maps_with_array();
        let mut b = ProgramBuilder::new("bad");
        b.store_imm(Reg::R10, -4, 0, AccessSize::B4)
            .load_map(Reg::R1, m)
            .mov(Reg::R2, Reg::R10)
            .add(Reg::R2, -4)
            .call(HelperId::MapLookup)
            // Missing null check:
            .load(Reg::R0, Reg::R0, 0, AccessSize::B8)
            .exit();
        assert!(matches!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::PossiblyNull(_)
        ));
    }

    #[test]
    fn map_lookup_with_null_check_verifies() {
        let (maps, m) = maps_with_array();
        let mut b = ProgramBuilder::new("good");
        let out = b.label();
        b.store_imm(Reg::R10, -4, 0, AccessSize::B4)
            .load_map(Reg::R1, m)
            .mov(Reg::R2, Reg::R10)
            .add(Reg::R2, -4)
            .call(HelperId::MapLookup)
            .mov(Reg::R6, Reg::R0)
            .jump_if(JmpCond::Eq, Reg::R6, 0i64, out)
            .load(Reg::R6, Reg::R6, 0, AccessSize::B8)
            .bind(out)
            .unwrap()
            .mov(Reg::R0, 0)
            .exit();
        let v = verify(&b.build().unwrap(), &maps).unwrap();
        assert!(v.states_explored() > 0);
    }

    #[test]
    fn map_value_bounds_enforced() {
        let (maps, m) = maps_with_array(); // value_size 8
        let mut b = ProgramBuilder::new("bad");
        let out = b.label();
        b.store_imm(Reg::R10, -4, 0, AccessSize::B4)
            .load_map(Reg::R1, m)
            .mov(Reg::R2, Reg::R10)
            .add(Reg::R2, -4)
            .call(HelperId::MapLookup)
            .jump_if(JmpCond::Eq, Reg::R0, 0i64, out)
            .load(Reg::R0, Reg::R0, 8, AccessSize::B8) // off 8 out of bounds
            .bind(out)
            .unwrap()
            .mov(Reg::R0, 0)
            .exit();
        assert!(matches!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::MapValueOutOfBounds { .. }
        ));
    }

    #[test]
    fn variable_map_value_index_verifies_when_bounds_checked() {
        let mut maps = MapSet::new();
        let m = maps.create(MapDef::array(16, 4)).unwrap(); // 16-byte values
        let mut b = ProgramBuilder::new("varmap");
        let out = b.label();
        b.store_imm(Reg::R10, -4, 0, AccessSize::B4)
            .load_map(Reg::R1, m)
            .mov(Reg::R2, Reg::R10)
            .add(Reg::R2, -4)
            .call(HelperId::MapLookup)
            .jump_if(JmpCond::Eq, Reg::R0, 0i64, out)
            .load_ctx(Reg::R2, 0)
            .alu(AluOp::And, Reg::R2, 8i64) // in {0, 8}: both u64 slots ok
            .add(Reg::R0, Reg::R2)
            .load(Reg::R6, Reg::R0, 0, AccessSize::B8)
            .bind(out)
            .unwrap()
            .mov(Reg::R0, 0)
            .exit();
        assert!(verify(&b.build().unwrap(), &maps).is_ok());
    }

    #[test]
    fn unchecked_variable_map_value_index_rejected() {
        let mut maps = MapSet::new();
        let m = maps.create(MapDef::array(16, 4)).unwrap();
        let mut b = ProgramBuilder::new("varmap-bad");
        let out = b.label();
        b.store_imm(Reg::R10, -4, 0, AccessSize::B4)
            .load_map(Reg::R1, m)
            .mov(Reg::R2, Reg::R10)
            .add(Reg::R2, -4)
            .call(HelperId::MapLookup)
            .jump_if(JmpCond::Eq, Reg::R0, 0i64, out)
            .load_ctx(Reg::R2, 0)
            .alu(AluOp::And, Reg::R2, 24i64) // up to +24: escapes 16 bytes
            .add(Reg::R0, Reg::R2)
            .load(Reg::R6, Reg::R0, 0, AccessSize::B8)
            .bind(out)
            .unwrap()
            .mov(Reg::R0, 0)
            .exit();
        assert!(matches!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::MapValueOutOfBounds { .. }
        ));
    }

    #[test]
    fn helper_signature_enforced() {
        let (maps, _m) = maps_with_array();
        let mut b = ProgramBuilder::new("bad");
        b.mov(Reg::R1, 0) // scalar, not a map ref
            .mov(Reg::R2, Reg::R10)
            .call(HelperId::MapLookup)
            .mov(Reg::R0, 0)
            .exit();
        assert!(matches!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::BadHelperArg { .. }
        ));
    }

    #[test]
    fn uninitialized_key_buffer_rejected() {
        let (maps, m) = maps_with_array();
        let mut b = ProgramBuilder::new("bad");
        b.load_map(Reg::R1, m)
            .mov(Reg::R2, Reg::R10)
            .add(Reg::R2, -4)
            .call(HelperId::MapLookup) // key bytes never written
            .mov(Reg::R0, 0)
            .exit();
        assert!(matches!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::BadHelperArg { .. }
        ));
    }

    #[test]
    fn helper_clobbers_argument_registers() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        b.mov(Reg::R3, 9)
            .call(HelperId::KtimeGetNs)
            .mov(Reg::R0, Reg::R3) // r3 clobbered by the call
            .exit();
        assert_eq!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::UninitRegister(Reg::R3)
        );
    }

    #[test]
    fn callee_saved_registers_survive_calls() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("good");
        b.mov(Reg::R6, 9)
            .call(HelperId::KtimeGetNs)
            .mov(Reg::R0, Reg::R6)
            .exit();
        assert!(verify(&b.build().unwrap(), &maps).is_ok());
    }

    #[test]
    fn pointer_spill_rejected() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        b.mov(Reg::R1, Reg::R10)
            .store(Reg::R10, -8, Reg::R1, AccessSize::B8)
            .mov(Reg::R0, 0)
            .exit();
        assert!(matches!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::PointerSpill(_)
        ));
    }

    #[test]
    fn pointer_comparison_rejected() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        let out = b.label();
        b.mov(Reg::R1, Reg::R10)
            .jump_if(JmpCond::Eq, Reg::R1, 0i64, out)
            .bind(out)
            .unwrap()
            .mov(Reg::R0, 0)
            .exit();
        assert!(matches!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::PointerComparison
        ));
    }

    #[test]
    fn kfunc_signature_checked() {
        let maps = MapSet::new();
        let kfuncs = [KfuncSig {
            name: "snapbpf_prefetch",
            args: 3,
        }];
        // Valid: three scalar args.
        let mut b = ProgramBuilder::new("good");
        b.mov(Reg::R1, 1)
            .mov(Reg::R2, 2)
            .mov(Reg::R3, 3)
            .call_kfunc(0)
            .exit();
        assert!(Verifier::new(&maps, &kfuncs)
            .verify(&b.build().unwrap())
            .is_ok());

        // Invalid: r3 uninitialized.
        let mut b = ProgramBuilder::new("bad");
        b.mov(Reg::R1, 1).mov(Reg::R2, 2).call_kfunc(0).exit();
        assert!(matches!(
            Verifier::new(&maps, &kfuncs)
                .verify(&b.build().unwrap())
                .unwrap_err()
                .kind,
            VerifyErrorKind::BadKfuncArg { .. }
        ));

        // Invalid: unknown kfunc index.
        let mut b = ProgramBuilder::new("bad2");
        b.call_kfunc(7).exit();
        assert_eq!(
            Verifier::new(&maps, &kfuncs)
                .verify(&b.build().unwrap())
                .unwrap_err()
                .kind,
            VerifyErrorKind::UnknownKfunc(7)
        );
    }

    #[test]
    fn unknown_map_rejected() {
        let (maps, m) = maps_with_array();
        // Build a program against a map id from a *different* set.
        let mut other = MapSet::new();
        let m2 = other.create(MapDef::array(8, 16)).unwrap();
        let m3 = other.create(MapDef::array(8, 16)).unwrap();
        assert_eq!(m.as_u32(), m2.as_u32()); // same index, fine
        let mut b = ProgramBuilder::new("bad");
        b.load_map(Reg::R1, m3).mov(Reg::R0, 0).exit();
        assert_eq!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::UnknownMap(m3)
        );
    }

    #[test]
    fn ctx_index_bounds() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        b.load_ctx(Reg::R0, MAX_CTX_WORDS).exit();
        assert_eq!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::BadCtxIndex(MAX_CTX_WORDS)
        );
    }

    #[test]
    fn branchy_program_verifies_both_paths() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("branchy");
        let a = b.label();
        let done = b.label();
        b.load_ctx(Reg::R1, 0)
            .jump_if(JmpCond::Gt, Reg::R1, 10i64, a)
            .mov(Reg::R0, 1)
            .jump(done)
            .bind(a)
            .unwrap()
            .mov(Reg::R0, 2)
            .bind(done)
            .unwrap()
            .exit();
        assert!(verify(&b.build().unwrap(), &maps).is_ok());
    }

    #[test]
    fn one_path_missing_r0_rejected() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        let a = b.label();
        let done = b.label();
        b.load_ctx(Reg::R1, 0)
            .jump_if(JmpCond::Gt, Reg::R1, 10i64, a)
            .mov(Reg::R0, 1) // only the fall-through sets r0
            .jump(done)
            .bind(a)
            .unwrap()
            .bind(done)
            .unwrap()
            .exit();
        assert_eq!(
            verify(&b.build().unwrap(), &maps).unwrap_err().kind,
            VerifyErrorKind::BadReturnValue
        );
    }

    #[test]
    fn dead_code_past_exit_rejected() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("dead");
        b.mov(Reg::R0, 0).exit().mov(Reg::R1, 1).exit();
        let e = verify(&b.build().unwrap(), &maps).unwrap_err();
        assert_eq!(e.kind, VerifyErrorKind::DeadCode);
        assert_eq!(e.at, Some(2));
    }

    #[test]
    fn branch_pruned_path_counts_as_dead_insn_stat() {
        // `jeq r1, 3` with r1 == 3: the fall-through is dynamically
        // dead. Still statically reachable, so it only shows up in
        // stats, not as a rejection.
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("pruned");
        let a = b.label();
        b.mov(Reg::R1, 3)
            .jump_if(JmpCond::Eq, Reg::R1, 3i64, a)
            .mov(Reg::R0, 7) // never explored
            .bind(a)
            .unwrap()
            .mov(Reg::R0, 0)
            .exit();
        let v = verify(&b.build().unwrap(), &maps).unwrap();
        assert_eq!(v.stats().dead_insns, 1);
    }

    #[test]
    fn branch_refinement_bounds_a_loaded_scalar() {
        // ctx value checked `<= 7` indexes the stack: only the
        // refined range makes this safe.
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("refine");
        let out = b.label();
        b.load_ctx(Reg::R1, 0)
            .jump_if(JmpCond::Gt, Reg::R1, 7i64, out)
            .mov(Reg::R2, Reg::R10)
            .add(Reg::R2, -8)
            .add(Reg::R2, Reg::R1)
            .store_imm(Reg::R2, 0, 1, AccessSize::B1)
            .bind(out)
            .unwrap()
            .mov(Reg::R0, 0)
            .exit();
        assert!(verify(&b.build().unwrap(), &maps).is_ok());
    }

    #[test]
    fn verifier_log_captures_transitions_and_stats() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("logged");
        b.mov(Reg::R0, 3).add(Reg::R0, 4).exit();
        let (res, log) = Verifier::new(&maps, &[]).verify_logged(&b.build().unwrap());
        let v = res.unwrap();
        assert!(log.lines().iter().any(|l| l.contains("add64 r0, 4")));
        assert_eq!(log.stats().states_explored, 3);
        assert!(log.render().contains("verification stats:"));
        assert_eq!(v.log(), Some(log.render().as_str()));
        // Without logging, no log is retained.
        assert_eq!(verify(&b.build().unwrap(), &maps).unwrap().log(), None);
    }

    #[test]
    fn rejection_log_names_the_reason() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        b.mov(Reg::R0, Reg::R3).exit();
        let (res, log) = Verifier::new(&maps, &[]).verify_logged(&b.build().unwrap());
        assert!(res.is_err());
        assert!(log
            .lines()
            .iter()
            .any(|l| l.contains("rejected") && l.contains("uninitialized register r3")));
    }

    #[test]
    fn error_display_has_pc_and_register_snapshot() {
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("bad");
        b.mov(Reg::R6, 1).mov(Reg::R0, Reg::R3).exit();
        let e = verify(&b.build().unwrap(), &maps).unwrap_err();
        let rendered = e.to_string();
        assert!(rendered.contains("at insn 1"), "{rendered}");
        assert!(rendered.contains("regs:"), "{rendered}");
        assert!(rendered.contains("r6=1"), "{rendered}");
        assert!(e.register_snapshot().is_some());
        // source() chains to the kind, StrategyError::Stage-style.
        let src = std::error::Error::source(&e).expect("source");
        assert_eq!(src.to_string(), e.kind.to_string());
    }

    #[test]
    fn infeasible_branch_is_not_explored() {
        // r1 = 5; `jgt r1, 7` can never be taken, so the taken-side
        // uninitialized read must not be reported.
        let maps = MapSet::new();
        let mut b = ProgramBuilder::new("infeasible");
        let bad = b.label();
        let done = b.label();
        b.mov(Reg::R1, 5)
            .jump_if(JmpCond::Gt, Reg::R1, 7i64, bad)
            .mov(Reg::R0, 0)
            .jump(done)
            .bind(bad)
            .unwrap()
            .mov(Reg::R0, Reg::R9) // would be UninitRegister if reached
            .bind(done)
            .unwrap()
            .exit();
        let v = verify(&b.build().unwrap(), &maps).unwrap();
        assert!(v.stats().dead_insns >= 1);
    }

    #[test]
    fn percpu_lookup_verifies_with_null_check_and_bounds() {
        let mut maps = MapSet::new();
        let m = maps.create(MapDef::percpu_array(16, 4)).unwrap();
        let mut b = ProgramBuilder::new("percpu");
        let out = b.label();
        b.store_imm(Reg::R10, -4, 0, AccessSize::B4)
            .load_map(Reg::R1, m)
            .mov(Reg::R2, Reg::R10)
            .add(Reg::R2, -4)
            .call(HelperId::MapLookup)
            .mov(Reg::R6, Reg::R0)
            .jump_if(JmpCond::Eq, Reg::R6, 0i64, out)
            .load(Reg::R7, Reg::R6, 8, AccessSize::B8)
            .add(Reg::R7, 1)
            .store(Reg::R6, 8, Reg::R7, AccessSize::B8)
            .bind(out)
            .unwrap()
            .mov(Reg::R0, 0)
            .exit();
        assert!(verify(&b.build().unwrap(), &maps).is_ok());
    }

    #[test]
    fn percpu_value_access_respects_slot_bounds() {
        // The addressable window is one CPU's slot (value_size
        // bytes), not the whole per-CPU block.
        let mut maps = MapSet::new();
        let m = maps.create(MapDef::percpu_array(8, 4)).unwrap();
        let mut b = ProgramBuilder::new("oob");
        let out = b.label();
        b.store_imm(Reg::R10, -4, 0, AccessSize::B4)
            .load_map(Reg::R1, m)
            .mov(Reg::R2, Reg::R10)
            .add(Reg::R2, -4)
            .call(HelperId::MapLookup)
            .jump_if(JmpCond::Eq, Reg::R0, 0i64, out)
            .load(Reg::R1, Reg::R0, 8, AccessSize::B8) // one past the slot
            .bind(out)
            .unwrap()
            .mov(Reg::R0, 0)
            .exit();
        let e = verify(&b.build().unwrap(), &maps).unwrap_err();
        assert!(
            matches!(
                e.kind,
                VerifyErrorKind::MapValueOutOfBounds { value_size: 8, .. }
            ),
            "{e}"
        );
    }

    #[test]
    fn percpu_update_from_program_rejected() {
        let mut maps = MapSet::new();
        let m = maps.create(MapDef::percpu_array(8, 4)).unwrap();
        let mut b = ProgramBuilder::new("upd");
        b.store_imm(Reg::R10, -4, 0, AccessSize::B4)
            .store_imm(Reg::R10, -16, 1, AccessSize::B8)
            .load_map(Reg::R1, m)
            .mov(Reg::R2, Reg::R10)
            .add(Reg::R2, -4)
            .mov(Reg::R3, Reg::R10)
            .add(Reg::R3, -16)
            .mov(Reg::R4, 0)
            .call(HelperId::MapUpdate)
            .exit();
        let e = verify(&b.build().unwrap(), &maps).unwrap_err();
        assert!(
            matches!(
                e.kind,
                VerifyErrorKind::BadHelperArg {
                    helper: HelperId::MapUpdate,
                    arg: Reg::R1,
                    ..
                }
            ),
            "{e}"
        );
    }

    #[test]
    fn percpu_lookup_with_range_proven_index_verifies() {
        // The 5.3-class range analysis must extend to the per-CPU
        // lookup shape: a ctx-derived index masked into range is
        // accepted as the key without a verifier-known constant.
        let mut maps = MapSet::new();
        let m = maps.create(MapDef::percpu_array(8, 4)).unwrap();
        let mut b = ProgramBuilder::new("ranged");
        let out = b.label();
        b.load_ctx(Reg::R1, 0)
            .alu(AluOp::And, Reg::R1, 3) // index in [0, 3]
            .store(Reg::R10, -4, Reg::R1, AccessSize::B4)
            .load_map(Reg::R1, m)
            .mov(Reg::R2, Reg::R10)
            .add(Reg::R2, -4)
            .call(HelperId::MapLookup)
            .mov(Reg::R6, Reg::R0)
            .jump_if(JmpCond::Eq, Reg::R6, 0i64, out)
            .load(Reg::R7, Reg::R6, 0, AccessSize::B8)
            .add(Reg::R7, 1)
            .store(Reg::R6, 0, Reg::R7, AccessSize::B8)
            .bind(out)
            .unwrap()
            .mov(Reg::R0, 0)
            .exit();
        assert!(verify(&b.build().unwrap(), &maps).is_ok());
    }

    /// A null-checked lookup program against `m` — the shape SnapBPF
    /// reloads with fresh map ids on every restore.
    fn lookup_program(name: &str, m: MapId) -> Program {
        let mut b = ProgramBuilder::new(name);
        let out = b.label();
        b.store_imm(Reg::R10, -4, 0, AccessSize::B4)
            .load_map(Reg::R1, m)
            .mov(Reg::R2, Reg::R10)
            .add(Reg::R2, -4)
            .call(HelperId::MapLookup)
            .mov(Reg::R6, Reg::R0)
            .jump_if(JmpCond::Eq, Reg::R6, 0i64, out)
            .load(Reg::R6, Reg::R6, 0, AccessSize::B8)
            .bind(out)
            .unwrap()
            .mov(Reg::R0, 0)
            .exit();
        b.build().unwrap()
    }

    #[test]
    fn cache_skips_reverification_of_identical_shapes() {
        let mut maps = MapSet::new();
        let a = maps.create(MapDef::array(8, 16)).unwrap();
        let b = maps.create(MapDef::array(8, 16)).unwrap();
        let mut cache = VerifyCache::new();
        let verifier = Verifier::new(&maps, &[]);

        let first = verifier
            .verify_cached(&lookup_program("p1", a), &mut cache)
            .unwrap();
        assert!(first.states_explored() > 0, "first load walks");
        assert_eq!((cache.len(), cache.hits()), (1, 0));

        // Different map id, identical definition: verifier-equivalent.
        let second = verifier
            .verify_cached(&lookup_program("p2", b), &mut cache)
            .unwrap();
        assert_eq!(second.states_explored(), 0, "cache hit does no work");
        assert_eq!((cache.len(), cache.hits()), (1, 1));
    }

    #[test]
    fn cache_distinguishes_map_shapes() {
        let mut maps = MapSet::new();
        let small = maps.create(MapDef::array(8, 16)).unwrap();
        let big = maps.create(MapDef::array(8, 1024)).unwrap();
        let mut cache = VerifyCache::new();
        let verifier = Verifier::new(&maps, &[]);

        verifier
            .verify_cached(&lookup_program("p", small), &mut cache)
            .unwrap();
        let other = verifier
            .verify_cached(&lookup_program("p", big), &mut cache)
            .unwrap();
        assert!(
            other.states_explored() > 0,
            "different max_entries is a different shape"
        );
        assert_eq!((cache.len(), cache.hits()), (2, 0));
    }

    #[test]
    fn cache_never_stores_failures() {
        let (maps, m) = maps_with_array();
        let mut b = ProgramBuilder::new("bad");
        b.store_imm(Reg::R10, -4, 0, AccessSize::B4)
            .load_map(Reg::R1, m)
            .mov(Reg::R2, Reg::R10)
            .add(Reg::R2, -4)
            .call(HelperId::MapLookup)
            // Missing null check.
            .load(Reg::R0, Reg::R0, 0, AccessSize::B8)
            .exit();
        let prog = b.build().unwrap();
        let mut cache = VerifyCache::new();
        let verifier = Verifier::new(&maps, &[]);
        for _ in 0..2 {
            assert!(matches!(
                verifier.verify_cached(&prog, &mut cache).unwrap_err().kind,
                VerifyErrorKind::PossiblyNull(_)
            ));
        }
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
    }
}
