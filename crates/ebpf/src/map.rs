//! eBPF maps: the shared state between programs and userspace.
//!
//! SnapBPF stores the captured working-set offsets in a map during
//! the record phase and loads the grouped offsets back in through a
//! map before triggering the prefetch program (paper §3.1, steps ①
//! and ③ of Figure 1). Three map types are provided:
//!
//! * **array** — fixed number of fixed-size values, like
//!   `BPF_MAP_TYPE_ARRAY`; keys are `u32` indices,
//! * **hash** — like `BPF_MAP_TYPE_HASH`, bounded capacity,
//! * **ring buffer** — like `BPF_MAP_TYPE_RINGBUF`, a byte FIFO the
//!   program appends records to and userspace drains,
//! * **per-CPU array** — like `BPF_MAP_TYPE_PERCPU_ARRAY`: every
//!   entry has one private slot per CPU. A program only ever touches
//!   its own CPU's slot (no cross-CPU contention); a userspace read
//!   merges the slots by summing each 8-byte lane, the standard
//!   stats-aggregation idiom.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;

use snapbpf_sim::Tracer;

/// Number of simulated CPUs a [`MapKind::PerCpuArray`] map carries
/// slots for. Fixed (and small) so per-CPU storage stays cheap; the
/// interpreter clamps its current-CPU id into `0..NCPUS`.
pub const NCPUS: u32 = 4;

/// Identifier of a map within a [`MapSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MapId(u32);

impl MapId {
    /// The raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Reconstructs a map id from its raw index (e.g. when decoding
    /// bytecode). The id is *not* validated here; a program
    /// referencing a map that does not exist in the target
    /// [`MapSet`] is rejected by the verifier at load time.
    pub const fn from_raw(index: u32) -> MapId {
        MapId(index)
    }
}

impl fmt::Display for MapId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "map#{}", self.0)
    }
}

/// Map type and shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapKind {
    /// Array map: `max_entries` values of `value_size` bytes, keyed
    /// by `u32` index; entries are zero-initialized and always
    /// present.
    Array,
    /// Hash map: up to `max_entries` entries with `key_size`-byte
    /// keys.
    Hash,
    /// Ring buffer: `max_entries` is the buffer capacity in bytes;
    /// `key_size` and `value_size` are ignored.
    RingBuf,
    /// Per-CPU array: `max_entries` entries of `value_size` bytes
    /// *per CPU* ([`NCPUS`] slots each). Programs address their
    /// current CPU's slot; userspace lookups merge slots by summing
    /// each 8-byte little-endian lane (so `value_size` must be a
    /// multiple of 8).
    PerCpuArray,
}

/// Definition of a map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapDef {
    /// The map type.
    pub kind: MapKind,
    /// Key size in bytes (4 for arrays).
    pub key_size: u32,
    /// Value size in bytes.
    pub value_size: u32,
    /// Capacity: entries for array/hash, bytes for ring buffers.
    pub max_entries: u32,
}

impl MapDef {
    /// An array map of `max_entries` × `value_size`-byte values.
    pub const fn array(value_size: u32, max_entries: u32) -> Self {
        MapDef {
            kind: MapKind::Array,
            key_size: 4,
            value_size,
            max_entries,
        }
    }

    /// A hash map.
    pub const fn hash(key_size: u32, value_size: u32, max_entries: u32) -> Self {
        MapDef {
            kind: MapKind::Hash,
            key_size,
            value_size,
            max_entries,
        }
    }

    /// A ring buffer of `capacity_bytes` bytes.
    pub const fn ringbuf(capacity_bytes: u32) -> Self {
        MapDef {
            kind: MapKind::RingBuf,
            key_size: 0,
            value_size: 0,
            max_entries: capacity_bytes,
        }
    }

    /// A per-CPU array map of `max_entries` × `value_size`-byte
    /// values per CPU (`value_size` must be a multiple of 8 so
    /// userspace reads can lane-sum the CPU slots).
    pub const fn percpu_array(value_size: u32, max_entries: u32) -> Self {
        MapDef {
            kind: MapKind::PerCpuArray,
            key_size: 4,
            value_size,
            max_entries,
        }
    }
}

/// Errors from map operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// Unknown map id.
    NoSuchMap(MapId),
    /// Key size did not match the definition.
    BadKeySize {
        /// The map.
        map: MapId,
        /// Expected key size.
        expected: u32,
        /// Provided key size.
        got: usize,
    },
    /// Value size did not match the definition.
    BadValueSize {
        /// The map.
        map: MapId,
        /// Expected value size.
        expected: u32,
        /// Provided value size.
        got: usize,
    },
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// The map.
        map: MapId,
        /// The index.
        index: u32,
        /// Number of entries.
        max_entries: u32,
    },
    /// Hash map is full.
    Full(MapId),
    /// Ring buffer has insufficient free space for this record right
    /// now (it would fit an empty ring — the drop is transient and
    /// counted).
    RingFull {
        /// The map.
        map: MapId,
        /// Ring capacity in bytes.
        capacity: u32,
        /// Size of the rejected record's payload in bytes (an 8-byte
        /// header is charged on top).
        record_len: usize,
    },
    /// The record can never fit: even an empty ring of this capacity
    /// could not hold it. Rejected up front, *not* counted as a drop
    /// (it is a caller bug, not backpressure).
    RingRecordTooLarge {
        /// The map.
        map: MapId,
        /// Ring capacity in bytes.
        capacity: u32,
        /// Size of the rejected record's payload in bytes (an 8-byte
        /// header is charged on top).
        record_len: usize,
    },
    /// Operation not supported by this map kind.
    WrongKind(MapId),
    /// Definition is invalid (zero sizes or entries).
    BadDefinition(&'static str),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::NoSuchMap(id) => write!(f, "no such map: {id}"),
            MapError::BadKeySize { map, expected, got } => {
                write!(f, "{map}: key size {got}, expected {expected}")
            }
            MapError::BadValueSize { map, expected, got } => {
                write!(f, "{map}: value size {got}, expected {expected}")
            }
            MapError::IndexOutOfBounds {
                map,
                index,
                max_entries,
            } => {
                write!(
                    f,
                    "{map}: index {index} out of bounds ({max_entries} entries)"
                )
            }
            MapError::Full(id) => write!(f, "{id}: map full"),
            MapError::RingFull {
                map,
                capacity,
                record_len,
            } => write!(
                f,
                "{map}: ring buffer full ({record_len}-byte record + 8-byte header \
                 does not fit, capacity {capacity} bytes)"
            ),
            MapError::RingRecordTooLarge {
                map,
                capacity,
                record_len,
            } => write!(
                f,
                "{map}: {record_len}-byte record + 8-byte header exceeds the whole \
                 ring (capacity {capacity} bytes)"
            ),
            MapError::WrongKind(id) => write!(f, "{id}: operation unsupported for map kind"),
            MapError::BadDefinition(why) => write!(f, "bad map definition: {why}"),
        }
    }
}

impl std::error::Error for MapError {}

#[derive(Debug, Clone)]
enum MapStorage {
    Array {
        values: Vec<u8>, // max_entries * value_size, zero-initialized
    },
    Hash {
        entries: HashMap<Vec<u8>, Vec<u8>>,
    },
    Ring {
        records: VecDeque<Vec<u8>>,
        used_bytes: u32,
        dropped: u64,
    },
    PerCpuArray {
        // NCPUS consecutive per-CPU blocks of max_entries *
        // value_size bytes each, zero-initialized.
        values: Vec<u8>,
    },
}

#[derive(Debug, Clone)]
struct MapInstance {
    def: MapDef,
    storage: MapStorage,
}

/// The set of maps visible to a program and its userspace loader.
///
/// # Examples
///
/// ```
/// use snapbpf_ebpf::{MapDef, MapSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut maps = MapSet::new();
/// let offsets = maps.create(MapDef::array(8, 1024))?;
///
/// maps.array_store_u64(offsets, 0, 42)?;
/// assert_eq!(maps.array_load_u64(offsets, 0)?, 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct MapSet {
    maps: Vec<MapInstance>,
    trace: Tracer,
}

impl MapSet {
    /// Creates an empty map set.
    pub fn new() -> Self {
        MapSet::default()
    }

    /// Attaches the structured trace handle map-operation counters
    /// report through.
    pub fn set_tracer(&mut self, trace: Tracer) {
        self.trace = trace;
    }

    /// Creates a map from a definition and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::BadDefinition`] for zero-size values,
    /// zero-capacity maps, or array keys that are not 4 bytes.
    pub fn create(&mut self, def: MapDef) -> Result<MapId, MapError> {
        self.trace.incr("ebpf.map.creates");
        if def.max_entries == 0 {
            return Err(MapError::BadDefinition("max_entries must be positive"));
        }
        let storage = match def.kind {
            MapKind::Array => {
                if def.key_size != 4 {
                    return Err(MapError::BadDefinition("array maps use 4-byte keys"));
                }
                if def.value_size == 0 {
                    return Err(MapError::BadDefinition("value_size must be positive"));
                }
                MapStorage::Array {
                    values: vec![0; def.max_entries as usize * def.value_size as usize],
                }
            }
            MapKind::Hash => {
                if def.key_size == 0 || def.value_size == 0 {
                    return Err(MapError::BadDefinition(
                        "hash maps need key and value sizes",
                    ));
                }
                MapStorage::Hash {
                    entries: HashMap::new(),
                }
            }
            MapKind::RingBuf => MapStorage::Ring {
                records: VecDeque::new(),
                used_bytes: 0,
                dropped: 0,
            },
            MapKind::PerCpuArray => {
                if def.key_size != 4 {
                    return Err(MapError::BadDefinition("per-cpu arrays use 4-byte keys"));
                }
                if def.value_size == 0 || !def.value_size.is_multiple_of(8) {
                    return Err(MapError::BadDefinition(
                        "per-cpu array value_size must be a positive multiple of 8",
                    ));
                }
                MapStorage::PerCpuArray {
                    values: vec![
                        0;
                        NCPUS as usize * def.max_entries as usize * def.value_size as usize
                    ],
                }
            }
        };
        let id = MapId(self.maps.len() as u32);
        self.maps.push(MapInstance { def, storage });
        Ok(id)
    }

    /// The definition of a map.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::NoSuchMap`] for an unknown id.
    pub fn def(&self, id: MapId) -> Result<MapDef, MapError> {
        self.instance(id).map(|m| m.def)
    }

    /// Number of maps created.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// `true` when no maps exist.
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    fn instance(&self, id: MapId) -> Result<&MapInstance, MapError> {
        self.maps.get(id.0 as usize).ok_or(MapError::NoSuchMap(id))
    }

    fn instance_mut(&mut self, id: MapId) -> Result<&mut MapInstance, MapError> {
        self.maps
            .get_mut(id.0 as usize)
            .ok_or(MapError::NoSuchMap(id))
    }

    /// Looks up a value by key bytes, returning a copy.
    ///
    /// Array maps treat the key as a little-endian `u32` index and
    /// always find in-bounds entries (they are pre-initialized to
    /// zero), exactly like the kernel's array maps. A per-CPU array
    /// lookup is the *userspace merge view*: the returned
    /// `value_size` bytes are the wrapping sum of each 8-byte
    /// little-endian lane across all [`NCPUS`] CPU slots.
    ///
    /// # Errors
    ///
    /// Key-size mismatches and unknown maps are errors; a missing
    /// hash key or out-of-bounds array index is `Ok(None)`.
    pub fn lookup(&self, id: MapId, key: &[u8]) -> Result<Option<Vec<u8>>, MapError> {
        self.trace.incr("ebpf.map.lookups");
        let inst = self.instance(id)?;
        match &inst.storage {
            MapStorage::Array { values } => {
                let idx = array_index(id, &inst.def, key)?;
                match idx {
                    Some(i) => {
                        let vs = inst.def.value_size as usize;
                        Ok(Some(values[i * vs..(i + 1) * vs].to_vec()))
                    }
                    None => Ok(None),
                }
            }
            MapStorage::Hash { entries } => {
                check_key(id, &inst.def, key)?;
                Ok(entries.get(key).cloned())
            }
            MapStorage::Ring { .. } => Err(MapError::WrongKind(id)),
            MapStorage::PerCpuArray { values } => {
                let idx = array_index(id, &inst.def, key)?;
                match idx {
                    Some(i) => {
                        let vs = inst.def.value_size as usize;
                        let stride = inst.def.max_entries as usize * vs;
                        let mut merged = vec![0u8; vs];
                        for cpu in 0..NCPUS as usize {
                            let slot = &values[cpu * stride + i * vs..cpu * stride + (i + 1) * vs];
                            for lane in 0..vs / 8 {
                                let a = u64::from_le_bytes(
                                    merged[lane * 8..lane * 8 + 8].try_into().expect("8 bytes"),
                                );
                                let b = u64::from_le_bytes(
                                    slot[lane * 8..lane * 8 + 8].try_into().expect("8 bytes"),
                                );
                                merged[lane * 8..lane * 8 + 8]
                                    .copy_from_slice(&a.wrapping_add(b).to_le_bytes());
                            }
                        }
                        Ok(Some(merged))
                    }
                    None => Ok(None),
                }
            }
        }
    }

    /// Inserts or updates a value.
    ///
    /// # Errors
    ///
    /// Size mismatches, unknown maps, out-of-bounds array indices,
    /// and full hash maps are errors.
    pub fn update(&mut self, id: MapId, key: &[u8], value: &[u8]) -> Result<(), MapError> {
        self.trace.incr("ebpf.map.updates");
        let inst = self.instance_mut(id)?;
        if value.len() != inst.def.value_size as usize {
            return Err(MapError::BadValueSize {
                map: id,
                expected: inst.def.value_size,
                got: value.len(),
            });
        }
        match &mut inst.storage {
            MapStorage::Array { values } => {
                let idx = array_index(id, &inst.def, key)?.ok_or(MapError::IndexOutOfBounds {
                    map: id,
                    index: u32::from_le_bytes(key.try_into().expect("checked")),
                    max_entries: inst.def.max_entries,
                })?;
                let vs = inst.def.value_size as usize;
                values[idx * vs..(idx + 1) * vs].copy_from_slice(value);
                Ok(())
            }
            MapStorage::Hash { entries } => {
                check_key(id, &inst.def, key)?;
                if !entries.contains_key(key) && entries.len() >= inst.def.max_entries as usize {
                    return Err(MapError::Full(id));
                }
                entries.insert(key.to_vec(), value.to_vec());
                Ok(())
            }
            MapStorage::Ring { .. } => Err(MapError::WrongKind(id)),
            // A userspace update seeds CPU 0's slot and zeroes the
            // rest, so the merged (lane-summed) read-back equals the
            // written value — and writing zeros resets every slot.
            MapStorage::PerCpuArray { values } => {
                let idx = array_index(id, &inst.def, key)?.ok_or(MapError::IndexOutOfBounds {
                    map: id,
                    index: u32::from_le_bytes(key.try_into().expect("checked")),
                    max_entries: inst.def.max_entries,
                })?;
                let vs = inst.def.value_size as usize;
                let stride = inst.def.max_entries as usize * vs;
                for cpu in 0..NCPUS as usize {
                    let slot = &mut values[cpu * stride + idx * vs..cpu * stride + (idx + 1) * vs];
                    if cpu == 0 {
                        slot.copy_from_slice(value);
                    } else {
                        slot.fill(0);
                    }
                }
                Ok(())
            }
        }
    }

    /// Deletes a hash-map entry. Deleting array entries is not
    /// supported (as in the kernel).
    ///
    /// # Errors
    ///
    /// Unknown maps, wrong kinds, and key-size mismatches are
    /// errors; deleting a missing key returns `Ok(false)`.
    pub fn delete(&mut self, id: MapId, key: &[u8]) -> Result<bool, MapError> {
        self.trace.incr("ebpf.map.deletes");
        let inst = self.instance_mut(id)?;
        match &mut inst.storage {
            MapStorage::Hash { entries } => {
                check_key(id, &inst.def, key)?;
                Ok(entries.remove(key).is_some())
            }
            MapStorage::Array { .. } | MapStorage::Ring { .. } | MapStorage::PerCpuArray { .. } => {
                Err(MapError::WrongKind(id))
            }
        }
    }

    /// Number of live entries (hash) or total entries (array).
    ///
    /// # Errors
    ///
    /// Unknown maps and ring buffers are errors.
    pub fn entry_count(&self, id: MapId) -> Result<u32, MapError> {
        let inst = self.instance(id)?;
        match &inst.storage {
            MapStorage::Array { .. } | MapStorage::PerCpuArray { .. } => Ok(inst.def.max_entries),
            MapStorage::Hash { entries } => Ok(entries.len() as u32),
            MapStorage::Ring { .. } => Err(MapError::WrongKind(id)),
        }
    }

    /// Appends a record to a ring buffer.
    ///
    /// # Errors
    ///
    /// [`MapError::RingRecordTooLarge`] when the record (plus its
    /// 8-byte header) exceeds the whole ring — rejected up front and
    /// *not* counted as a drop; [`MapError::RingFull`] when it would
    /// fit an empty ring but not the current free space (this one
    /// increments the drop counter, as the kernel does);
    /// [`MapError::WrongKind`] for non-ring maps.
    pub fn ring_push(&mut self, id: MapId, record: &[u8]) -> Result<(), MapError> {
        self.trace.incr("ebpf.map.ring_pushes");
        let inst = self.instance_mut(id)?;
        match &mut inst.storage {
            MapStorage::Ring {
                records,
                used_bytes,
                dropped,
            } => {
                let capacity = inst.def.max_entries;
                let needed = record.len() as u32 + 8; // 8-byte record header
                if needed > capacity {
                    return Err(MapError::RingRecordTooLarge {
                        map: id,
                        capacity,
                        record_len: record.len(),
                    });
                }
                if *used_bytes + needed > capacity {
                    *dropped += 1;
                    return Err(MapError::RingFull {
                        map: id,
                        capacity,
                        record_len: record.len(),
                    });
                }
                *used_bytes += needed;
                records.push_back(record.to_vec());
                Ok(())
            }
            _ => Err(MapError::WrongKind(id)),
        }
    }

    /// Pops the oldest ring-buffer record (userspace consumption).
    ///
    /// # Errors
    ///
    /// [`MapError::WrongKind`] for non-ring maps.
    pub fn ring_pop(&mut self, id: MapId) -> Result<Option<Vec<u8>>, MapError> {
        self.trace.incr("ebpf.map.ring_pops");
        let inst = self.instance_mut(id)?;
        match &mut inst.storage {
            MapStorage::Ring {
                records,
                used_bytes,
                ..
            } => Ok(records.pop_front().inspect(|r| {
                *used_bytes -= r.len() as u32 + 8;
            })),
            _ => Err(MapError::WrongKind(id)),
        }
    }

    /// Number of records dropped because the ring was full.
    ///
    /// # Errors
    ///
    /// [`MapError::WrongKind`] for non-ring maps.
    pub fn ring_dropped(&self, id: MapId) -> Result<u64, MapError> {
        let inst = self.instance(id)?;
        match &inst.storage {
            MapStorage::Ring { dropped, .. } => Ok(*dropped),
            _ => Err(MapError::WrongKind(id)),
        }
    }

    // ---- Convenience accessors used heavily by loaders and tests ----

    /// Reads a `u64` from an array map of 8-byte values.
    ///
    /// # Errors
    ///
    /// Out-of-bounds indices and non-8-byte values are errors.
    pub fn array_load_u64(&self, id: MapId, index: u32) -> Result<u64, MapError> {
        let v =
            self.lookup(id, &index.to_le_bytes())?
                .ok_or_else(|| MapError::IndexOutOfBounds {
                    map: id,
                    index,
                    max_entries: self.def(id).map(|d| d.max_entries).unwrap_or(0),
                })?;
        let bytes: [u8; 8] = v
            .as_slice()
            .try_into()
            .map_err(|_| MapError::BadValueSize {
                map: id,
                expected: 8,
                got: v.len(),
            })?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Writes a `u64` into an array map of 8-byte values.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MapSet::array_load_u64`].
    pub fn array_store_u64(&mut self, id: MapId, index: u32, value: u64) -> Result<(), MapError> {
        self.update(id, &index.to_le_bytes(), &value.to_le_bytes())
    }

    /// Direct read of a byte range of an array map's backing store —
    /// the interpreter's map-value pointers resolve through this.
    pub(crate) fn array_raw(&self, id: MapId) -> Result<(&[u8], MapDef), MapError> {
        let inst = self.instance(id)?;
        match &inst.storage {
            MapStorage::Array { values } => Ok((values, inst.def)),
            _ => Err(MapError::WrongKind(id)),
        }
    }

    /// Direct mutable access to an array map's backing store.
    pub(crate) fn array_raw_mut(&mut self, id: MapId) -> Result<(&mut Vec<u8>, MapDef), MapError> {
        let inst = self.instance_mut(id)?;
        let def = inst.def;
        match &mut inst.storage {
            MapStorage::Array { values } => Ok((values, def)),
            _ => Err(MapError::WrongKind(id)),
        }
    }

    /// Reads the merged (lane-summed across CPUs) `u64` at `index`
    /// of a per-CPU array map of 8-byte values — the userspace view
    /// telemetry drains consume.
    ///
    /// # Errors
    ///
    /// Out-of-bounds indices, non-8-byte values, and non-per-CPU
    /// maps are errors.
    pub fn percpu_load_merged_u64(&self, id: MapId, index: u32) -> Result<u64, MapError> {
        let def = self.def(id)?;
        if def.kind != MapKind::PerCpuArray {
            return Err(MapError::WrongKind(id));
        }
        if def.value_size != 8 {
            return Err(MapError::BadValueSize {
                map: id,
                expected: 8,
                got: def.value_size as usize,
            });
        }
        let v = self
            .lookup(id, &index.to_le_bytes())?
            .ok_or(MapError::IndexOutOfBounds {
                map: id,
                index,
                max_entries: def.max_entries,
            })?;
        Ok(u64::from_le_bytes(
            v.as_slice().try_into().expect("8 bytes"),
        ))
    }

    /// Direct read of one CPU's block of a per-CPU array map — the
    /// interpreter's map-value pointers resolve through this.
    pub(crate) fn percpu_raw(&self, id: MapId, cpu: u32) -> Result<(&[u8], MapDef), MapError> {
        let inst = self.instance(id)?;
        match &inst.storage {
            MapStorage::PerCpuArray { values } => {
                let stride = inst.def.max_entries as usize * inst.def.value_size as usize;
                let cpu = (cpu % NCPUS) as usize;
                Ok((&values[cpu * stride..(cpu + 1) * stride], inst.def))
            }
            _ => Err(MapError::WrongKind(id)),
        }
    }

    /// Direct mutable access to one CPU's block of a per-CPU array
    /// map.
    pub(crate) fn percpu_raw_mut(
        &mut self,
        id: MapId,
        cpu: u32,
    ) -> Result<(&mut [u8], MapDef), MapError> {
        let inst = self.instance_mut(id)?;
        let def = inst.def;
        match &mut inst.storage {
            MapStorage::PerCpuArray { values } => {
                let stride = def.max_entries as usize * def.value_size as usize;
                let cpu = (cpu % NCPUS) as usize;
                Ok((&mut values[cpu * stride..(cpu + 1) * stride], def))
            }
            _ => Err(MapError::WrongKind(id)),
        }
    }

    /// Direct access to a hash-map value's bytes.
    pub(crate) fn hash_raw(&self, id: MapId, key: &[u8]) -> Result<Option<&[u8]>, MapError> {
        let inst = self.instance(id)?;
        match &inst.storage {
            MapStorage::Hash { entries } => Ok(entries.get(key).map(|v| v.as_slice())),
            _ => Err(MapError::WrongKind(id)),
        }
    }

    /// Direct mutable access to a hash-map value's bytes.
    pub(crate) fn hash_raw_mut(
        &mut self,
        id: MapId,
        key: &[u8],
    ) -> Result<Option<&mut [u8]>, MapError> {
        let inst = self.instance_mut(id)?;
        match &mut inst.storage {
            MapStorage::Hash { entries } => Ok(entries.get_mut(key).map(|v| v.as_mut_slice())),
            _ => Err(MapError::WrongKind(id)),
        }
    }
}

fn check_key(id: MapId, def: &MapDef, key: &[u8]) -> Result<(), MapError> {
    if key.len() != def.key_size as usize {
        return Err(MapError::BadKeySize {
            map: id,
            expected: def.key_size,
            got: key.len(),
        });
    }
    Ok(())
}

/// Decodes an array key; `Ok(None)` for out-of-bounds.
fn array_index(id: MapId, def: &MapDef, key: &[u8]) -> Result<Option<usize>, MapError> {
    check_key(id, def, key)?;
    let idx = u32::from_le_bytes(key.try_into().expect("checked size"));
    if idx >= def.max_entries {
        Ok(None)
    } else {
        Ok(Some(idx as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_map_lifecycle() {
        let mut maps = MapSet::new();
        let m = maps.create(MapDef::array(8, 4)).unwrap();
        // Pre-initialized to zero.
        assert_eq!(maps.array_load_u64(m, 0).unwrap(), 0);
        maps.array_store_u64(m, 3, 99).unwrap();
        assert_eq!(maps.array_load_u64(m, 3).unwrap(), 99);
        // Out of bounds.
        assert!(maps.array_load_u64(m, 4).is_err());
        assert!(maps.array_store_u64(m, 4, 1).is_err());
        assert_eq!(maps.entry_count(m).unwrap(), 4);
    }

    #[test]
    fn hash_map_lifecycle() {
        let mut maps = MapSet::new();
        let m = maps.create(MapDef::hash(8, 8, 2)).unwrap();
        let k1 = 1u64.to_le_bytes();
        let k2 = 2u64.to_le_bytes();
        let k3 = 3u64.to_le_bytes();
        assert_eq!(maps.lookup(m, &k1).unwrap(), None);
        maps.update(m, &k1, &10u64.to_le_bytes()).unwrap();
        maps.update(m, &k2, &20u64.to_le_bytes()).unwrap();
        assert_eq!(maps.entry_count(m).unwrap(), 2);
        // Capacity enforced for new keys, updates still allowed.
        assert_eq!(
            maps.update(m, &k3, &30u64.to_le_bytes()),
            Err(MapError::Full(m))
        );
        maps.update(m, &k1, &11u64.to_le_bytes()).unwrap();
        assert_eq!(
            maps.lookup(m, &k1).unwrap().unwrap(),
            11u64.to_le_bytes().to_vec()
        );
        assert!(maps.delete(m, &k1).unwrap());
        assert!(!maps.delete(m, &k1).unwrap());
    }

    #[test]
    fn key_and_value_sizes_enforced() {
        let mut maps = MapSet::new();
        let m = maps.create(MapDef::hash(4, 8, 8)).unwrap();
        assert!(matches!(
            maps.lookup(m, &[0u8; 8]),
            Err(MapError::BadKeySize { .. })
        ));
        assert!(matches!(
            maps.update(m, &[0u8; 4], &[0u8; 4]),
            Err(MapError::BadValueSize { .. })
        ));
    }

    #[test]
    fn ring_buffer_fifo_and_capacity() {
        let mut maps = MapSet::new();
        let r = maps.create(MapDef::ringbuf(64)).unwrap();
        maps.ring_push(r, &[1, 2, 3]).unwrap(); // 11 bytes with header
        maps.ring_push(r, &[4, 5]).unwrap(); // 10 bytes
                                             // 64 - 21 = 43 left; a 40-byte record (48 with header) fails.
        assert_eq!(
            maps.ring_push(r, &[0u8; 40]),
            Err(MapError::RingFull {
                map: r,
                capacity: 64,
                record_len: 40
            })
        );
        assert_eq!(maps.ring_dropped(r).unwrap(), 1);
        assert_eq!(maps.ring_pop(r).unwrap().unwrap(), vec![1, 2, 3]);
        assert_eq!(maps.ring_pop(r).unwrap().unwrap(), vec![4, 5]);
        assert_eq!(maps.ring_pop(r).unwrap(), None);
        // Space reclaimed after popping.
        maps.ring_push(r, &[0u8; 40]).unwrap();
    }

    #[test]
    fn ring_record_larger_than_the_ring_is_rejected_up_front() {
        let mut maps = MapSet::new();
        let r = maps.create(MapDef::ringbuf(32)).unwrap();
        // 32 bytes of payload + 8-byte header > 32-byte ring: can
        // never fit, distinct error, no drop counted.
        let err = maps.ring_push(r, &[0u8; 32]).unwrap_err();
        assert_eq!(
            err,
            MapError::RingRecordTooLarge {
                map: r,
                capacity: 32,
                record_len: 32
            }
        );
        assert_eq!(maps.ring_dropped(r).unwrap(), 0, "not backpressure");
        let msg = err.to_string();
        assert!(msg.contains("32-byte record"), "{msg}");
        assert!(msg.contains("capacity 32"), "{msg}");
        // The boundary case (exactly capacity with header) fits.
        maps.ring_push(r, &[0u8; 24]).unwrap();
    }

    #[test]
    fn ring_full_message_names_capacity_and_record_size() {
        let mut maps = MapSet::new();
        let r = maps.create(MapDef::ringbuf(40)).unwrap();
        maps.ring_push(r, &[0u8; 16]).unwrap();
        let msg = maps.ring_push(r, &[0u8; 16]).unwrap_err().to_string();
        assert!(msg.contains("16-byte record"), "{msg}");
        assert!(msg.contains("capacity 40"), "{msg}");
    }

    #[test]
    fn ring_drain_under_pressure_keeps_order_and_exact_drop_accounting() {
        // fill → drop-counted → drain → refill: surviving records
        // come out in push order and every rejected push is counted
        // exactly once.
        let mut maps = MapSet::new();
        let r = maps.create(MapDef::ringbuf(64)).unwrap();
        let mut pushed = Vec::new();
        let mut dropped = 0u64;
        for i in 0u8..12 {
            // 8-byte payload + 8-byte header = 16 bytes; 4 fit in 64.
            match maps.ring_push(r, &[i; 8]) {
                Ok(()) => pushed.push(i),
                Err(MapError::RingFull { .. }) => dropped += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert_eq!(pushed, vec![0, 1, 2, 3]);
        assert_eq!(dropped, 8);
        assert_eq!(maps.ring_dropped(r).unwrap(), dropped);
        // Drain in FIFO order.
        for &i in &pushed {
            assert_eq!(maps.ring_pop(r).unwrap().unwrap(), vec![i; 8]);
        }
        assert_eq!(maps.ring_pop(r).unwrap(), None);
        // Refill works and the drop counter keeps accumulating from
        // where it was, never resetting on drain.
        for i in 100u8..104 {
            maps.ring_push(r, &[i; 8]).unwrap();
        }
        assert_eq!(maps.ring_push(r, &[9; 8]), {
            Err(MapError::RingFull {
                map: r,
                capacity: 64,
                record_len: 8,
            })
        });
        assert_eq!(maps.ring_dropped(r).unwrap(), dropped + 1);
        assert_eq!(maps.ring_pop(r).unwrap().unwrap(), vec![100; 8]);
    }

    #[test]
    fn percpu_array_merges_lanes_across_cpus() {
        let mut maps = MapSet::new();
        let m = maps.create(MapDef::percpu_array(16, 4)).unwrap();
        // Zero-initialized merge view.
        assert_eq!(
            maps.lookup(m, &0u32.to_le_bytes()).unwrap().unwrap(),
            vec![0u8; 16]
        );
        // Write distinct values into each CPU's slot of entry 2.
        for cpu in 0..NCPUS {
            let (block, def) = maps.percpu_raw_mut(m, cpu).unwrap();
            let vs = def.value_size as usize;
            block[2 * vs..2 * vs + 8].copy_from_slice(&(10 + cpu as u64).to_le_bytes());
            block[2 * vs + 8..2 * vs + 16].copy_from_slice(&(cpu as u64).to_le_bytes());
        }
        let merged = maps.lookup(m, &2u32.to_le_bytes()).unwrap().unwrap();
        // Lane 0: (10+0)+(10+1)+(10+2)+(10+3) = 46; lane 1: 0+1+2+3 = 6.
        assert_eq!(u64::from_le_bytes(merged[0..8].try_into().unwrap()), 46);
        assert_eq!(u64::from_le_bytes(merged[8..16].try_into().unwrap()), 6);
        // Out of bounds reads as None, like plain arrays.
        assert_eq!(maps.lookup(m, &4u32.to_le_bytes()).unwrap(), None);
        assert_eq!(maps.entry_count(m).unwrap(), 4);
    }

    #[test]
    fn percpu_array_update_resets_every_slot() {
        let mut maps = MapSet::new();
        let m = maps.create(MapDef::percpu_array(8, 2)).unwrap();
        for cpu in 0..NCPUS {
            let (block, _) = maps.percpu_raw_mut(m, cpu).unwrap();
            block[0..8].copy_from_slice(&7u64.to_le_bytes());
        }
        assert_eq!(maps.percpu_load_merged_u64(m, 0).unwrap(), 7 * NCPUS as u64);
        // A userspace write seeds CPU 0 and zeroes the rest: merged
        // read-back equals the written value.
        maps.update(m, &0u32.to_le_bytes(), &5u64.to_le_bytes())
            .unwrap();
        assert_eq!(maps.percpu_load_merged_u64(m, 0).unwrap(), 5);
        maps.update(m, &0u32.to_le_bytes(), &0u64.to_le_bytes())
            .unwrap();
        assert_eq!(maps.percpu_load_merged_u64(m, 0).unwrap(), 0);
        // Out-of-bounds writes error like plain arrays; deletes are
        // unsupported.
        assert!(maps
            .update(m, &2u32.to_le_bytes(), &1u64.to_le_bytes())
            .is_err());
        assert_eq!(
            maps.delete(m, &0u32.to_le_bytes()),
            Err(MapError::WrongKind(m))
        );
    }

    #[test]
    fn percpu_array_definitions_validated() {
        let mut maps = MapSet::new();
        // Lane merge needs 8-byte-multiple values.
        assert!(maps.create(MapDef::percpu_array(4, 2)).is_err());
        assert!(maps.create(MapDef::percpu_array(0, 2)).is_err());
        assert!(maps.create(MapDef::percpu_array(8, 0)).is_err());
        assert!(maps
            .create(MapDef {
                kind: MapKind::PerCpuArray,
                key_size: 8,
                value_size: 8,
                max_entries: 1
            })
            .is_err());
        // percpu_load_merged_u64 guards kind and value size.
        let a = maps.create(MapDef::array(8, 1)).unwrap();
        assert_eq!(
            maps.percpu_load_merged_u64(a, 0),
            Err(MapError::WrongKind(a))
        );
        let wide = maps.create(MapDef::percpu_array(16, 1)).unwrap();
        assert!(matches!(
            maps.percpu_load_merged_u64(wide, 0),
            Err(MapError::BadValueSize { .. })
        ));
        let m = maps.create(MapDef::percpu_array(8, 1)).unwrap();
        assert!(matches!(
            maps.percpu_load_merged_u64(m, 9),
            Err(MapError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn wrong_kind_operations_rejected() {
        let mut maps = MapSet::new();
        let a = maps.create(MapDef::array(8, 1)).unwrap();
        let r = maps.create(MapDef::ringbuf(32)).unwrap();
        assert_eq!(maps.ring_push(a, &[1]), Err(MapError::WrongKind(a)));
        assert_eq!(maps.lookup(r, &[]), Err(MapError::WrongKind(r)));
        assert_eq!(
            maps.delete(a, &0u32.to_le_bytes()),
            Err(MapError::WrongKind(a))
        );
    }

    #[test]
    fn bad_definitions_rejected() {
        let mut maps = MapSet::new();
        assert!(maps.create(MapDef::array(0, 4)).is_err());
        assert!(maps.create(MapDef::array(8, 0)).is_err());
        assert!(maps
            .create(MapDef {
                kind: MapKind::Array,
                key_size: 8,
                value_size: 8,
                max_entries: 1
            })
            .is_err());
        assert!(maps.create(MapDef::hash(0, 8, 1)).is_err());
    }

    #[test]
    fn unknown_map_errors() {
        let maps = MapSet::new();
        let ghost = MapId(7);
        assert_eq!(maps.lookup(ghost, &[]), Err(MapError::NoSuchMap(ghost)));
        assert_eq!(maps.def(ghost), Err(MapError::NoSuchMap(ghost)));
    }

    #[test]
    fn error_display_smoke() {
        assert!(MapError::Full(MapId(1)).to_string().contains("full"));
        assert!(MapError::BadDefinition("x").to_string().contains("x"));
    }
}
