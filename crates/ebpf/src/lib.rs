//! # snapbpf-ebpf — a miniature eBPF runtime
//!
//! SnapBPF's contribution is an *eBPF-based* kernel-space prefetcher,
//! so this reproduction carries a real (if miniature) eBPF runtime
//! rather than a hand-waved callback:
//!
//! * [`ProgramBuilder`] — a label-based assembler for the
//!   register-machine [instruction set](Insn),
//! * [`Verifier`] — a static verifier enforcing the kernel's safety
//!   rules with 5.3-class range analysis: initialized registers,
//!   bounded stack and map-value accesses (constant *or*
//!   range-proven offsets), null checks after
//!   `bpf_map_lookup_elem`, helper signatures, bounded loops via
//!   state pruning, bounded complexity — with an optional
//!   [`VerifierLog`],
//! * [`Interpreter`] — executes verified programs with eBPF
//!   semantics (helper calling convention, div-by-zero-is-zero,
//!   32-bit zero extension),
//! * [`MapSet`] — array / per-CPU array / hash / ring-buffer maps
//!   shared between programs and their userspace loaders,
//! * [`TelemetryRecord`] — the typed record schema programs emit
//!   over ring buffers for the kernel→user telemetry channel,
//! * [`KprobeRegistry`] — named hook points (e.g.
//!   `add_to_page_cache_lru`) that kernel code fires,
//! * [`KfuncHost`] — the host side of kfunc calls, through which the
//!   kernel exposes `snapbpf_prefetch()`,
//! * [`PassManager`] / [`lint_program`] — a static-analysis layer
//!   over verified programs: behaviour-preserving optimization
//!   passes driven by the verifier's range analysis, and lints for
//!   verifiable-but-suspicious programs (see [`opt`]).
//!
//! ## Examples
//!
//! Verify and run a program that sums two map slots:
//!
//! ```
//! use snapbpf_ebpf::{
//!     AccessSize, HelperId, Interpreter, JmpCond, MapDef, MapSet, NoKfuncs,
//!     ProgramBuilder, Reg, Verifier,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut maps = MapSet::new();
//! let m = maps.create(MapDef::array(8, 2))?;
//! maps.array_store_u64(m, 0, 40)?;
//! maps.array_store_u64(m, 1, 2)?;
//!
//! let mut b = ProgramBuilder::new("sum2");
//! let out = b.label();
//! b.store_imm(Reg::R10, -4, 0, AccessSize::B4)
//!     .load_map(Reg::R1, m)
//!     .mov(Reg::R2, Reg::R10)
//!     .add(Reg::R2, -4)
//!     .call(HelperId::MapLookup)
//!     .jump_if(JmpCond::Eq, Reg::R0, 0i64, out)
//!     .load(Reg::R6, Reg::R0, 0, AccessSize::B8)
//!     .store_imm(Reg::R10, -4, 1, AccessSize::B4)
//!     .load_map(Reg::R1, m)
//!     .mov(Reg::R2, Reg::R10)
//!     .add(Reg::R2, -4)
//!     .call(HelperId::MapLookup)
//!     .jump_if(JmpCond::Eq, Reg::R0, 0i64, out)
//!     .load(Reg::R7, Reg::R0, 0, AccessSize::B8)
//!     .mov(Reg::R0, Reg::R6)
//!     .add(Reg::R0, Reg::R7)
//!     .exit()
//!     .bind(out)?
//!     .mov(Reg::R0, 0)
//!     .exit();
//!
//! let prog = Verifier::new(&maps, &[]).verify(&b.build()?)?;
//! let outcome = Interpreter::new().run(&prog, &[], &mut maps, &mut NoKfuncs)?;
//! assert_eq!(outcome.return_value, 42);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm_text;
mod bytecode;
mod insn;
mod interp;
mod kprobe;
mod map;
pub mod opt;
mod program;
mod telemetry;
mod verify;

pub use asm_text::{parse_program, ParseError};
pub use bytecode::{decode_program, encode_program, DecodeError, MAGIC, VERSION};
pub use insn::{
    AccessSize, AluOp, HelperId, Insn, JmpCond, Operand, Reg, MAX_CTX_WORDS, MAX_INSNS, STACK_SIZE,
};
pub use interp::{Interpreter, KfuncHost, NoKfuncs, RunError, RunOutcome, INSN_BUDGET};
pub use kprobe::{FireResult, KprobeRegistry, ProbeError, ProbeId};
pub use map::{MapDef, MapError, MapId, MapKind, MapSet, NCPUS};
pub use opt::{
    lint_program, Diagnostic, Lint, LintReport, OptCache, OptStats, PassManager, Severity,
};
pub use program::{AsmError, Label, Program, ProgramBuilder};
pub use telemetry::{
    telemetry_ring_def, telemetry_stats_def, TelemetryDecodeError, TelemetryRecord,
    DEFAULT_TELEMETRY_RING_BYTES, STAT_SLOTS, STAT_SLOT_ENOSPC, STAT_SLOT_ISSUED, STAT_SLOT_PAGES,
    TELEMETRY_RECORD_BYTES,
};
pub use verify::{
    KfuncSig, VerifiedProgram, Verifier, VerifierLog, VerifierStats, VerifyCache, VerifyError,
    VerifyErrorKind, COMPLEXITY_LIMIT,
};
