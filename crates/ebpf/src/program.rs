//! Programs and the label-based assembler that builds them.
//!
//! [`ProgramBuilder`] is the in-Rust equivalent of writing an eBPF
//! program in restricted C and compiling it: instructions are
//! appended with forward/backward label references that are resolved
//! at [`ProgramBuilder::build`] time.

use std::collections::HashMap;
use std::fmt;

use crate::insn::{AccessSize, AluOp, HelperId, Insn, JmpCond, Operand, Reg, MAX_INSNS};
use crate::map::MapId;

/// A label used for jump targets inside a [`ProgramBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An assembled (but not yet verified) program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    insns: Vec<Insn>,
}

impl Program {
    /// Builds a program directly from a raw instruction stream. Used
    /// by the optimizer to materialize a rewritten image; external
    /// callers go through [`ProgramBuilder`] or the text parser.
    pub(crate) fn from_raw(name: String, insns: Vec<Insn>) -> Program {
        Program { name, insns }
    }

    /// The program's name (for diagnostics and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction stream.
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// `true` for an empty program (never valid to run).
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; program {}", self.name)?;
        for (i, insn) in self.insns.iter().enumerate() {
            writeln!(f, "{i:4}: {insn}")?;
        }
        Ok(())
    }
}

/// Errors from assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound with
    /// [`ProgramBuilder::bind`].
    UnboundLabel(Label),
    /// A label was bound twice.
    Rebound(Label),
    /// The program exceeds [`MAX_INSNS`].
    TooLong(usize),
    /// A resolved jump offset does not fit the encoding.
    JumpOutOfRange {
        /// Instruction index of the jump.
        at: usize,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label L{} never bound", l.0),
            AsmError::Rebound(l) => write!(f, "label L{} bound twice", l.0),
            AsmError::TooLong(n) => write!(f, "program of {n} instructions exceeds {MAX_INSNS}"),
            AsmError::JumpOutOfRange { at } => write!(f, "jump at {at} out of range"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone, Copy)]
enum PendingJump {
    Unconditional,
    Conditional {
        cond: JmpCond,
        dst: Reg,
        src: Operand,
    },
}

/// Builds a [`Program`] instruction by instruction.
///
/// # Examples
///
/// A program computing `min(arg0, arg1)`:
///
/// ```
/// use snapbpf_ebpf::{ProgramBuilder, Reg, JmpCond};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ProgramBuilder::new("min");
/// let done = b.label();
/// b.load_ctx(Reg::R0, 0)
///     .load_ctx(Reg::R2, 1)
///     .jump_if(JmpCond::Le, Reg::R0, Reg::R2, done)
///     .mov(Reg::R0, Reg::R2)
///     .bind(done)?
///     .exit();
/// let program = b.build()?;
/// assert_eq!(program.name(), "min");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    insns: Vec<Insn>,
    /// Jump fixups: instruction index -> (pending, target label).
    fixups: Vec<(usize, PendingJump, Label)>,
    bound: HashMap<Label, usize>,
    next_label: usize,
}

impl ProgramBuilder {
    /// Starts a new program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            insns: Vec::new(),
            fixups: Vec::new(),
            bound: HashMap::new(),
            next_label: 0,
        }
    }

    /// Allocates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the current position.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::Rebound`] if the label is already bound.
    pub fn bind(&mut self, label: Label) -> Result<&mut Self, AsmError> {
        if self.bound.insert(label, self.insns.len()).is_some() {
            return Err(AsmError::Rebound(label));
        }
        Ok(self)
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, insn: Insn) -> &mut Self {
        self.insns.push(insn);
        self
    }

    /// `dst = src` (64-bit move; `src` may be a register or
    /// immediate).
    pub fn mov(&mut self, dst: Reg, src: impl Into<Operand>) -> &mut Self {
        self.push(Insn::Alu64 {
            op: AluOp::Mov,
            dst,
            src: src.into(),
        })
    }

    /// 64-bit ALU operation.
    pub fn alu(&mut self, op: AluOp, dst: Reg, src: impl Into<Operand>) -> &mut Self {
        self.push(Insn::Alu64 {
            op,
            dst,
            src: src.into(),
        })
    }

    /// 32-bit ALU operation (zero-extends the result).
    pub fn alu32(&mut self, op: AluOp, dst: Reg, src: impl Into<Operand>) -> &mut Self {
        self.push(Insn::Alu32 {
            op,
            dst,
            src: src.into(),
        })
    }

    /// `dst += src`.
    pub fn add(&mut self, dst: Reg, src: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Add, dst, src)
    }

    /// `dst -= src`.
    pub fn sub(&mut self, dst: Reg, src: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Sub, dst, src)
    }

    /// `dst *= src`.
    pub fn mul(&mut self, dst: Reg, src: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Mul, dst, src)
    }

    /// Loads a 64-bit immediate.
    pub fn load_imm64(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.push(Insn::LoadImm64 { dst, imm })
    }

    /// Loads a map reference.
    pub fn load_map(&mut self, dst: Reg, map: MapId) -> &mut Self {
        self.push(Insn::LoadMapRef { dst, map })
    }

    /// Reads context word `index` into `dst`.
    pub fn load_ctx(&mut self, dst: Reg, index: u8) -> &mut Self {
        self.push(Insn::LoadCtx { dst, index })
    }

    /// Memory load `dst = *(size*)(base + off)`.
    pub fn load(&mut self, dst: Reg, base: Reg, off: i16, size: AccessSize) -> &mut Self {
        self.push(Insn::Load {
            dst,
            base,
            off,
            size,
        })
    }

    /// Memory store `*(size*)(base + off) = src`.
    pub fn store(&mut self, base: Reg, off: i16, src: Reg, size: AccessSize) -> &mut Self {
        self.push(Insn::Store {
            base,
            off,
            src,
            size,
        })
    }

    /// Memory store of an immediate.
    pub fn store_imm(&mut self, base: Reg, off: i16, imm: i64, size: AccessSize) -> &mut Self {
        self.push(Insn::StoreImm {
            base,
            off,
            imm,
            size,
        })
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        let at = self.insns.len();
        self.insns.push(Insn::Jump { off: 0 });
        self.fixups.push((at, PendingJump::Unconditional, label));
        self
    }

    /// Conditional jump to `label` when `dst <cond> src`.
    pub fn jump_if(
        &mut self,
        cond: JmpCond,
        dst: Reg,
        src: impl Into<Operand>,
        label: Label,
    ) -> &mut Self {
        let at = self.insns.len();
        let src = src.into();
        self.insns.push(Insn::JumpIf {
            cond,
            dst,
            src,
            off: 0,
        });
        self.fixups
            .push((at, PendingJump::Conditional { cond, dst, src }, label));
        self
    }

    /// Calls a helper.
    pub fn call(&mut self, helper: HelperId) -> &mut Self {
        self.push(Insn::Call { helper })
    }

    /// Calls a kfunc by registry index.
    pub fn call_kfunc(&mut self, kfunc: u32) -> &mut Self {
        self.push(Insn::CallKfunc { kfunc })
    }

    /// Appends `exit`.
    pub fn exit(&mut self) -> &mut Self {
        self.push(Insn::Exit)
    }

    /// Resolves all labels and produces the program.
    ///
    /// # Errors
    ///
    /// Unbound labels, double-bound labels (reported at
    /// [`ProgramBuilder::bind`]), over-long programs, and
    /// out-of-range jumps are errors.
    pub fn build(&self) -> Result<Program, AsmError> {
        if self.insns.len() > MAX_INSNS {
            return Err(AsmError::TooLong(self.insns.len()));
        }
        let mut insns = self.insns.clone();
        for &(at, pending, label) in &self.fixups {
            let target = *self
                .bound
                .get(&label)
                .ok_or(AsmError::UnboundLabel(label))?;
            let rel = target as i64 - at as i64 - 1;
            let off = i32::try_from(rel).map_err(|_| AsmError::JumpOutOfRange { at })?;
            insns[at] = match pending {
                PendingJump::Unconditional => Insn::Jump { off },
                PendingJump::Conditional { cond, dst, src } => Insn::JumpIf {
                    cond,
                    dst,
                    src,
                    off,
                },
            };
        }
        Ok(Program {
            name: self.name.clone(),
            insns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_program() {
        let mut b = ProgramBuilder::new("ret42");
        b.mov(Reg::R0, 42).exit();
        let p = b.build().unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(
            p.insns()[0],
            Insn::Alu64 {
                op: AluOp::Mov,
                dst: Reg::R0,
                src: Operand::Imm(42)
            }
        );
        assert_eq!(p.insns()[1], Insn::Exit);
    }

    #[test]
    fn forward_label_resolves() {
        let mut b = ProgramBuilder::new("fwd");
        let skip = b.label();
        b.mov(Reg::R0, 0)
            .jump(skip)
            .mov(Reg::R0, 1) // skipped
            .bind(skip)
            .unwrap()
            .exit();
        let p = b.build().unwrap();
        // Jump at index 1 must skip one instruction: off = +1.
        assert_eq!(p.insns()[1], Insn::Jump { off: 1 });
    }

    #[test]
    fn backward_label_resolves() {
        let mut b = ProgramBuilder::new("back");
        let top = b.label();
        b.mov(Reg::R0, 0);
        b.bind(top).unwrap();
        b.add(Reg::R0, 1).jump(top);
        let p = b.build().unwrap();
        // Jump at index 2 back to index 1: off = -2.
        assert_eq!(p.insns()[2], Insn::Jump { off: -2 });
    }

    #[test]
    fn conditional_jump_operands_survive_fixup() {
        let mut b = ProgramBuilder::new("cond");
        let out = b.label();
        b.mov(Reg::R1, 5)
            .jump_if(JmpCond::Gt, Reg::R1, 3i64, out)
            .mov(Reg::R0, 0)
            .bind(out)
            .unwrap()
            .mov(Reg::R0, 1)
            .exit();
        let p = b.build().unwrap();
        assert_eq!(
            p.insns()[1],
            Insn::JumpIf {
                cond: JmpCond::Gt,
                dst: Reg::R1,
                src: Operand::Imm(3),
                off: 1
            }
        );
    }

    #[test]
    fn unbound_label_detected() {
        let mut b = ProgramBuilder::new("bad");
        let ghost = b.label();
        b.jump(ghost).exit();
        assert_eq!(b.build(), Err(AsmError::UnboundLabel(ghost)));
    }

    #[test]
    fn rebound_label_detected() {
        let mut b = ProgramBuilder::new("bad");
        let l = b.label();
        b.bind(l).unwrap();
        assert_eq!(b.bind(l).err(), Some(AsmError::Rebound(l)));
    }

    #[test]
    fn too_long_detected() {
        let mut b = ProgramBuilder::new("huge");
        for _ in 0..(MAX_INSNS + 1) {
            b.mov(Reg::R0, 0);
        }
        assert!(matches!(b.build(), Err(AsmError::TooLong(_))));
    }

    #[test]
    fn display_lists_instructions() {
        let mut b = ProgramBuilder::new("show");
        b.mov(Reg::R0, 1).exit();
        let text = b.build().unwrap().to_string();
        assert!(text.contains("; program show"));
        assert!(text.contains("mov64 r0, 1"));
        assert!(text.contains("exit"));
    }
}
