//! The typed telemetry record schema for kernel→user reporting.
//!
//! Telemetry programs emit fixed-size records over a ring buffer
//! (via [`crate::HelperId::RingbufOutput`]) and bump per-CPU
//! counters in a [`crate::MapKind::PerCpuArray`] stats map. This
//! module owns the wire format both sides agree on:
//!
//! * every record is exactly [`TELEMETRY_RECORD_BYTES`] bytes — five
//!   little-endian `u64` fields: kind tag, virtual timestamp, file
//!   id, start page, page count;
//! * the per-CPU stats map is indexed by the `STAT_SLOT_*`
//!   constants; userspace reads the lane-merged sums.
//!
//! The userspace decoder ([`TelemetryRecord::decode`]) is total: a
//! record of the wrong size or with an unknown kind tag is a
//! [`TelemetryDecodeError`], never a panic, because ring contents
//! are program-controlled data.

use std::fmt;

use crate::map::MapDef;

/// Size in bytes of every encoded [`TelemetryRecord`]: five
/// little-endian `u64` fields.
pub const TELEMETRY_RECORD_BYTES: usize = 40;

/// Default telemetry ring capacity in bytes. Sized so one restore's
/// worth of records (one per prefetch group plus the completion
/// marker, 48 bytes each with the ring header) fits with room to
/// spare at the largest shipped group count — `drops == 0` at
/// default sizing is a CI invariant.
pub const DEFAULT_TELEMETRY_RING_BYTES: u32 = 64 * 1024;

/// Map definition for a telemetry stats map: a per-CPU array of
/// [`STAT_SLOTS`] `u64` counters.
pub fn telemetry_stats_def() -> MapDef {
    MapDef::percpu_array(8, STAT_SLOTS)
}

/// Map definition for a telemetry ring buffer of the default
/// capacity ([`DEFAULT_TELEMETRY_RING_BYTES`]).
pub fn telemetry_ring_def() -> MapDef {
    MapDef::ringbuf(DEFAULT_TELEMETRY_RING_BYTES)
}

/// Per-CPU stats map slot: prefetches issued.
pub const STAT_SLOT_ISSUED: u32 = 0;
/// Per-CPU stats map slot: pages requested across all prefetches.
pub const STAT_SLOT_PAGES: u32 = 1;
/// Per-CPU stats map slot: ring-buffer reservations that failed
/// with `-ENOSPC` (the record was dropped).
pub const STAT_SLOT_ENOSPC: u32 = 2;
/// Number of slots a telemetry stats map carries.
pub const STAT_SLOTS: u32 = 3;

const KIND_PREFETCH_ISSUED: u64 = 1;
const KIND_PREFETCH_COMPLETED: u64 = 2;
const KIND_RING_DROP: u64 = 3;

/// One kernel→user telemetry record.
///
/// # Examples
///
/// ```
/// use snapbpf_ebpf::{TelemetryRecord, TELEMETRY_RECORD_BYTES};
///
/// let rec = TelemetryRecord::PrefetchIssued {
///     now_ns: 10,
///     file: 3,
///     start_page: 64,
///     pages: 16,
/// };
/// let bytes = rec.encode();
/// assert_eq!(bytes.len(), TELEMETRY_RECORD_BYTES);
/// assert_eq!(TelemetryRecord::decode(&bytes).unwrap(), rec);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryRecord {
    /// The prefetch program asked the kernel to read ahead one
    /// contiguous page group.
    PrefetchIssued {
        /// Virtual time the program observed (`bpf_ktime_get_ns`).
        now_ns: u64,
        /// Snapshot file id the group belongs to.
        file: u64,
        /// First page of the group.
        start_page: u64,
        /// Pages in the group.
        pages: u64,
    },
    /// The prefetch program finished walking its group list.
    PrefetchCompleted {
        /// Virtual time the program observed.
        now_ns: u64,
        /// Groups issued during this invocation.
        groups: u64,
        /// Total pages across those groups.
        pages: u64,
    },
    /// A previous ring reservation failed with `-ENOSPC`; emitted on
    /// the next successful reservation so drops are visible in-band
    /// too (the authoritative count lives in the stats map and the
    /// ring's own drop counter).
    RingDrop {
        /// Virtual time the program observed.
        now_ns: u64,
        /// Drops observed by the program so far.
        dropped: u64,
    },
}

/// Why a byte slice failed to decode as a [`TelemetryRecord`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryDecodeError {
    /// The record was not exactly [`TELEMETRY_RECORD_BYTES`] long.
    WrongSize(usize),
    /// The kind tag is not one this schema defines.
    UnknownKind(u64),
}

impl fmt::Display for TelemetryDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryDecodeError::WrongSize(n) => write!(
                f,
                "telemetry record is {n} bytes, expected {TELEMETRY_RECORD_BYTES}"
            ),
            TelemetryDecodeError::UnknownKind(k) => {
                write!(f, "unknown telemetry record kind {k}")
            }
        }
    }
}

impl std::error::Error for TelemetryDecodeError {}

impl TelemetryRecord {
    /// The kind tag this record encodes with (word 0 of the wire
    /// format). Programs staging records on the stack store the same
    /// value.
    pub fn kind_tag(&self) -> u64 {
        match self {
            TelemetryRecord::PrefetchIssued { .. } => KIND_PREFETCH_ISSUED,
            TelemetryRecord::PrefetchCompleted { .. } => KIND_PREFETCH_COMPLETED,
            TelemetryRecord::RingDrop { .. } => KIND_RING_DROP,
        }
    }

    /// Encodes to the fixed [`TELEMETRY_RECORD_BYTES`] wire format.
    pub fn encode(&self) -> [u8; TELEMETRY_RECORD_BYTES] {
        let words: [u64; 5] = match *self {
            TelemetryRecord::PrefetchIssued {
                now_ns,
                file,
                start_page,
                pages,
            } => [KIND_PREFETCH_ISSUED, now_ns, file, start_page, pages],
            TelemetryRecord::PrefetchCompleted {
                now_ns,
                groups,
                pages,
            } => [KIND_PREFETCH_COMPLETED, now_ns, groups, pages, 0],
            TelemetryRecord::RingDrop { now_ns, dropped } => {
                [KIND_RING_DROP, now_ns, dropped, 0, 0]
            }
        };
        let mut out = [0u8; TELEMETRY_RECORD_BYTES];
        for (i, w) in words.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Decodes one ring record.
    ///
    /// # Errors
    ///
    /// [`TelemetryDecodeError`] for a wrong-sized slice or an
    /// unknown kind tag.
    pub fn decode(bytes: &[u8]) -> Result<TelemetryRecord, TelemetryDecodeError> {
        if bytes.len() != TELEMETRY_RECORD_BYTES {
            return Err(TelemetryDecodeError::WrongSize(bytes.len()));
        }
        let word =
            |i: usize| u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8-byte word"));
        match word(0) {
            KIND_PREFETCH_ISSUED => Ok(TelemetryRecord::PrefetchIssued {
                now_ns: word(1),
                file: word(2),
                start_page: word(3),
                pages: word(4),
            }),
            KIND_PREFETCH_COMPLETED => Ok(TelemetryRecord::PrefetchCompleted {
                now_ns: word(1),
                groups: word(2),
                pages: word(3),
            }),
            KIND_RING_DROP => Ok(TelemetryRecord::RingDrop {
                now_ns: word(1),
                dropped: word(2),
            }),
            k => Err(TelemetryDecodeError::UnknownKind(k)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_round_trip() {
        let records = [
            TelemetryRecord::PrefetchIssued {
                now_ns: 1,
                file: 2,
                start_page: 3,
                pages: 4,
            },
            TelemetryRecord::PrefetchCompleted {
                now_ns: u64::MAX,
                groups: 7,
                pages: 1 << 40,
            },
            TelemetryRecord::RingDrop {
                now_ns: 0,
                dropped: 9,
            },
        ];
        for rec in records {
            let bytes = rec.encode();
            assert_eq!(TelemetryRecord::decode(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn kind_tags_are_stable_wire_format() {
        let rec = TelemetryRecord::PrefetchIssued {
            now_ns: 0,
            file: 0,
            start_page: 0,
            pages: 0,
        };
        assert_eq!(rec.kind_tag(), 1);
        assert_eq!(rec.encode()[0], 1);
    }

    #[test]
    fn bad_inputs_decode_to_errors_not_panics() {
        assert_eq!(
            TelemetryRecord::decode(&[0u8; 39]),
            Err(TelemetryDecodeError::WrongSize(39))
        );
        let mut bytes = [0u8; TELEMETRY_RECORD_BYTES];
        bytes[0] = 99;
        assert_eq!(
            TelemetryRecord::decode(&bytes),
            Err(TelemetryDecodeError::UnknownKind(99))
        );
        let e = TelemetryRecord::decode(&bytes).unwrap_err();
        assert!(e.to_string().contains("99"));
    }
}
